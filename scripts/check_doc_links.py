#!/usr/bin/env python3
"""Verify that relative links in the repo's markdown docs resolve.

Checks every ``[text](target)`` link in the tracked markdown files:
relative file targets must point at files that exist (in-page anchors
are stripped first). External links (http/https/mailto) are left alone —
CI must not depend on the network. Exits non-zero listing every broken
link.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted(
    p
    for p in ROOT.rglob("*.md")
    if not any(part in {"target", ".git", "results"} for part in p.parts)
)

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def main() -> int:
    broken = []
    for doc in DOCS:
        text = doc.read_text(encoding="utf-8")
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            rel = doc.relative_to(ROOT)
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{rel}: broken link -> {target}")
    if broken:
        print("\n".join(broken))
        return 1
    print(f"checked {len(DOCS)} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

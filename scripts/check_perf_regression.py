#!/usr/bin/env python3
"""Gate perf regressions against the committed compute-bench baseline.

Compares a freshly generated ``BENCH_compute.json`` (bench-compute/v2)
against the committed copy, row by row (matched on ``op`` + ``threads``):
any op more than ``--tolerance`` (default 25%) slower than its committed
``ns_per_iter`` fails the gate. Microbenchmarks are only comparable on
similar hardware, so when the fresh run's recorded core count differs
from the committed baseline's, the gate skips with exit 0 — a 2-core CI
runner must not be judged against numbers recorded on the 1-core
reference box.

Usage: check_perf_regression.py <fresh.json> [--baseline BENCH_compute.json]
                                [--tolerance 0.25]
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def load(path: Path) -> dict:
    doc = json.loads(path.read_text(encoding="utf-8"))
    schema = doc.get("schema", "")
    if not schema.startswith("bench-compute/"):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return doc


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", type=Path, help="freshly generated BENCH_compute.json")
    ap.add_argument(
        "--baseline",
        type=Path,
        default=ROOT / "BENCH_compute.json",
        help="committed baseline (default: repo root BENCH_compute.json)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed slowdown fraction before failing (default 0.25)",
    )
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)

    fresh_cores = fresh.get("cores", 0)
    base_cores = base.get("cores", 0)
    if fresh_cores != base_cores:
        print(
            f"SKIP: fresh run saw {fresh_cores} cores, baseline recorded "
            f"{base_cores} — numbers are not comparable across machines"
        )
        return 0

    base_rows = {
        (r["op"], r["threads"]): r["ns_per_iter"] for r in base.get("results", [])
    }
    failures = []
    compared = 0
    for row in fresh.get("results", []):
        key = (row["op"], row["threads"])
        committed = base_rows.get(key)
        if committed is None:
            continue  # op added since the baseline was recorded
        compared += 1
        ratio = row["ns_per_iter"] / max(committed, 1)
        tag = "FAIL" if ratio > 1.0 + args.tolerance else "ok"
        print(
            f"{tag:4} {row['op']:<14} threads={row['threads']} "
            f"{row['ns_per_iter']:>12} ns vs {committed:>12} ns ({ratio:.2f}x)"
        )
        if tag == "FAIL":
            failures.append(key)

    if compared == 0:
        sys.exit("no comparable rows between fresh run and baseline")
    if failures:
        print(
            f"\n{len(failures)} op(s) regressed more than "
            f"{args.tolerance:.0%} vs the committed baseline: "
            + ", ".join(f"{op}@{t}t" for op, t in failures)
        )
        return 1
    print(f"\nall {compared} compared rows within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

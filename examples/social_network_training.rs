//! End-to-end scenario: community detection on a social network with a
//! Graph Attention Network.
//!
//! This is the workload class the paper's introduction motivates (social
//! networks, knowledge graphs): a Reddit-like community-structured graph
//! where the GNN must actually *learn* — accuracies below are real, not
//! simulated. GAT exercises the parameterized edge path (`EdgeForward`
//! with attention logits + per-destination softmax) that distinguishes
//! NeutronStar from systems like ROC, which cannot express it.
//!
//! Run with: `cargo run --release --example social_network_training`

use neutronstar::prelude::*;

fn main() -> Result<(), RuntimeError> {
    // Reddit stand-in: stochastic block model, 41 communities, learnable
    // labels. Keep it small enough to train attentively in seconds.
    let dataset = DatasetSpec::named("reddit")
        .expect("registered dataset")
        .materialize(0.003, 11);
    println!(
        "social graph: {} vertices, {} edges, {} communities",
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.num_classes,
    );

    let model = GnnModel::two_layer(
        ModelKind::Gat,
        dataset.feature_dim(),
        64,
        dataset.num_classes,
        3,
    );

    let session = TrainingSession::builder()
        .engine(EngineKind::Hybrid)
        .cluster(ClusterSpec::aliyun_ecs(4))
        .learning_rate(0.02)
        .build(&dataset, &model)?;

    let epochs = 60;
    let report = session.train(epochs)?;

    println!("\nepoch  loss      val-acc  test-acc");
    for e in report.epochs.iter().step_by(10) {
        println!(
            "{:>5}  {:<8.4}  {:>6.3}  {:>7.3}",
            e.epoch, e.loss, e.val_acc, e.test_acc
        );
    }
    let final_acc = report.final_test_acc();
    println!(
        "\nfinal test accuracy: {:.1}% after {:.3}s of simulated cluster time",
        final_acc * 100.0,
        report.simulated_seconds(epochs),
    );
    assert!(final_acc > 0.4, "GAT should separate the communities");
    Ok(())
}

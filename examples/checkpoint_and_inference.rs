//! The deployment loop: train distributed, checkpoint the model, reload
//! it elsewhere, and serve full-graph predictions.
//!
//! Run with: `cargo run --release --example checkpoint_and_inference`

use neutronstar::gnn::inference::infer;
use neutronstar::prelude::*;
use neutronstar::tensor::checkpoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetSpec::named("pubmed")
        .expect("registered dataset")
        .materialize(0.1, 21);
    let model = GnnModel::two_layer(
        ModelKind::Gcn,
        dataset.feature_dim(),
        32,
        dataset.num_classes,
        5,
    );

    // 1. Train on a modeled 4-node cluster.
    let session = TrainingSession::builder()
        .engine(EngineKind::Hybrid)
        .cluster(ClusterSpec::aliyun_ecs(4))
        .learning_rate(0.02)
        .build(&dataset, &model)?;
    let report = session.train(25)?;
    println!(
        "trained: final loss {:.4}, test acc {:.1}%",
        report.final_loss(),
        report.final_test_acc() * 100.0
    );

    // 2. Checkpoint the trained parameters.
    let mut bytes = Vec::new();
    checkpoint::save(&report.final_params, &mut bytes)?;
    println!("checkpoint: {} bytes", bytes.len());

    // 3. "Elsewhere": a fresh process would rebuild the architecture and
    //    restore the weights by name.
    let mut restored = model.fresh_store();
    checkpoint::restore_into(&mut restored, &mut bytes.as_slice())?;

    // 4. Serve: full-graph single-machine inference with the restored
    //    parameters must reproduce the distributed trainer's accuracy.
    let result = infer(&dataset, &model, &restored);
    println!(
        "restored inference: train {:.1}% / val {:.1}% / test {:.1}%",
        result.train_acc * 100.0,
        result.val_acc * 100.0,
        result.test_acc * 100.0
    );
    let diff = (result.test_acc - report.final_test_acc()).abs();
    assert!(
        diff < 1e-9,
        "restored model must match the trained one exactly (diff {diff})"
    );
    println!("round-trip exact: distributed training == checkpoint == inference");
    Ok(())
}

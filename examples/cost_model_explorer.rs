//! Cost-model explorer: look inside Algorithm 4.
//!
//! Probes the per-layer cost factors `T_v` / `T_e` / `T_c` (Algorithm 4,
//! line 1) for a GCN on two cluster presets, then shows how the greedy
//! dependency partitioning reacts: the slow-network ECS cluster caches
//! aggressively, the 100 Gb/s IBV cluster communicates aggressively —
//! the environment sensitivity of Fig. 2(c) explained by the model that
//! exploits it.
//!
//! Run with: `cargo run --release --example cost_model_explorer`

use neutronstar::graph::Partitioner;
use neutronstar::prelude::*;
use neutronstar::runtime::cost::probe;
use neutronstar::runtime::hybrid::{partition_dependencies, HybridConfig};

fn main() -> Result<(), RuntimeError> {
    let dataset = DatasetSpec::named("livejournal")
        .expect("registered dataset")
        .materialize(0.001, 42);
    let model = GnnModel::two_layer(
        ModelKind::Gcn,
        dataset.feature_dim(),
        dataset.hidden_dim,
        dataset.num_classes,
        7,
    );

    for cluster in [ClusterSpec::aliyun_ecs(8), ClusterSpec::ibv(8)] {
        println!("\n=== cluster: {} ===", cluster.name);
        let costs = probe(&model, &cluster);
        println!("layer  T_v(s/vertex)  T_e(s/edge)  T_c(s/dep-row)");
        for lz in 0..model.num_layers() {
            println!(
                "{:>5}  {:>13.3e}  {:>11.3e}  {:>14.3e}",
                lz + 1,
                costs.t_v[lz],
                costs.t_e[lz],
                costs.t_c[lz]
            );
        }

        let part = Partitioner::Chunk.partition(&dataset.graph, cluster.workers);
        let (_, info) = partition_dependencies(
            &dataset.graph,
            &part,
            model.dims(),
            &costs,
            dataset.scale,
            cluster.device.mem_bytes,
            &HybridConfig::default(),
        )?;
        println!(
            "Algorithm 4 verdict: {} cached / {} communicated ({:.0}% cached)",
            info.total_cached(),
            info.total_comm(),
            info.cached_fraction() * 100.0
        );
        for (lz, (c, m)) in info
            .cached_per_layer
            .iter()
            .zip(info.comm_per_layer.iter())
            .enumerate()
        {
            println!("  layer {}: {c} cached, {m} communicated", lz + 1);
        }
    }
    println!(
        "\nThe slow network tilts t_c upward, so ECS caches more; on IBV \
         communication is nearly free and wins (cf. Fig. 2c)."
    );
    Ok(())
}

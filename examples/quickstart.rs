//! Quickstart: train a 2-layer GCN with the Hybrid engine on a scaled
//! stand-in of the paper's Google web graph, on a modeled 4-node Aliyun
//! ECS cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use neutronstar::prelude::*;

fn main() -> Result<(), RuntimeError> {
    // 1. A dataset. The registry mirrors the paper's Table 2; `scale`
    //    shrinks |V| and |E| proportionally (average degree preserved).
    let dataset = DatasetSpec::named("google")
        .expect("registered dataset")
        .materialize(0.005, 42);
    println!(
        "dataset: {} — {} vertices, {} edges (avg degree {:.2})",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.graph.avg_degree(),
    );

    // 2. A model: GCN with the paper's hidden size for this graph.
    let model = GnnModel::two_layer(
        ModelKind::Gcn,
        dataset.feature_dim(),
        dataset.hidden_dim,
        dataset.num_classes,
        7,
    );

    // 3. A session: Hybrid dependency management (Algorithm 4 decides,
    //    per remote dependency, whether to cache or communicate it), all
    //    system optimizations on, 4 modeled T4 nodes over 6 Gbps Ethernet.
    let session = TrainingSession::builder()
        .engine(EngineKind::Hybrid)
        .cluster(ClusterSpec::aliyun_ecs(4))
        .optimizations(ExecOptions::all())
        .learning_rate(0.01)
        .build(&dataset, &model)?;

    // 4. Train. Numerics are real (4 worker threads exchanging tensors);
    //    per-epoch time comes from the event-driven cluster simulator.
    let report = session.train(10)?;

    println!("\nengine: {} on {} workers", report.engine, report.workers);
    println!(
        "simulated epoch time: {:.4}s ({:.2} MB moved, device util {:.0}%)",
        report.sim.epoch_seconds,
        report.sim.bytes_per_epoch as f64 / 1e6,
        report.sim.device_utilization * 100.0,
    );
    if let Some(h) = &report.plan.hybrid {
        println!(
            "hybrid decision: {:.0}% of dependencies cached, {:.0}% communicated",
            h.cached_fraction() * 100.0,
            (1.0 - h.cached_fraction()) * 100.0,
        );
    }
    println!("\nepoch  loss      train-acc");
    for e in &report.epochs {
        println!("{:>5}  {:<8.4}  {:.3}", e.epoch, e.loss, e.train_acc);
    }
    Ok(())
}

//! Engine face-off: the paper's central experiment in miniature.
//!
//! Runs the same GCN training with DepCache (Algorithm 2), DepComm
//! (Algorithm 3), and Hybrid (Algorithm 4) on the same graph and cluster,
//! confirming that (a) all three engines compute the *same* gradients —
//! losses agree to float tolerance — while (b) their simulated epoch
//! times differ exactly the way §2.3 describes: DepCache burns FLOPs on
//! replicas, DepComm burns bandwidth on boundary rows, and Hybrid picks
//! per dependency.
//!
//! Run with: `cargo run --release --example engine_faceoff`

use neutronstar::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let dataset = DatasetSpec::named("pokec")
        .expect("registered dataset")
        .materialize(0.002, 42);
    let model = GnnModel::two_layer(
        ModelKind::Gcn,
        dataset.feature_dim(),
        dataset.hidden_dim,
        dataset.num_classes,
        7,
    );
    let cluster = ClusterSpec::aliyun_ecs(8);

    println!(
        "{:>9}  {:>10}  {:>10}  {:>10}  {:>9}  {:>10}",
        "engine", "epoch(s)", "GFLOP/ep", "MB/ep", "replicas", "final loss"
    );
    let mut losses = Vec::new();
    for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
        let session = TrainingSession::builder()
            .engine(engine)
            .cluster(cluster.clone())
            .build(&dataset, &model)?;
        let report = session.train(5)?;
        println!(
            "{:>9}  {:>10.4}  {:>10.3}  {:>10.2}  {:>9}  {:>10.5}",
            report.engine,
            report.sim.epoch_seconds,
            report.sim.flops_per_epoch as f64 / 1e9,
            report.sim.bytes_per_epoch as f64 / 1e6,
            report.plan.replica_slots,
            report.final_loss(),
        );
        losses.push(report.final_loss());
    }

    let spread = losses
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - losses.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!(
        "\nloss spread across engines: {spread:.2e} — same math, different systems"
    );
    assert!(
        spread < 1e-3 * losses[0].abs().max(1.0),
        "engines must agree numerically"
    );
    Ok(())
}

//! Workspace-level umbrella crate for the NeutronStar reproduction.
//!
//! This crate exists so that the repository-root `examples/` and `tests/`
//! directories are valid Cargo targets that can exercise the public API of
//! every workspace crate. Library users should depend on [`neutronstar`]
//! directly.

pub use neutronstar;
pub use ns_baselines;
pub use ns_gnn;
pub use ns_graph;
pub use ns_metrics;
pub use ns_net;
pub use ns_runtime;
pub use ns_tensor;

//! Enforced tensor-pool budget (resource-robustness layer): the
//! `NS_POOL_BYTES` cap is a real ceiling, not advisory. Parked buffers
//! are shed the moment the footprint crosses it, the pressure signal
//! shrinks advised all-reduce chunks, and a full training run under a
//! measured-tight cap completes with its high-water mark at or under
//! the budget. Lives in its own test binary because the pool is
//! process-global state.

use std::sync::Mutex;

use neutronstar::prelude::*;
use neutronstar::tensor::pool;
use ns_graph::datasets::by_name;

/// Pool counters and the budget are process-global; serialize.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the configured budget even when an assertion panics.
struct RestoreCap;
impl Drop for RestoreCap {
    fn drop(&mut self) {
        pool::set_cap_bytes(pool::default_cap_bytes());
    }
}

#[test]
fn tightening_the_cap_sheds_parked_buffers() {
    let _guard = serial();
    let _restore = RestoreCap;
    // Park a uniquely-sized buffer, then shrink the budget below it:
    // the shed meters must advance and the residency gauge drop.
    let len = 5077; // odd size no other test uses
    pool::recycle(pool::take_scratch(len));
    let before = pool::stats();
    assert!(before.resident_bytes >= (len * 4) as u64);
    pool::set_cap_bytes(1);
    let after = pool::stats();
    assert!(after.shed > before.shed, "shrinking the cap must shed");
    assert!(after.shed_bytes >= before.shed_bytes + (len * 4) as u64);
    assert_eq!(after.resident_bytes, 0, "nothing may stay parked over budget");
}

#[test]
fn pressure_signal_shrinks_advised_chunks() {
    let _guard = serial();
    let _restore = RestoreCap;
    let live = pool::take_scratch(4096); // 16 KiB live
    pool::set_cap_bytes(live.len() * 4); // footprint == cap: pressured
    assert!(pool::under_pressure());
    assert_eq!(pool::advise_chunk(8192), 2048, "pressure quarters the chunk");
    assert_eq!(pool::advise_chunk(20), 16, "floored at one cache line");
    pool::set_cap_bytes(pool::default_cap_bytes());
    assert!(!pool::under_pressure(), "headroom restored with the budget");
    assert_eq!(pool::advise_chunk(8192), 8192);
    pool::recycle(live);
}

#[test]
fn rearming_the_cap_restarts_the_high_water_mark() {
    let _guard = serial();
    let _restore = RestoreCap;
    let a = pool::take_scratch(9111);
    pool::set_cap_bytes(pool::default_cap_bytes());
    let s = pool::stats();
    assert_eq!(
        s.peak_bytes,
        s.in_use_bytes + s.resident_bytes,
        "re-arming must restart the peak from the current footprint"
    );
    let rearmed = s.peak_bytes;
    let b = pool::take_scratch(9113); // distinct size: cannot be a reuse
    assert!(
        pool::stats().peak_bytes >= rearmed + (9113 * 4) as u64,
        "new highs past the re-armed mark are tracked"
    );
    pool::recycle(a);
    pool::recycle(b);
}

#[test]
fn training_under_a_measured_cap_respects_it() {
    let _guard = serial();
    let _restore = RestoreCap;
    let ds = by_name("cora").unwrap().materialize(0.25, 11);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    let run = || {
        TrainingSession::builder()
            .engine(EngineKind::DepComm)
            .cluster(ClusterSpec::aliyun_ecs(3))
            .threads(1)
            .build(&ds, &model)
            .unwrap()
            .train(2)
            .unwrap()
    };
    // Measure the clean working set, then re-run under a cap one eighth
    // above it: the enforced budget must hold and the numerics must be
    // unaffected (the low-memory sync path is bit-identical).
    pool::set_cap_bytes(pool::default_cap_bytes());
    let free = run();
    let peak = pool::stats().peak_bytes as usize;
    assert!(peak > 0);
    let cap = peak + peak / 8;
    pool::set_cap_bytes(cap);
    let capped = run();
    let capped_peak = pool::stats().peak_bytes;
    assert!(
        capped_peak <= cap as u64,
        "peak {capped_peak} exceeded the enforced cap {cap}"
    );
    assert_eq!(
        free.final_loss(),
        capped.final_loss(),
        "budget pressure must not change the numerics"
    );
}

//! Out-of-memory behaviour across engines and baselines — the paper's
//! OOM matrix (Figs. 10–12, Tables 4–5) as executable assertions.

use neutronstar::prelude::*;
use ns_baselines::{shared_memory_row, SharedMemorySystem, SysResult};
use ns_graph::datasets::by_name;
use ns_runtime::{HybridConfig, Trainer, TrainerConfig};

fn prepare<'a>(
    ds: &'a Dataset,
    model: &'a GnnModel,
    engine: EngineKind,
    workers: usize,
    ratio: Option<f64>,
) -> Result<Trainer<'a>, RuntimeError> {
    let mut cfg = TrainerConfig::new(engine, ClusterSpec::aliyun_ecs(workers));
    cfg.hybrid = HybridConfig { ratio_override: ratio, ..Default::default() };
    Trainer::prepare(ds, model, cfg)
}

#[test]
fn depcache_ooms_on_dense_graph_but_chunked_engines_survive() {
    // LiveJournal at 16 workers: the paper's DepCache cannot hold the
    // 2-hop closure; DepComm and Hybrid (chunked, host-cached) can.
    let ds = by_name("livejournal").unwrap().materialize(0.001, 42);
    let model =
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), ds.hidden_dim, ds.num_classes, 1);
    let cache = prepare(&ds, &model, EngineKind::DepCache, 16, None);
    assert!(
        matches!(cache, Err(RuntimeError::DeviceOom { .. })),
        "DepCache must OOM on livejournal"
    );
    assert!(prepare(&ds, &model, EngineKind::DepComm, 16, None).is_ok());
    assert!(prepare(&ds, &model, EngineKind::Hybrid, 16, None).is_ok());
}

#[test]
fn caching_everything_ooms_for_gat_on_orkut() {
    // Fig. 11's observation, as a test.
    let ds = by_name("orkut").unwrap().materialize(0.0008, 42);
    let model =
        GnnModel::two_layer(ModelKind::Gat, ds.feature_dim(), ds.hidden_dim, ds.num_classes, 1);
    let all_cached = prepare(&ds, &model, EngineKind::Hybrid, 16, Some(1.0));
    assert!(
        matches!(all_cached, Err(RuntimeError::DeviceOom { .. })),
        "ratio=1.0 must OOM for GAT on orkut"
    );
    // The automatic mode backs off the budget and fits.
    assert!(prepare(&ds, &model, EngineKind::Hybrid, 16, None).is_ok());
}

#[test]
fn oom_error_reports_projected_sizes() {
    let ds = by_name("reddit").unwrap().materialize(0.001, 42);
    let model =
        GnnModel::two_layer(ModelKind::Gat, ds.feature_dim(), ds.hidden_dim, ds.num_classes, 1);
    match prepare(&ds, &model, EngineKind::DepCache, 4, None) {
        Err(RuntimeError::DeviceOom { needed_bytes, limit_bytes, what }) => {
            assert!(needed_bytes > limit_bytes);
            assert_eq!(what, "DepCache");
        }
        Err(other) => panic!("expected OOM, got {other}"),
        Ok(_) => panic!("expected OOM, got a successful plan"),
    }
}

#[test]
fn pyg_like_ooms_where_nts_survives() {
    let ds = by_name("google").unwrap().materialize(0.002, 42);
    let model =
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), ds.hidden_dim, ds.num_classes, 1);
    let gpu = ClusterSpec::aliyun_ecs(1);
    assert_eq!(
        shared_memory_row(SharedMemorySystem::PygLike, &ds, &model, &gpu),
        SysResult::Oom
    );
    assert!(matches!(
        shared_memory_row(SharedMemorySystem::Nts, &ds, &model, &gpu),
        SysResult::Time(_)
    ));
}

#[test]
fn small_graphs_fit_everywhere() {
    let ds = by_name("cora").unwrap().materialize(1.0, 42);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 128, ds.num_classes, 1);
    for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
        assert!(prepare(&ds, &model, engine, 4, None).is_ok(), "{}", engine.name());
    }
    let gpu = ClusterSpec::aliyun_ecs(1);
    for sys in [
        SharedMemorySystem::PygLike,
        SharedMemorySystem::DglLike,
        SharedMemorySystem::DglCpu,
        SharedMemorySystem::RocSingle,
        SharedMemorySystem::Nts,
    ] {
        assert!(
            matches!(shared_memory_row(sys, &ds, &model, &gpu), SysResult::Time(_)),
            "{} must complete cora",
            sys.name()
        );
    }
}

//! Fault-tolerance acceptance tests: injected worker death surfaces as a
//! typed error (never a hang or abort), and checkpoint-based recovery
//! finishes the run on the surviving topology with the same numeric
//! trajectory an uninterrupted run on that topology produces.

use std::time::{Duration, Instant};

use neutronstar::prelude::*;
use ns_graph::datasets::by_name;
use ns_net::fault::FaultPlan;
use ns_runtime::{FailureCause, RecoveryConfig, RuntimeError};

fn small_dataset() -> Dataset {
    by_name("cora").unwrap().materialize(0.2, 7)
}

fn model_for(ds: &Dataset) -> GnnModel {
    GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3)
}

/// Without recovery configured, every engine returns
/// `RuntimeError::WorkerFailed` when a worker is killed mid-run — with
/// all surviving threads joined (the call returning at all proves the
/// join) and promptly (no deadlock waiting on the dead peer).
#[test]
fn kill_without_recovery_fails_fast_on_every_engine() {
    let ds = small_dataset();
    let model = model_for(&ds);
    for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
        let session = TrainingSession::builder()
            .engine(engine)
            .cluster(ClusterSpec::aliyun_ecs(3))
            .without_memory_check()
            .faults(FaultPlan::kill(1, 2))
            .build(&ds, &model)
            .unwrap();
        let t0 = Instant::now();
        let err = session.train(5).unwrap_err();
        match err {
            RuntimeError::WorkerFailed { worker, epoch, cause } => {
                assert_eq!(worker, 1, "{}", engine.name());
                assert_eq!(epoch, 2, "{}", engine.name());
                assert_eq!(cause, FailureCause::Killed, "{}", engine.name());
            }
            other => panic!("{}: expected WorkerFailed, got {other:?}", engine.name()),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "{}: failure must surface promptly",
            engine.name()
        );
    }
}

/// With checkpointing every epoch, a kill at epoch 2 rolls back and the
/// run still completes all epochs on the two survivors. From the rollback
/// point on, the recovered run must follow the same loss trajectory as an
/// uninterrupted 2-worker run (same seeds, f32 summation-order tolerance
/// for the epochs trained on three workers before the crash).
#[test]
fn recovery_matches_uninterrupted_surviving_topology() {
    let ds = small_dataset();
    let model = model_for(&ds);
    let epochs = 6;

    let reference = TrainingSession::builder()
        .engine(EngineKind::DepComm)
        .cluster(ClusterSpec::aliyun_ecs(2))
        .build(&ds, &model)
        .unwrap()
        .train(epochs)
        .unwrap();

    let recovered = TrainingSession::builder()
        .engine(EngineKind::DepComm)
        .cluster(ClusterSpec::aliyun_ecs(3))
        .faults(FaultPlan::kill(1, 2))
        .recovery(RecoveryConfig::every(1))
        .build(&ds, &model)
        .unwrap()
        .train(epochs)
        .unwrap();

    assert_eq!(recovered.epochs.len(), epochs, "recovered run must finish");
    assert_eq!(recovered.recoveries, vec![(1, 2, "DepComm".to_string())]);
    for (a, b) in reference.epochs.iter().zip(recovered.epochs.iter()) {
        // Worker counts only change float summation order, so the
        // 3-worker prefix agrees with the 2-worker reference to f32
        // tolerance and the post-recovery epochs run on an identical
        // topology.
        assert!(
            (a.loss - b.loss).abs() < 3e-3 * a.loss.abs().max(1.0),
            "epoch {}: reference {} vs recovered {}",
            a.epoch,
            a.loss,
            b.loss
        );
    }
    assert!(
        recovered.final_loss() < recovered.epochs[0].loss,
        "recovered run must keep learning"
    );
}

/// Recovery survives losing two workers (two separate kills) as long as
/// the restart budget allows, ending on a single survivor.
#[test]
fn recovery_survives_consecutive_kills() {
    let ds = small_dataset();
    let model = model_for(&ds);
    let faults = FaultPlan::kill(2, 1).with_fault(ns_net::fault::Fault::Kill {
        worker: 1,
        epoch: 3,
    });
    let report = TrainingSession::builder()
        .engine(EngineKind::DepComm)
        .cluster(ClusterSpec::aliyun_ecs(3))
        .faults(faults)
        .recovery(RecoveryConfig::every(1))
        .build(&ds, &model)
        .unwrap()
        .train(5)
        .unwrap();
    assert_eq!(report.epochs.len(), 5);
    assert_eq!(report.recoveries.len(), 2);
}

/// When the restart budget is exhausted the original failure surfaces.
#[test]
fn restart_budget_exhaustion_surfaces_failure() {
    let ds = small_dataset();
    let model = model_for(&ds);
    let faults = FaultPlan::kill(2, 1).with_fault(ns_net::fault::Fault::Kill {
        worker: 1,
        epoch: 3,
    });
    let err = TrainingSession::builder()
        .engine(EngineKind::DepComm)
        .cluster(ClusterSpec::aliyun_ecs(3))
        .faults(faults)
        .recovery(RecoveryConfig { max_restarts: 1, ..RecoveryConfig::every(1) })
        .build(&ds, &model)
        .unwrap()
        .train(5)
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::WorkerFailed { worker: 1, epoch: 3, .. }),
        "unexpected: {err:?}"
    );
}

//! Zero-allocation steady state (DESIGN.md §14).
//!
//! GNN training is shape-stationary, so after warmup every tensor buffer
//! the trainer needs has already been through the pool: warm epochs must
//! be served entirely from recycled buffers. These tests run a warmup
//! training pass, snapshot the pool counters, run a measured pass of the
//! same shape, and assert the measured pass allocated **zero** fresh
//! pool-managed buffers — the property the `alloc.steady_state` meter
//! exports (sub-cache-line scalars are metered separately as `bypass`;
//! they never reach the pool by design).

use std::sync::Mutex;

use neutronstar::prelude::*;
use neutronstar::tensor::pool;
use ns_graph::datasets::by_name;

/// Pool counters and `ns_par::set_threads` are process-global; serialize.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn train_once(epochs: usize) -> TrainingReport {
    let ds = by_name("cora").unwrap().materialize(0.25, 11);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    TrainingSession::builder()
        .engine(EngineKind::DepComm)
        .cluster(ClusterSpec::aliyun_ecs(3))
        .threads(2)
        .build(&ds, &model)
        .expect("build")
        .train(epochs)
        .expect("train")
}

#[test]
fn warm_training_pass_allocates_zero_fresh_tensor_buffers() {
    let _g = serial();
    // Warmup: 3 epochs populate the pool with every shape the trainer
    // materializes (forward/backward tensors, gradients, optimizer state,
    // message staging and all-reduce buffers).
    let warm = train_once(3);
    drop(warm); // release held tensors back to the pool
    // Reuse depends on drop-before-take ordering across worker threads,
    // so the per-shape concurrent-liveness high-water is a function of
    // scheduling: an unlucky interleaving can ask for a shape a moment
    // before its previous instance is recycled and materialize a few
    // fresh buffers even though the pool already saw the shape. Those
    // buffers are then parked, so the pool *converges*: the steady-state
    // property is that some warm pass allocates exactly zero, not that
    // the first one wins every race. Assert convergence within a few
    // passes and that the total raced-in allocation stays negligible.
    let mut deltas = Vec::new();
    for _ in 0..4 {
        let before = pool::stats();
        let report = train_once(3);
        drop(report);
        let after = pool::stats();
        assert!(
            after.reused > before.reused,
            "measured pass must actually exercise the pool"
        );
        deltas.push(after.fresh - before.fresh);
        if *deltas.last().unwrap() == 0 {
            break;
        }
    }
    assert_eq!(
        *deltas.last().unwrap(),
        0,
        "steady-state epochs must converge to fully recycled service \
         (fresh-buffer deltas per pass: {deltas:?})"
    );
    let raced: u64 = deltas.iter().sum();
    assert!(
        raced <= 8,
        "losing a drop/take race explains a few fresh buffers, not {raced} \
         (deltas per pass: {deltas:?})"
    );
}

#[test]
fn steady_state_meter_reports_zero_after_warmup() {
    let _g = serial();
    // Single run, long enough that the first epochs absorb all fresh
    // allocation: the exported meter is the *final* epoch's fresh count.
    // Subject to the same drop/take scheduling race as the test above, so
    // one losing run earns a retry against a now-deeper pool.
    let mut report = train_once(4);
    if report.metrics.total_counter("alloc.steady_state") != 0 {
        report = train_once(4);
    }
    assert_eq!(
        report.metrics.total_counter("alloc.steady_state"),
        0,
        "final-epoch fresh allocations must be zero"
    );
    assert!(report.metrics.total_counter("alloc.reused") > 0);
    assert!(report.metrics.total_counter("net.encode.frames") > 0);
    assert!(report.metrics.total_counter("net.encode.bytes") > 0);
}

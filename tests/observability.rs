//! Observability acceptance tests: a metered 4-worker hybrid run produces
//! machine-parseable JSON and Chrome-trace artifacts, its per-kind /
//! per-peer traffic counters partition the fabric totals exactly, and the
//! all-reduce traffic matches the analytic ring formula — keeping the
//! hand-rolled sink writers and the fabric metering honest against a real
//! JSON parser and against arithmetic they do not share.

use neutronstar::metrics::{to_chrome_trace, to_json, Phase};
use neutronstar::prelude::*;
use ns_graph::datasets::by_name;
use ns_net::fabric::ALLREDUCE_HEADER_BYTES;
use ns_net::KIND_NAMES;

const WORKERS: usize = 4;
const EPOCHS: usize = 2;

fn metered_run() -> TrainingReport {
    let ds = by_name("cora").unwrap().materialize(0.2, 7);
    let model =
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
    TrainingSession::builder()
        .engine(EngineKind::Hybrid)
        .cluster(ClusterSpec::aliyun_ecs(WORKERS))
        .build(&ds, &model)
        .expect("plan")
        .train(EPOCHS)
        .expect("train")
}

#[test]
fn frames_cover_every_worker_and_phase_times_fit_the_wall() {
    let report = metered_run();
    let run = &report.metrics;
    assert_eq!(run.worker_ids(), (0..WORKERS).collect::<Vec<_>>());
    assert!(run.wall_s > 0.0);
    for frame in run.frames.values() {
        for phase in
            [Phase::FwdCompute, Phase::BwdCompute, Phase::SyncWait, Phase::OptStep]
        {
            assert!(
                frame.phase_total_ns(phase) > 0,
                "worker {} spent no time in {phase:?}",
                frame.worker
            );
        }
        assert!(!frame.spans.is_empty());
        // Phases are disjoint segments of the worker's run, so their sum
        // must fit inside the run's wall time (generous scheduler slack).
        let phase_sum_s: f64 =
            frame.phase_ns.values().map(|&ns| ns as f64 / 1e9).sum();
        assert!(
            phase_sum_s <= run.wall_s * 1.25 + 0.05,
            "worker {}: phase sum {phase_sum_s:.4}s exceeds wall {:.4}s",
            frame.worker,
            run.wall_s
        );
        // Both model layers were split into graph-op vs NN-op time.
        assert_eq!(frame.layer_split.len(), 2);
    }
}

#[test]
fn per_kind_and_per_peer_counters_partition_the_totals() {
    let report = metered_run();
    for frame in report.metrics.frames.values() {
        for unit in ["bytes", "msgs"] {
            let total = frame.counter(&format!("net.sent.{unit}"));
            assert!(total > 0, "worker {} sent nothing", frame.worker);
            let by_kind: u64 = KIND_NAMES
                .iter()
                .map(|k| frame.counter(&format!("net.sent.{unit}.{k}")))
                .sum();
            assert_eq!(by_kind, total, "worker {} {unit} by kind", frame.worker);
            let by_peer: u64 = (0..WORKERS)
                .map(|p| frame.counter(&format!("net.sent.{unit}.peer{p}")))
                .sum();
            assert_eq!(by_peer, total, "worker {} {unit} by peer", frame.worker);
        }
        // Every received dependency row was metered as local, cached, or
        // fetched — never silently unaccounted.
        assert!(
            frame.counter("dep.rows.local") > 0,
            "worker {} metered no local rows",
            frame.worker
        );
    }
}

/// Ring all-reduce moves each of the P gradient elements (m - 1) times in
/// the reduce-scatter phase and (m - 1) times in the all-gather phase, in
/// 2(m - 1) messages per worker per epoch. The fabric's byte meter must
/// land on that closed form exactly.
#[test]
fn allreduce_traffic_matches_the_ring_closed_form() {
    let report = metered_run();
    let p: usize = report.final_params.iter().map(|(_, _, t)| t.len()).sum();
    let run = &report.metrics;
    let msgs = run.total_counter("net.sent.msgs.allreduce");
    assert_eq!(msgs, (WORKERS * 2 * (WORKERS - 1) * EPOCHS) as u64);
    let payload = (2 * (WORKERS - 1) * p * EPOCHS * std::mem::size_of::<f32>()) as u64;
    assert_eq!(
        run.total_counter("net.sent.bytes.allreduce"),
        msgs * ALLREDUCE_HEADER_BYTES + payload
    );
}

#[test]
fn json_sink_parses_and_mirrors_the_frames() {
    let report = metered_run();
    let v: serde_json::Value =
        serde_json::from_str(&to_json(&report.metrics)).expect("valid JSON");
    assert_eq!(v["schema"].as_str(), Some("ns-metrics/v1"));
    assert!(v["wall_s"].as_f64().unwrap() > 0.0);
    let workers = v["workers"].as_array().expect("workers array");
    assert_eq!(workers.len(), WORKERS, "no coordinator without recovery");
    for (frame, entry) in report.metrics.frames.values().zip(workers) {
        assert_eq!(entry["worker"].as_u64(), Some(frame.worker as u64));
        assert_eq!(
            entry["counters"]["net.sent.bytes"].as_u64(),
            Some(frame.counter("net.sent.bytes"))
        );
        assert!(!entry["phases"].as_array().unwrap().is_empty());
        assert_eq!(entry["layers"].as_array().unwrap().len(), 2);
        let wait = &entry["histograms"]["net.recv.wait_ns"];
        assert!(wait["count"].as_u64().unwrap() > 0);
        assert!(wait["p99"].as_u64().unwrap() >= wait["p50"].as_u64().unwrap());
    }
}

#[test]
fn trace_sink_is_perfetto_shaped_with_one_track_per_worker() {
    let report = metered_run();
    let v: serde_json::Value =
        serde_json::from_str(&to_chrome_trace(&report.metrics)).expect("valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents");

    // One named real-clock track per worker, none missing, none extra.
    let mut tracks: Vec<String> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M"))
        .filter(|e| e["name"].as_str() == Some("thread_name"))
        .filter(|e| e["pid"].as_u64() == Some(0))
        .map(|e| e["args"]["name"].as_str().unwrap().to_string())
        .collect();
    tracks.sort();
    let expect: Vec<String> = (0..WORKERS).map(|w| format!("worker {w}")).collect();
    assert_eq!(tracks, expect);

    // Every retained span became exactly one complete event on its track.
    let real_events: Vec<_> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X"))
        .filter(|e| e["pid"].as_u64() == Some(0))
        .collect();
    let retained: usize =
        report.metrics.frames.values().map(|f| f.spans.len()).sum();
    assert_eq!(real_events.len(), retained);
    for e in &real_events {
        assert!(e["ts"].as_f64().unwrap() >= 0.0);
        assert!(e["dur"].as_f64().unwrap() >= 0.0);
    }

    // The simulator timeline rides along as a second process.
    assert!(!report.metrics.sim_spans.is_empty());
    assert!(events.iter().any(|e| e["pid"].as_u64() == Some(1)));
}

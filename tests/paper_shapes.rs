//! Regression tests for the *shapes* of the paper's findings: who wins,
//! in which regime, and in which direction each factor pushes. These are
//! the claims the reproduction exists to check, pinned as tests so they
//! cannot silently rot.

use neutronstar::prelude::*;
use ns_baselines::{roc_like_config, DistDglConfig, DistDglLike};
use ns_graph::datasets::by_name;
use ns_runtime::{Trainer, TrainerConfig};

fn load(name: &str, scale: f64) -> Dataset {
    by_name(name).unwrap().materialize(scale, 42)
}

fn gcn(ds: &Dataset, hidden: usize) -> GnnModel {
    GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), hidden, ds.num_classes, 42)
}

fn epoch_time(
    ds: &Dataset,
    model: &GnnModel,
    engine: EngineKind,
    cluster: ClusterSpec,
    opts: ExecOptions,
) -> f64 {
    let mut cfg = TrainerConfig::new(engine, cluster);
    cfg.opts = opts;
    cfg.enforce_memory = false;
    Trainer::prepare(ds, model, cfg).unwrap().simulate_epoch().epoch_seconds
}

/// Fig. 2(a): dense graphs favor DepComm, sparse graphs favor DepCache.
#[test]
fn fig2a_graph_inputs_flip_the_winner() {
    let ecs = ClusterSpec::aliyun_ecs(8);
    let raw = ExecOptions::none();

    let google = load("google", 0.01);
    let mg = gcn(&google, 256);
    let g_cache = epoch_time(&google, &mg, EngineKind::DepCache, ecs.clone(), raw);
    let g_comm = epoch_time(&google, &mg, EngineKind::DepComm, ecs.clone(), raw);
    assert!(g_cache < g_comm, "google: DepCache must win ({g_cache} vs {g_comm})");

    let reddit = load("reddit", 0.002);
    let mr = gcn(&reddit, 256);
    let r_cache = epoch_time(&reddit, &mr, EngineKind::DepCache, ecs.clone(), raw);
    let r_comm = epoch_time(&reddit, &mr, EngineKind::DepComm, ecs, raw);
    assert!(r_comm < r_cache, "reddit: DepComm must win ({r_comm} vs {r_cache})");
}

/// Fig. 2(b): widening the hidden layer pushes toward DepCache.
#[test]
fn fig2b_hidden_size_pushes_toward_depcache() {
    let ecs = ClusterSpec::aliyun_ecs(8);
    let raw = ExecOptions::none();
    let google = load("google", 0.01);
    let ratio = |hidden: usize| {
        let m = gcn(&google, hidden);
        epoch_time(&google, &m, EngineKind::DepComm, ecs.clone(), raw)
            / epoch_time(&google, &m, EngineKind::DepCache, ecs.clone(), raw)
    };
    let narrow = ratio(64);
    let wide = ratio(640);
    assert!(
        wide > narrow,
        "wider hidden must favor DepCache more: {narrow} -> {wide}"
    );
}

/// Fig. 2(c): a 100 Gb/s fabric flips Google from DepCache to DepComm.
#[test]
fn fig2c_fast_network_flips_to_depcomm() {
    let raw = ExecOptions::none();
    let google = load("google", 0.01);
    let m = gcn(&google, 256);
    let ecs_ratio = epoch_time(&google, &m, EngineKind::DepComm, ClusterSpec::aliyun_ecs(8), raw)
        / epoch_time(&google, &m, EngineKind::DepCache, ClusterSpec::aliyun_ecs(8), raw);
    let ibv_ratio = epoch_time(&google, &m, EngineKind::DepComm, ClusterSpec::ibv(8), raw)
        / epoch_time(&google, &m, EngineKind::DepCache, ClusterSpec::ibv(8), raw);
    assert!(ecs_ratio > 1.0, "ECS: DepCache wins ({ecs_ratio})");
    assert!(ibv_ratio < 1.0, "IBV: DepComm wins ({ibv_ratio})");
}

/// Fig. 9: Hybrid is at least as fast as both pure engines, and each
/// optimization (R, L, P) never hurts.
#[test]
fn fig9_hybrid_and_optimizations_stack() {
    let ecs = ClusterSpec::aliyun_ecs(8);
    let ds = load("pokec", 0.002);
    let m = gcn(&ds, ds.hidden_dim);
    let raw = ExecOptions::none();
    let cache = epoch_time(&ds, &m, EngineKind::DepCache, ecs.clone(), raw);
    let comm = epoch_time(&ds, &m, EngineKind::DepComm, ecs.clone(), raw);
    let hybrid = epoch_time(&ds, &m, EngineKind::Hybrid, ecs.clone(), raw);
    assert!(hybrid <= cache * 1.02, "hybrid {hybrid} vs cache {cache}");
    assert!(hybrid <= comm * 1.02, "hybrid {hybrid} vs comm {comm}");

    let r = epoch_time(
        &ds, &m, EngineKind::Hybrid, ecs.clone(),
        ExecOptions { ring: true, lock_free: false, overlap: false },
    );
    let rl = epoch_time(
        &ds, &m, EngineKind::Hybrid, ecs.clone(),
        ExecOptions { ring: true, lock_free: true, overlap: false },
    );
    let rlp = epoch_time(&ds, &m, EngineKind::Hybrid, ecs, ExecOptions::all());
    assert!(r <= hybrid * 1.001, "ring should not hurt: {hybrid} -> {r}");
    assert!(rl <= r * 1.001, "lock-free should not hurt: {r} -> {rl}");
    assert!(rlp <= rl * 1.001, "overlap should not hurt: {rl} -> {rlp}");
}

/// §5.3/§5.5: ROC's whole-block communication loses to chunked DepComm
/// and scales worse with cluster size.
#[test]
fn roc_like_loses_and_scales_poorly() {
    let ds = load("pokec", 0.002);
    let m = gcn(&ds, ds.hidden_dim);
    let time_roc = |w: usize| {
        let mut cfg = roc_like_config(ClusterSpec::aliyun_ecs(w));
        cfg.enforce_memory = false;
        Trainer::prepare(&ds, &m, cfg).unwrap().simulate_epoch().epoch_seconds
    };
    let time_nts = |w: usize| {
        epoch_time(&ds, &m, EngineKind::Hybrid, ClusterSpec::aliyun_ecs(w), ExecOptions::all())
    };
    assert!(time_roc(4) > time_nts(4), "NTS must beat ROC at 4 workers");
    // ROC gets *worse* beyond 4 nodes (whole blocks to more peers).
    assert!(time_roc(16) > time_roc(4), "ROC must degrade from 4 to 16");
    // NTS improves.
    assert!(time_nts(16) < time_nts(4), "NTS must improve from 4 to 16");
}

/// Fig. 13: GPU-utilization ordering — DepCache > Hybrid > DepComm, and
/// DistDGL below full-graph Hybrid.
#[test]
fn fig13_utilization_ordering() {
    let ecs = ClusterSpec::aliyun_ecs(8);
    let ds = load("orkut", 0.0008);
    let m = gcn(&ds, ds.hidden_dim);
    let util = |engine: EngineKind| {
        let mut cfg = TrainerConfig::new(engine, ecs.clone());
        cfg.enforce_memory = false;
        Trainer::prepare(&ds, &m, cfg).unwrap().simulate_epoch().device_utilization
    };
    let cache = util(EngineKind::DepCache);
    let comm = util(EngineKind::DepComm);
    let hybrid = util(EngineKind::Hybrid);
    assert!(cache > hybrid, "DepCache util {cache} must exceed Hybrid {hybrid}");
    assert!(hybrid > comm, "Hybrid util {hybrid} must exceed DepComm {comm}");

    let dgl = DistDglLike::new(&ds, &m, ecs, DistDglConfig::default()).train(1);
    assert!(
        dgl.device_utilization < cache,
        "DistDGL util {} must be below DepCache {cache}",
        dgl.device_utilization
    );
}

/// Fig. 14: sampling's accuracy ceiling sits below full-graph training.
#[test]
fn fig14_sampling_accuracy_ceiling_is_lower() {
    let ds = load("reddit", 0.0015);
    let m = gcn(&ds, 64);
    let full = TrainingSession::builder()
        .engine(EngineKind::Hybrid)
        .cluster(ClusterSpec::aliyun_ecs(4))
        .without_memory_check()
        .build(&ds, &m)
        .unwrap()
        .train(50)
        .unwrap();
    let full_best = full.epochs.iter().map(|e| e.test_acc).fold(0.0, f64::max);

    let dgl = DistDglLike::new(
        &ds,
        &m,
        ClusterSpec::aliyun_ecs(4),
        DistDglConfig { fanouts: (3, 3), batch_size: 64, ..Default::default() },
    )
    .train(50);
    let dgl_best = dgl.epochs.iter().map(|e| e.test_acc).fold(0.0, f64::max);
    assert!(
        full_best >= dgl_best,
        "full-graph best {full_best} must be >= sampled best {dgl_best}"
    );
    assert!(full_best > 0.55, "full-graph training must learn ({full_best})");
}

//! The reproduction's keystone invariant: DepCache, DepComm, and Hybrid
//! are *the same computation* executed under different dependency
//! treatments. Per-epoch losses and accuracies must agree — across
//! engines, worker counts, partitioners, models, and forced cache ratios
//! — up to float summation order.

use neutronstar::prelude::*;
use ns_graph::datasets::by_name;
use ns_runtime::HybridConfig;

fn small_dataset(seed: u64) -> Dataset {
    by_name("cora").unwrap().materialize(0.25, seed)
}

fn run(
    ds: &Dataset,
    model: &GnnModel,
    engine: EngineKind,
    workers: usize,
    partitioner: Partitioner,
    ratio: Option<f64>,
    epochs: usize,
) -> TrainingReport {
    TrainingSession::builder()
        .engine(engine)
        .partitioner(partitioner)
        .cluster(ClusterSpec::aliyun_ecs(workers))
        .hybrid(HybridConfig { ratio_override: ratio, ..Default::default() })
        .without_memory_check()
        .build(ds, model)
        .expect("build")
        .train(epochs)
        .expect("train")
}

fn assert_close_runs(a: &TrainingReport, b: &TrainingReport, what: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (ea, eb) in a.epochs.iter().zip(b.epochs.iter()) {
        let tol = 2e-3 * ea.loss.abs().max(1.0);
        assert!(
            (ea.loss - eb.loss).abs() < tol,
            "{what}: epoch {} loss {} vs {}",
            ea.epoch,
            ea.loss,
            eb.loss
        );
    }
}

#[test]
fn engines_match_single_machine_reference() {
    let ds = small_dataset(3);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    let reference = run(&ds, &model, EngineKind::DepComm, 1, Partitioner::Chunk, None, 4);
    for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
        let distributed = run(&ds, &model, engine, 4, Partitioner::Chunk, None, 4);
        assert_close_runs(&reference, &distributed, engine.name());
    }
}

#[test]
fn equivalence_holds_for_every_model_kind() {
    let ds = small_dataset(4);
    for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat] {
        let model = GnnModel::two_layer(kind, ds.feature_dim(), 12, ds.num_classes, 5);
        let cache = run(&ds, &model, EngineKind::DepCache, 3, Partitioner::Chunk, None, 3);
        let comm = run(&ds, &model, EngineKind::DepComm, 3, Partitioner::Chunk, None, 3);
        assert_close_runs(&cache, &comm, kind.name());
    }
}

#[test]
fn equivalence_holds_under_every_partitioner() {
    let ds = small_dataset(5);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    let reference = run(&ds, &model, EngineKind::DepComm, 1, Partitioner::Chunk, None, 3);
    for p in [Partitioner::Chunk, Partitioner::MetisLike, Partitioner::Fennel] {
        let hybrid = run(&ds, &model, EngineKind::Hybrid, 4, p, None, 3);
        assert_close_runs(&reference, &hybrid, p.name());
    }
}

#[test]
fn equivalence_holds_for_any_forced_cache_ratio() {
    let ds = small_dataset(6);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    let reference = run(&ds, &model, EngineKind::DepComm, 2, Partitioner::Chunk, None, 3);
    for ratio in [0.0, 0.3, 0.7, 1.0] {
        let mixed = run(&ds, &model, EngineKind::Hybrid, 2, Partitioner::Chunk, Some(ratio), 3);
        assert_close_runs(&reference, &mixed, &format!("ratio {ratio}"));
    }
}

#[test]
fn worker_count_does_not_change_numerics() {
    let ds = small_dataset(7);
    let model = GnnModel::two_layer(ModelKind::Gin, ds.feature_dim(), 12, ds.num_classes, 5);
    let runs: Vec<TrainingReport> = [1usize, 2, 3, 5]
        .iter()
        .map(|&m| run(&ds, &model, EngineKind::Hybrid, m, Partitioner::Chunk, None, 3))
        .collect();
    for r in &runs[1..] {
        assert_close_runs(&runs[0], r, &format!("{} workers", r.workers));
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let ds = small_dataset(8);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    let a = run(&ds, &model, EngineKind::Hybrid, 3, Partitioner::Chunk, None, 3);
    let b = run(&ds, &model, EngineKind::Hybrid, 3, Partitioner::Chunk, None, 3);
    for (ea, eb) in a.epochs.iter().zip(b.epochs.iter()) {
        assert_eq!(ea.loss, eb.loss, "bitwise deterministic");
        assert_eq!(ea.train_acc, eb.train_acc);
    }
}

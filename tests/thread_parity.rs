//! `--threads` must be a pure wall-clock knob: the intra-worker parallel
//! kernels are partitioned by destination row (DESIGN.md §11), so a run
//! at any thread count is *bit-identical* — same per-epoch losses, same
//! trained parameters, byte-for-byte the same checkpoint. DepComm is the
//! engine under test because its plans do not depend on the probed cost
//! factors (which `--threads` deliberately rescales for Algorithm 4).

use std::sync::Mutex;

use neutronstar::prelude::*;
use neutronstar::tensor::checkpoint;
use ns_graph::datasets::by_name;

/// `ns_par::set_threads` is process-global; serialize the tests that
/// retune it so a concurrent test cannot retune mid-run.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn train_with_threads(threads: usize, epochs: usize) -> (TrainingReport, Vec<u8>) {
    let ds = by_name("cora").unwrap().materialize(0.25, 11);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 5);
    let report = TrainingSession::builder()
        .engine(EngineKind::DepComm)
        .cluster(ClusterSpec::aliyun_ecs(3))
        .threads(threads)
        .build(&ds, &model)
        .expect("build")
        .train(epochs)
        .expect("train");
    let mut bytes = Vec::new();
    checkpoint::save(&report.final_params, &mut bytes).expect("serialize checkpoint");
    (report, bytes)
}

#[test]
fn one_thread_and_four_threads_are_bit_identical() {
    let _g = serial();
    let (seq, seq_ckpt) = train_with_threads(1, 2);
    let (par, par_ckpt) = train_with_threads(4, 2);

    assert_eq!(seq.epochs.len(), par.epochs.len());
    for (a, b) in seq.epochs.iter().zip(par.epochs.iter()) {
        assert_eq!(a.loss, b.loss, "epoch {} loss must match bitwise", a.epoch);
        assert_eq!(a.train_acc, b.train_acc);
        assert_eq!(a.val_acc, b.val_acc);
        assert_eq!(a.test_acc, b.test_acc);
    }
    assert_eq!(seq_ckpt, par_ckpt, "checkpoint bytes must be identical");
}

#[test]
fn parallel_run_actually_engages_the_pool() {
    let _g = serial();
    let (par, _) = train_with_threads(4, 1);
    // Each of the 3 workers records the configured thread count once.
    assert_eq!(par.metrics.total_counter("compute.threads"), 3 * 4);
    // The lock-free enqueue path moved every dependency row.
    assert!(par.metrics.total_counter("net.enqueue.rows") > 0);
}

//! Property-based tests over random graphs and configurations: plan
//! invariants, simulator bounds, partitioner covers, and hybrid-split
//! disjointness.

use proptest::prelude::*;

use ns_graph::generate::{erdos_renyi, rmat};
use ns_graph::{CsrGraph, Partitioner};
use ns_net::sim::{simulate, TaskGraph};
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::cost::probe;
use ns_runtime::hybrid::{partition_dependencies, HybridConfig};
use ns_runtime::plan::{build_plans, validate_plans, DepDecision};
use ns_gnn::{GnnModel, ModelKind};

prop_compose! {
    fn graph_strategy()(n in 64usize..400, m_factor in 2usize..10, seed in 0u64..1000, skewed: bool) -> CsrGraph {
        let m = n * m_factor;
        let edges = if skewed {
            rmat(n, m, (0.57, 0.19, 0.19), seed)
        } else {
            erdos_renyi(n, m, seed)
        };
        CsrGraph::from_edges(n, &edges, true)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitioners always produce an exact cover of the vertex set.
    #[test]
    fn partitioners_cover_exactly(g in graph_strategy(), parts in 1usize..8) {
        for p in [Partitioner::Chunk, Partitioner::MetisLike, Partitioner::Fennel] {
            let part = p.partition(&g, parts);
            prop_assert_eq!(part.part_sizes().iter().sum::<usize>(), g.num_vertices());
            let mut all: Vec<u32> = (0..parts).flat_map(|i| part.part_vertices(i)).collect();
            all.sort_unstable();
            prop_assert_eq!(all.len(), g.num_vertices());
            prop_assert!(all.windows(2).all(|w| w[0] < w[1]), "no duplicates");
        }
    }

    /// Every dependency decision compiles into a structurally valid plan
    /// (validated invariants: exact input-row cover, send/recv symmetry,
    /// full edge coverage, owned-everywhere).
    #[test]
    fn plans_are_valid_for_all_decisions(
        g in graph_strategy(),
        parts in 1usize..6,
        layers in 1usize..4,
    ) {
        let part = Partitioner::Chunk.partition(&g, parts);
        for d in [DepDecision::CacheAll, DepDecision::CommAll] {
            let plans = build_plans(&g, &part, layers, &d).unwrap();
            prop_assert!(validate_plans(&g, &part, &plans).is_ok());
        }
    }

    /// Hybrid's dependency split is a disjoint cover: every remote dep of
    /// every layer is either cached or communicated, never both, and the
    /// resulting plan is valid.
    #[test]
    fn hybrid_split_is_disjoint_cover(g in graph_strategy(), parts in 2usize..6) {
        let part = Partitioner::Chunk.partition(&g, parts);
        let cluster = ClusterSpec::aliyun_ecs(parts);
        let model = GnnModel::two_layer(ModelKind::Gcn, 16, 8, 4, 1);
        let costs = probe(&model, &cluster);
        let (decision, info) = partition_dependencies(
            &g, &part, model.dims(), &costs, 1.0,
            cluster.device.mem_bytes, &HybridConfig::default(),
        ).unwrap();
        // Counted totals must equal the closure dependency counts.
        let plans = build_plans(&g, &part, 2, &decision).unwrap();
        prop_assert!(validate_plans(&g, &part, &plans).is_ok());
        prop_assert!(info.total_cached() + info.total_comm() > 0 || part.edge_cut(&g) == 0);
    }

    /// Simulator sanity: makespan is at least the longest single task and
    /// at most the fully serialized sum of all work.
    #[test]
    fn simulator_bounds(
        n_tasks in 1usize..40,
        workers in 1usize..6,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let spec = ClusterSpec::aliyun_ecs(workers);
        let mut g = TaskGraph::new();
        let mut prev = None;
        let mut max_single = 0.0f64;
        let mut serial_sum = 0.0f64;
        for _ in 0..n_tasks {
            let kind: u8 = rng.random_range(0..3);
            let chain: bool = rng.random();
            let deps = if chain { prev.into_iter().collect() } else { vec![] };
            let t = match kind {
                0 => {
                    let flops = rng.random_range(1_000_000u64..500_000_000);
                    let d = spec.compute_seconds(flops) + spec.device.launch_overhead_s;
                    max_single = max_single.max(d);
                    serial_sum += d;
                    g.compute(rng.random_range(0..workers), flops, deps)
                }
                1 => {
                    let flops = rng.random_range(1_000_000u64..100_000_000);
                    let d = spec.sparse_compute_seconds(flops) + spec.device.launch_overhead_s;
                    max_single = max_single.max(d);
                    serial_sum += d;
                    g.compute_sparse(rng.random_range(0..workers), flops, deps)
                }
                _ => {
                    let bytes = rng.random_range(1_000u64..5_000_000);
                    let src = rng.random_range(0..workers);
                    let dst = rng.random_range(0..workers);
                    // Egress + ingress + latency + enqueue; allow incast
                    // inflation in the upper bound.
                    let d = 2.0 * spec.wire_seconds(bytes) * (1.0 + spec.net.incast_penalty * n_tasks as f64)
                        + spec.net.latency_s
                        + bytes as f64 / spec.net.enqueue_lockfree_bps;
                    max_single = max_single.max(
                        2.0 * spec.wire_seconds(bytes) + spec.net.latency_s,
                    );
                    serial_sum += d;
                    g.send(src, dst, bytes, deps)
                }
            };
            prev = Some(t);
        }
        let report = simulate(&g, &spec, &ExecOptions::all());
        prop_assert!(report.makespan >= max_single * 0.999,
            "makespan {} below longest task {}", report.makespan, max_single);
        prop_assert!(report.makespan <= serial_sum * 1.001 + 1e-9,
            "makespan {} above serial sum {}", report.makespan, serial_sum);
    }

    /// DepCache plans never receive anything; DepComm plans never
    /// replicate anything — for arbitrary graphs and worker counts.
    #[test]
    fn engine_plan_extremes(g in graph_strategy(), parts in 1usize..6, layers in 1usize..3) {
        let part = Partitioner::Chunk.partition(&g, parts);
        let cache = build_plans(&g, &part, layers, &DepDecision::CacheAll).unwrap();
        for p in &cache {
            prop_assert_eq!(p.forward_comm_rows(), 0);
        }
        let comm = build_plans(&g, &part, layers, &DepDecision::CommAll).unwrap();
        for p in &comm {
            prop_assert_eq!(p.replica_slots(), 0);
            prop_assert_eq!(p.prefetched_features(), 0);
        }
    }
}

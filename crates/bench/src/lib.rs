//! Shared support for the figure/table regenerator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5) on scaled-down synthetic stand-ins of the
//! published datasets. Absolute times are not comparable to the paper's
//! (different substrate, ~100-1000x smaller graphs); the *shape* — which
//! system wins, by roughly what factor, where crossovers fall — is the
//! reproduction target, recorded in `EXPERIMENTS.md`.
//!
//! Results are printed as tables and also written as JSON under
//! `results/` (override with the `NS_RESULTS_DIR` environment variable).

use std::path::PathBuf;

use ns_gnn::{GnnModel, ModelKind};
use ns_graph::{Dataset, Partitioner};
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::exec::SyncMode;
use ns_runtime::trainer::{SimSummary, Trainer, TrainerConfig};
use ns_runtime::{EngineKind, HybridConfig, RuntimeError};

/// Standard materialization scale per dataset: small enough for quick
/// iteration, large enough (1e5-ish edges) that partition structure is
/// meaningful. One seed everywhere for comparability.
pub fn bench_scale(name: &str) -> f64 {
    match name {
        "google" => 0.02,
        "pokec" => 0.005,
        "livejournal" => 0.002,
        "reddit" => 0.002,
        "orkut" => 0.001,
        "wikilink" => 0.0003,
        "twitter" => 0.0001,
        _ => 1.0, // citation graphs run at full size
    }
}

/// Seed used by all benchmarks.
pub const SEED: u64 = 42;

/// Materializes the standard bench instance of a dataset.
pub fn dataset(name: &str) -> Dataset {
    ns_graph::datasets::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .materialize(bench_scale(name), SEED)
}

/// Builds the paper's 2-layer model for a dataset (Table 2 hidden dim).
pub fn model_for(ds: &Dataset, kind: ModelKind) -> GnnModel {
    GnnModel::two_layer(kind, ds.feature_dim(), ds.hidden_dim, ds.num_classes, SEED)
}

/// Same but with an explicit hidden dimension (Fig. 2b).
pub fn model_with_hidden(ds: &Dataset, kind: ModelKind, hidden: usize) -> GnnModel {
    GnnModel::two_layer(kind, ds.feature_dim(), hidden, ds.num_classes, SEED)
}

/// One fully-specified simulation configuration.
pub struct RunSpec<'a> {
    /// Dataset instance.
    pub dataset: &'a Dataset,
    /// Model.
    pub model: &'a GnnModel,
    /// Engine.
    pub engine: EngineKind,
    /// Cluster.
    pub cluster: ClusterSpec,
    /// Optimization toggles.
    pub opts: ExecOptions,
    /// Partitioner.
    pub partitioner: Partitioner,
    /// Hybrid ratio override (Fig. 11).
    pub ratio: Option<f64>,
    /// ROC-like whole-block broadcast.
    pub broadcast: bool,
    /// Gradient synchronization mode.
    pub sync: SyncMode,
    /// Enforce the device-memory projection.
    pub enforce_memory: bool,
}

impl<'a> RunSpec<'a> {
    /// Default spec: all optimizations, chunk partitioning, memory
    /// enforced.
    pub fn new(
        dataset: &'a Dataset,
        model: &'a GnnModel,
        engine: EngineKind,
        cluster: ClusterSpec,
    ) -> Self {
        Self {
            dataset,
            model,
            engine,
            cluster,
            opts: ExecOptions::all(),
            partitioner: Partitioner::Chunk,
            ratio: None,
            broadcast: false,
            sync: SyncMode::AllReduce,
            enforce_memory: true,
        }
    }

    /// Disable all system optimizations ("raw" engines in Fig. 9).
    pub fn raw(mut self) -> Self {
        self.opts = ExecOptions::none();
        self
    }

    /// Set specific optimization toggles.
    pub fn opts(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Use a specific partitioner.
    pub fn partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Force a cached-dependency ratio (Hybrid engine only).
    pub fn ratio(mut self, r: f64) -> Self {
        self.ratio = Some(r);
        self
    }

    /// ROC-like whole-block broadcast.
    pub fn broadcast(mut self) -> Self {
        self.broadcast = true;
        self
    }

    /// Use the given gradient synchronization mode.
    pub fn sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Skip the memory projection check.
    pub fn no_memory_check(mut self) -> Self {
        self.enforce_memory = false;
        self
    }

    fn trainer_config(&self) -> TrainerConfig {
        let mut cfg = TrainerConfig::new(self.engine, self.cluster.clone());
        cfg.partitioner = self.partitioner;
        cfg.opts = self.opts;
        cfg.hybrid = HybridConfig { ratio_override: self.ratio, ..Default::default() };
        cfg.broadcast_full_partition = self.broadcast;
        cfg.sync = self.sync;
        cfg.enforce_memory = self.enforce_memory;
        cfg
    }

    /// Prepares the trainer.
    pub fn prepare(&self) -> Result<Trainer<'a>, RuntimeError> {
        Trainer::prepare(self.dataset, self.model, self.trainer_config())
    }

    /// Simulated per-epoch seconds (or an OOM / config error).
    pub fn epoch_seconds(&self) -> Result<f64, RuntimeError> {
        Ok(self.prepare()?.simulate_epoch().epoch_seconds)
    }

    /// Full simulation summary.
    pub fn simulate(&self) -> Result<SimSummary, RuntimeError> {
        Ok(self.prepare()?.simulate_epoch())
    }
}

/// Formats a cell: time in seconds, `OOM`, or `-` for unsupported.
pub fn cell(r: &Result<f64, RuntimeError>) -> String {
    match r {
        Ok(t) => format!("{:.4}", t),
        Err(RuntimeError::DeviceOom { .. }) => "OOM".to_string(),
        Err(_) => "-".to_string(),
    }
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(headers.iter().map(|s| s.to_string()).collect()));
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Directory for JSON result artifacts.
pub fn results_dir() -> PathBuf {
    std::env::var_os("NS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a JSON artifact for one experiment id (e.g. `fig09`).
pub fn save_json(id: &str, value: &serde_json::Value) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value).unwrap())
        .expect("write results json");
    println!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_cover_all_registry_names() {
        for spec in ns_graph::datasets::registry() {
            let s = bench_scale(spec.name);
            assert!(s > 0.0 && s <= 1.0, "{}", spec.name);
        }
    }

    #[test]
    fn cell_formats_all_outcomes() {
        assert_eq!(cell(&Ok(1.5)), "1.5000");
        let oom: Result<f64, RuntimeError> = Err(RuntimeError::DeviceOom {
            what: "x".into(),
            needed_bytes: 2,
            limit_bytes: 1,
        });
        assert_eq!(cell(&oom), "OOM");
        let other: Result<f64, RuntimeError> =
            Err(RuntimeError::InvalidConfig("nope".into()));
        assert_eq!(cell(&other), "-");
    }

    #[test]
    fn runspec_simulates_quickly_on_tiny_instance() {
        let ds = ns_graph::datasets::by_name("cora").unwrap().materialize(0.3, SEED);
        let m = model_with_hidden(&ds, ModelKind::Gcn, 16);
        let spec = RunSpec::new(&ds, &m, EngineKind::DepComm, ClusterSpec::aliyun_ecs(4));
        assert!(spec.epoch_seconds().unwrap() > 0.0);
    }
}

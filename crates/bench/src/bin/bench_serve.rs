//! Serving benchmark: open-loop latency/throughput sweep over the
//! `nts serve` deployment, plus a shard-loss fault run proving graceful
//! degradation (answers slow down, nothing is dropped).
//!
//! The pipeline is the full operator path: train a model with a durable
//! checkpoint store, load the newest generation back through
//! `CheckpointStore::load_latest`, stand up the sharded deployment, and
//! drive it with the seeded open-loop generator at a ladder of offered
//! rates. Latency is measured from each query's *scheduled* arrival
//! (coordinated-omission-free), so queueing delay at saturation shows up
//! in the percentiles instead of silently stretching the schedule.
//!
//! Writes `BENCH_serve.json` (override with `--out <path>`):
//!
//! ```text
//! {"schema":"bench-serve/v1",
//!  "dataset":"cora","queries_per_rate":10000,
//!  "runs":[{"rate_qps":500.0,"answered":...,"p50_us":...,"p999_us":...}],
//!  "saturation_qps":...,
//!  "fault_run":{"killed_shard":2,"dropped":0,"reroutes":...},
//!  "flap_run":{"fault":"flap:w1-w2:400ms:0.5","hedge_wins":...,"dropped":0}}
//! ```
//!
//! `--quick` shrinks query counts and the rate ladder for CI smoke runs.
//! Absolute latencies depend on the host; the assertable invariants are
//! zero rejects at the lowest rate, zero drops everywhere, and a finite
//! p999 at every rung.

use std::time::Instant;

use ns_gnn::{GnnModel, ModelKind};
use ns_graph::datasets::by_name;
use ns_net::fault::FaultPlan;
use ns_runtime::serve::load::OpenLoop;
use ns_runtime::serve::ServeReport;
use ns_runtime::{CheckpointStore, RecoveryConfig, ServeConfig, ServeDeployment};
use neutronstar::TrainingSession;
use serde_json::json;

const SEED: u64 = 42;
const DATASET: &str = "cora";
const SCALE: f64 = 0.2;
const SHARDS: usize = 2;
const TRAIN_EPOCHS: usize = 4;

fn run_json(rate_qps: f64, r: &ServeReport) -> serde_json::Value {
    json!({
        "rate_qps": rate_qps,
        "queries": r.offered,
        "answered": r.answers.len(),
        "rejects": r.rejected,
        "dropped": r.dropped,
        "achieved_qps": r.achieved_qps,
        "p50_us": r.percentile_us(50.0),
        "p99_us": r.percentile_us(99.0),
        "p999_us": r.percentile_us(99.9),
        "cache_hit_ratio": r.cache_hit_ratio(),
        "shard_deaths": r.shard_deaths,
        "reroutes": r.reroutes,
        "hedge_issued": r.metrics.total_counter("serve.hedge.issued"),
        "hedge_wins": r.metrics.total_counter("serve.hedge.wins"),
        "fetch_fallback_rows": r.metrics.total_counter("serve.rows.fallback"),
    })
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("usage: bench_serve [--quick] [--out <path>] ({other:?}?)");
                std::process::exit(2);
            }
        }
    }
    let (queries, rates): (usize, &[f64]) = if quick {
        (1_000, &[500.0, 2_000.0])
    } else {
        (10_000, &[500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0])
    };

    // ---- train a checkpoint through the durable store ------------------
    let ds = by_name(DATASET).expect("registry dataset").materialize(SCALE, SEED);
    let model = GnnModel::two_layer(
        ModelKind::Gcn,
        ds.feature_dim(),
        ds.hidden_dim,
        ds.num_classes,
        SEED,
    );
    let ckpt_dir = std::env::temp_dir()
        .join(format!("bench-serve-{}-{}", SEED, std::process::id()));
    let t0 = Instant::now();
    let session = TrainingSession::builder()
        .recovery(RecoveryConfig::every(2))
        .checkpoint_dir(&ckpt_dir)
        .build(&ds, &model)
        .expect("build session");
    session.train(TRAIN_EPOCHS).expect("train");
    println!(
        "trained {DATASET} x{} for {TRAIN_EPOCHS} epochs in {:.1}s, store at {}",
        ds.graph.num_vertices(),
        t0.elapsed().as_secs_f64(),
        ckpt_dir.display()
    );

    // ---- load it back the way an operator would ------------------------
    let store = CheckpointStore::open(&ckpt_dir, 3).expect("open store");
    let loaded = store.load_latest();
    let ckpt = loaded.checkpoint.expect("an intact generation");
    let (params, _) = ckpt.restore().expect("restore");
    let params = params.expect("trained parameters");

    let cfg = |fault: FaultPlan| ServeConfig {
        shards: SHARDS,
        fault,
        ..ServeConfig::default()
    };

    // ---- rate sweep ----------------------------------------------------
    let mut runs = Vec::new();
    let mut saturation_qps = 0.0f64;
    println!(
        "{:>9} {:>9} {:>8} {:>8} {:>10} {:>10} {:>10} {:>7}",
        "rate", "answered", "rejects", "dropped", "p50_us", "p99_us", "p999_us", "hit%"
    );
    for &rate in rates {
        let deploy = ServeDeployment::new(&ds, &model, params.clone(), cfg(FaultPlan::default()))
            .expect("deployment");
        let load = OpenLoop { queries, rate_qps: rate, seed: SEED, zipf_s: 0.9 };
        let r = deploy.run_open_loop(&load).expect("serve run");
        assert_eq!(r.dropped, 0, "open-loop run dropped queries at {rate} qps");
        saturation_qps = saturation_qps.max(r.achieved_qps);
        println!(
            "{:>9.0} {:>9} {:>8} {:>8} {:>10} {:>10} {:>10} {:>6.1}%",
            rate,
            r.answers.len(),
            r.rejected,
            r.dropped,
            r.percentile_us(50.0),
            r.percentile_us(99.0),
            r.percentile_us(99.9),
            r.cache_hit_ratio() * 100.0,
        );
        runs.push(run_json(rate, &r));
    }

    // ---- shard-loss degradation run ------------------------------------
    // Kill the shard at endpoint 2 a quarter of the way through; its
    // in-flight queries reroute to the survivor and later queries route
    // around the hole. The invariant is zero drops, not zero slowdown.
    let killed_shard = 2usize;
    let fault_queries = queries.min(2_000);
    let mut plan = FaultPlan::default().with_seed(SEED);
    plan.push_spec(&format!("kill:w{killed_shard}@e{}", fault_queries / 4))
        .expect("fault spec");
    let mut fcfg = cfg(plan);
    fcfg.reply_timeout_ms = 150;
    let deploy =
        ServeDeployment::new(&ds, &model, params.clone(), fcfg).expect("deployment");
    let load =
        OpenLoop { queries: fault_queries, rate_qps: 1_000.0, seed: SEED, zipf_s: 0.9 };
    let fr = deploy.run_open_loop(&load).expect("fault run");
    assert_eq!(fr.dropped, 0, "shard loss dropped queries");
    assert_eq!(fr.shard_deaths, 1, "kill fault did not fire");
    println!(
        "fault run: killed shard {killed_shard} after qid {} | answered {} | \
         rerouted {} | dropped {} | p99 {} µs",
        fault_queries / 4,
        fr.answers.len(),
        fr.reroutes,
        fr.dropped,
        fr.percentile_us(99.0),
    );

    // ---- flapping-link degradation run ---------------------------------
    // Flap the shard-to-shard feature-fetch link (400ms period, down half
    // of each period). With the row cache disabled every batch needs a
    // remote fetch, so the hedged-fetch path is on the hot path: fetches
    // that land in a down-window hedge to the mirror copy and the mirror
    // wins. The invariants are zero drops and hedge wins > 0.
    let mut plan = FaultPlan::default().with_seed(SEED);
    plan.push_spec("flap:w1-w2:400ms:0.5").expect("fault spec");
    let mut lcfg = cfg(plan);
    lcfg.cache_rows = 0;
    let deploy =
        ServeDeployment::new(&ds, &model, params.clone(), lcfg).expect("deployment");
    let load =
        OpenLoop { queries: fault_queries, rate_qps: 1_000.0, seed: SEED, zipf_s: 0.9 };
    let lr = deploy.run_open_loop(&load).expect("flap run");
    let hedge_issued = lr.metrics.total_counter("serve.hedge.issued");
    let hedge_wins = lr.metrics.total_counter("serve.hedge.wins");
    let fallback_rows = lr.metrics.total_counter("serve.rows.fallback");
    assert_eq!(lr.dropped, 0, "flapping link dropped admitted queries");
    assert!(hedge_wins > 0, "no hedge beat the flapped link");
    println!(
        "flap run: w1-w2 flapping 400ms/0.5 | answered {} | hedges {hedge_issued} \
         issued / {hedge_wins} won | {fallback_rows} mirror rows | dropped {} | p99 {} µs",
        lr.answers.len(),
        lr.dropped,
        lr.percentile_us(99.0),
    );
    let flap_run = json!({
        "fault": "flap:w1-w2:400ms:0.5",
        "rate_qps": 1_000.0,
        "queries": fault_queries,
        "answered": lr.answers.len(),
        "dropped": lr.dropped,
        "rejects": lr.rejected,
        "hedge_issued": hedge_issued,
        "hedge_wins": hedge_wins,
        "fetch_fallback_rows": fallback_rows,
        "p50_us": lr.percentile_us(50.0),
        "p99_us": lr.percentile_us(99.0),
        "p999_us": lr.percentile_us(99.9),
    });

    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let fault_run = json!({
        "killed_shard": killed_shard,
        "kill_after_qid": fault_queries / 4,
        "rate_qps": 1_000.0,
        "queries": fault_queries,
        "answered": fr.answers.len(),
        "dropped": fr.dropped,
        "rejects": fr.rejected,
        "reroutes": fr.reroutes,
        "shard_deaths": fr.shard_deaths,
        "p50_us": fr.percentile_us(50.0),
        "p99_us": fr.percentile_us(99.0),
        "p999_us": fr.percentile_us(99.9),
    });
    let doc = json!({
        "schema": "bench-serve/v1",
        "dataset": DATASET,
        "scale": SCALE,
        "shards": SHARDS,
        "zipf_s": 0.9,
        "seed": SEED,
        "queries_per_rate": queries,
        "runs": runs,
        "saturation_qps": saturation_qps,
        "fault_run": fault_run,
        "flap_run": flap_run,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("[saved {out}]");
}

//! Figure 13 — GPU / network-send / ingress utilization traces during GCN
//! training on Orkut (ECS-16), for DistDGL-like, ROC-like, DepCache,
//! DepComm, and Hybrid.
//!
//! Paper shape: DepCache pegs the GPU (~99%) via redundant work; Hybrid
//! (~60%) > DepComm (~40%) > ROC (~10%) thanks to overlap; DistDGL is
//! lowest (~11%, sampler-bound) while using the most bandwidth.

use bench::{dataset, model_for, print_table, save_json, RunSpec};
use ns_baselines::{DistDglConfig, DistDglLike};
use ns_gnn::ModelKind;
use ns_net::sim::ResourceKind;
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::{utilization_trace, EngineKind};
use serde_json::json;

const BUCKETS: usize = 20;

fn main() {
    let cluster = ClusterSpec::aliyun_ecs(16);
    let ds = dataset("orkut");
    let model = model_for(&ds, ModelKind::Gcn);
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    let mut record = |system: &str,
                      device: f64,
                      nic_out: f64,
                      bytes_per_s: f64,
                      device_series: Vec<f64>| {
        rows.push(vec![
            system.to_string(),
            format!("{:.1}%", device * 100.0),
            format!("{:.1}%", nic_out * 100.0),
            format!("{:.2} MB/s", bytes_per_s / 1e6),
        ]);
        artifacts.push(json!({
            "system": system,
            "device_util": device,
            "nic_util": nic_out,
            "bytes_per_second": bytes_per_s,
            "device_series": device_series,
        }));
    };

    for (label, engine, opts, broadcast) in [
        ("DepCache", EngineKind::DepCache, ExecOptions::all(), false),
        ("DepComm", EngineKind::DepComm, ExecOptions::all(), false),
        ("Hybrid", EngineKind::Hybrid, ExecOptions::all(), false),
        ("ROC", EngineKind::DepComm, ExecOptions::none(), true),
    ] {
        let mut spec = RunSpec::new(&ds, &model, engine, cluster.clone())
            .opts(opts)
            .no_memory_check();
        if broadcast {
            spec = spec.broadcast();
        }
        let sim = spec.simulate().expect("simulate");
        let end = sim.report.makespan;
        // Worker 0's device utilization over the epoch window.
        let series = utilization_trace(&sim.report, 0, ResourceKind::Device, BUCKETS);
        let bytes_per_s = sim.bytes_per_epoch as f64 / end / cluster.workers as f64;
        record(label, sim.device_utilization, sim.nic_utilization, bytes_per_s, series);
    }

    // DistDGL-like: serialized fetch->train loop; flat utilization derived
    // from its pipeline model.
    let dgl = DistDglLike::new(&ds, &model, cluster.clone(), DistDglConfig::default());
    let report = dgl.train(1);
    let series = vec![report.device_utilization; BUCKETS];
    let bytes_per_s =
        report.bytes_per_epoch as f64 / report.epoch_seconds / cluster.workers as f64;
    record(
        "DistDGL",
        report.device_utilization,
        (report.fetch_seconds / report.epoch_seconds).min(1.0),
        bytes_per_s,
        series,
    );

    print_table(
        "Fig 13: utilization during GCN on Orkut (ECS-16), per-epoch window",
        &["system", "GPU util", "NIC util", "net recv"],
        &rows,
    );
    save_json("fig13", &json!(artifacts));
}

//! Table 3 — cost and benefit of Hybrid processing: 100-epoch runtime of
//! DepCache / DepComm / Hybrid (GCN, ECS-16) plus the one-time hybrid
//! dependency-partitioning overhead ("Preprocessing").
//!
//! Paper shape: Hybrid beats both pure engines on every graph;
//! preprocessing is at most ~3% of the hybrid 100-epoch runtime.

use bench::{cell, dataset, model_for, print_table, save_json, RunSpec};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use ns_runtime::EngineKind;
use serde_json::json;

/// Nominal traversal rate for the preprocessing cost (pointer-chasing on
/// the host CPU).
const PREPROC_OPS_PER_SECOND: f64 = 300e6;

fn main() {
    let cluster = ClusterSpec::aliyun_ecs(16);
    let graphs = ["google", "pokec", "livejournal", "reddit", "orkut", "wikilink", "twitter"];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    for name in graphs {
        let ds = dataset(name);
        let model = model_for(&ds, ModelKind::Gcn);
        let epoch100 = |engine| {
            RunSpec::new(&ds, &model, engine, cluster.clone())
                .no_memory_check()
                .epoch_seconds()
                .map(|t| t * 100.0)
        };
        let cache = epoch100(EngineKind::DepCache);
        let comm = epoch100(EngineKind::DepComm);
        let trainer = RunSpec::new(&ds, &model, EngineKind::Hybrid, cluster.clone())
            .no_memory_check()
            .prepare()
            .expect("hybrid prepare");
        let hybrid = trainer.simulate_epoch().epoch_seconds * 100.0;
        let report = trainer.train(0).expect("plan stats");
        let info = report.plan.hybrid.expect("hybrid info");
        let preproc = info.preprocessing_seconds(PREPROC_OPS_PER_SECOND);

        rows.push(vec![
            name.to_string(),
            cell(&cache),
            cell(&comm),
            format!("{:.4}", hybrid),
            format!("+{:.4}", preproc),
            format!("{:.2}%", 100.0 * preproc / hybrid),
            format!("{:.2}", info.cached_fraction()),
        ]);
        artifacts.push(json!({
            "graph": name,
            "depcache_100ep_s": cache.as_ref().ok(),
            "depcomm_100ep_s": comm.as_ref().ok(),
            "hybrid_100ep_s": hybrid,
            "preprocessing_s": preproc,
            "preprocessing_pct": 100.0 * preproc / hybrid,
            "cached_fraction": info.cached_fraction(),
        }));
    }

    print_table(
        "Table 3: 100-epoch runtime + hybrid preprocessing (GCN, ECS-16)",
        &["graph", "DepCache", "DepComm", "Hybrid", "Preproc", "overhead", "cached"],
        &rows,
    );
    save_json("table03", &json!(artifacts));
}

//! Table 5 — single-GPU comparison on small graphs: ROC-like, DGL-like,
//! PyG-like, and NTS running GCN and GAT on Cora, Citeseer, Pubmed, and
//! Google.
//!
//! Paper shape: NTS is comparable with DGL/PyG on the citation graphs
//! (PyG fastest on the smallest), 1.96–5.18x over ROC on GCN; ROC lacks
//! GAT; DGL and PyG OOM on Google while NTS completes.

use bench::{dataset, model_for, print_table, save_json};
use ns_baselines::{shared_memory_row, SharedMemorySystem, SysResult};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use serde_json::json;

fn main() {
    let gpu = ClusterSpec::aliyun_ecs(1);
    let graphs = ["cora", "citeseer", "pubmed", "google"];
    let systems = [
        SharedMemorySystem::RocSingle,
        SharedMemorySystem::DglLike,
        SharedMemorySystem::PygLike,
        SharedMemorySystem::Nts,
    ];
    let mut artifacts = Vec::new();

    for kind in [ModelKind::Gcn, ModelKind::Gat] {
        let mut rows = Vec::new();
        for sys in systems {
            let mut row = vec![sys.name().to_string()];
            for name in graphs {
                let ds = dataset(name);
                let model = model_for(&ds, kind);
                // ROC has no edge-NN support and cannot run GAT.
                let result = if sys == SharedMemorySystem::RocSingle && kind == ModelKind::Gat
                {
                    None
                } else {
                    Some(shared_memory_row(sys, &ds, &model, &gpu))
                };
                row.push(match &result {
                    Some(SysResult::Time(t)) => format!("{:.2}ms", t * 1e3),
                    Some(SysResult::Oom) => "OOM".to_string(),
                    None => "-".to_string(),
                });
                artifacts.push(json!({
                    "model": kind.name(), "system": sys.name(), "graph": name,
                    "ms": match result {
                        Some(SysResult::Time(t)) => Some(t * 1e3),
                        _ => None,
                    },
                    "oom": matches!(result, Some(SysResult::Oom)),
                }));
            }
            rows.push(row);
        }
        print_table(
            &format!("Table 5 ({}): single GPU, per-epoch time", kind.name()),
            &["system", "cora", "citeseer", "pubmed", "google"],
            &rows,
        );
    }
    save_json("table05", &json!(artifacts));
}

//! Table 2 — dataset registry: published statistics and the properties of
//! the scaled synthetic stand-ins this reproduction materializes.

use bench::{bench_scale, print_table, save_json, SEED};
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for spec in ns_graph::datasets::registry() {
        let scale = bench_scale(spec.name);
        let ds = spec.materialize(scale, SEED);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.2}M", spec.vertices as f64 / 1e6),
            format!("{:.1}M", spec.edges as f64 / 1e6),
            spec.feature_dim.to_string(),
            spec.num_classes.to_string(),
            format!("{:.2}", spec.avg_degree()),
            spec.hidden_dim.to_string(),
            format!("{scale}"),
            ds.graph.num_vertices().to_string(),
            ds.graph.num_edges().to_string(),
            format!("{:.2}", ds.graph.avg_degree()),
        ]);
        artifacts.push(json!({
            "name": spec.name,
            "paper": {
                "vertices": spec.vertices, "edges": spec.edges,
                "feature_dim": spec.feature_dim, "classes": spec.num_classes,
                "avg_degree": spec.avg_degree(), "hidden_dim": spec.hidden_dim,
            },
            "materialized": {
                "scale": scale,
                "vertices": ds.graph.num_vertices(),
                "edges": ds.graph.num_edges(),
                "avg_degree": ds.graph.avg_degree(),
            },
        }));
    }
    print_table(
        "Table 2: datasets (paper stats | materialized stand-ins)",
        &[
            "dataset", "|V|", "|E|", "ftr", "#L", "deg", "hid", "scale", "V'", "E'",
            "deg'",
        ],
        &rows,
    );
    save_json("table02", &json!(artifacts));
}

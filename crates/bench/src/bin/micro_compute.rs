//! Microbenchmark of the intra-worker parallel compute backend (`ns-par`):
//! the register-tiled matmul, the fused CSR aggregation, the row gather,
//! the lock-free parallel message enqueue, and the zero-copy NSF1 frame
//! encode, each timed at 1/2/4/8 compute threads.
//!
//! Writes `BENCH_compute.json` (override with `--out <path>`):
//!
//! ```text
//! {"schema":"bench-compute/v2",
//!  "cores":1,
//!  "results":[{"op":"matmul","size":"4096x256x256","threads":4,
//!              "ns_per_iter":...,"gflops":...,"bytes_per_s":...,
//!              "baseline_ns_per_iter":...}]}
//! ```
//!
//! `baseline_ns_per_iter` carries the committed bench-compute/v1 numbers
//! (recorded on the same 1-core reference box, pre-tiling), so every row's
//! speedup is self-describing; `cores` records the core count the run saw,
//! letting CI skip regression gating on differently-sized machines.
//! `--quick` shrinks the shapes and iteration counts for CI smoke runs.
//! Speedups across the `threads` axis are only meaningful on a machine
//! with that many physical cores; the kernels are bit-identical at every
//! thread count either way (see `ns-tensor/tests/par_parity.rs`), so the
//! numbers here are purely about wall clock.

use std::time::Instant;

use ns_net::wire;
use ns_net::{MessageKind, ParallelEnqueue};
use ns_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Committed bench-compute/v1 numbers (1-core reference box, naive
/// kernels): the denominators that make the regenerated file's speedups
/// self-describing. Ops added in v2 have no baseline.
const V1_BASELINE: [(&str, usize, u64); 12] = [
    ("matmul", 1, 40_778_023),
    ("matmul", 2, 38_241_696),
    ("matmul", 4, 36_573_332),
    ("matmul", 8, 37_508_439),
    ("csr_aggregate", 1, 11_146_744),
    ("csr_aggregate", 2, 11_203_398),
    ("csr_aggregate", 4, 8_618_276),
    ("csr_aggregate", 8, 9_562_962),
    ("enqueue", 1, 1_853_644),
    ("enqueue", 2, 1_790_254),
    ("enqueue", 4, 1_642_817),
    ("enqueue", 8, 1_604_861),
];

fn baseline_for(op: &str, threads: usize) -> Option<u64> {
    V1_BASELINE
        .iter()
        .find(|(o, t, _)| *o == op && *t == threads)
        .map(|&(_, _, ns)| ns)
}

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.random_range(-1.0..1.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Times `f` over `iters` iterations (after one untimed warmup call) and
/// returns nanoseconds per iteration.
fn time_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / iters as u128) as u64
}

struct Row {
    op: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: u64,
    /// FLOPs one iteration performs (0 = pure data movement).
    flops: u64,
    /// Bytes one iteration moves (reads + writes of the payload data).
    bytes: u64,
}

impl Row {
    fn gflops(&self) -> Option<f64> {
        (self.flops > 0).then(|| self.flops as f64 / self.ns_per_iter.max(1) as f64)
    }

    fn bytes_per_s(&self) -> f64 {
        self.bytes as f64 * 1e9 / self.ns_per_iter.max(1) as f64
    }
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_compute.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("usage: micro_compute [--quick] [--out <path>] ({other:?}?)");
                std::process::exit(2);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(42);
    let mut rows: Vec<Row> = Vec::new();

    // Register-tiled dense matmul (the dominant per-layer kernel).
    let (n, k, m, mm_iters) = if quick { (512, 128, 128, 4) } else { (4096, 256, 256, 8) };
    let a = rand_tensor(&mut rng, n, k);
    let b = rand_tensor(&mut rng, k, m);
    let mm_size = format!("{n}x{k}x{m}");
    let mm_flops = 2 * (n * k * m) as u64;
    let mm_bytes = 4 * (n * k + k * m + n * m) as u64;

    // Fused CSR aggregation (weighted sum over a fixed-degree edge list).
    let (n_dst, deg, d, agg_iters) = if quick { (4096, 4, 32, 8) } else { (32768, 8, 64, 16) };
    let feats = rand_tensor(&mut rng, n_dst, d);
    let mut offsets = Vec::with_capacity(n_dst + 1);
    offsets.push(0usize);
    let mut edge_src = Vec::with_capacity(n_dst * deg);
    for _ in 0..n_dst {
        for _ in 0..deg {
            edge_src.push(rng.random_range(0..n_dst as u32));
        }
        offsets.push(edge_src.len());
    }
    let weights: Vec<f32> = (0..edge_src.len()).map(|_| rng.random_range(0.1..1.0)).collect();
    let agg_size = format!("{n_dst}v x{deg}deg x{d}");
    let edges = edge_src.len() as u64;
    let agg_flops = 2 * edges * d as u64;
    let agg_bytes = 4 * (edges * d as u64 + (n_dst * d) as u64) + 8 * edges;

    // Row gather (dependency-row assembly on both ends of the exchange).
    let (g_rows, g_cols, g_iters) = if quick { (4096, 32, 8) } else { (32768, 64, 16) };
    let g_src = rand_tensor(&mut rng, g_rows, g_cols);
    let g_idx: Vec<u32> = (0..g_rows).map(|_| rng.random_range(0..g_rows as u32)).collect();
    let gather_size = format!("{g_rows}r x{g_cols}");
    let gather_bytes = (g_idx.len() * g_cols * 8 + g_idx.len() * 4) as u64;

    // Lock-free parallel enqueue: gather rows of a feature block into
    // per-destination chunk buffers, staging storage served by the tensor
    // pool and recycled after the send — the exact production send path
    // of `ns-runtime` (the warmup iteration populates the pool, so
    // measured iterations run at the zero-alloc steady state).
    let (dests, slots, cols, enq_iters) = if quick { (4, 1024, 32, 8) } else { (4, 8192, 64, 16) };
    let total = dests * slots;
    let src = rand_tensor(&mut rng, total, cols);
    let per_dest: Vec<Vec<u32>> = (0..dests)
        .map(|dst| (0..slots).map(|i| ((i * dests + dst) % total) as u32).collect())
        .collect();
    let slot_counts: Vec<usize> = vec![slots; dests];
    let enq_size = format!("{dests}dst x{slots} x{cols}");
    let enq_bytes = (total * cols * 8) as u64;

    // Zero-copy NSF1 frame encode (the fabric send path's serialization:
    // header reserved up front, payload written in place, CRC patched).
    let (enc_rows, enc_cols, enc_iters) = if quick { (512, 32, 16) } else { (4096, 64, 32) };
    let enc_kind = MessageKind::Rows {
        layer: 1,
        ids: (0..enc_rows as u32).collect(),
        cols: enc_cols as u32,
        data: (0..enc_rows * enc_cols).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
    };
    let mut enc_buf = Vec::new();
    wire::encode_frame_into(&enc_kind, &mut enc_buf);
    let enc_size = format!("{enc_rows}r x{enc_cols}");
    let enc_bytes = enc_buf.len() as u64;

    for &t in &THREAD_COUNTS {
        ns_par::set_threads(t);
        let threads = ns_par::threads();

        rows.push(Row {
            op: "matmul",
            size: mm_size.clone(),
            threads,
            ns_per_iter: time_ns(mm_iters, || {
                std::hint::black_box(a.matmul(&b));
            }),
            flops: mm_flops,
            bytes: mm_bytes,
        });
        rows.push(Row {
            op: "csr_aggregate",
            size: agg_size.clone(),
            threads,
            ns_per_iter: time_ns(agg_iters, || {
                std::hint::black_box(feats.weighted_aggregate(
                    &edge_src,
                    &offsets,
                    Some(&weights),
                ));
            }),
            flops: agg_flops,
            bytes: agg_bytes,
        });
        rows.push(Row {
            op: "gather_rows",
            size: gather_size.clone(),
            threads,
            ns_per_iter: time_ns(g_iters, || {
                std::hint::black_box(g_src.gather_rows(&g_idx));
            }),
            flops: 0,
            bytes: gather_bytes,
        });
        rows.push(Row {
            op: "enqueue",
            size: enq_size.clone(),
            threads,
            ns_per_iter: time_ns(enq_iters, || {
                let views: Vec<&[u32]> = per_dest.iter().map(|r| &r[..]).collect();
                let mut enq =
                    ParallelEnqueue::new_with(cols, &slot_counts, ns_tensor::pool::take_scratch);
                enq.fill(src.data(), &views);
                for d in 0..dests {
                    ns_tensor::pool::recycle(enq.take(d));
                }
                std::hint::black_box(&enq);
            }),
            flops: 0,
            bytes: enq_bytes,
        });
        rows.push(Row {
            op: "encode_frame",
            size: enc_size.clone(),
            threads,
            ns_per_iter: time_ns(enc_iters, || {
                wire::encode_frame_into(&enc_kind, &mut enc_buf);
                std::hint::black_box(&enc_buf);
            }),
            flops: 0,
            bytes: enc_bytes,
        });
    }
    ns_par::set_threads(0);

    println!(
        "{:<14} {:<16} {:>7} {:>14} {:>8} {:>8} {:>9}",
        "op", "size", "threads", "ns/iter", "GFLOP/s", "GB/s", "vs v1"
    );
    for r in &rows {
        let gf = r.gflops().map_or("-".into(), |g| format!("{g:.1}"));
        let vs = baseline_for(r.op, r.threads)
            .map_or("-".into(), |b| format!("{:.2}x", b as f64 / r.ns_per_iter.max(1) as f64));
        println!(
            "{:<14} {:<16} {:>7} {:>14} {:>8} {:>8.2} {:>9}",
            r.op,
            r.size,
            r.threads,
            r.ns_per_iter,
            gf,
            r.bytes_per_s() / 1e9,
            vs,
        );
    }

    let results: Vec<_> = rows
        .iter()
        .map(|r| {
            json!({
                "op": r.op,
                "size": r.size.clone(),
                "threads": r.threads,
                "ns_per_iter": r.ns_per_iter,
                "gflops": r.gflops(),
                "bytes_per_s": r.bytes_per_s(),
                "baseline_ns_per_iter": baseline_for(r.op, r.threads),
            })
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let doc = json!({ "schema": "bench-compute/v2", "cores": cores, "results": results });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("[saved {out}]");
}

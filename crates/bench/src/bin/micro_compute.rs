//! Microbenchmark of the intra-worker parallel compute backend (`ns-par`):
//! the row-blocked matmul, the fused CSR aggregation, and the lock-free
//! parallel message enqueue, each timed at 1/2/4/8 compute threads.
//!
//! Writes `BENCH_compute.json` (override with `--out <path>`):
//!
//! ```text
//! {"schema":"bench-compute/v1",
//!  "results":[{"op":"matmul","size":"4096x256x256","threads":4,"ns_per_iter":...}]}
//! ```
//!
//! `--quick` shrinks the shapes and iteration counts for CI smoke runs.
//! Speedups are only meaningful on a machine with that many physical
//! cores; the kernels are bit-identical at every thread count either way
//! (see `ns-tensor/tests/par_parity.rs`), so the numbers here are purely
//! about wall clock.

use std::time::Instant;

use ns_net::ParallelEnqueue;
use ns_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.random_range(-1.0..1.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Times `f` over `iters` iterations (after one untimed warmup call) and
/// returns nanoseconds per iteration.
fn time_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / iters as u128) as u64
}

struct Row {
    op: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: u64,
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_compute.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("usage: micro_compute [--quick] [--out <path>] ({other:?}?)");
                std::process::exit(2);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(42);
    let mut rows: Vec<Row> = Vec::new();

    // Row-blocked dense matmul (the dominant per-layer kernel).
    let (n, k, m, mm_iters) = if quick { (512, 128, 128, 4) } else { (4096, 256, 256, 3) };
    let a = rand_tensor(&mut rng, n, k);
    let b = rand_tensor(&mut rng, k, m);
    let mm_size = format!("{n}x{k}x{m}");

    // Fused CSR aggregation (weighted sum over a fixed-degree edge list).
    let (n_dst, deg, d, agg_iters) = if quick { (4096, 4, 32, 8) } else { (32768, 8, 64, 16) };
    let feats = rand_tensor(&mut rng, n_dst, d);
    let mut offsets = Vec::with_capacity(n_dst + 1);
    offsets.push(0usize);
    let mut edge_src = Vec::with_capacity(n_dst * deg);
    for _ in 0..n_dst {
        for _ in 0..deg {
            edge_src.push(rng.random_range(0..n_dst as u32));
        }
        offsets.push(edge_src.len());
    }
    let weights: Vec<f32> = (0..edge_src.len()).map(|_| rng.random_range(0.1..1.0)).collect();
    let agg_size = format!("{n_dst}v x{deg}deg x{d}");

    // Lock-free parallel enqueue: gather rows of a feature block into
    // per-destination chunk buffers (the send path of `ns-runtime`).
    let (dests, slots, cols, enq_iters) = if quick { (4, 1024, 32, 8) } else { (4, 8192, 64, 16) };
    let total = dests * slots;
    let src = rand_tensor(&mut rng, total, cols);
    let per_dest: Vec<Vec<u32>> = (0..dests)
        .map(|dst| (0..slots).map(|i| ((i * dests + dst) % total) as u32).collect())
        .collect();
    let slot_counts: Vec<usize> = vec![slots; dests];
    let enq_size = format!("{dests}dst x{slots} x{cols}");

    for &t in &THREAD_COUNTS {
        ns_par::set_threads(t);
        let threads = ns_par::threads();

        rows.push(Row {
            op: "matmul",
            size: mm_size.clone(),
            threads,
            ns_per_iter: time_ns(mm_iters, || {
                std::hint::black_box(a.matmul(&b));
            }),
        });
        rows.push(Row {
            op: "csr_aggregate",
            size: agg_size.clone(),
            threads,
            ns_per_iter: time_ns(agg_iters, || {
                std::hint::black_box(feats.weighted_aggregate(
                    &edge_src,
                    &offsets,
                    Some(&weights),
                ));
            }),
        });
        rows.push(Row {
            op: "enqueue",
            size: enq_size.clone(),
            threads,
            ns_per_iter: time_ns(enq_iters, || {
                let views: Vec<&[u32]> = per_dest.iter().map(|r| &r[..]).collect();
                let enq = ParallelEnqueue::new(cols, &slot_counts);
                enq.fill(src.data(), &views);
                std::hint::black_box(&enq);
            }),
        });
    }
    ns_par::set_threads(0);

    let base: Vec<(&str, u64)> = rows
        .iter()
        .filter(|r| r.threads == 1)
        .map(|r| (r.op, r.ns_per_iter))
        .collect();
    println!("{:<14} {:<16} {:>7} {:>14} {:>8}", "op", "size", "threads", "ns/iter", "speedup");
    for r in &rows {
        let b1 = base.iter().find(|(op, _)| *op == r.op).map_or(r.ns_per_iter, |&(_, ns)| ns);
        println!(
            "{:<14} {:<16} {:>7} {:>14} {:>7.2}x",
            r.op,
            r.size,
            r.threads,
            r.ns_per_iter,
            b1 as f64 / r.ns_per_iter.max(1) as f64,
        );
    }

    let results: Vec<_> = rows
        .iter()
        .map(|r| {
            json!({
                "op": r.op,
                "size": r.size.clone(),
                "threads": r.threads,
                "ns_per_iter": r.ns_per_iter,
            })
        })
        .collect();
    let doc = json!({ "schema": "bench-compute/v1", "results": results });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("[saved {out}]");
}

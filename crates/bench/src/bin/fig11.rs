//! Figure 11 — runtime vs the ratio of cached to communicated
//! dependencies, with the automatic (Algorithm 4) choice for reference.
//!
//! Paper shape: neither extreme is optimal; the best point mixes both
//! treatments, and caching *all* dependencies OOMs for GAT on Orkut.

use bench::{dataset, model_for, print_table, save_json, RunSpec};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use ns_runtime::{sim_breakdown, EngineKind, RuntimeError};
use serde_json::json;

fn main() {
    let cluster = ClusterSpec::aliyun_ecs(16);
    let cases = [("livejournal", ModelKind::Gcn), ("orkut", ModelKind::Gat)];
    let ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut artifacts = Vec::new();

    for (name, kind) in cases {
        let ds = dataset(name);
        let model = model_for(&ds, kind);
        let mut rows = Vec::new();
        for r in ratios {
            let sim = RunSpec::new(&ds, &model, EngineKind::Hybrid, cluster.clone())
                .ratio(r)
                .simulate();
            match sim {
                Ok(s) => {
                    let b = sim_breakdown(&s.report);
                    rows.push(vec![
                        format!("{:.0}%", r * 100.0),
                        format!("{:.4}", s.epoch_seconds),
                        format!("{:.4}", b.comm_s),
                        format!("{:.4}", b.compute_s),
                    ]);
                    artifacts.push(json!({
                        "case": format!("{}-{}", kind.name(), name),
                        "cached_ratio": r,
                        "epoch_s": s.epoch_seconds,
                        "comm_share_s": b.comm_s,
                    }));
                }
                Err(RuntimeError::DeviceOom { .. }) => {
                    rows.push(vec![
                        format!("{:.0}%", r * 100.0),
                        "OOM".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    artifacts.push(json!({
                        "case": format!("{}-{}", kind.name(), name),
                        "cached_ratio": r,
                        "epoch_s": serde_json::Value::Null,
                        "oom": true,
                    }));
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        // Algorithm 4's automatic point.
        let auto = RunSpec::new(&ds, &model, EngineKind::Hybrid, cluster.clone())
            .prepare()
            .expect("auto hybrid");
        let auto_time = auto.simulate_epoch().epoch_seconds;
        let auto_frac = auto
            .train(0)
            .expect("stats")
            .plan
            .hybrid
            .map(|h| h.cached_fraction())
            .unwrap_or(0.0);
        rows.push(vec![
            format!("auto ({:.0}%)", auto_frac * 100.0),
            format!("{:.4}", auto_time),
            "-".into(),
            "-".into(),
        ]);
        artifacts.push(json!({
            "case": format!("{}-{}", kind.name(), name),
            "cached_ratio": auto_frac,
            "epoch_s": auto_time,
            "auto": true,
        }));
        print_table(
            &format!("Fig 11: {} on {} — cached-ratio sweep (ECS-16)", kind.name(), name),
            &["cached", "epoch(s)", "comm(s)", "compute(s)"],
            &rows,
        );
    }
    save_json("fig11", &json!(artifacts));
}

//! Figure 2 — performance divergence between raw DepCache and DepComm.
//!
//! (a) four graph inputs on the 8-node ECS cluster (GCN, hidden 256);
//! (b) hidden sizes {64, 256, 640} on Google;
//! (c) Google on the ECS cluster vs the 100 Gb/s IBV cluster.
//!
//! Paper shape: DepCache wins on sparse graphs (Google 1.23x,
//! LiveJournal 1.03x), DepComm wins on dense ones (Pokec 1.54x,
//! Reddit 7.76x); wider hidden layers favor DepCache; the fast network
//! flips Google to DepComm (1.41x).

use bench::{cell, dataset, model_with_hidden, print_table, save_json, RunSpec};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use ns_runtime::EngineKind;
use serde_json::json;

fn main() {
    let ecs = ClusterSpec::aliyun_ecs(8);
    let mut artifacts = Vec::new();

    // (a) graph inputs.
    let mut rows = Vec::new();
    for name in ["google", "pokec", "reddit", "livejournal"] {
        let ds = dataset(name);
        let model = model_with_hidden(&ds, ModelKind::Gcn, 256);
        let cache = RunSpec::new(&ds, &model, EngineKind::DepCache, ecs.clone())
            .raw()
            .no_memory_check()
            .epoch_seconds();
        let comm = RunSpec::new(&ds, &model, EngineKind::DepComm, ecs.clone())
            .raw()
            .no_memory_check()
            .epoch_seconds();
        let winner = match (&cache, &comm) {
            (Ok(a), Ok(b)) if a < b => format!("DepCache {:.2}x", b / a),
            (Ok(a), Ok(b)) => format!("DepComm {:.2}x", a / b),
            _ => "-".into(),
        };
        artifacts.push(json!({
            "panel": "a", "graph": name,
            "depcache_s": cache.as_ref().ok(), "depcomm_s": comm.as_ref().ok(),
        }));
        rows.push(vec![name.to_string(), cell(&cache), cell(&comm), winner]);
    }
    print_table(
        "Fig 2(a): DepCache vs DepComm across graphs (GCN, hid 256, ECS-8)",
        &["graph", "DepCache(s)", "DepComm(s)", "winner"],
        &rows,
    );

    // (b) hidden sizes on Google.
    let ds = dataset("google");
    let mut rows = Vec::new();
    for hidden in [64usize, 256, 640] {
        let model = model_with_hidden(&ds, ModelKind::Gcn, hidden);
        let cache = RunSpec::new(&ds, &model, EngineKind::DepCache, ecs.clone())
            .raw()
            .no_memory_check()
            .epoch_seconds();
        let comm = RunSpec::new(&ds, &model, EngineKind::DepComm, ecs.clone())
            .raw()
            .no_memory_check()
            .epoch_seconds();
        let winner = match (&cache, &comm) {
            (Ok(a), Ok(b)) if a < b => format!("DepCache {:.2}x", b / a),
            (Ok(a), Ok(b)) => format!("DepComm {:.2}x", a / b),
            _ => "-".into(),
        };
        artifacts.push(json!({
            "panel": "b", "hidden": hidden,
            "depcache_s": cache.as_ref().ok(), "depcomm_s": comm.as_ref().ok(),
        }));
        rows.push(vec![hidden.to_string(), cell(&cache), cell(&comm), winner]);
    }
    print_table(
        "Fig 2(b): hidden-size sensitivity (GCN on Google, ECS-8)",
        &["hidden", "DepCache(s)", "DepComm(s)", "winner"],
        &rows,
    );

    // (c) cluster environments.
    let model = model_with_hidden(&ds, ModelKind::Gcn, 256);
    let mut rows = Vec::new();
    for cluster in [ClusterSpec::aliyun_ecs(8), ClusterSpec::ibv(8)] {
        let cache = RunSpec::new(&ds, &model, EngineKind::DepCache, cluster.clone())
            .raw()
            .no_memory_check()
            .epoch_seconds();
        let comm = RunSpec::new(&ds, &model, EngineKind::DepComm, cluster.clone())
            .raw()
            .no_memory_check()
            .epoch_seconds();
        let winner = match (&cache, &comm) {
            (Ok(a), Ok(b)) if a < b => format!("DepCache {:.2}x", b / a),
            (Ok(a), Ok(b)) => format!("DepComm {:.2}x", a / b),
            _ => "-".into(),
        };
        artifacts.push(json!({
            "panel": "c", "cluster": cluster.name,
            "depcache_s": cache.as_ref().ok(), "depcomm_s": comm.as_ref().ok(),
        }));
        rows.push(vec![cluster.name.clone(), cell(&cache), cell(&comm), winner]);
    }
    print_table(
        "Fig 2(c): cluster sensitivity (GCN on Google, hid 256)",
        &["cluster", "DepCache(s)", "DepComm(s)", "winner"],
        &rows,
    );

    save_json("fig02", &json!(artifacts));
}

//! Figure 10 — overall per-epoch comparison: DistDGL-like, ROC-like,
//! DepCache, DepComm (all optimizations), and NeutronStar (Hybrid, all
//! optimizations) across GCN / GIN / GAT on seven graphs (ECS-16; ROC at
//! its best 4-node configuration, as in the paper).
//!
//! Paper shape: NTS 1.83–14.25x over DistDGL, 1.81–5.29x over ROC,
//! 2.03–15.02x over DepCache, 1.19–1.69x over optimized DepComm. ROC and
//! DepCache OOM on several cases; ROC lacks GAT, DistDGL lacks GIN.

use bench::{cell, dataset, model_for, print_table, save_json, RunSpec};
use ns_baselines::{DistDglConfig, DistDglLike};
use ns_gnn::ModelKind;
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::{EngineKind, RuntimeError};
use serde_json::json;

fn main() {
    let ecs16 = ClusterSpec::aliyun_ecs(16);
    let ecs4 = ClusterSpec::aliyun_ecs(4);
    let graphs = ["google", "pokec", "livejournal", "reddit", "orkut", "wikilink", "twitter"];
    let mut artifacts = Vec::new();

    for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat] {
        let mut rows = Vec::new();
        for name in graphs {
            let ds = dataset(name);
            let model = model_for(&ds, kind);

            // DistDGL-like: sampled mini-batch; no distributed GIN.
            let distdgl: Result<f64, RuntimeError> = if kind == ModelKind::Gin {
                Err(RuntimeError::InvalidConfig("DistDGL lacks GIN".into()))
            } else {
                let t = DistDglLike::new(&ds, &model, ecs16.clone(), DistDglConfig::default());
                Ok(t.train(1).epoch_seconds)
            };
            // ROC-like: whole-block DepComm, best at 4 nodes; no GAT
            // (no edge-NN support).
            let roc: Result<f64, RuntimeError> = if kind == ModelKind::Gat {
                Err(RuntimeError::InvalidConfig("ROC lacks edge NN".into()))
            } else {
                RunSpec::new(&ds, &model, EngineKind::DepComm, ecs4.clone())
                    .opts(ExecOptions::none())
                    .broadcast()
                    .epoch_seconds()
            };
            let depcache = RunSpec::new(&ds, &model, EngineKind::DepCache, ecs16.clone())
                .epoch_seconds();
            let depcomm = RunSpec::new(&ds, &model, EngineKind::DepComm, ecs16.clone())
                .epoch_seconds();
            let nts =
                RunSpec::new(&ds, &model, EngineKind::Hybrid, ecs16.clone()).epoch_seconds();

            artifacts.push(json!({
                "model": kind.name(), "graph": name,
                "distdgl_s": distdgl.as_ref().ok(),
                "roc_s": roc.as_ref().ok(),
                "depcache_s": depcache.as_ref().ok(),
                "depcomm_s": depcomm.as_ref().ok(),
                "nts_s": nts.as_ref().ok(),
            }));
            rows.push(vec![
                name.to_string(),
                cell(&distdgl),
                cell(&roc),
                cell(&depcache),
                cell(&depcomm),
                cell(&nts),
            ]);
        }
        print_table(
            &format!("Fig 10 ({}): per-epoch seconds (ECS-16; ROC@4)", kind.name()),
            &["graph", "DistDGL", "ROC", "DepCache", "DepComm", "NTS"],
            &rows,
        );
    }
    save_json("fig10", &json!(artifacts));
}

//! Umbrella driver: regenerates every table and figure in sequence by
//! invoking the sibling binaries. Equivalent to running each `figXX` /
//! `tableXX` binary by hand; results land in `results/`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table02", "fig02", "fig09", "table03", "fig10", "fig11", "fig12", "fig13",
    "fig15", "table04", "table05", "ablation_sync", "ablation_depth", "fig14",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments regenerated; JSON in results/", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}

//! Ablation: ring all-reduce vs parameter-server gradient synchronization
//! across cluster sizes (the paper notes the all-reduce "is orthogonal to
//! and can be replaced by the Parameter-Server model" — this quantifies
//! the cost of that replacement).
//!
//! Expected shape: PS wins or ties at small scale / small models
//! (fewer latency-bound rounds), loses increasingly at larger worker
//! counts where its server NIC serializes 2(m-1) full-gradient copies.

use bench::{dataset, model_for, print_table, save_json, RunSpec};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use ns_runtime::exec::SyncMode;
use ns_runtime::EngineKind;
use serde_json::json;

fn main() {
    let ds = dataset("pokec");
    let model = model_for(&ds, ModelKind::Gcn);
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for workers in [2usize, 4, 8, 16] {
        let time = |sync: SyncMode| {
            RunSpec::new(&ds, &model, EngineKind::Hybrid, ClusterSpec::aliyun_ecs(workers))
                .sync(sync)
                .no_memory_check()
                .epoch_seconds()
                .expect("simulate")
        };
        let ring = time(SyncMode::AllReduce);
        let ps = time(SyncMode::ParameterServer);
        rows.push(vec![
            workers.to_string(),
            format!("{ring:.5}"),
            format!("{ps:.5}"),
            format!("{:.2}x", ps / ring),
        ]);
        artifacts.push(json!({
            "workers": workers,
            "allreduce_s": ring,
            "parameter_server_s": ps,
        }));
    }
    print_table(
        "Ablation: gradient sync (GCN on pokec, Hybrid engine)",
        &["workers", "all-reduce(s)", "param-server(s)", "ps/ring"],
        &rows,
    );
    save_json("ablation_sync", &json!(artifacts));
}

//! Figure 15 — hybrid dependency management under different graph
//! partitioners: chunk-based, metis-like, and Fennel, for optimized
//! DepComm and Hybrid on Reddit, Orkut, and Wiki (ECS-16).
//!
//! Paper shape: Hybrid beats DepComm under *every* partitioner (1.21–1.48x
//! chunk, 1.12–1.23x METIS, 1.17–1.32x Fennel) — dependency management is
//! orthogonal to graph partitioning.

use bench::{dataset, model_for, print_table, save_json, RunSpec};
use ns_gnn::ModelKind;
use ns_graph::Partitioner;
use ns_net::ClusterSpec;
use ns_runtime::EngineKind;
use serde_json::json;

fn main() {
    let cluster = ClusterSpec::aliyun_ecs(16);
    let graphs = ["reddit", "orkut", "wikilink"];
    let partitioners =
        [Partitioner::Chunk, Partitioner::MetisLike, Partitioner::Fennel];
    let mut artifacts = Vec::new();

    for name in graphs {
        let ds = dataset(name);
        let model = model_for(&ds, ModelKind::Gcn);
        let mut rows = Vec::new();
        for p in partitioners {
            let comm = RunSpec::new(&ds, &model, EngineKind::DepComm, cluster.clone())
                .partitioner(p)
                .no_memory_check()
                .epoch_seconds()
                .expect("depcomm");
            let hybrid = RunSpec::new(&ds, &model, EngineKind::Hybrid, cluster.clone())
                .partitioner(p)
                .no_memory_check()
                .epoch_seconds()
                .expect("hybrid");
            rows.push(vec![
                p.name().to_string(),
                format!("{comm:.4}"),
                format!("{hybrid:.4}"),
                format!("{:.2}x", comm / hybrid),
            ]);
            artifacts.push(json!({
                "graph": name,
                "partitioner": p.name(),
                "depcomm_s": comm,
                "hybrid_s": hybrid,
                "speedup": comm / hybrid,
            }));
        }
        print_table(
            &format!("Fig 15: partitioners on {name} (GCN, ECS-16)"),
            &["partitioner", "DepComm(s)", "Hybrid(s)", "speedup"],
            &rows,
        );
    }
    save_json("fig15", &json!(artifacts));
}

//! Microbenchmark of the resource-robustness layer: what the
//! degrade-don't-die policies cost when nothing is wrong, and what they
//! charge when a fault is active.
//!
//! Rows:
//! - `save_clean`          durable generation save, healthy disk
//! - `save_enospc_squeeze` save through a disk-full window (retention
//!                         squeeze + retry)
//! - `save_slowdisk_2x`    save with an injected 2× fsync factor
//! - `pool_uncapped`       take/recycle churn with pool headroom
//! - `pool_capped`         the same churn under a budget that forces
//!                         shedding on every cycle
//!
//! Writes `BENCH_resilience.json` (override with `--out <path>`):
//!
//! ```text
//! {"schema":"bench-resilience/v1",
//!  "results":[{"op":"save_clean","ns_per_iter":...,"iters":...}]}
//! ```
//!
//! The interesting deltas are `save_enospc_squeeze / save_clean` (the
//! one-off price of surviving a full disk) and `pool_capped /
//! pool_uncapped` (the steady-state price of living at the budget).
//! `--quick` shrinks iteration counts for CI smoke runs.

use std::time::Instant;

use ns_runtime::{Checkpoint, CheckpointStore};
use ns_tensor::{pool, ParamStore, Tensor};
use serde_json::json;

fn timed<F: FnMut()>(iters: usize, mut f: F) -> u64 {
    // One untimed warmup so first-touch costs (directory creation,
    // pool population) don't land in the measurement.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    (t0.elapsed().as_nanos() as u64) / iters.max(1) as u64
}

fn checkpoint(params: usize) -> Checkpoint {
    let mut store = ParamStore::new();
    for i in 0..4 {
        let n = params / 4;
        store.register(
            &format!("p{i}"),
            Tensor::from_vec(n / 64, 64, vec![0.125 * (i + 1) as f32; n]),
        );
    }
    Checkpoint::capture(1, &store, None)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_resilience.json".to_string());

    let save_iters = if quick { 20 } else { 200 };
    let pool_iters = if quick { 2_000 } else { 50_000 };
    let params = 64 * 1024; // 256 KiB of parameters per generation
    let ckpt = checkpoint(params);
    let dir = std::env::temp_dir().join(format!("nts-bench-resilience-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut results = Vec::new();
    let mut row = |op: &str, ns: u64, iters: usize| {
        println!("{op:<22} {ns:>12} ns/iter");
        results.push(json!({"op": op, "ns_per_iter": ns, "iters": iters}));
    };

    {
        let mut st = CheckpointStore::open(&dir, 3).expect("open store");
        let ns = timed(save_iters, || {
            st.save(&ckpt, 4).expect("clean save");
        });
        row("save_clean", ns, save_iters);
    }
    {
        let mut st = CheckpointStore::open(&dir, 3).expect("open store");
        let ns = timed(save_iters, || {
            // Arm a fresh disk-full each iteration: every save pays the
            // full ENOSPC → squeeze → retry chain.
            st.set_disk_fate(true, 1.0);
            st.save_degrading(&ckpt, 4).expect("degrading save");
        });
        row("save_enospc_squeeze", ns, save_iters);
    }
    {
        let mut st = CheckpointStore::open(&dir, 3).expect("open store");
        st.set_disk_fate(false, 2.0);
        let ns = timed(save_iters, || {
            st.save(&ckpt, 4).expect("slow save");
        });
        row("save_slowdisk_2x", ns, save_iters);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let churn = || {
        // Shape-stationary take/recycle cycle: two live scratch buffers,
        // both returned — the steady state the trainer runs in.
        let a = pool::take_scratch(8 * 1024);
        let b = pool::take_scratch(2 * 1024);
        pool::recycle(a);
        pool::recycle(b);
    };
    {
        pool::set_cap_bytes(pool::default_cap_bytes());
        let ns = timed(pool_iters, churn);
        row("pool_uncapped", ns, pool_iters);
    }
    {
        // Budget below one cycle's parked footprint: every recycle
        // overshoots and the next take sheds.
        pool::set_cap_bytes(8 * 1024);
        let ns = timed(pool_iters, churn);
        pool::set_cap_bytes(pool::default_cap_bytes());
        row("pool_capped", ns, pool_iters);
    }

    let doc = json!({"schema": "bench-resilience/v1", "results": results});
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap()).expect("write report");
    println!("wrote {out}");
}

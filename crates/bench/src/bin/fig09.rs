//! Figure 9 — where NeutronStar's performance comes from: raw Hybrid vs
//! raw DepCache/DepComm, then the optimizations stacked one by one —
//! ring-based communication (R), lock-free message queuing (L), and
//! communication/computation overlap (P).
//!
//! Paper shape (16-node ECS, GCN): raw Hybrid 1.63–10.34x over raw
//! DepCache and 1.24–1.68x over raw DepComm; +R ≈ 1.10–1.15x,
//! +L ≈ 1.08–1.12x, +P ≈ 1.19–1.41x on top.

use bench::{dataset, model_for, print_table, save_json, RunSpec};
use ns_gnn::ModelKind;
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::EngineKind;
use serde_json::json;

fn main() {
    let cluster = ClusterSpec::aliyun_ecs(16);
    let graphs = ["google", "pokec", "livejournal", "reddit", "orkut", "wikilink", "twitter"];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    for name in graphs {
        let ds = dataset(name);
        let model = model_for(&ds, ModelKind::Gcn);
        let run = |engine: EngineKind, opts: ExecOptions| -> f64 {
            RunSpec::new(&ds, &model, engine, cluster.clone())
                .opts(opts)
                .no_memory_check()
                .epoch_seconds()
                .expect("simulation")
        };
        let raw_cache = run(EngineKind::DepCache, ExecOptions::none());
        let raw_comm = run(EngineKind::DepComm, ExecOptions::none());
        let raw_hybrid = run(EngineKind::Hybrid, ExecOptions::none());
        let r = run(
            EngineKind::Hybrid,
            ExecOptions { ring: true, lock_free: false, overlap: false },
        );
        let rl = run(
            EngineKind::Hybrid,
            ExecOptions { ring: true, lock_free: true, overlap: false },
        );
        let rlp = run(EngineKind::Hybrid, ExecOptions::all());

        let sp = |t: f64| format!("{:.2}x", raw_cache / t);
        rows.push(vec![
            name.to_string(),
            "1.00x".to_string(),
            sp(raw_comm),
            sp(raw_hybrid),
            sp(r),
            sp(rl),
            sp(rlp),
        ]);
        artifacts.push(json!({
            "graph": name,
            "raw_depcache_s": raw_cache,
            "raw_depcomm_s": raw_comm,
            "raw_hybrid_s": raw_hybrid,
            "hybrid_r_s": r,
            "hybrid_rl_s": rl,
            "hybrid_rlp_s": rlp,
            "hybrid_over_cache": raw_cache / raw_hybrid,
            "hybrid_over_comm": raw_comm / raw_hybrid,
            "gain_r": raw_hybrid / r,
            "gain_l": r / rl,
            "gain_p": rl / rlp,
        }));
    }

    print_table(
        "Fig 9: speedup over raw DepCache (GCN, ECS-16); R=ring L=lock-free P=overlap",
        &["graph", "DepCache", "DepComm", "Hybrid", "Hybrid+R", "+RL", "+RLP"],
        &rows,
    );
    save_json("fig09", &json!(artifacts));
}

//! Table 4 — comparison with shared-memory CPU systems: DGL-CPU-like,
//! PyG-CPU-like, single-node NeutronStar-CPU, and distributed NeutronStar
//! on 16 GPUs, running GCN on four medium graphs.
//!
//! Paper shape: PyG-CPU OOMs on the three large graphs (dense adjacency);
//! NTS on 16 GPUs is fastest everywhere.

use bench::{cell, dataset, model_for, print_table, save_json, RunSpec};
use ns_baselines::{shared_memory_row, SharedMemorySystem, SysResult};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use ns_runtime::EngineKind;
use serde_json::json;

fn sys_cell(r: &SysResult) -> String {
    match r {
        SysResult::Time(t) => format!("{t:.4}"),
        SysResult::Oom => "OOM".to_string(),
    }
}

fn main() {
    let cpu = ClusterSpec::cpu_single();
    let gpu16 = ClusterSpec::aliyun_ecs(16);
    let graphs = ["google", "pokec", "livejournal", "reddit"];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    for name in graphs {
        let ds = dataset(name);
        let model = model_for(&ds, ModelKind::Gcn);
        let dgl = shared_memory_row(SharedMemorySystem::DglCpu, &ds, &model, &cpu);
        let pyg = shared_memory_row(SharedMemorySystem::PygLike, &ds, &model, &cpu);
        let nts_cpu = shared_memory_row(SharedMemorySystem::Nts, &ds, &model, &cpu);
        let nts16 =
            RunSpec::new(&ds, &model, EngineKind::Hybrid, gpu16.clone()).epoch_seconds();
        rows.push(vec![
            name.to_string(),
            sys_cell(&dgl),
            sys_cell(&pyg),
            sys_cell(&nts_cpu),
            cell(&nts16),
        ]);
        let t = |r: &SysResult| match r {
            SysResult::Time(t) => Some(*t),
            SysResult::Oom => None,
        };
        artifacts.push(json!({
            "graph": name,
            "dgl_cpu_s": t(&dgl),
            "pyg_cpu_s": t(&pyg),
            "nts_cpu_s": t(&nts_cpu),
            "nts_16gpu_s": nts16.as_ref().ok(),
        }));
    }

    print_table(
        "Table 4: shared-memory CPU systems vs NTS (GCN, per-epoch seconds)",
        &["graph", "DGL-CPU", "PyG-CPU", "NTS-CPU", "NTS-16GPU"],
        &rows,
    );
    save_json("table04", &json!(artifacts));
}

//! Figure 14 — accuracy vs (simulated) training time on the Reddit-like
//! dataset: Hybrid, DepComm, and DepCache (full-graph training, 16
//! workers) against DepCache-with-sampling (the DGL sampling strategy).
//!
//! Paper shape: full-graph engines converge to the same accuracy (~95%),
//! above the sampling ceiling (~93.9%); Hybrid reaches the target
//! accuracy fastest because its per-epoch time is lowest; DepCache is
//! slowest despite identical numerics.

use bench::{dataset, model_for, print_table, save_json, RunSpec};
use ns_baselines::{DistDglConfig, DistDglLike};
use ns_gnn::ModelKind;
use ns_net::ClusterSpec;
use ns_runtime::EngineKind;
use serde_json::json;

const EPOCHS: usize = 60;

fn main() {
    let cluster = ClusterSpec::aliyun_ecs(16);
    let ds = dataset("reddit");
    let model = model_for(&ds, ModelKind::Gcn);
    let mut artifacts = Vec::new();
    let mut summary_rows = Vec::new();

    let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();

    for engine in [EngineKind::Hybrid, EngineKind::DepComm, EngineKind::DepCache] {
        let trainer = RunSpec::new(&ds, &model, engine, cluster.clone())
            .no_memory_check()
            .prepare()
            .expect("prepare");
        let report = trainer.train(EPOCHS).expect("train");
        let per_epoch = report.sim.epoch_seconds;
        let curve: Vec<(f64, f64)> = report
            .epochs
            .iter()
            .map(|e| ((e.epoch + 1) as f64 * per_epoch, e.test_acc))
            .collect();
        let best = curve.iter().map(|&(_, a)| a).fold(0.0, f64::max);
        summary_rows.push(vec![
            report.engine.clone(),
            format!("{:.4}", per_epoch),
            format!("{:.2}%", best * 100.0),
        ]);
        artifacts.push(json!({
            "system": report.engine,
            "epoch_seconds": per_epoch,
            "best_test_acc": best,
            "curve": curve.iter().map(|&(t, a)| json!([t, a])).collect::<Vec<_>>(),
        }));
        curves.push((report.engine.clone(), curve));
    }

    // DepCache-sampling (DGL sampling, as in the paper's comparison).
    let dgl = DistDglLike::new(
        &ds,
        &model,
        cluster.clone(),
        DistDglConfig { batch_size: 128, ..Default::default() },
    );
    let report = dgl.train(EPOCHS);
    let curve: Vec<(f64, f64)> = report
        .epochs
        .iter()
        .enumerate()
        .map(|(i, e)| ((i + 1) as f64 * report.epoch_seconds, e.test_acc))
        .collect();
    let best = curve.iter().map(|&(_, a)| a).fold(0.0, f64::max);
    summary_rows.push(vec![
        "DepCache-sampling".to_string(),
        format!("{:.4}", report.epoch_seconds),
        format!("{:.2}%", best * 100.0),
    ]);
    artifacts.push(json!({
        "system": "DepCache-sampling",
        "epoch_seconds": report.epoch_seconds,
        "best_test_acc": best,
        "curve": curve.iter().map(|&(t, a)| json!([t, a])).collect::<Vec<_>>(),
    }));
    curves.push(("DepCache-sampling".to_string(), curve));

    // Time-to-target-accuracy comparison at the sampling ceiling.
    let target = best.min(0.999);
    let mut rows = Vec::new();
    for (name, curve) in &curves {
        let t = curve
            .iter()
            .find(|&&(_, a)| a >= target)
            .map(|&(t, _)| format!("{t:.3}s"))
            .unwrap_or_else(|| "never".to_string());
        rows.push(vec![name.clone(), t]);
    }

    print_table(
        "Fig 14: per-epoch time and accuracy ceiling (GCN, Reddit-like, ECS-16)",
        &["system", "epoch(s)", "best test acc"],
        &summary_rows,
    );
    print_table(
        &format!("Fig 14: simulated time to reach {:.2}% test accuracy", target * 100.0),
        &["system", "time-to-target"],
        &rows,
    );
    save_json("fig14", &json!(artifacts));
}

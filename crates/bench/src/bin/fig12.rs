//! Figure 12 — scaling from 1 to 16 workers on Pokec, Reddit, Orkut, and
//! Wiki for DistDGL-like, ROC-like, DepCache, DepComm, and Hybrid.
//!
//! Paper shape: DistDGL / DepComm / Hybrid improve with more nodes (near
//! linear for NTS); ROC scales poorly (whole-block transfers grow with
//! the cluster); DepCache barely scales (per-worker redundant work does
//! not shrink); small clusters OOM on big graphs for DepCache.

use bench::{cell, dataset, model_for, print_table, save_json, RunSpec};
use ns_baselines::{DistDglConfig, DistDglLike};
use ns_gnn::ModelKind;
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::EngineKind;
use serde_json::json;

fn main() {
    let graphs = ["pokec", "reddit", "orkut", "wikilink"];
    let sizes = [1usize, 2, 4, 8, 16];
    let mut artifacts = Vec::new();

    for name in graphs {
        let ds = dataset(name);
        let model = model_for(&ds, ModelKind::Gcn);
        let mut rows = Vec::new();
        for &m in &sizes {
            let cluster = ClusterSpec::aliyun_ecs(m);
            let distdgl = if m >= 1 {
                let t = DistDglLike::new(&ds, &model, cluster.clone(), DistDglConfig::default());
                Ok(t.train(1).epoch_seconds)
            } else {
                unreachable!()
            };
            let roc = RunSpec::new(&ds, &model, EngineKind::DepComm, cluster.clone())
                .opts(ExecOptions::none())
                .broadcast()
                .epoch_seconds();
            let cache =
                RunSpec::new(&ds, &model, EngineKind::DepCache, cluster.clone()).epoch_seconds();
            let comm =
                RunSpec::new(&ds, &model, EngineKind::DepComm, cluster.clone()).epoch_seconds();
            let hybrid =
                RunSpec::new(&ds, &model, EngineKind::Hybrid, cluster.clone()).epoch_seconds();
            artifacts.push(json!({
                "graph": name, "workers": m,
                "distdgl_s": distdgl.as_ref().ok(),
                "roc_s": roc.as_ref().ok(),
                "depcache_s": cache.as_ref().ok(),
                "depcomm_s": comm.as_ref().ok(),
                "hybrid_s": hybrid.as_ref().ok(),
            }));
            rows.push(vec![
                m.to_string(),
                cell(&distdgl),
                cell(&roc),
                cell(&cache),
                cell(&comm),
                cell(&hybrid),
            ]);
        }
        print_table(
            &format!("Fig 12: scaling on {name} (GCN, per-epoch seconds)"),
            &["workers", "DistDGL", "ROC", "DepCache", "DepComm", "Hybrid"],
            &rows,
        );
    }
    save_json("fig12", &json!(artifacts));
}

//! Ablation: model depth vs the dependency explosion.
//!
//! The k-hop closure a DepCache worker must replicate grows with every
//! added layer (§2.2: "DepCache needs to retrieve not only a vertex's
//! direct in-neighbors but also all its {2..k}-hop in-neighbors"), while
//! DepComm adds only one more round of boundary communication. This sweep
//! quantifies that asymmetry — the regime where the hybrid cost model's
//! caching decisions become increasingly selective.

use bench::{cell, dataset, print_table, save_json};
use ns_gnn::{GnnModel, ModelKind};
use ns_graph::{stats::replication_stats, Partitioner};
use ns_net::ClusterSpec;
use ns_runtime::{EngineKind, Trainer, TrainerConfig};
use serde_json::json;

fn main() {
    let ds = dataset("pokec");
    let cluster = ClusterSpec::aliyun_ecs(8);
    let part = Partitioner::Chunk.partition(&ds.graph, 8);
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    for layers in 1usize..=4 {
        let mut dims = vec![ds.feature_dim()];
        dims.extend(std::iter::repeat(ds.hidden_dim).take(layers - 1));
        dims.push(ds.num_classes);
        let model = GnnModel::new(ModelKind::Gcn, &dims, 42);
        let time = |engine: EngineKind| {
            let mut cfg = TrainerConfig::new(engine, cluster.clone());
            cfg.enforce_memory = false;
            Trainer::prepare(&ds, &model, cfg).map(|t| t.simulate_epoch().epoch_seconds)
        };
        let cache = time(EngineKind::DepCache);
        let comm = time(EngineKind::DepComm);
        let hybrid = time(EngineKind::Hybrid);
        let rep = replication_stats(&ds.graph, &part, layers);
        rows.push(vec![
            layers.to_string(),
            format!("{:.2}", rep.replication_factor),
            cell(&cache),
            cell(&comm),
            cell(&hybrid),
        ]);
        artifacts.push(json!({
            "layers": layers,
            "replication_factor": rep.replication_factor,
            "depcache_s": cache.as_ref().ok(),
            "depcomm_s": comm.as_ref().ok(),
            "hybrid_s": hybrid.as_ref().ok(),
        }));
    }
    print_table(
        "Ablation: depth vs dependency explosion (GCN on pokec, ECS-8)",
        &["layers", "replication", "DepCache(s)", "DepComm(s)", "Hybrid(s)"],
        &rows,
    );
    save_json("ablation_depth", &json!(artifacts));
}

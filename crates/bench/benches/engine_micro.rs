//! Criterion benches of end-to-end engine work: planning (including
//! Algorithm 4) and one real distributed training epoch per engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ns_gnn::{GnnModel, ModelKind};
use ns_graph::datasets::by_name;
use ns_graph::Dataset;
use ns_net::ClusterSpec;
use ns_runtime::{EngineKind, Trainer, TrainerConfig};

fn setup() -> (Dataset, GnnModel) {
    let ds = by_name("google").unwrap().materialize(0.002, 42);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 7);
    (ds, model)
}

fn bench_prepare(c: &mut Criterion) {
    let (ds, model) = setup();
    let mut g = c.benchmark_group("engine/prepare_google_4w");
    for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &engine,
            |b, &engine| {
                b.iter(|| {
                    let cfg = TrainerConfig::new(engine, ClusterSpec::aliyun_ecs(4));
                    black_box(Trainer::prepare(&ds, &model, cfg).unwrap().plans().len())
                })
            },
        );
    }
    g.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let (ds, model) = setup();
    let mut g = c.benchmark_group("engine/real_epoch_google_4w");
    g.sample_size(10);
    for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
        let trainer = Trainer::prepare(
            &ds,
            &model,
            TrainerConfig::new(engine, ClusterSpec::aliyun_ecs(4)),
        )
        .unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &engine,
            |b, _| b.iter(|| black_box(trainer.train(1).unwrap().final_loss())),
        );
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let (ds, model) = setup();
    let trainer = Trainer::prepare(
        &ds,
        &model,
        TrainerConfig::new(EngineKind::Hybrid, ClusterSpec::aliyun_ecs(16)),
    )
    .unwrap();
    c.bench_function("engine/simulate_epoch_hybrid_16w", |b| {
        b.iter(|| black_box(trainer.simulate_epoch().epoch_seconds))
    });
}

criterion_group!(benches, bench_prepare, bench_train_epoch, bench_simulation);
criterion_main!(benches);

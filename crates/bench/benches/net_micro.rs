//! Criterion microbenches for the fabric and simulator: lock-free vs
//! mutex message buffers (the §4.3 optimization, measured for real) and
//! event-simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ns_net::buffer::{LockFreeChunkBuffer, MutexChunkBuffer};
use ns_net::sim::simulate;
use ns_net::{ClusterSpec, ExecOptions, TaskGraph};

const SLOTS: usize = 4096;
const COLS: usize = 64;
const THREADS: usize = 8;

fn bench_buffers(c: &mut Criterion) {
    let row = vec![1.0f32; COLS];
    let mut g = c.benchmark_group("net/parallel_enqueue_4096x64_8threads");
    g.bench_function("lock_free", |b| {
        b.iter(|| {
            let buf = LockFreeChunkBuffer::new(SLOTS, COLS);
            crossbeam::thread::scope(|s| {
                for t in 0..THREADS {
                    let (buf, row) = (&buf, &row);
                    s.spawn(move |_| {
                        for slot in (t..SLOTS).step_by(THREADS) {
                            buf.write_row(slot, row);
                        }
                    });
                }
            })
            .unwrap();
            black_box(buf.into_rows())
        })
    });
    g.bench_function("mutex", |b| {
        b.iter(|| {
            let buf = MutexChunkBuffer::new(SLOTS, COLS);
            crossbeam::thread::scope(|s| {
                for t in 0..THREADS {
                    let (buf, row) = (&buf, &row);
                    s.spawn(move |_| {
                        for slot in (t..SLOTS).step_by(THREADS) {
                            buf.write_row(slot, row);
                        }
                    });
                }
            })
            .unwrap();
            black_box(buf.into_rows())
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    // A DepComm-shaped epoch DAG: 16 workers, 2 layers, full mesh of
    // chunk sends with per-chunk compute, forward and backward.
    let m = 16;
    let spec = ClusterSpec::aliyun_ecs(m);
    let mut g = TaskGraph::new();
    let mut prev: Vec<Option<ns_net::TaskId>> = vec![None; m];
    for _layer in 0..4 {
        let mut sends = vec![vec![None; m]; m];
        for i in 0..m {
            let deps = prev[i].map(|t| vec![t]).unwrap_or_default();
            for k in 1..m {
                let j = (i + k) % m;
                let bytes = ns_net::fabric::ROWS_HEADER_BYTES + 200_000;
                sends[i][j] = Some(g.send(i, j, bytes, deps.clone()));
            }
        }
        for i in 0..m {
            let mut chunks = Vec::new();
            for j in 0..m {
                if let Some(s) = sends[j][i] {
                    chunks.push(g.compute_sparse(i, 3_000_000, vec![s]));
                }
            }
            prev[i] = Some(g.compute(i, 40_000_000, chunks));
        }
    }
    c.bench_function("net/simulate_16w_4phase_mesh", |b| {
        b.iter(|| black_box(simulate(&g, &spec, &ExecOptions::all()).makespan))
    });
}

criterion_group!(benches, bench_buffers, bench_simulator);
criterion_main!(benches);

//! Criterion microbenches for the tensor/autograd substrate: the kernels
//! every training step is made of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ns_tensor::{Tape, Tensor};

fn make(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| (((i as u64).wrapping_mul(seed + 7) % 1000) as f32 - 500.0) / 500.0)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor/matmul");
    for &n in &[64usize, 256] {
        let a = make(n, n, 1);
        let b = make(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
    }
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    // Fused neighborhood aggregation vs the gather+scatter composition it
    // replaces — the fusion that keeps GCN/GIN edge memory off the device.
    let n = 4096;
    let deg = 16;
    let d = 64;
    let x = make(n, d, 3);
    let edge_src: Vec<u32> = (0..n * deg).map(|i| ((i * 37) % n) as u32).collect();
    let edge_dst: Vec<u32> = (0..n * deg).map(|i| (i / deg) as u32).collect();
    let offsets: Vec<usize> = (0..=n).map(|i| i * deg).collect();
    let weights = vec![0.25f32; n * deg];

    let mut g = c.benchmark_group("tensor/aggregate");
    g.bench_function("fused_spmm", |b| {
        b.iter(|| black_box(x.weighted_aggregate(&edge_src, &offsets, Some(&weights))))
    });
    g.bench_function("gather_then_scatter", |b| {
        b.iter(|| {
            let msgs = x.gather_rows(&edge_src);
            black_box(msgs.scatter_add_rows(&edge_dst, n))
        })
    });
    g.finish();
}

fn bench_tape_roundtrip(c: &mut Criterion) {
    // One GCN-layer-shaped tape: aggregate + linear + relu, forward and
    // backward.
    let n = 2048;
    let d_in = 64;
    let d_out = 32;
    let deg = 8;
    let x = make(n, d_in, 5);
    let w = make(d_in, d_out, 6);
    let edge_src: Arc<[u32]> = (0..n * deg).map(|i| ((i * 31) % n) as u32).collect();
    let offsets: Arc<[usize]> = (0..=n).map(|i| i * deg).collect();

    c.bench_function("tape/gcn_layer_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let agg = tape.weighted_aggregate(
                xv,
                Arc::clone(&edge_src),
                Arc::clone(&offsets),
                None,
            );
            let z = tape.matmul(agg, wv);
            let y = tape.relu(z);
            tape.backward_from(y, Tensor::full(n, d_out, 1.0));
            black_box(tape.grad(wv).map(Tensor::norm))
        })
    });
}

fn bench_softmax(c: &mut Criterion) {
    let logits = make(4096, 41, 9);
    c.bench_function("tensor/log_softmax_rows", |b| {
        b.iter(|| black_box(logits.log_softmax_rows()))
    });
    let edge_logits = make(65536, 1, 10);
    let offsets: Vec<usize> = (0..=4096).map(|i| i * 16).collect();
    c.bench_function("tensor/segment_softmax", |b| {
        b.iter(|| black_box(edge_logits.segment_softmax(&offsets)))
    });
}

criterion_group!(benches, bench_matmul, bench_spmm, bench_tape_roundtrip, bench_softmax);
criterion_main!(benches);

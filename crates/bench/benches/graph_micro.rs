//! Criterion microbenches for the graph substrate: construction,
//! partitioning, and k-hop closure extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ns_graph::generate::rmat;
use ns_graph::khop::khop_in_closure;
use ns_graph::{CsrGraph, Partitioner};

fn test_graph(n: usize, m: usize) -> CsrGraph {
    let edges = rmat(n, m, (0.57, 0.19, 0.19), 42);
    CsrGraph::from_edges(n, &edges, true)
}

fn bench_build(c: &mut Criterion) {
    let edges = rmat(10_000, 80_000, (0.57, 0.19, 0.19), 42);
    c.bench_function("graph/csr_build_10k_80k", |b| {
        b.iter(|| black_box(CsrGraph::from_edges(10_000, &edges, true)))
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let g = test_graph(10_000, 80_000);
    let mut grp = c.benchmark_group("graph/partition_10k_80k_into_8");
    for p in [Partitioner::Chunk, Partitioner::MetisLike, Partitioner::Fennel] {
        grp.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| black_box(p.partition(&g, 8)))
        });
    }
    grp.finish();
}

fn bench_khop(c: &mut Criterion) {
    let g = test_graph(10_000, 80_000);
    let part = Partitioner::Chunk.partition(&g, 8);
    let seeds = part.part_vertices(0);
    c.bench_function("graph/khop2_closure_of_partition", |b| {
        b.iter(|| black_box(khop_in_closure(&g, &seeds, 2)))
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("graph/rmat_50k_edges", |b| {
        b.iter(|| black_box(rmat(8_192, 50_000, (0.57, 0.19, 0.19), 7)))
    });
}

criterion_group!(benches, bench_build, bench_partitioners, bench_khop, bench_generators);
criterion_main!(benches);

//! Hardware models and cluster presets.
//!
//! These parameter blocks replace the physical testbeds of the paper: a
//! 16-node Aliyun ECS cluster (one NVIDIA T4 per node, 6 Gbps Ethernet)
//! and an 8-node private cluster (one V100 per node, 100 Gb/s EDR
//! InfiniBand). All figures of merit used by the simulator are ordinary
//! published specs.

use serde::Serialize;

/// Accelerator model: throughput and memory.
///
/// GNN workloads mix two very different kernel classes: dense matmuls
/// (the parameterized vertex/edge functions), which run near the device's
/// arithmetic peak, and sparse gather/aggregate kernels, which are
/// memory-bandwidth-bound and sustain orders of magnitude fewer FLOP/s.
/// Modeling them with one rate erases the redundant-computation cost that
/// the whole DepCache/DepComm trade-off hinges on, so the model carries
/// both.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceModel {
    /// Sustained throughput of dense (matmul-style) kernels, GFLOP/s.
    pub dense_gflops: f64,
    /// Sustained throughput of sparse (gather/scatter/aggregate) kernels,
    /// GFLOP/s — roughly `memory_bandwidth / bytes_per_flop` with random
    /// access.
    pub sparse_gflops: f64,
    /// Device memory in bytes; exceeding it is an OOM (the paper's
    /// DepCache and ROC runs OOM on several graphs).
    pub mem_bytes: u64,
    /// Fixed per-kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
}

/// Network interface model.
#[derive(Debug, Clone, Serialize)]
pub struct NetModel {
    /// Per-NIC bandwidth in Gbit/s (applies independently to egress and
    /// ingress).
    pub bandwidth_gbps: f64,
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Incast penalty: fractional slowdown of an ingress transfer per
    /// message already queued at the receiving NIC when it arrives. Models
    /// TCP-incast style congestion on Ethernet fabrics; near zero on
    /// InfiniBand. The ring schedule avoids this by construction.
    pub incast_penalty: f64,
    /// Host-side message enqueue throughput when worker threads serialize
    /// through a mutex-protected queue, bytes/s (the paper's baseline).
    pub enqueue_locked_bps: f64,
    /// Host-side enqueue throughput with the lock-free position-indexed
    /// buffer of §4.3, bytes/s.
    pub enqueue_lockfree_bps: f64,
}

/// A homogeneous cluster: `workers` nodes, one device and one NIC each.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterSpec {
    /// Human-readable name used in reports.
    pub name: String,
    /// Number of worker nodes.
    pub workers: usize,
    /// Per-node accelerator.
    pub device: DeviceModel,
    /// Per-node NIC.
    pub net: NetModel,
}

impl ClusterSpec {
    /// The paper's primary testbed: Aliyun ECS `ecs.gn6i` nodes — NVIDIA
    /// T4 (8.1 TFLOPS fp32 peak, 16 GB), 6 Gbps VPC Ethernet.
    pub fn aliyun_ecs(workers: usize) -> Self {
        Self {
            name: format!("aliyun-ecs-{workers}"),
            workers,
            device: DeviceModel {
                // Dense: ~35% of the T4's 8.1 TFLOPS fp32 peak.
                dense_gflops: 2_800.0,
                // Sparse: 320 GB/s GDDR6 with random gathers sustains
                // single-digit effective GFLOP/s on GNN aggregation.
                sparse_gflops: 6.0,
                mem_bytes: 16 * (1 << 30),
                launch_overhead_s: 10e-6,
            },
            net: NetModel {
                bandwidth_gbps: 6.0,
                latency_s: 50e-6,
                incast_penalty: 0.08,
                enqueue_locked_bps: 5.0e9,
                enqueue_lockfree_bps: 50.0e9,
            },
        }
    }

    /// The paper's secondary testbed: V100 (15.7 TFLOPS fp32 peak, 16 GB)
    /// over 100 Gb/s EDR InfiniBand.
    pub fn ibv(workers: usize) -> Self {
        Self {
            name: format!("ibv-{workers}"),
            workers,
            device: DeviceModel {
                dense_gflops: 5_500.0,
                // 900 GB/s HBM2 buys ~3x the T4's effective sparse rate.
                sparse_gflops: 20.0,
                mem_bytes: 16 * (1 << 30),
                launch_overhead_s: 8e-6,
            },
            net: NetModel {
                bandwidth_gbps: 100.0,
                latency_s: 2e-6,
                incast_penalty: 0.01,
                enqueue_locked_bps: 5.0e9,
                enqueue_lockfree_bps: 50.0e9,
            },
        }
    }

    /// A CPU-only single node (for the shared-memory comparisons of
    /// Table 4): no accelerator speedup, no network.
    pub fn cpu_single() -> Self {
        Self {
            name: "cpu-single".to_string(),
            workers: 1,
            device: DeviceModel {
                dense_gflops: 150.0,
                sparse_gflops: 4.0,
                mem_bytes: 62 * (1 << 30),
                launch_overhead_s: 0.0,
            },
            net: NetModel {
                bandwidth_gbps: 100.0,
                latency_s: 0.0,
                incast_penalty: 0.0,
                enqueue_locked_bps: 5.0e9,
                enqueue_lockfree_bps: 50.0e9,
            },
        }
    }

    /// Same hardware, different worker count.
    pub fn with_workers(&self, workers: usize) -> Self {
        let mut c = self.clone();
        c.workers = workers;
        let base = self.name.rsplit_once('-').map_or(self.name.as_str(), |(b, _)| b);
        c.name = format!("{base}-{workers}");
        c
    }

    /// A fresh, fully-active membership view over this cluster's workers
    /// (the elastic trainer's starting point).
    pub fn membership(&self) -> crate::membership::MembershipView {
        crate::membership::MembershipView::new(self.workers)
    }

    /// Ingress/egress bandwidth in bytes per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.net.bandwidth_gbps * 1e9 / 8.0
    }

    /// Seconds to execute `flops` of dense (matmul-style) work on one
    /// device (excluding launch overhead).
    pub fn compute_seconds(&self, flops: u64) -> f64 {
        flops as f64 / (self.device.dense_gflops * 1e9)
    }

    /// Seconds to execute `flops` of sparse (gather/aggregate) work on
    /// one device (excluding launch overhead).
    pub fn sparse_compute_seconds(&self, flops: u64) -> f64 {
        flops as f64 / (self.device.sparse_gflops * 1e9)
    }

    /// Seconds to push `bytes` through one NIC direction (excluding
    /// latency and queueing).
    pub fn wire_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bps()
    }
}

/// The three system-level optimizations the paper ablates in Fig. 9, as
/// toggles shared by the engines (task-graph construction) and the
/// simulator (cost selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ExecOptions {
    /// Ring-based communication scheduling (§4.3, Fig. 8): worker `i`
    /// sends its `j`-th output chunk to worker `(i + j + 1) % m`,
    /// staggering arrivals so no two workers target one receiver at once.
    pub ring: bool,
    /// Lock-free parallel message enqueuing (§4.3): writers place rows at
    /// precomputed offsets instead of serializing through a mutex.
    pub lock_free: bool,
    /// Communication/computation overlapping (§4.3): per-chunk pipelining
    /// instead of a layer-wide barrier between transfer and compute.
    pub overlap: bool,
}

impl ExecOptions {
    /// All optimizations enabled — the full NeutronStar configuration.
    pub fn all() -> Self {
        Self { ring: true, lock_free: true, overlap: true }
    }

    /// All optimizations disabled — the "raw" engines of Fig. 9.
    pub fn none() -> Self {
        Self { ring: false, lock_free: false, overlap: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_relative_strengths() {
        let ecs = ClusterSpec::aliyun_ecs(16);
        let ibv = ClusterSpec::ibv(8);
        assert_eq!(ecs.workers, 16);
        assert!(ibv.net.bandwidth_gbps > 10.0 * ecs.net.bandwidth_gbps);
        assert!(ibv.device.dense_gflops > ecs.device.dense_gflops);
        assert!(ibv.device.sparse_gflops > ecs.device.sparse_gflops);
        assert!(ibv.net.incast_penalty < ecs.net.incast_penalty);
    }

    #[test]
    fn unit_conversions() {
        let ecs = ClusterSpec::aliyun_ecs(4);
        // 6 Gbps = 750 MB/s.
        assert!((ecs.bandwidth_bps() - 7.5e8).abs() < 1.0);
        assert!((ecs.wire_seconds(750_000_000) - 1.0).abs() < 1e-9);
        let t = ecs.compute_seconds(2_800_000_000_000);
        assert!((t - 1.0).abs() < 1e-9);
        let ts = ecs.sparse_compute_seconds(6_000_000_000);
        assert!((ts - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_workers_renames() {
        let c = ClusterSpec::aliyun_ecs(16).with_workers(4);
        assert_eq!(c.workers, 4);
        assert_eq!(c.name, "aliyun-ecs-4");
    }

    #[test]
    fn exec_option_presets() {
        let all = ExecOptions::all();
        assert!(all.ring && all.lock_free && all.overlap);
        let none = ExecOptions::none();
        assert!(!none.ring && !none.lock_free && !none.overlap);
    }
}

//! Discrete-event simulation of one training epoch on a modeled cluster.
//!
//! Engines emit a [`TaskGraph`] describing the epoch: compute tasks
//! weighted in FLOPs, point-to-point transfers weighted in bytes, and
//! dependency edges encoding the execution schedule (ring order, per-chunk
//! pipelining or layer barriers). [`simulate`] replays the graph against a
//! [`ClusterSpec`] and returns the makespan plus per-resource busy
//! timelines, which the benchmarks turn into per-epoch runtimes and the
//! GPU/CPU/network utilization traces of the paper's Fig. 13.
//!
//! Resource model per worker node:
//!
//! * `Device` — executes compute tasks one at a time
//!   (`flops / gflops + launch_overhead`).
//! * `NicOut` — serializes egress: each send occupies it for
//!   `enqueue_time + bytes / bandwidth`, where the enqueue time depends on
//!   whether the lock-free message buffer is enabled.
//! * `NicIn` — serializes ingress: `bytes / bandwidth`, inflated by the
//!   incast penalty when other messages are already queued (the congestion
//!   the ring schedule exists to avoid).
//!
//! Transfers traverse `NicOut → (wire latency) → NicIn`; a task completes
//! when its ingress finishes (store-and-forward).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::cluster::{ClusterSpec, ExecOptions};
use crate::fault::FaultPlan;

/// Handle to a task in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub usize);

/// The work a task performs.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// `flops` of device compute on `worker`.
    Compute {
        /// Executing worker.
        worker: usize,
        /// Task weight in floating-point operations.
        flops: u64,
        /// Whether the kernel is sparse (memory-bandwidth-bound gather/
        /// aggregate) or dense (matmul-style); they run at very different
        /// sustained rates.
        sparse: bool,
    },
    /// A message of `bytes` from `src` to `dst`.
    Send {
        /// Sending worker.
        src: usize,
        /// Receiving worker.
        dst: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Zero-cost synchronization point (used to encode layer barriers
    /// without quadratic edge counts).
    Barrier,
}

#[derive(Debug, Clone)]
struct Task {
    kind: TaskKind,
    deps: Vec<TaskId>,
}

/// A DAG of compute/transfer tasks for one epoch (or any schedulable
/// unit).
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    fn push(&mut self, kind: TaskKind, deps: Vec<TaskId>) -> TaskId {
        for d in &deps {
            assert!(d.0 < self.tasks.len(), "dependency on unknown task");
        }
        self.tasks.push(Task { kind, deps });
        TaskId(self.tasks.len() - 1)
    }

    /// Adds a dense compute task (matmul-style kernels).
    pub fn compute(&mut self, worker: usize, flops: u64, deps: Vec<TaskId>) -> TaskId {
        self.push(TaskKind::Compute { worker, flops, sparse: false }, deps)
    }

    /// Adds a sparse compute task (gather/aggregate kernels).
    pub fn compute_sparse(&mut self, worker: usize, flops: u64, deps: Vec<TaskId>) -> TaskId {
        self.push(TaskKind::Compute { worker, flops, sparse: true }, deps)
    }

    /// Adds a transfer task.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64, deps: Vec<TaskId>) -> TaskId {
        self.push(TaskKind::Send { src, dst, bytes }, deps)
    }

    /// Adds a zero-cost barrier depending on `deps`.
    pub fn barrier(&mut self, deps: Vec<TaskId>) -> TaskId {
        self.push(TaskKind::Barrier, deps)
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| match t.kind {
                TaskKind::Send { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total compute FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| match t.kind {
                TaskKind::Compute { flops, .. } => flops,
                _ => 0,
            })
            .sum()
    }
}

/// Per-worker resources tracked by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// The accelerator.
    Device,
    /// Egress NIC (includes host-side enqueue work).
    NicOut,
    /// Ingress NIC.
    NicIn,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Time at which the last task finishes.
    pub makespan: f64,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Busy intervals `(start, end)` per worker per resource:
    /// `busy[worker][kind as usize]`.
    pub busy: Vec<[Vec<(f64, f64)>; 3]>,
    /// Ingress completion events per worker: `(time, bytes)`.
    pub bytes_in: Vec<Vec<(f64, u64)>>,
}

impl SimReport {
    /// Fraction of `[0, end)` each bucket of width `bucket` spends busy on
    /// `(worker, kind)`; the utilization time-series of Fig. 13.
    pub fn utilization(
        &self,
        worker: usize,
        kind: ResourceKind,
        bucket: f64,
        end: f64,
    ) -> Vec<f64> {
        let idx = kind_index(kind);
        let buckets = (end / bucket).ceil() as usize;
        let mut out = vec![0.0; buckets.max(1)];
        for &(s, e) in &self.busy[worker][idx] {
            let mut t = s;
            while t < e {
                let b = (t / bucket) as usize;
                if b >= out.len() {
                    break;
                }
                let bucket_end = (b as f64 + 1.0) * bucket;
                let seg = e.min(bucket_end) - t;
                out[b] += seg / bucket;
                t = bucket_end;
            }
        }
        out
    }

    /// Total busy seconds of `kind` summed over all workers.
    pub fn total_busy(&self, kind: ResourceKind) -> f64 {
        let idx = kind_index(kind);
        self.busy
            .iter()
            .map(|w| w[idx].iter().map(|(s, e)| e - s).sum::<f64>())
            .sum()
    }

    /// Mean utilization of `kind` over `[0, makespan)` across workers.
    pub fn mean_utilization(&self, kind: ResourceKind) -> f64 {
        if self.makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        self.total_busy(kind) / (self.makespan * self.busy.len() as f64)
    }

    /// Total bytes received cluster-wide.
    pub fn total_bytes_in(&self) -> u64 {
        self.bytes_in
            .iter()
            .map(|w| w.iter().map(|&(_, b)| b).sum::<u64>())
            .sum()
    }
}

fn kind_index(kind: ResourceKind) -> usize {
    match kind {
        ResourceKind::Device => 0,
        ResourceKind::NicOut => 1,
        ResourceKind::NicIn => 2,
    }
}

/// Wrapper giving `f64` a total order for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// All dependencies of the task finished; route it to its resource.
    Ready(TaskId),
    /// The job occupying `(worker, kind)` finished its current stage.
    Done(usize, usize, TaskId),
    /// A message finished its wire latency and arrives at dst's ingress.
    Arrive(TaskId),
}

#[derive(Debug, Clone, Copy)]
struct Job {
    task: TaskId,
    service: f64,
}

#[derive(Debug, Default)]
struct Resource {
    busy_with: Option<Job>,
    queue: VecDeque<Job>,
    intervals: Vec<(f64, f64)>,
    started_at: f64,
}

/// Runs the event simulation.
///
/// # Panics
/// Panics if the task graph references workers outside
/// `0..spec.workers`, or contains a dependency cycle (tasks then never
/// become ready; detected at the end).
pub fn simulate(graph: &TaskGraph, spec: &ClusterSpec, opts: &ExecOptions) -> SimReport {
    simulate_faulty(graph, spec, opts, &FaultPlan::default(), 0)
}

/// Runs the event simulation under an injected [`FaultPlan`], mirroring
/// how the real fabric applies the same plan:
///
/// * straggler / `Delay` faults add their delay to the wire-latency leg of
///   matching transfers,
/// * `Drop` faults add the plan's retransmission delay (loss + resend),
/// * `Duplicate` faults ship the message twice (doubled egress and ingress
///   service, doubled ingress bytes),
/// * `Kill` faults are not modeled here — a crashed worker is a planning
///   event (the trainer repartitions), not a service-time effect.
///
/// Fault coins are keyed by task id, so a given `(graph, plan, epoch)` is
/// fully deterministic. `epoch` scopes epoch-selective faults (the graph
/// describes a single epoch).
///
/// # Panics
/// As [`simulate`]: panics on out-of-range workers or dependency cycles.
pub fn simulate_faulty(
    graph: &TaskGraph,
    spec: &ClusterSpec,
    opts: &ExecOptions,
    faults: &FaultPlan,
    epoch: usize,
) -> SimReport {
    let w = spec.workers;
    let fate_of = |tid: TaskId| match graph.tasks[tid.0].kind {
        TaskKind::Send { src, dst, .. } => {
            faults.send_fate(epoch, src, dst, None, tid.0 as u64 + 1)
        }
        _ => crate::fault::SendFate::default(),
    };
    let enqueue_bps = if opts.lock_free {
        spec.net.enqueue_lockfree_bps
    } else {
        spec.net.enqueue_locked_bps
    };

    let n = graph.tasks.len();
    let mut remaining: Vec<usize> = graph.tasks.iter().map(|t| t.deps.len()).collect();
    let mut ready_time: Vec<f64> = vec![0.0; n];
    let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        for d in &t.deps {
            dependents[d.0].push(TaskId(i));
        }
        match t.kind {
            TaskKind::Compute { worker, .. } => assert!(worker < w, "worker out of range"),
            TaskKind::Send { src, dst, .. } => {
                assert!(src < w && dst < w, "worker out of range");
            }
            TaskKind::Barrier => {}
        }
    }

    let mut finish = vec![f64::NAN; n];
    let mut resources: Vec<[Resource; 3]> = (0..w)
        .map(|_| [Resource::default(), Resource::default(), Resource::default()])
        .collect();
    let mut bytes_in: Vec<Vec<(f64, u64)>> = vec![Vec::new(); w];

    let mut heap: BinaryHeap<Reverse<(Time, u64, usize)>> = BinaryHeap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<(Time, u64, usize)>>,
                    events: &mut Vec<Event>,
                    seq: &mut u64,
                    t: f64,
                    ev: Event| {
        events.push(ev);
        heap.push(Reverse((Time(t), *seq, events.len() - 1)));
        *seq += 1;
    };

    for (i, t) in graph.tasks.iter().enumerate() {
        if t.deps.is_empty() {
            push(&mut heap, &mut events, &mut seq, 0.0, Event::Ready(TaskId(i)));
        }
    }

    // Starts `job` on `(worker, kind)` if idle, else queues it. For NicIn,
    // applies the incast penalty based on current occupancy.
    #[allow(clippy::too_many_arguments)] // event-loop plumbing, called twice
    fn offer(
        resources: &mut [[Resource; 3]],
        heap: &mut BinaryHeap<Reverse<(Time, u64, usize)>>,
        events: &mut Vec<Event>,
        seq: &mut u64,
        now: f64,
        worker: usize,
        kind: usize,
        mut job: Job,
        incast_penalty: f64,
    ) {
        let res = &mut resources[worker][kind];
        if kind == 2 {
            let occupancy =
                res.queue.len() + if res.busy_with.is_some() { 1 } else { 0 };
            job.service *= 1.0 + incast_penalty * occupancy as f64;
        }
        if res.busy_with.is_none() {
            res.busy_with = Some(job);
            res.started_at = now;
            events.push(Event::Done(worker, kind, job.task));
            heap.push(Reverse((Time(now + job.service), *seq, events.len() - 1)));
            *seq += 1;
        } else {
            res.queue.push_back(job);
        }
    }

    let mut completed = 0usize;
    while let Some(Reverse((Time(now), _, ev_idx))) = heap.pop() {
        match events[ev_idx] {
            Event::Ready(tid) => match graph.tasks[tid.0].kind {
                TaskKind::Compute { worker, flops, sparse } => {
                    let service = if sparse {
                        spec.sparse_compute_seconds(flops)
                    } else {
                        spec.compute_seconds(flops)
                    } + spec.device.launch_overhead_s;
                    offer(
                        &mut resources,
                        &mut heap,
                        &mut events,
                        &mut seq,
                        now,
                        worker,
                        0,
                        Job { task: tid, service },
                        0.0,
                    );
                }
                TaskKind::Send { src, bytes, .. } => {
                    let copies = if fate_of(tid).duplicate { 2.0 } else { 1.0 };
                    let service =
                        (bytes as f64 / enqueue_bps + spec.wire_seconds(bytes)) * copies;
                    offer(
                        &mut resources,
                        &mut heap,
                        &mut events,
                        &mut seq,
                        now,
                        src,
                        1,
                        Job { task: tid, service },
                        0.0,
                    );
                }
                TaskKind::Barrier => {
                    finish[tid.0] = now;
                    completed += 1;
                    for &dep in &dependents[tid.0] {
                        remaining[dep.0] -= 1;
                        ready_time[dep.0] = ready_time[dep.0].max(now);
                        if remaining[dep.0] == 0 {
                            push(
                                &mut heap,
                                &mut events,
                                &mut seq,
                                ready_time[dep.0],
                                Event::Ready(dep),
                            );
                        }
                    }
                }
            },
            Event::Done(worker, kind, tid) => {
                // Record the busy interval and start the next queued job.
                {
                    let res = &mut resources[worker][kind];
                    res.intervals.push((res.started_at, now));
                    res.busy_with = None;
                    if let Some(next) = res.queue.pop_front() {
                        res.busy_with = Some(next);
                        res.started_at = now;
                        events.push(Event::Done(worker, kind, next.task));
                        heap.push(Reverse((
                            Time(now + next.service),
                            seq,
                            events.len() - 1,
                        )));
                        seq += 1;
                    }
                }
                let task_complete = match (kind, &graph.tasks[tid.0].kind) {
                    // Egress done: message departs, arrives after latency
                    // plus any injected (drop-retransmit / straggler)
                    // delay.
                    (1, TaskKind::Send { .. }) => {
                        let delay_s = fate_of(tid).delay_ms as f64 / 1e3;
                        push(
                            &mut heap,
                            &mut events,
                            &mut seq,
                            now + spec.net.latency_s + delay_s,
                            Event::Arrive(tid),
                        );
                        false
                    }
                    (2, TaskKind::Send { dst, bytes, .. }) => {
                        let copies = if fate_of(tid).duplicate { 2 } else { 1 };
                        bytes_in[*dst].push((now, *bytes * copies));
                        true
                    }
                    (0, TaskKind::Compute { .. }) => true,
                    _ => unreachable!("resource/task mismatch"),
                };
                if task_complete {
                    finish[tid.0] = now;
                    completed += 1;
                    for &dep in &dependents[tid.0] {
                        remaining[dep.0] -= 1;
                        ready_time[dep.0] = ready_time[dep.0].max(now);
                        if remaining[dep.0] == 0 {
                            push(
                                &mut heap,
                                &mut events,
                                &mut seq,
                                ready_time[dep.0],
                                Event::Ready(dep),
                            );
                        }
                    }
                }
            }
            Event::Arrive(tid) => {
                if let TaskKind::Send { dst, bytes, .. } = graph.tasks[tid.0].kind {
                    let copies = if fate_of(tid).duplicate { 2.0 } else { 1.0 };
                    let service = spec.wire_seconds(bytes) * copies;
                    offer(
                        &mut resources,
                        &mut heap,
                        &mut events,
                        &mut seq,
                        now,
                        dst,
                        2,
                        Job { task: tid, service },
                        spec.net.incast_penalty,
                    );
                } else {
                    unreachable!("arrival of non-send task");
                }
            }
        }
    }

    assert_eq!(
        completed, n,
        "simulation deadlock: {} of {} tasks completed (cycle in task graph?)",
        completed, n
    );

    let makespan = finish.iter().cloned().fold(0.0, f64::max);
    SimReport {
        makespan,
        finish,
        busy: resources
            .into_iter()
            .map(|r| {
                let [a, b, c] = r;
                [a.intervals, b.intervals, c.intervals]
            })
            .collect(),
        bytes_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        // Simple round numbers: 1 GFLOP/s device, no launch overhead,
        // 8 Gbps = 1 GB/s wire, no latency, no incast.
        let mut s = ClusterSpec::aliyun_ecs(4);
        s.device.dense_gflops = 1.0;
        s.device.sparse_gflops = 1.0;
        s.device.launch_overhead_s = 0.0;
        s.net.bandwidth_gbps = 8.0;
        s.net.latency_s = 0.0;
        s.net.incast_penalty = 0.0;
        s.net.enqueue_lockfree_bps = f64::INFINITY;
        s.net.enqueue_locked_bps = f64::INFINITY;
        s
    }

    #[test]
    fn empty_graph_is_instant() {
        let g = TaskGraph::new();
        let r = simulate(&g, &spec(), &ExecOptions::all());
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn single_compute_duration() {
        let mut g = TaskGraph::new();
        g.compute(0, 2_000_000_000, vec![]);
        let r = simulate(&g, &spec(), &ExecOptions::all());
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.total_busy(ResourceKind::Device) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn chain_serializes_and_parallel_overlaps() {
        let mut g = TaskGraph::new();
        let a = g.compute(0, 1_000_000_000, vec![]);
        g.compute(0, 1_000_000_000, vec![a]);
        let r = simulate(&g, &spec(), &ExecOptions::all());
        assert!((r.makespan - 2.0).abs() < 1e-9);

        let mut g2 = TaskGraph::new();
        g2.compute(0, 1_000_000_000, vec![]);
        g2.compute(1, 1_000_000_000, vec![]);
        let r2 = simulate(&g2, &spec(), &ExecOptions::all());
        assert!((r2.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_device_serializes_even_without_deps() {
        let mut g = TaskGraph::new();
        g.compute(0, 1_000_000_000, vec![]);
        g.compute(0, 1_000_000_000, vec![]);
        let r = simulate(&g, &spec(), &ExecOptions::all());
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn send_traverses_out_wire_in() {
        let mut g = TaskGraph::new();
        // 1 GB at 1 GB/s: 1 s egress + 1 s ingress (store-and-forward).
        g.send(0, 1, 1_000_000_000, vec![]);
        let r = simulate(&g, &spec(), &ExecOptions::all());
        assert!((r.makespan - 2.0).abs() < 1e-6, "makespan {}", r.makespan);
        assert_eq!(r.total_bytes_in(), 1_000_000_000);
    }

    #[test]
    fn latency_adds_once_per_message() {
        let mut s = spec();
        s.net.latency_s = 0.5;
        let mut g = TaskGraph::new();
        g.send(0, 1, 1_000_000_000, vec![]);
        let r = simulate(&g, &s, &ExecOptions::all());
        assert!((r.makespan - 2.5).abs() < 1e-6);
    }

    #[test]
    fn incast_inflates_concurrent_arrivals() {
        let mut s = spec();
        s.net.incast_penalty = 0.5;
        // Three senders to worker 0 simultaneously.
        let mut g = TaskGraph::new();
        for src in 1..4 {
            g.send(src, 0, 1_000_000_000, vec![]);
        }
        let burst = simulate(&g, &s, &ExecOptions::all()).makespan;

        // Same burst on a penalty-free network: 1 s shared egress (three
        // different senders in parallel) + 3 x 1 s serialized ingress.
        let mut s2 = s.clone();
        s2.net.incast_penalty = 0.0;
        let clean = simulate(&g, &s2, &ExecOptions::all()).makespan;
        assert!((clean - 4.0).abs() < 1e-6, "clean {clean}");
        // With penalty 0.5: second message queued behind one (x1.5) and
        // third behind two (x2.0) => 1 + 1 + 1.5 + 2 = 5.5 s.
        assert!((burst - 5.5).abs() < 1e-6, "burst {burst}");
    }

    #[test]
    fn locked_enqueue_is_slower() {
        let mut s = spec();
        s.net.enqueue_lockfree_bps = 10e9;
        s.net.enqueue_locked_bps = 1e9;
        let mut g = TaskGraph::new();
        g.send(0, 1, 1_000_000_000, vec![]);
        let fast = simulate(&g, &s, &ExecOptions::all()).makespan;
        let slow = simulate(&g, &s, &ExecOptions { lock_free: false, ..ExecOptions::all() })
            .makespan;
        assert!(slow > fast + 0.5, "slow {slow} fast {fast}");
    }

    #[test]
    fn barrier_orders_phases() {
        let mut g = TaskGraph::new();
        let sends: Vec<_> = (1..4).map(|s| g.send(s, 0, 1_000_000, vec![])).collect();
        let bar = g.barrier(sends);
        g.compute(0, 1_000_000_000, vec![bar]);
        let r = simulate(&g, &spec(), &ExecOptions::all());
        // Compute starts only after all sends complete.
        let send_finish = r.finish[..3].iter().cloned().fold(0.0, f64::max);
        assert!(r.finish[4] >= send_finish + 1.0 - 1e-9);
    }

    #[test]
    fn overlap_beats_barrier_for_chunked_pipeline() {
        // 4 chunks arriving at worker 0, each followed by compute on it.
        let chunk_bytes = 500_000_000; // 0.5 s wire each
        let chunk_flops = 500_000_000; // 0.5 s compute each
        let mut pipelined = TaskGraph::new();
        for src in 1..4 {
            let s = pipelined.send(src, 0, chunk_bytes, vec![]);
            pipelined.compute(0, chunk_flops, vec![s]);
        }
        let mut barriered = TaskGraph::new();
        let sends: Vec<_> =
            (1..4).map(|src| barriered.send(src, 0, chunk_bytes, vec![])).collect();
        let bar = barriered.barrier(sends);
        for _ in 1..4 {
            barriered.compute(0, chunk_flops, vec![bar]);
        }
        let p = simulate(&pipelined, &spec(), &ExecOptions::all()).makespan;
        let b = simulate(&barriered, &spec(), &ExecOptions::all()).makespan;
        assert!(p < b, "pipelined {p} should beat barriered {b}");
    }

    #[test]
    fn utilization_buckets_sum_to_busy_time() {
        let mut g = TaskGraph::new();
        g.compute(0, 3_000_000_000, vec![]);
        let r = simulate(&g, &spec(), &ExecOptions::all());
        let u = r.utilization(0, ResourceKind::Device, 1.0, 4.0);
        let total: f64 = u.iter().sum::<f64>() * 1.0;
        assert!((total - 3.0).abs() < 1e-6);
        assert!((r.mean_utilization(ResourceKind::Device) - 3.0 / (3.0 * 4.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn cycle_detection_panics() {
        // Construct a cycle by hand: task 1 depends on task 2 is not
        // expressible through the builder (deps must exist), so emulate a
        // deadlock with a dependency on a task that can never run: a task
        // depending on itself via two barriers is also impossible —
        // instead build a graph whose dependency is never satisfied by
        // tampering: a barrier depending on a task that is its own
        // dependent cannot be built, so we assert builder safety instead.
        let mut g = TaskGraph::new();
        let a = g.barrier(vec![]);
        let mut g2 = g.clone();
        let _ = a;
        // Force an inconsistent graph through clone surgery: drop tasks but
        // keep a dependent around.
        g2.tasks[0].deps.push(TaskId(0)); // self-dependency => never ready
        simulate(&g2, &spec(), &ExecOptions::all());
    }

    #[test]
    fn empty_fault_plan_matches_clean_simulation() {
        let mut g = TaskGraph::new();
        let s = g.send(0, 1, 1_000_000_000, vec![]);
        g.compute(1, 1_000_000_000, vec![s]);
        let clean = simulate(&g, &spec(), &ExecOptions::all());
        let faulty =
            simulate_faulty(&g, &spec(), &ExecOptions::all(), &FaultPlan::default(), 0);
        assert_eq!(clean.makespan, faulty.makespan);
    }

    #[test]
    fn injected_delay_extends_makespan() {
        use crate::fault::{Fault, MsgSel};
        let mut g = TaskGraph::new();
        g.send(0, 1, 1_000_000_000, vec![]);
        let plan = FaultPlan::default()
            .with_fault(Fault::Delay { sel: MsgSel::any(), delay_ms: 500 });
        let clean = simulate(&g, &spec(), &ExecOptions::all()).makespan;
        let slow =
            simulate_faulty(&g, &spec(), &ExecOptions::all(), &plan, 0).makespan;
        assert!((slow - clean - 0.5).abs() < 1e-6, "clean {clean} slow {slow}");
    }

    #[test]
    fn straggler_slows_only_its_sends() {
        use crate::fault::Fault;
        let mut g = TaskGraph::new();
        g.send(0, 1, 1_000_000, vec![]);
        g.send(2, 3, 1_000_000, vec![]);
        let plan = FaultPlan::default()
            .with_fault(Fault::Straggle { worker: 2, delay_ms: 1000 });
        let r = simulate_faulty(&g, &spec(), &ExecOptions::all(), &plan, 0);
        assert!(r.finish[1] > r.finish[0] + 0.9, "{:?}", r.finish);
    }

    #[test]
    fn duplicates_double_ingress_bytes() {
        use crate::fault::{Fault, MsgSel};
        let mut g = TaskGraph::new();
        g.send(0, 1, 1_000_000, vec![]);
        let plan = FaultPlan::default()
            .with_fault(Fault::Duplicate { sel: MsgSel::any(), p: 1.0 });
        let r = simulate_faulty(&g, &spec(), &ExecOptions::all(), &plan, 0);
        assert_eq!(r.total_bytes_in(), 2_000_000);
        let clean = simulate(&g, &spec(), &ExecOptions::all());
        assert!(r.makespan > clean.makespan);
    }

    #[test]
    fn epoch_scoped_fault_respects_epoch() {
        use crate::fault::{Fault, MsgSel};
        let mut g = TaskGraph::new();
        g.send(0, 1, 1_000_000_000, vec![]);
        let sel = MsgSel { epoch: Some(1), ..MsgSel::any() };
        let plan = FaultPlan::default().with_fault(Fault::Delay { sel, delay_ms: 500 });
        let e0 = simulate_faulty(&g, &spec(), &ExecOptions::all(), &plan, 0).makespan;
        let e1 = simulate_faulty(&g, &spec(), &ExecOptions::all(), &plan, 1).makespan;
        assert!(e1 > e0 + 0.4, "e0 {e0} e1 {e1}");
    }
}

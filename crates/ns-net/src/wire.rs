//! Checksummed wire framing for fabric payloads.
//!
//! Every logical message the fabric carries has a canonical *compact
//! serialization* — the byte layout whose size [`MessageKind::payload_bytes`]
//! meters — and, on the wire, that payload travels inside a small frame:
//!
//! ```text
//! +--------+------+-------------+------------+=================+
//! | magic  | kind | payload len | CRC32      | compact payload |
//! | 4B     | 1B   | 4B LE       | 4B LE      | len bytes       |
//! +--------+------+-------------+------------+=================+
//! ```
//!
//! Receivers verify magic, kind, length, and CRC *before* decoding; a
//! mismatch surfaces as [`NetError::CorruptFrame`](crate::NetError::CorruptFrame)
//! and the sender's retransmission (the fabric re-ships a clean copy under
//! the same sequence number) makes the fault recoverable. The
//! [`FRAME_HEADER_BYTES`] of protocol overhead are *not* metered in
//! `net.sent.bytes` — that counter stays the payload ground truth used by
//! the simulator and the observability closed-form tests.
//!
//! The CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) is computed
//! in-crate; `ns-tensor` carries an identical implementation for checkpoint
//! payloads (the crates do not depend on each other) and a cross-crate
//! agreement test in `ns-runtime` pins the two together.

use crate::fabric::MessageKind;
use std::cell::RefCell;

/// Frame magic: "NSF1" (NeutronStar Frame, version 1).
pub const FRAME_MAGIC: [u8; 4] = *b"NSF1";

/// Size of the frame header prepended to every compact payload:
/// magic (4) + kind tag (1) + payload length (4) + CRC32 (4).
pub const FRAME_HEADER_BYTES: u64 = 13;

const CRC_POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; table `i` advances a byte's contribution `i` further positions, so
/// eight bytes fold into the state with eight independent lookups per
/// iteration instead of a serial chain of eight table steps. Identical
/// checksums to the byte-wise algorithm (pinned by the test vectors below) —
/// this is purely a throughput change for the frame encode path.
const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

/// Streaming CRC32 (IEEE) accumulator, so frame checksums can be computed
/// over tensor payloads without materializing the serialized bytes.
///
/// ```
/// use ns_net::wire::{crc32, Crc32};
/// let mut acc = Crc32::new();
/// acc.update(b"hello ");
/// acc.update(b"world");
/// assert_eq!(acc.finish(), crc32(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum (slice-by-8 main loop, byte-wise
    /// tail).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ c;
            let hi = u32::from_le_bytes(ch[4..8].try_into().unwrap());
            c = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut acc = Crc32::new();
    acc.update(bytes);
    acc.finish()
}

/// Why a received frame failed verification or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than its header or its declared payload.
    Truncated {
        /// Bytes actually present.
        have: usize,
        /// Bytes the header (or the minimum frame) requires.
        need: usize,
    },
    /// The magic bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// The kind tag is not a known [`MessageKind`] tag.
    BadKind(u8),
    /// The payload checksum does not match the header CRC.
    CrcMismatch {
        /// CRC carried in the frame header.
        expected: u32,
        /// CRC recomputed over the received payload.
        computed: u32,
    },
    /// The payload structure is inconsistent (e.g. a row count that does
    /// not divide the data length).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "frame truncated: {have} bytes, need {need}")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadKind(tag) => write!(f, "unknown kind tag {tag:#04x}"),
            FrameError::CrcMismatch { expected, computed } => write!(
                f,
                "payload CRC mismatch: header says {expected:#010x}, computed {computed:#010x}"
            ),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn kind_tag(kind: &MessageKind) -> u8 {
    kind.kind_index() as u8
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends the compact payload of `kind` to `out` without clearing it —
/// the shared body of [`encode_payload_into`] and [`encode_frame_into`]
/// (the latter writes the payload straight after the reserved header).
fn append_payload(kind: &MessageKind, out: &mut Vec<u8>) {
    out.push(kind_tag(kind));
    match kind {
        MessageKind::Rows { layer, ids, cols, data }
        | MessageKind::Grads { layer, ids, cols, data } => {
            put_u32(out, *layer);
            put_u32(out, *cols);
            put_u32(out, ids.len() as u32);
            for id in ids {
                put_u32(out, *id);
            }
            put_f32s(out, data);
        }
        MessageKind::AllReduce { round, data } => {
            put_u32(out, *round);
            put_u32(out, data.len() as u32);
            put_f32s(out, data);
        }
        MessageKind::Control(v) => out.extend_from_slice(&v.to_le_bytes()),
        MessageKind::Query { qids, verts } => {
            put_u32(out, qids.len() as u32);
            put_u32(out, verts.len() as u32);
            for q in qids {
                put_u32(out, *q);
            }
            for v in verts {
                put_u32(out, *v);
            }
        }
        MessageKind::Reply { qids, classes } => {
            put_u32(out, qids.len() as u32);
            for q in qids {
                put_u32(out, *q);
            }
            for c in classes {
                put_u32(out, *c);
            }
        }
    }
}

/// Serializes the compact payload of `kind` into `out` — exactly
/// [`MessageKind::payload_bytes`] bytes, frame header not included. `out`
/// is cleared first; its capacity is reused, so steady-state callers that
/// recycle one buffer never allocate.
pub fn encode_payload_into(kind: &MessageKind, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(kind.payload_bytes() as usize);
    append_payload(kind, out);
}

/// Serializes the compact payload of `kind` into a fresh buffer.
pub fn encode_payload(kind: &MessageKind) -> Vec<u8> {
    let mut out = Vec::new();
    encode_payload_into(kind, &mut out);
    out
}

thread_local! {
    // Reusable serialization scratch for `payload_crc`: one buffer per
    // worker thread, grown once to the largest payload and reused forever
    // after — the receive-side CRC check allocates nothing at steady state.
    static CRC_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// CRC32 of the compact payload of `kind`. Equal to
/// `crc32(&encode_payload(kind))` — the fabric stamps this onto every
/// outgoing frame and receivers recompute it for verification. Serializes
/// into a thread-local reusable scratch buffer so the slice-by-8 CRC loop
/// runs over contiguous bytes (several times faster than streaming the
/// logical fields one `to_le_bytes` array at a time).
pub fn payload_crc(kind: &MessageKind) -> u32 {
    CRC_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        encode_payload_into(kind, &mut buf);
        crc32(&buf)
    })
}

/// Serializes a full frame into `out`: header (magic, kind, length, CRC32)
/// followed by the compact payload — written in one pass. `out` is cleared
/// and reused: the header is reserved up front, the payload is encoded
/// straight into the frame buffer (no intermediate payload `Vec`), and the
/// length and CRC are patched into the reserved bytes afterwards.
pub fn encode_frame_into(kind: &MessageKind, out: &mut Vec<u8>) {
    let header_len = FRAME_HEADER_BYTES as usize;
    out.clear();
    out.reserve(header_len + kind.payload_bytes() as usize);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind_tag(kind));
    out.extend_from_slice(&[0u8; 8]); // length + CRC, patched below
    append_payload(kind, out);
    let payload_len = (out.len() - header_len) as u32;
    let crc = crc32(&out[header_len..]);
    out[5..9].copy_from_slice(&payload_len.to_le_bytes());
    out[9..13].copy_from_slice(&crc.to_le_bytes());
}

/// Serializes a full frame into a fresh buffer (see [`encode_frame_into`]).
pub fn encode_frame(kind: &MessageKind) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(kind, &mut out);
    out
}

/// Reads the CRC32 a frame's header carries (frame must be at least
/// [`FRAME_HEADER_BYTES`] long — i.e. produced by [`encode_frame_into`]).
pub fn frame_crc(frame: &[u8]) -> u32 {
    u32::from_le_bytes(frame[9..13].try_into().unwrap())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.bytes.len() - self.pos < n {
            return Err(FrameError::Truncated {
                have: self.bytes.len(),
                need: self.pos + n,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, FrameError> {
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn decode_payload(tag: u8, payload: &[u8]) -> Result<MessageKind, FrameError> {
    let mut cur = Cursor { bytes: payload, pos: 1 }; // tag already consumed
    let kind = match tag {
        0 | 1 => {
            let layer = cur.u32()?;
            let cols = cur.u32()?;
            let rows = cur.u32()? as usize;
            let mut ids = Vec::with_capacity(rows);
            for _ in 0..rows {
                ids.push(cur.u32()?);
            }
            let n = rows
                .checked_mul(cols as usize)
                .ok_or(FrameError::Malformed("rows * cols overflows"))?;
            let data = cur.f32s(n)?;
            if tag == 0 {
                MessageKind::Rows { layer, ids, cols, data }
            } else {
                MessageKind::Grads { layer, ids, cols, data }
            }
        }
        2 => {
            let round = cur.u32()?;
            let n = cur.u32()? as usize;
            MessageKind::AllReduce { round, data: cur.f32s(n)? }
        }
        3 => MessageKind::Control(f64::from_le_bytes(
            cur.take(8)?.try_into().unwrap(),
        )),
        4 => {
            let nq = cur.u32()? as usize;
            let nv = cur.u32()? as usize;
            let mut qids = Vec::with_capacity(nq);
            for _ in 0..nq {
                qids.push(cur.u32()?);
            }
            let mut verts = Vec::with_capacity(nv);
            for _ in 0..nv {
                verts.push(cur.u32()?);
            }
            MessageKind::Query { qids, verts }
        }
        5 => {
            let nq = cur.u32()? as usize;
            let mut qids = Vec::with_capacity(nq);
            for _ in 0..nq {
                qids.push(cur.u32()?);
            }
            let mut classes = Vec::with_capacity(nq);
            for _ in 0..nq {
                classes.push(cur.u32()?);
            }
            MessageKind::Reply { qids, classes }
        }
        other => return Err(FrameError::BadKind(other)),
    };
    if cur.pos != payload.len() {
        return Err(FrameError::Malformed("trailing bytes after payload"));
    }
    Ok(kind)
}

/// Verifies and decodes a full frame produced by [`encode_frame`]: checks
/// magic, kind tag, declared length, and CRC32 before touching the payload.
pub fn decode_frame(bytes: &[u8]) -> Result<MessageKind, FrameError> {
    let header_len = FRAME_HEADER_BYTES as usize;
    if bytes.len() < header_len {
        return Err(FrameError::Truncated { have: bytes.len(), need: header_len });
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let tag = bytes[4];
    if tag > 5 {
        return Err(FrameError::BadKind(tag));
    }
    let len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let expected = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
    if bytes.len() != header_len + len {
        return Err(FrameError::Truncated { have: bytes.len(), need: header_len + len });
    }
    let payload = &bytes[header_len..];
    let computed = crc32(payload);
    if computed != expected {
        return Err(FrameError::CrcMismatch { expected, computed });
    }
    if payload.is_empty() || payload[0] != tag {
        return Err(FrameError::Malformed("payload tag disagrees with header"));
    }
    decode_payload(tag, payload)
}

/// Returns a copy of `kind` with one payload bit deterministically flipped
/// (chosen by `bit_seed`), leaving the structure decodable but the content
/// wrong — the corruption model used by the `corrupt` fault action. The
/// flip always lands inside the CRC-covered compact payload, so a receiver
/// verifying against the clean frame CRC is guaranteed to detect it.
pub fn flip_payload_bit(kind: &MessageKind, bit_seed: u64) -> MessageKind {
    fn flip_u32(v: u32, bit: u64) -> u32 {
        v ^ (1 << (bit % 32))
    }
    fn flip_f32(v: f32, bit: u64) -> f32 {
        f32::from_bits(v.to_bits() ^ (1 << (bit % 32)))
    }
    let mut out = kind.clone();
    match &mut out {
        MessageKind::Rows { layer, ids, data, .. }
        | MessageKind::Grads { layer, ids, data, .. } => {
            let total = ids.len() + data.len();
            if total == 0 {
                *layer = flip_u32(*layer, bit_seed);
            } else {
                let slot = (bit_seed / 32) as usize % total;
                if slot < ids.len() {
                    ids[slot] = flip_u32(ids[slot], bit_seed);
                } else {
                    let i = slot - ids.len();
                    data[i] = flip_f32(data[i], bit_seed);
                }
            }
        }
        MessageKind::AllReduce { round, data } => {
            if data.is_empty() {
                *round = flip_u32(*round, bit_seed);
            } else {
                let i = (bit_seed / 32) as usize % data.len();
                data[i] = flip_f32(data[i], bit_seed);
            }
        }
        MessageKind::Control(v) => {
            *v = f64::from_bits(v.to_bits() ^ (1 << (bit_seed % 64)));
        }
        MessageKind::Query { qids, verts } => {
            let total = qids.len() + verts.len();
            if total == 0 {
                // Flip a length field: structurally invalid, still CRC-caught.
                qids.push(1 << (bit_seed % 32));
            } else {
                let slot = (bit_seed / 32) as usize % total;
                if slot < qids.len() {
                    qids[slot] = flip_u32(qids[slot], bit_seed);
                } else {
                    let i = slot - qids.len();
                    verts[i] = flip_u32(verts[i], bit_seed);
                }
            }
        }
        MessageKind::Reply { qids, classes } => {
            let total = qids.len() + classes.len();
            if total == 0 {
                qids.push(1 << (bit_seed % 32));
            } else {
                let slot = (bit_seed / 32) as usize % total;
                if slot < qids.len() {
                    qids[slot] = flip_u32(qids[slot], bit_seed);
                } else {
                    let i = slot - qids.len();
                    classes[i] = flip_u32(classes[i], bit_seed);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kinds() -> Vec<MessageKind> {
        vec![
            MessageKind::Rows {
                layer: 2,
                ids: vec![3, 9, 11],
                cols: 2,
                data: vec![1.0, -2.5, 0.0, 4.25, -0.125, 7.5],
            },
            MessageKind::Grads { layer: 0, ids: vec![5], cols: 3, data: vec![0.5, 1.5, 2.5] },
            MessageKind::AllReduce { round: 7, data: vec![0.25, -0.75] },
            MessageKind::AllReduce { round: 0, data: vec![] },
            MessageKind::Control(-3.125),
            MessageKind::Query { qids: vec![1, 2, 3], verts: vec![40, 50, 60] },
            MessageKind::Query { qids: vec![], verts: vec![7, 9] },
            MessageKind::Reply { qids: vec![11, 12], classes: vec![0, 6] },
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_crc_equals_one_shot() {
        let bytes: Vec<u8> = (0u16..700).map(|i| (i % 251) as u8).collect();
        let mut acc = Crc32::new();
        for chunk in bytes.chunks(13) {
            acc.update(chunk);
        }
        assert_eq!(acc.finish(), crc32(&bytes));
    }

    #[test]
    fn payload_crc_streams_without_serializing() {
        for kind in sample_kinds() {
            assert_eq!(payload_crc(&kind), crc32(&encode_payload(&kind)), "{}", kind.name());
        }
    }

    #[test]
    fn encode_matches_metered_payload_bytes() {
        for kind in sample_kinds() {
            assert_eq!(
                encode_payload(&kind).len() as u64,
                kind.payload_bytes(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn frame_roundtrip_is_lossless() {
        for kind in sample_kinds() {
            let frame = encode_frame(&kind);
            assert_eq!(frame.len() as u64, FRAME_HEADER_BYTES + kind.payload_bytes());
            let back = decode_frame(&frame).unwrap();
            assert_eq!(payload_crc(&back), payload_crc(&kind));
            assert_eq!(back.name(), kind.name());
        }
    }

    #[test]
    fn frame_encode_into_matches_and_reuses_the_buffer() {
        let mut buf = Vec::new();
        for kind in sample_kinds() {
            encode_frame_into(&kind, &mut buf);
            assert_eq!(buf, encode_frame(&kind), "{}", kind.name());
            assert_eq!(frame_crc(&buf), payload_crc(&kind), "{}", kind.name());
            assert_eq!(decode_frame(&buf).unwrap().name(), kind.name());
        }
        // Once grown to the largest frame, re-encoding never reallocates.
        let cap = buf.capacity();
        for kind in sample_kinds() {
            encode_frame_into(&kind, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "steady-state encode must not grow");
    }

    #[test]
    fn any_single_bit_flip_in_frame_is_detected() {
        let kind = MessageKind::Rows {
            layer: 1,
            ids: vec![4, 8],
            cols: 2,
            data: vec![0.5, 1.5, -2.0, 3.75],
        };
        let frame = encode_frame(&kind);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn any_truncation_is_detected() {
        let frame = encode_frame(&MessageKind::AllReduce { round: 3, data: vec![1.0, 2.0] });
        for keep in 0..frame.len() {
            assert!(
                decode_frame(&frame[..keep]).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    #[test]
    fn flipped_payload_bit_fails_crc_against_clean_header() {
        for kind in sample_kinds() {
            let clean = payload_crc(&kind);
            for seed in [0u64, 17, 63, 64, 12345, u64::MAX] {
                let bad = flip_payload_bit(&kind, seed);
                assert_ne!(payload_crc(&bad), clean, "{} seed {seed}", kind.name());
            }
        }
    }
}

//! Lock-free parallel message enqueuing (§4.3).
//!
//! NeutronStar observes that GNN messages have a *regular* pattern: within
//! one layer's send task, the set of rows destined to each worker — and
//! therefore each row's position in the outgoing buffer — is known before
//! any thread starts writing. It therefore pre-computes a write-position
//! index and lets every producer thread write its rows at their final
//! offsets without synchronization, eliminating the mutex that
//! conventional message queues serialize on.
//!
//! [`LockFreeChunkBuffer`] implements that scheme (with a per-slot claim
//! flag so double writes are a detected bug rather than UB), and
//! [`MutexChunkBuffer`] is the conventional lock-guarded design used as
//! the ablation baseline ("L" in Fig. 9).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// Fixed-size row buffer with pre-assigned slots and lock-free writes.
pub struct LockFreeChunkBuffer {
    cols: usize,
    slots: usize,
    data: UnsafeCell<Vec<f32>>,
    claimed: Box<[AtomicBool]>,
}

// SAFETY: concurrent `write_row` calls touch disjoint `data` ranges, which
// is enforced at runtime by the `claimed` CAS (a second write to the same
// slot panics before touching `data`).
unsafe impl Sync for LockFreeChunkBuffer {}

impl LockFreeChunkBuffer {
    /// A buffer with `slots` rows of width `cols`.
    pub fn new(slots: usize, cols: usize) -> Self {
        Self::with_storage(slots, cols, vec![0.0; slots * cols])
    }

    /// A buffer backed by caller-provided `storage` (length must be
    /// `slots * cols`; contents may be stale — every slot is overwritten
    /// before [`Self::into_rows`] will release the buffer). Lets callers
    /// recycle message buffers through their own pool instead of
    /// allocating per send task.
    ///
    /// # Panics
    /// Panics if `storage.len() != slots * cols`.
    pub fn with_storage(slots: usize, cols: usize, storage: Vec<f32>) -> Self {
        assert_eq!(storage.len(), slots * cols, "storage length mismatch");
        Self {
            cols,
            slots,
            data: UnsafeCell::new(storage),
            claimed: (0..slots).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Writes `row` into `slot`. Callable concurrently from many threads;
    /// each slot may be written exactly once.
    ///
    /// # Panics
    /// Panics if `slot` is out of range, `row` has the wrong width, or the
    /// slot was already written.
    pub fn write_row(&self, slot: usize, row: &[f32]) {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        assert_eq!(row.len(), self.cols, "row width mismatch");
        let was = self.claimed[slot].swap(true, Ordering::AcqRel);
        assert!(!was, "slot {slot} written twice");
        // SAFETY: the CAS above guarantees exclusive access to this range.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr().add(slot * self.cols);
            std::ptr::copy_nonoverlapping(row.as_ptr(), base, self.cols);
        }
    }

    /// True when every slot has been written.
    pub fn is_complete(&self) -> bool {
        self.claimed.iter().all(|c| c.load(Ordering::Acquire))
    }

    /// Consumes the buffer into its row-major contents.
    ///
    /// # Panics
    /// Panics if any slot was never written (a missing message is a bug).
    pub fn into_rows(self) -> Vec<f32> {
        assert!(self.is_complete(), "buffer finalized with unwritten slots");
        self.data.into_inner()
    }
}

/// One layer-send's worth of per-destination outgoing buffers, filled by
/// the compute thread pool with no mutex on the write path (§4.3, the
/// "lock-free parallel message enqueuing" of Fig. 8).
///
/// The regular message pattern makes every row's final position known
/// before any thread writes: destination `d`'s slot `s` holds the row for
/// `rows_per_dst[d][s]`. [`ParallelEnqueue::fill`] flattens all
/// destinations' slots into one index space and hands out contiguous
/// *slot ranges* via the pool's atomic chunk cursor — claiming a range is
/// a single `fetch_add`, and each slot's claim flag then only guards
/// against double writes (a bug detector, not a lock). Flushing happens
/// afterwards in whatever ring order the fabric wants via
/// [`ParallelEnqueue::take`].
pub struct ParallelEnqueue {
    cols: usize,
    /// Flattened slot-space offsets: destination `d` owns global slots
    /// `starts[d]..starts[d + 1]`.
    starts: Vec<usize>,
    bufs: Vec<LockFreeChunkBuffer>,
}

impl ParallelEnqueue {
    /// Buffers for one send task: `slots_per_dst[d]` rows of width `cols`
    /// will go to destination `d`.
    pub fn new(cols: usize, slots_per_dst: &[usize]) -> Self {
        Self::new_with(cols, slots_per_dst, |len| vec![0.0; len])
    }

    /// [`Self::new`] with caller-controlled storage: `alloc(len)` supplies
    /// each destination's backing buffer (exactly `len` elements, stale
    /// contents allowed — every slot is written before the buffer leaves
    /// via [`Self::take`]). This is how the runtime routes the per-epoch
    /// message staging buffers through its tensor pool instead of the
    /// system allocator.
    pub fn new_with(
        cols: usize,
        slots_per_dst: &[usize],
        mut alloc: impl FnMut(usize) -> Vec<f32>,
    ) -> Self {
        let mut starts = Vec::with_capacity(slots_per_dst.len() + 1);
        starts.push(0usize);
        for &s in slots_per_dst {
            starts.push(starts.last().unwrap() + s);
        }
        Self {
            cols,
            starts,
            bufs: slots_per_dst
                .iter()
                .map(|&s| LockFreeChunkBuffer::with_storage(s, cols, alloc(s * cols)))
                .collect(),
        }
    }

    /// Number of destinations.
    pub fn dests(&self) -> usize {
        self.bufs.len()
    }

    /// Total slots across all destinations.
    pub fn total_slots(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Gathers `src` rows (an `n x cols` row-major matrix) into every
    /// destination buffer concurrently: slot `s` of destination `d`
    /// receives row `rows_per_dst[d][s]`. One parallel job covers the
    /// whole flattened slot space, so a fast thread steals slot ranges
    /// from slow ones regardless of which destination they belong to.
    ///
    /// # Panics
    /// Panics if `src` is not `n x cols`, a row index is out of range, or
    /// `rows_per_dst` does not match the constructor's slot counts.
    pub fn fill(&self, src: &[f32], rows_per_dst: &[&[u32]]) {
        assert_eq!(rows_per_dst.len(), self.bufs.len(), "destination count");
        for (d, ids) in rows_per_dst.iter().enumerate() {
            assert_eq!(ids.len(), self.bufs[d].slots(), "slot count for dest {d}");
        }
        assert_eq!(src.len() % self.cols.max(1), 0, "src not row-major x cols");
        let cols = self.cols;
        let total = self.total_slots();
        if total == 0 {
            return;
        }
        // Small sends take one chunk (inline, no dispatch); large ones
        // split into a few ranges per thread for stealing.
        let chunk = if total * cols < 1 << 14 {
            total
        } else {
            ns_par::chunk_len(total, ns_par::threads())
        };
        ns_par::par_ranges(total, chunk, |lo, hi| {
            // First destination whose slot range intersects [lo, hi).
            let mut d = match self.starts.binary_search(&lo) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let mut g = lo;
            while g < hi {
                let ids = rows_per_dst[d];
                let local_end = (hi - self.starts[d]).min(ids.len());
                for s in (g - self.starts[d])..local_end {
                    let r = ids[s] as usize;
                    self.bufs[d].write_row(s, &src[r * cols..(r + 1) * cols]);
                }
                g = self.starts[d] + local_end;
                d += 1;
            }
        });
    }

    /// Takes destination `d`'s filled rows (row-major), leaving an empty
    /// buffer behind. Called by the fabric in ring order after
    /// [`Self::fill`] completes.
    ///
    /// # Panics
    /// Panics if any of `d`'s slots was never written.
    pub fn take(&mut self, d: usize) -> Vec<f32> {
        std::mem::replace(&mut self.bufs[d], LockFreeChunkBuffer::new(0, self.cols)).into_rows()
    }
}

/// The conventional mutex-guarded buffer, same interface (used by the "no
/// lock-free queuing" ablation and as the reference for equivalence
/// tests).
pub struct MutexChunkBuffer {
    cols: usize,
    slots: usize,
    inner: Mutex<BufferState>,
}

/// Row storage plus per-slot written flags, guarded together.
type BufferState = (Box<[f32]>, Box<[bool]>);

impl MutexChunkBuffer {
    /// A buffer with `slots` rows of width `cols`.
    pub fn new(slots: usize, cols: usize) -> Self {
        Self {
            cols,
            slots,
            inner: Mutex::new((
                vec![0.0; slots * cols].into_boxed_slice(),
                vec![false; slots].into_boxed_slice(),
            )),
        }
    }

    /// Writes `row` into `slot` under the lock.
    pub fn write_row(&self, slot: usize, row: &[f32]) {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        assert_eq!(row.len(), self.cols, "row width mismatch");
        let mut guard = self.inner.lock();
        let (data, claimed) = &mut *guard;
        assert!(!claimed[slot], "slot {slot} written twice");
        claimed[slot] = true;
        data[slot * self.cols..(slot + 1) * self.cols].copy_from_slice(row);
    }

    /// Consumes the buffer into its row-major contents.
    pub fn into_rows(self) -> Vec<f32> {
        let (data, claimed) = self.inner.into_inner();
        assert!(
            claimed.iter().all(|&c| c),
            "buffer finalized with unwritten slots"
        );
        data.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let buf = LockFreeChunkBuffer::new(3, 2);
        buf.write_row(1, &[3.0, 4.0]);
        buf.write_row(0, &[1.0, 2.0]);
        buf.write_row(2, &[5.0, 6.0]);
        assert!(buf.is_complete());
        assert_eq!(buf.into_rows(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_detected() {
        let buf = LockFreeChunkBuffer::new(2, 1);
        buf.write_row(0, &[1.0]);
        buf.write_row(0, &[2.0]);
    }

    #[test]
    #[should_panic(expected = "unwritten slots")]
    fn incomplete_finalize_detected() {
        let buf = LockFreeChunkBuffer::new(2, 1);
        buf.write_row(0, &[1.0]);
        let _ = buf.into_rows();
    }

    #[test]
    fn concurrent_writers_fill_disjoint_slots() {
        let slots = 1024;
        let cols = 8;
        let buf = LockFreeChunkBuffer::new(slots, cols);
        crossbeam::thread::scope(|s| {
            for t in 0..8usize {
                let buf = &buf;
                s.spawn(move |_| {
                    for slot in (t..slots).step_by(8) {
                        let row: Vec<f32> = (0..cols).map(|c| (slot * cols + c) as f32).collect();
                        buf.write_row(slot, &row);
                    }
                });
            }
        })
        .unwrap();
        let rows = buf.into_rows();
        for (i, v) in rows.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn lockfree_equals_mutex_under_concurrency() {
        let slots = 512;
        let cols = 4;
        let lf = LockFreeChunkBuffer::new(slots, cols);
        let mx = MutexChunkBuffer::new(slots, cols);
        crossbeam::thread::scope(|s| {
            for t in 0..4usize {
                let (lf, mx) = (&lf, &mx);
                s.spawn(move |_| {
                    for slot in (t..slots).step_by(4) {
                        let row: Vec<f32> = (0..cols).map(|c| (slot + c) as f32).collect();
                        lf.write_row(slot, &row);
                        mx.write_row(slot, &row);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(lf.into_rows(), mx.into_rows());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_rejected() {
        LockFreeChunkBuffer::new(1, 1).write_row(1, &[0.0]);
    }

    /// Sequential reference for `ParallelEnqueue::fill`: per destination,
    /// gather the listed rows in order.
    fn gather_ref(src: &[f32], cols: usize, ids: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(ids.len() * cols);
        for &r in ids {
            out.extend_from_slice(&src[r as usize * cols..(r as usize + 1) * cols]);
        }
        out
    }

    #[test]
    fn parallel_enqueue_matches_sequential_gather() {
        let cols = 3;
        let n = 50;
        let src: Vec<f32> = (0..n * cols).map(|i| i as f32).collect();
        let dests: Vec<Vec<u32>> = vec![
            (0..40u32).collect(),
            vec![],
            (5..45u32).rev().collect(),
            vec![7, 7, 7, 0, 49],
        ];
        let slot_counts: Vec<usize> = dests.iter().map(Vec::len).collect();
        for threads in [1, 4] {
            ns_par::set_threads(threads);
            let mut enq = ParallelEnqueue::new(cols, &slot_counts);
            assert_eq!(enq.dests(), 4);
            let views: Vec<&[u32]> = dests.iter().map(Vec::as_slice).collect();
            enq.fill(&src, &views);
            for (d, ids) in dests.iter().enumerate() {
                assert_eq!(enq.take(d), gather_ref(&src, cols, ids), "dest {d}");
            }
        }
        ns_par::set_threads(1);
    }

    #[test]
    fn parallel_enqueue_large_send_crosses_chunk_boundaries() {
        // Big enough that fill() splits into many slot ranges spanning
        // several destinations; every row must still land exactly once.
        ns_par::set_threads(4);
        let cols = 16;
        let n = 4096;
        let src: Vec<f32> = (0..n * cols).map(|i| (i % 977) as f32).collect();
        let dests: Vec<Vec<u32>> = (0..5usize)
            .map(|d| ((d as u32 * 7) % 13..n as u32).step_by(d + 1).collect())
            .collect();
        let slot_counts: Vec<usize> = dests.iter().map(Vec::len).collect();
        let mut enq = ParallelEnqueue::new(cols, &slot_counts);
        let views: Vec<&[u32]> = dests.iter().map(Vec::as_slice).collect();
        enq.fill(&src, &views);
        for (d, ids) in dests.iter().enumerate() {
            assert_eq!(enq.take(d), gather_ref(&src, cols, ids), "dest {d}");
        }
        ns_par::set_threads(1);
    }

    #[test]
    #[should_panic(expected = "unwritten slots")]
    fn parallel_enqueue_take_before_fill_detected() {
        let mut enq = ParallelEnqueue::new(2, &[3]);
        let _ = enq.take(0);
    }

    #[test]
    #[should_panic(expected = "slot count")]
    fn parallel_enqueue_rejects_mismatched_row_lists() {
        let enq = ParallelEnqueue::new(1, &[2, 2]);
        enq.fill(&[1.0, 2.0], &[&[0, 1], &[0]]);
    }
}

//! Lock-free parallel message enqueuing (§4.3).
//!
//! NeutronStar observes that GNN messages have a *regular* pattern: within
//! one layer's send task, the set of rows destined to each worker — and
//! therefore each row's position in the outgoing buffer — is known before
//! any thread starts writing. It therefore pre-computes a write-position
//! index and lets every producer thread write its rows at their final
//! offsets without synchronization, eliminating the mutex that
//! conventional message queues serialize on.
//!
//! [`LockFreeChunkBuffer`] implements that scheme (with a per-slot claim
//! flag so double writes are a detected bug rather than UB), and
//! [`MutexChunkBuffer`] is the conventional lock-guarded design used as
//! the ablation baseline ("L" in Fig. 9).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// Fixed-size row buffer with pre-assigned slots and lock-free writes.
pub struct LockFreeChunkBuffer {
    cols: usize,
    slots: usize,
    data: UnsafeCell<Box<[f32]>>,
    claimed: Box<[AtomicBool]>,
}

// SAFETY: concurrent `write_row` calls touch disjoint `data` ranges, which
// is enforced at runtime by the `claimed` CAS (a second write to the same
// slot panics before touching `data`).
unsafe impl Sync for LockFreeChunkBuffer {}

impl LockFreeChunkBuffer {
    /// A buffer with `slots` rows of width `cols`.
    pub fn new(slots: usize, cols: usize) -> Self {
        Self {
            cols,
            slots,
            data: UnsafeCell::new(vec![0.0; slots * cols].into_boxed_slice()),
            claimed: (0..slots).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Writes `row` into `slot`. Callable concurrently from many threads;
    /// each slot may be written exactly once.
    ///
    /// # Panics
    /// Panics if `slot` is out of range, `row` has the wrong width, or the
    /// slot was already written.
    pub fn write_row(&self, slot: usize, row: &[f32]) {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        assert_eq!(row.len(), self.cols, "row width mismatch");
        let was = self.claimed[slot].swap(true, Ordering::AcqRel);
        assert!(!was, "slot {slot} written twice");
        // SAFETY: the CAS above guarantees exclusive access to this range.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr().add(slot * self.cols);
            std::ptr::copy_nonoverlapping(row.as_ptr(), base, self.cols);
        }
    }

    /// True when every slot has been written.
    pub fn is_complete(&self) -> bool {
        self.claimed.iter().all(|c| c.load(Ordering::Acquire))
    }

    /// Consumes the buffer into its row-major contents.
    ///
    /// # Panics
    /// Panics if any slot was never written (a missing message is a bug).
    pub fn into_rows(self) -> Vec<f32> {
        assert!(self.is_complete(), "buffer finalized with unwritten slots");
        self.data.into_inner().into_vec()
    }
}

/// The conventional mutex-guarded buffer, same interface (used by the "no
/// lock-free queuing" ablation and as the reference for equivalence
/// tests).
pub struct MutexChunkBuffer {
    cols: usize,
    slots: usize,
    inner: Mutex<BufferState>,
}

/// Row storage plus per-slot written flags, guarded together.
type BufferState = (Box<[f32]>, Box<[bool]>);

impl MutexChunkBuffer {
    /// A buffer with `slots` rows of width `cols`.
    pub fn new(slots: usize, cols: usize) -> Self {
        Self {
            cols,
            slots,
            inner: Mutex::new((
                vec![0.0; slots * cols].into_boxed_slice(),
                vec![false; slots].into_boxed_slice(),
            )),
        }
    }

    /// Writes `row` into `slot` under the lock.
    pub fn write_row(&self, slot: usize, row: &[f32]) {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        assert_eq!(row.len(), self.cols, "row width mismatch");
        let mut guard = self.inner.lock();
        let (data, claimed) = &mut *guard;
        assert!(!claimed[slot], "slot {slot} written twice");
        claimed[slot] = true;
        data[slot * self.cols..(slot + 1) * self.cols].copy_from_slice(row);
    }

    /// Consumes the buffer into its row-major contents.
    pub fn into_rows(self) -> Vec<f32> {
        let (data, claimed) = self.inner.into_inner();
        assert!(
            claimed.iter().all(|&c| c),
            "buffer finalized with unwritten slots"
        );
        data.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let buf = LockFreeChunkBuffer::new(3, 2);
        buf.write_row(1, &[3.0, 4.0]);
        buf.write_row(0, &[1.0, 2.0]);
        buf.write_row(2, &[5.0, 6.0]);
        assert!(buf.is_complete());
        assert_eq!(buf.into_rows(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_detected() {
        let buf = LockFreeChunkBuffer::new(2, 1);
        buf.write_row(0, &[1.0]);
        buf.write_row(0, &[2.0]);
    }

    #[test]
    #[should_panic(expected = "unwritten slots")]
    fn incomplete_finalize_detected() {
        let buf = LockFreeChunkBuffer::new(2, 1);
        buf.write_row(0, &[1.0]);
        let _ = buf.into_rows();
    }

    #[test]
    fn concurrent_writers_fill_disjoint_slots() {
        let slots = 1024;
        let cols = 8;
        let buf = LockFreeChunkBuffer::new(slots, cols);
        crossbeam::thread::scope(|s| {
            for t in 0..8usize {
                let buf = &buf;
                s.spawn(move |_| {
                    for slot in (t..slots).step_by(8) {
                        let row: Vec<f32> = (0..cols).map(|c| (slot * cols + c) as f32).collect();
                        buf.write_row(slot, &row);
                    }
                });
            }
        })
        .unwrap();
        let rows = buf.into_rows();
        for (i, v) in rows.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn lockfree_equals_mutex_under_concurrency() {
        let slots = 512;
        let cols = 4;
        let lf = LockFreeChunkBuffer::new(slots, cols);
        let mx = MutexChunkBuffer::new(slots, cols);
        crossbeam::thread::scope(|s| {
            for t in 0..4usize {
                let (lf, mx) = (&lf, &mx);
                s.spawn(move |_| {
                    for slot in (t..slots).step_by(4) {
                        let row: Vec<f32> = (0..cols).map(|c| (slot + c) as f32).collect();
                        lf.write_row(slot, &row);
                        mx.write_row(slot, &row);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(lf.into_rows(), mx.into_rows());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_rejected() {
        LockFreeChunkBuffer::new(1, 1).write_row(1, &[0.0]);
    }
}

//! Cluster membership view and the worker rejoin handshake.
//!
//! The elastic trainer treats failures as *transient*: a worker killed by
//! a fault (or voluntarily evicted as a straggler) leaves the active set,
//! the plan shrinks to the survivors, and at the next checkpoint boundary
//! the member re-admits through a [`request_rejoin`] / [`admit_rejoin`]
//! handshake — three [`Control`](crate::MessageKind::Control) round trips
//! on a fresh two-node fabric, after which the coordinator streams the
//! checkpointed parameters (metered as `membership.rejoin.bytes`) and the
//! plan is rebuilt over the restored world.
//!
//! The [`MembershipView`] is the coordinator's bookkeeping: every member's
//! [`MemberState`] keyed by its *original* slot, plus an append-only event
//! log. Worker plans are always indexed by *compact* rank (`0..active`),
//! so the view also provides the compact-rank ↔ original-slot mapping that
//! keeps fault attribution stable across renumberings.

use std::time::Duration;

use crate::fabric::{Endpoint, MessageKind, NetError, CONTROL_BYTES};

/// Lifecycle state of one cluster member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Participating in training.
    Active,
    /// Crashed mid-chunk (kill fault / wedged peer); awaiting rejoin.
    Failed,
    /// Voluntarily removed by the straggler policy; awaiting rejoin.
    Evicted,
}

/// What happened to a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEventKind {
    /// The member crashed and was dropped from the plan.
    Failed,
    /// The member was evicted as a straggler at a checkpoint boundary.
    Evicted,
    /// The member re-admitted through the rejoin handshake.
    Rejoined,
}

impl MembershipEventKind {
    /// Name used in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            MembershipEventKind::Failed => "failed",
            MembershipEventKind::Evicted => "evicted",
            MembershipEventKind::Rejoined => "rejoined",
        }
    }
}

/// One entry of the membership event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Epoch boundary the transition took effect at (for failures: the
    /// epoch the failure surfaced in).
    pub epoch: usize,
    /// The member's *original* slot in the full world.
    pub worker: usize,
    /// The transition.
    pub kind: MembershipEventKind,
}

/// The coordinator's view of who is in the cluster.
///
/// Slots are the original worker ids (`0..world`); the *compact rank* of
/// an active member is its index in the sorted active list, which is the
/// worker id the execution plans and the fabric use. When the view is
/// full, compact rank and original slot coincide.
#[derive(Debug, Clone)]
pub struct MembershipView {
    states: Vec<MemberState>,
    events: Vec<MembershipEvent>,
}

impl MembershipView {
    /// A full, healthy world of `world` members.
    pub fn new(world: usize) -> Self {
        Self { states: vec![MemberState::Active; world], events: Vec::new() }
    }

    /// Original world size.
    pub fn world(&self) -> usize {
        self.states.len()
    }

    /// State of one member by original slot.
    pub fn state(&self, slot: usize) -> MemberState {
        self.states[slot]
    }

    /// Original slots of the active members, ascending — index in this
    /// list is the member's compact rank.
    pub fn active(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&s| self.states[s] == MemberState::Active).collect()
    }

    /// Number of active members.
    pub fn active_count(&self) -> usize {
        self.states.iter().filter(|s| **s == MemberState::Active).count()
    }

    /// Whether every member is active.
    pub fn is_full(&self) -> bool {
        self.active_count() == self.world()
    }

    /// Original slots currently out of the cluster (failed or evicted).
    pub fn missing(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&s| self.states[s] != MemberState::Active).collect()
    }

    /// Resolves a compact rank (plan/fabric worker id) to the member's
    /// original slot. Panics if the rank exceeds the active count.
    pub fn slot_of_rank(&self, rank: usize) -> usize {
        self.active()[rank]
    }

    /// Records that the member at compact rank `rank` crashed at `epoch`;
    /// returns its original slot.
    pub fn mark_failed(&mut self, rank: usize, epoch: usize) -> usize {
        let slot = self.slot_of_rank(rank);
        self.states[slot] = MemberState::Failed;
        self.events.push(MembershipEvent {
            epoch,
            worker: slot,
            kind: MembershipEventKind::Failed,
        });
        slot
    }

    /// Records that the member at compact rank `rank` was evicted as a
    /// straggler at the `epoch` boundary; returns its original slot.
    pub fn mark_evicted(&mut self, rank: usize, epoch: usize) -> usize {
        let slot = self.slot_of_rank(rank);
        self.states[slot] = MemberState::Evicted;
        self.events.push(MembershipEvent {
            epoch,
            worker: slot,
            kind: MembershipEventKind::Evicted,
        });
        slot
    }

    /// Re-admits the member at original `slot` at the `epoch` boundary.
    pub fn admit(&mut self, slot: usize, epoch: usize) {
        debug_assert_ne!(self.states[slot], MemberState::Active, "double admit");
        self.states[slot] = MemberState::Active;
        self.events.push(MembershipEvent {
            epoch,
            worker: slot,
            kind: MembershipEventKind::Rejoined,
        });
    }

    /// The append-only event log.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }
}

/// What the coordinator offers a rejoining worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinOffer {
    /// First epoch the rejoined worker will run (the checkpoint boundary).
    pub resume_epoch: usize,
    /// Size of the parameter/optimizer state the coordinator streams to
    /// bring the worker up to date, bytes.
    pub state_bytes: u64,
}

/// Control-plane bytes one complete handshake puts on the wire
/// (hello + resume-epoch offer + state-size offer + ack).
pub const REJOIN_HANDSHAKE_BYTES: u64 = 4 * CONTROL_BYTES;

fn recv_control(
    ep: &Endpoint,
    src: usize,
    timeout: Duration,
) -> Result<f64, NetError> {
    let msg = ep.recv_from_timeout(src, timeout)?;
    match msg.kind {
        MessageKind::Control(v) => Ok(v),
        other => Err(NetError::UnexpectedKind {
            peer: src,
            expected: "Control",
            got: other.name(),
        }),
    }
}

/// Joiner side of the rejoin handshake: announce the original `slot` we
/// want back, wait for the coordinator's offer, acknowledge it.
///
/// Runs against [`admit_rejoin`] on the other side of a two-node fabric
/// (conventionally coordinator = 0, joiner = 1); the two sides must run on
/// separate threads, exactly like the worker loops they model.
pub fn request_rejoin(
    ep: &Endpoint,
    coord: usize,
    slot: usize,
    timeout: Duration,
) -> Result<RejoinOffer, NetError> {
    ep.send(coord, MessageKind::Control(slot as f64))?;
    let resume_epoch = recv_control(ep, coord, timeout)? as usize;
    let state_bytes = recv_control(ep, coord, timeout)? as u64;
    ep.send(coord, MessageKind::Control(slot as f64))?; // ack
    Ok(RejoinOffer { resume_epoch, state_bytes })
}

/// Coordinator side of the rejoin handshake: wait for the joiner's hello,
/// answer with the resume epoch and the size of the state snapshot it must
/// ingest, and wait for the ack. Returns the original slot the joiner
/// announced (the caller decides whether to honor it).
pub fn admit_rejoin(
    ep: &Endpoint,
    joiner: usize,
    resume_epoch: usize,
    state_bytes: u64,
    timeout: Duration,
) -> Result<usize, NetError> {
    let slot = recv_control(ep, joiner, timeout)? as usize;
    ep.send(joiner, MessageKind::Control(resume_epoch as f64))?;
    ep.send(joiner, MessageKind::Control(state_bytes as f64))?;
    let ack = recv_control(ep, joiner, timeout)? as usize;
    if ack != slot {
        return Err(NetError::UnexpectedKind {
            peer: joiner,
            expected: "Control(ack=slot)",
            got: "Control(mismatched ack)",
        });
    }
    Ok(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;

    const T: Duration = Duration::from_millis(2_000);

    #[test]
    fn fresh_view_is_full() {
        let view = MembershipView::new(4);
        assert_eq!(view.world(), 4);
        assert!(view.is_full());
        assert_eq!(view.active(), vec![0, 1, 2, 3]);
        assert!(view.missing().is_empty());
        assert!(view.events().is_empty());
    }

    #[test]
    fn fail_shrinks_and_admit_restores() {
        let mut view = MembershipView::new(3);
        let slot = view.mark_failed(1, 5);
        assert_eq!(slot, 1);
        assert_eq!(view.active(), vec![0, 2]);
        assert_eq!(view.active_count(), 2);
        assert!(!view.is_full());
        assert_eq!(view.missing(), vec![1]);
        assert_eq!(view.state(1), MemberState::Failed);
        // Compact rank 1 now maps to original slot 2.
        assert_eq!(view.slot_of_rank(1), 2);
        view.admit(1, 6);
        assert!(view.is_full());
        assert_eq!(view.slot_of_rank(1), 1);
        let kinds: Vec<_> = view.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![MembershipEventKind::Failed, MembershipEventKind::Rejoined]
        );
    }

    #[test]
    fn renumbered_failure_attributes_original_slot() {
        let mut view = MembershipView::new(4);
        view.mark_failed(2, 1); // original slot 2 dies
        // In the shrunken world {0, 1, 3}, compact rank 2 is original 3.
        let slot = view.mark_evicted(2, 3);
        assert_eq!(slot, 3);
        assert_eq!(view.active(), vec![0, 1]);
        assert_eq!(view.state(3), MemberState::Evicted);
    }

    #[test]
    fn rejoin_handshake_round_trips() {
        let mut eps = Fabric::new(2).into_endpoints();
        let joiner = eps.pop().unwrap();
        let coord = eps.pop().unwrap();
        crossbeam::thread::scope(|s| {
            let h = s.spawn(move |_| request_rejoin(&joiner, 0, 7, T));
            let slot = admit_rejoin(&coord, 1, 12, 4096, T).unwrap();
            assert_eq!(slot, 7);
            let st = coord.stats();
            assert_eq!(st.sent_msgs, 2);
            assert_eq!(st.sent_bytes, 2 * CONTROL_BYTES);
            let offer = h.join().unwrap().unwrap();
            assert_eq!(offer, RejoinOffer { resume_epoch: 12, state_bytes: 4096 });
        })
        .unwrap();
    }

    #[test]
    fn handshake_times_out_without_a_coordinator() {
        let mut eps = Fabric::new(2).into_endpoints();
        let joiner = eps.pop().unwrap();
        let err =
            request_rejoin(&joiner, 0, 1, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, NetError::RecvTimeout { peer: 0, .. }), "{err:?}");
    }

    #[test]
    fn handshake_rejects_protocol_desync() {
        let mut eps = Fabric::new(2).into_endpoints();
        let joiner = eps.pop().unwrap();
        let coord = eps.pop().unwrap();
        crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                // A confused joiner sends rows instead of the hello.
                joiner
                    .send(
                        0,
                        MessageKind::Rows {
                            layer: 0,
                            ids: vec![1],
                            cols: 1,
                            data: vec![0.0],
                        },
                    )
                    .unwrap();
            });
            let err = admit_rejoin(&coord, 1, 0, 0, T).unwrap_err();
            assert!(
                matches!(err, NetError::UnexpectedKind { expected: "Control", .. }),
                "{err:?}"
            );
        })
        .unwrap();
    }

    #[test]
    fn handshake_byte_constant_matches_protocol() {
        let mut eps = Fabric::new(2).into_endpoints();
        let joiner = eps.pop().unwrap();
        let coord = eps.pop().unwrap();
        crossbeam::thread::scope(|s| {
            let h = s.spawn(move |_| {
                let offer = request_rejoin(&joiner, 0, 0, T).unwrap();
                (offer, joiner.stats().sent_bytes)
            });
            admit_rejoin(&coord, 1, 4, 99, T).unwrap();
            let coord_bytes = coord.stats().sent_bytes;
            let (_, joiner_bytes) = h.join().unwrap();
            assert_eq!(coord_bytes + joiner_bytes, REJOIN_HANDSHAKE_BYTES);
        })
        .unwrap();
    }
}

//! Deterministic fault injection for the fabric and the simulator.
//!
//! A [`FaultPlan`] is a seeded, declarative description of everything that
//! goes wrong during a run: workers that crash at a given epoch, stragglers
//! that delay every message they send, per-message drop / delay /
//! duplicate faults selected at `(epoch, src, dst)` granularity, and
//! link-level faults — epoch-bounded partitions (full or asymmetric) that
//! black-hole a link, and flaps that oscillate one on a duty cycle. The same
//! plan drives both the real [`fabric`](crate::fabric) (where a dropped
//! message becomes a retransmission delay and a duplicate becomes a second
//! physical delivery) and the [`sim`](crate::sim) event simulator (where
//! the same fates become service-time inflation), so a failure scenario
//! can be studied in modeled time and then executed for real.
//!
//! Every probabilistic decision is a pure function of
//! `(plan seed, fault index, epoch, src, dst, seq)` — re-running a plan
//! reproduces the exact same fault schedule, which is what makes the
//! recovery-determinism tests possible.

use crate::fabric::MessageKind;

/// Which message kinds a selector applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindSel {
    /// Forward dependency rows (`GetFromDepNbr`).
    Rows,
    /// Backward gradient rows (`PostToDepNbr`).
    Grads,
    /// Ring / parameter-server gradient chunks.
    AllReduce,
    /// Scalar control messages.
    Control,
    /// Inference query batches (serving path).
    Query,
    /// Inference reply batches (serving path).
    Reply,
    /// Every kind.
    Any,
}

impl KindSel {
    fn matches(self, kind: Option<&MessageKind>) -> bool {
        let Some(kind) = kind else {
            // The simulator meters bytes, not typed messages; kind-filtered
            // faults apply to every modeled transfer there.
            return true;
        };
        matches!(
            (self, kind),
            (KindSel::Any, _)
                | (KindSel::Rows, MessageKind::Rows { .. })
                | (KindSel::Grads, MessageKind::Grads { .. })
                | (KindSel::AllReduce, MessageKind::AllReduce { .. })
                | (KindSel::Control, MessageKind::Control(_))
                | (KindSel::Query, MessageKind::Query { .. })
                | (KindSel::Reply, MessageKind::Reply { .. })
        )
    }
}

/// Selects a subset of messages by kind, epoch, and channel endpoints.
/// `None` fields match everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSel {
    /// Message-kind filter.
    pub kind: KindSel,
    /// Restrict to one epoch.
    pub epoch: Option<usize>,
    /// Restrict to one sending worker.
    pub src: Option<usize>,
    /// Restrict to one receiving worker.
    pub dst: Option<usize>,
}

impl MsgSel {
    /// Selector matching every message.
    pub fn any() -> Self {
        Self { kind: KindSel::Any, epoch: None, src: None, dst: None }
    }

    fn matches(
        &self,
        epoch: usize,
        src: usize,
        dst: usize,
        kind: Option<&MessageKind>,
    ) -> bool {
        self.kind.matches(kind)
            && self.epoch.is_none_or(|e| e == epoch)
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Worker `worker` crashes at the top of epoch `epoch` (its endpoint is
    /// dropped, cascading channel disconnects to every peer).
    Kill {
        /// Worker that dies.
        worker: usize,
        /// Epoch at which it dies, counted from the start of the run.
        epoch: usize,
    },
    /// Every message `worker` sends is delayed by `delay_ms` — a fixed
    /// slowdown modeling a degraded node.
    Straggle {
        /// The slow worker.
        worker: usize,
        /// Added delivery delay per message, milliseconds.
        delay_ms: u64,
    },
    /// Each matching message is independently lost with probability `p`;
    /// the fabric models loss + retransmission as a delivery delay of
    /// [`FaultPlan::retransmit_ms`].
    Drop {
        /// Which messages are eligible.
        sel: MsgSel,
        /// Per-message loss probability in `[0, 1]`.
        p: f64,
    },
    /// Every matching message is delayed by `delay_ms`.
    Delay {
        /// Which messages are eligible.
        sel: MsgSel,
        /// Added delivery delay, milliseconds.
        delay_ms: u64,
    },
    /// Each matching message is independently delivered twice with
    /// probability `p`; receivers deduplicate by sequence number.
    Duplicate {
        /// Which messages are eligible.
        sel: MsgSel,
        /// Per-message duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Each matching message independently has one payload bit flipped in
    /// flight with probability `p`. The fabric delivers the corrupted
    /// physical copy immediately and a clean retransmission
    /// [`FaultPlan::retransmit_ms`] later under the same sequence number;
    /// receivers detect the flip by frame CRC and admit only the clean
    /// copy. The simulator models the detect-and-re-request round trip as
    /// a retransmission delay.
    Corrupt {
        /// Which messages are eligible.
        sel: MsgSel,
        /// Per-message corruption probability in `[0, 1]`.
        p: f64,
    },
    /// Each checkpoint generation persisted at a matching epoch boundary
    /// independently has one bit flipped on disk with probability `p` —
    /// a torn/bit-rotted write. Detected at load by the store's CRC; the
    /// recovery fallback chain skips the bad generation.
    CorruptCkpt {
        /// Restrict to one checkpoint boundary epoch (`None`: every one).
        epoch: Option<usize>,
        /// Per-generation corruption probability in `[0, 1]`.
        p: f64,
    },
    /// The link between `a` and `b` is severed in *both* directions from
    /// epoch `from_epoch` (inclusive) until `heal_epoch` (exclusive).
    /// The fabric black-holes severed sends: the call succeeds (the
    /// sender cannot tell), the message is never delivered, and only
    /// receive timeouts, backoff budgets, and circuit breakers surface
    /// the outage — the honest network-partition failure mode. The
    /// simulator models severed transfers as retransmission stalls.
    Partition {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
        /// First epoch with the link down (inclusive).
        from_epoch: usize,
        /// Epoch at which the link heals (exclusive).
        heal_epoch: usize,
    },
    /// Like [`Fault::Partition`], but only the `src -> dst` direction is
    /// severed; replies still flow `dst -> src` — the asymmetric-route
    /// failure mode that defeats naive "ping works" health checks.
    AsymPartition {
        /// Sending side of the severed direction.
        src: usize,
        /// Receiving side of the severed direction.
        dst: usize,
        /// First epoch with the direction down (inclusive).
        from_epoch: usize,
        /// Epoch at which the direction heals (exclusive).
        heal_epoch: usize,
    },
    /// The link between `a` and `b` oscillates: within every
    /// `period_ms` window it is down for the first `duty` fraction and
    /// up for the rest. A message sent while the link is down is held
    /// and delivered at the next up-window (the transport retransmits
    /// once the link returns), so a flap inflates tail latency — by up
    /// to `duty * period_ms` per message — without losing messages.
    /// The simulator charges the expected residual down-time instead.
    Flap {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
        /// Oscillation period, milliseconds (must be > 0).
        period_ms: u64,
        /// Fraction of each period the link is down, in `[0, 1]`.
        duty: f64,
    },
    /// The filesystem under the durable checkpoint store reports ENOSPC
    /// for every write attempted at a boundary epoch in
    /// `[from_epoch, heal_epoch)`. The store degrades instead of
    /// aborting: it squeezes retention toward keep-last-1 to free space,
    /// retries, and if the disk is still full defers the generation to
    /// the next cadence (`ckpt.enospc` / `ckpt.retention_squeezed`
    /// meter the degradation).
    DiskFull {
        /// First boundary epoch with the disk full (inclusive).
        from_epoch: usize,
        /// Boundary epoch at which space returns (exclusive).
        heal_epoch: usize,
    },
    /// Every durable-store write takes `factor` times as long — a
    /// saturated or throttled device. Pure latency: no write fails, but
    /// the inflated fsync time is metered (`ckpt.slow_disk_penalty_ns`)
    /// and visible in checkpoint-phase spans.
    SlowDisk {
        /// fsync-time multiplier (must be >= 1).
        factor: f64,
    },
    /// The tensor-pool budget shrinks to `cap_bytes` for epochs in
    /// `[from_epoch, heal_epoch)` — a co-tenant eating the machine's
    /// memory. The pool sheds parked buffers, the executor switches to
    /// the in-place all-reduce, and the serve cache drops cold rows to
    /// stay under the cap instead of OOMing; `alloc.peak_bytes` proves
    /// the budget held.
    MemPressure {
        /// Enforced pool budget while the pressure window is active.
        cap_bytes: usize,
        /// First epoch under pressure (inclusive).
        from_epoch: usize,
        /// Epoch at which the budget is restored (exclusive).
        heal_epoch: usize,
    },
    /// Worker `worker` wedges at the top of epoch `epoch` — stuck in
    /// compute or a syscall *outside* the fabric, where recv timeouts
    /// and circuit breakers cannot see it. It stays stuck until the
    /// liveness watchdog trips and cancels it (the injected hang polls
    /// the watchdog's cancel flag, standing in for a supervisor
    /// SIGKILL).
    Hang {
        /// Worker that wedges.
        worker: usize,
        /// Epoch at which it wedges, counted from the start of the run.
        epoch: usize,
    },
}

impl Fault {
    /// Canonical CLI spec text for this fault; [`parse_fault`] accepts the
    /// output verbatim (round-trip identity, covered by tests).
    pub fn to_spec(&self) -> String {
        fn sel_suffix(sel: &MsgSel) -> String {
            let mut s = String::new();
            if let Some(e) = sel.epoch {
                s.push_str(&format!("@e{e}"));
            }
            if let (Some(src), Some(dst)) = (sel.src, sel.dst) {
                s.push_str(&format!("@w{src}-w{dst}"));
            }
            s
        }
        fn kind_name(k: KindSel) -> &'static str {
            match k {
                KindSel::Rows => "rows",
                KindSel::Grads => "grads",
                KindSel::AllReduce => "allreduce",
                KindSel::Control => "control",
                KindSel::Query => "query",
                KindSel::Reply => "reply",
                KindSel::Any => "any",
            }
        }
        match self {
            Fault::Kill { worker, epoch } => format!("kill:w{worker}@e{epoch}"),
            Fault::Straggle { worker, delay_ms } => {
                format!("straggle:w{worker}:{delay_ms}ms")
            }
            Fault::Drop { sel, p } => {
                format!("drop:{}:{p}{}", kind_name(sel.kind), sel_suffix(sel))
            }
            Fault::Delay { sel, delay_ms } => {
                format!("delay:{}:{delay_ms}ms{}", kind_name(sel.kind), sel_suffix(sel))
            }
            Fault::Duplicate { sel, p } => {
                format!("dup:{}:{p}{}", kind_name(sel.kind), sel_suffix(sel))
            }
            Fault::Corrupt { sel, p } => {
                format!("corrupt:{}:{p}{}", kind_name(sel.kind), sel_suffix(sel))
            }
            Fault::CorruptCkpt { epoch, p } => match epoch {
                Some(e) => format!("corrupt:ckpt:{p}@e{e}"),
                None => format!("corrupt:ckpt:{p}"),
            },
            Fault::Partition { a, b, from_epoch, heal_epoch } => {
                format!("partition:w{a}-w{b}@e{from_epoch}-e{heal_epoch}")
            }
            Fault::AsymPartition { src, dst, from_epoch, heal_epoch } => {
                format!("partition:w{src}->w{dst}@e{from_epoch}-e{heal_epoch}")
            }
            Fault::Flap { a, b, period_ms, duty } => {
                format!("flap:w{a}-w{b}:{period_ms}ms:{duty}")
            }
            Fault::DiskFull { from_epoch, heal_epoch } => {
                format!("diskfull:e{from_epoch}-e{heal_epoch}")
            }
            Fault::SlowDisk { factor } => format!("slowdisk:{factor}"),
            Fault::MemPressure { cap_bytes, from_epoch, heal_epoch } => {
                format!("mempressure:{cap_bytes}@e{from_epoch}-e{heal_epoch}")
            }
            Fault::Hang { worker, epoch } => format!("hang:w{worker}@e{epoch}"),
        }
    }
}

/// True when a flapping link with the given shape is inside the down
/// part of its period at `now_ms`.
fn flap_down(period_ms: u64, duty: f64, now_ms: u64) -> bool {
    let down_ms = (period_ms as f64 * duty) as u64;
    now_ms % period_ms.max(1) < down_ms
}

/// Milliseconds until a flapping link comes back up, if it is down at
/// `now_ms` (`None` when the link is currently up).
fn flap_residual(period_ms: u64, duty: f64, now_ms: u64) -> Option<u64> {
    let down_ms = (period_ms as f64 * duty) as u64;
    let pos = now_ms % period_ms.max(1);
    (pos < down_ms).then(|| down_ms - pos)
}

/// What the fault plan decides for one send.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendFate {
    /// Total injected delivery delay, milliseconds.
    pub delay_ms: u64,
    /// Deliver a second copy of the message.
    pub duplicate: bool,
    /// Deliver a bit-flipped copy first; the clean copy follows
    /// [`FaultPlan::retransmit_ms`] later.
    pub corrupt: bool,
    /// The link is severed: the fabric black-holes the message (the send
    /// succeeds, nothing is ever delivered).
    pub severed: bool,
}

/// A seeded, declarative schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message fault coins.
    pub seed: u64,
    /// Modeled retransmission delay applied to dropped messages,
    /// milliseconds.
    pub retransmit_ms: u64,
    /// The injected faults.
    pub faults: Vec<Fault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self { seed: 0, retransmit_ms: 20, faults: Vec::new() }
    }
}

impl FaultPlan {
    /// A plan with a single worker crash.
    pub fn kill(worker: usize, epoch: usize) -> Self {
        Self::default().with_fault(Fault::Kill { worker, epoch })
    }

    /// Adds a fault (builder style).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the coin seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The epoch at which `worker` is scheduled to crash, if any.
    pub fn kill_epoch(&self, worker: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::Kill { worker: w, epoch } if *w == worker => Some(*epoch),
            _ => None,
        })
    }

    /// Removes a crash that has already fired, so a recovered run does not
    /// re-kill the (renumbered) worker occupying the same slot. Worker ids
    /// in the remaining faults refer to the *current* topology.
    pub fn retire_kill(&mut self, worker: usize, epoch: usize) {
        self.faults.retain(
            |f| !matches!(f, Fault::Kill { worker: w, epoch: e } if *w == worker && *e == epoch),
        );
    }

    /// Removes every straggle fault targeting `worker`. The elastic
    /// trainer calls this when the straggler policy evicts a slow member:
    /// the modeled node is restarted, so it comes back healthy when it
    /// rejoins. Worker ids in the remaining faults keep addressing the
    /// current topology.
    pub fn retire_straggle(&mut self, worker: usize) {
        self.faults
            .retain(|f| !matches!(f, Fault::Straggle { worker: w, .. } if *w == worker));
    }

    /// Parses and appends a CLI fault spec. Formats:
    ///
    /// * `kill:w<id>@e<epoch>` — crash a worker,
    /// * `straggle:w<id>:<ms>` — fixed per-message slowdown,
    /// * `drop:<kind>:<p>[@e<n>][@w<src>-w<dst>]` — probabilistic loss,
    /// * `delay:<kind>:<ms>[@e<n>][@w<src>-w<dst>]` — fixed delay,
    /// * `dup:<kind>:<p>[@e<n>][@w<src>-w<dst>]` — probabilistic duplicate,
    /// * `corrupt:<kind>:<p>[@e<n>][@w<src>-w<dst>]` — probabilistic
    ///   in-flight bit flip (detected by frame CRC, then retransmitted),
    /// * `corrupt:ckpt:<p>[@e<n>]` — probabilistic on-disk bit flip of the
    ///   checkpoint generation written at a boundary epoch,
    /// * `partition:w<a>-w<b>@e<from>-e<heal>` — sever the link both ways
    ///   for `from <= epoch < heal`,
    /// * `partition:w<src>->w<dst>@e<from>-e<heal>` — sever one direction,
    /// * `flap:w<a>-w<b>:<period>ms:<duty>` — oscillate the link: down for
    ///   the first `duty` fraction of every `period` window,
    /// * `diskfull:e<from>-e<heal>` — the durable store's disk reports
    ///   ENOSPC for boundary epochs in `[from, heal)`,
    /// * `slowdisk:<factor>` — every durable-store write takes `factor`
    ///   times as long (`factor >= 1`),
    /// * `mempressure:<bytes>@e<from>-e<heal>` — shrink the tensor-pool
    ///   budget to `<bytes>` for epochs in `[from, heal)`,
    /// * `hang:w<id>@e<epoch>` — wedge a worker outside the fabric until
    ///   the liveness watchdog cancels it,
    ///
    /// where `<kind>` is `rows|grads|allreduce|control|any`.
    pub fn push_spec(&mut self, spec: &str) -> Result<(), String> {
        self.faults.push(parse_fault(spec)?);
        Ok(())
    }

    /// Decides the fate of one send. `kind = None` (the simulator's
    /// untyped transfers) matches every kind filter. Pure in
    /// `(seed, epoch, src, dst, seq)`. Time-dependent link faults
    /// ([`Fault::Flap`]) evaluate at `now_ms = 0`; the fabric calls
    /// [`FaultPlan::send_fate_at`] with its real link-layer clock.
    pub fn send_fate(
        &self,
        epoch: usize,
        src: usize,
        dst: usize,
        kind: Option<&MessageKind>,
        seq: u64,
    ) -> SendFate {
        self.send_fate_at(epoch, src, dst, kind, seq, 0)
    }

    /// [`FaultPlan::send_fate`] with an explicit link-layer clock:
    /// `now_ms` is milliseconds since the fabric came up, and decides
    /// where inside a [`Fault::Flap`] period the send lands. Pure in
    /// `(seed, epoch, src, dst, seq, now_ms)`.
    pub fn send_fate_at(
        &self,
        epoch: usize,
        src: usize,
        dst: usize,
        kind: Option<&MessageKind>,
        seq: u64,
        now_ms: u64,
    ) -> SendFate {
        let mut fate = SendFate::default();
        if self.faults.is_empty() {
            return fate;
        }
        for (i, f) in self.faults.iter().enumerate() {
            match f {
                Fault::Kill { .. } => {}
                Fault::Straggle { worker, delay_ms } => {
                    if *worker == src {
                        fate.delay_ms += delay_ms;
                    }
                }
                Fault::Drop { sel, p } => {
                    if sel.matches(epoch, src, dst, kind)
                        && self.coin(i, epoch, src, dst, seq) < *p
                    {
                        fate.delay_ms += self.retransmit_ms;
                    }
                }
                Fault::Delay { sel, delay_ms } => {
                    if sel.matches(epoch, src, dst, kind) {
                        fate.delay_ms += delay_ms;
                    }
                }
                Fault::Duplicate { sel, p } => {
                    if sel.matches(epoch, src, dst, kind)
                        && self.coin(i, epoch, src, dst, seq) < *p
                    {
                        fate.duplicate = true;
                    }
                }
                Fault::Corrupt { sel, p } => {
                    if sel.matches(epoch, src, dst, kind)
                        && self.coin(i, epoch, src, dst, seq) < *p
                    {
                        if kind.is_some() {
                            fate.corrupt = true;
                        } else {
                            // The simulator moves untyped bytes: model the
                            // detect-and-re-request round trip as the same
                            // retransmission delay a drop costs.
                            fate.delay_ms += self.retransmit_ms;
                        }
                    }
                }
                Fault::CorruptCkpt { .. } => {}
                // Resource faults act on the store, the pool, and the
                // worker loop — never on a message in flight.
                Fault::DiskFull { .. }
                | Fault::SlowDisk { .. }
                | Fault::MemPressure { .. }
                | Fault::Hang { .. } => {}
                Fault::Partition { a, b, from_epoch, heal_epoch } => {
                    let on_link = (src == *a && dst == *b) || (src == *b && dst == *a);
                    if on_link && epoch >= *from_epoch && epoch < *heal_epoch {
                        if kind.is_some() {
                            fate.severed = true;
                        } else {
                            // The simulator moves untyped bytes: model the
                            // stalled link as retransmission inflation, the
                            // same way a drop is charged.
                            fate.delay_ms += self.retransmit_ms;
                        }
                    }
                }
                Fault::AsymPartition { src: fs, dst: fd, from_epoch, heal_epoch } => {
                    if src == *fs
                        && dst == *fd
                        && epoch >= *from_epoch
                        && epoch < *heal_epoch
                    {
                        if kind.is_some() {
                            fate.severed = true;
                        } else {
                            fate.delay_ms += self.retransmit_ms;
                        }
                    }
                }
                Fault::Flap { a, b, period_ms, duty } => {
                    let on_link = (src == *a && dst == *b) || (src == *b && dst == *a);
                    if on_link {
                        if kind.is_some() {
                            // Hold the message until the link comes back up.
                            if let Some(wait) = flap_residual(*period_ms, *duty, now_ms) {
                                fate.delay_ms += wait;
                            }
                        } else if self.coin(i, epoch, src, dst, seq) < *duty {
                            // The simulator has no link-layer clock: a
                            // `duty` fraction of transfers pay the expected
                            // residual down-time.
                            fate.delay_ms += ((*period_ms as f64 * *duty) as u64 + 1) / 2;
                        }
                    }
                }
            }
        }
        fate
    }

    /// True when the plan severs the `src -> dst` direction at `epoch`
    /// and link-layer time `now_ms`: an active [`Fault::Partition`] /
    /// [`Fault::AsymPartition`] window, or a [`Fault::Flap`] inside the
    /// down part of its period. Circuit-breaker liveness checks use this
    /// to tell a breaker that is *correctly* open (link still severed)
    /// from one stuck open after its link healed.
    pub fn link_severed(&self, epoch: usize, src: usize, dst: usize, now_ms: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::Partition { a, b, from_epoch, heal_epoch } => {
                ((src == *a && dst == *b) || (src == *b && dst == *a))
                    && epoch >= *from_epoch
                    && epoch < *heal_epoch
            }
            Fault::AsymPartition { src: fs, dst: fd, from_epoch, heal_epoch } => {
                src == *fs && dst == *fd && epoch >= *from_epoch && epoch < *heal_epoch
            }
            Fault::Flap { a, b, period_ms, duty } => {
                ((src == *a && dst == *b) || (src == *b && dst == *a))
                    && flap_down(*period_ms, *duty, now_ms)
            }
            _ => false,
        })
    }

    /// True when the plan contains any link-level fault (partition,
    /// asymmetric partition, or flap).
    pub fn has_link_faults(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f,
                Fault::Partition { .. } | Fault::AsymPartition { .. } | Fault::Flap { .. }
            )
        })
    }

    /// Removes every link fault (partition, asymmetric partition, flap)
    /// touching `worker`. The elastic trainer calls this when the member
    /// leaves the cluster: the modeled replacement host comes up with
    /// fresh links, and the worker ids in the remaining faults keep
    /// addressing the renumbered topology.
    pub fn retire_links(&mut self, worker: usize) {
        self.faults.retain(|f| match f {
            Fault::Partition { a, b, .. } | Fault::Flap { a, b, .. } => {
                *a != worker && *b != worker
            }
            Fault::AsymPartition { src, dst, .. } => *src != worker && *dst != worker,
            _ => true,
        });
    }

    /// The epoch at which `worker` is scheduled to wedge, if any.
    pub fn hang_epoch(&self, worker: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::Hang { worker: w, epoch } if *w == worker => Some(*epoch),
            _ => None,
        })
    }

    /// Removes a hang that has already fired (the watchdog evicted the
    /// wedged worker), so the slot's replacement does not re-wedge.
    pub fn retire_hang(&mut self, worker: usize, epoch: usize) {
        self.faults.retain(
            |f| !matches!(f, Fault::Hang { worker: w, epoch: e } if *w == worker && *e == epoch),
        );
    }

    /// True when the durable store's disk is full at boundary `epoch`
    /// (an active [`Fault::DiskFull`] window).
    pub fn disk_full_at(&self, epoch: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::DiskFull { from_epoch, heal_epoch }
                if epoch >= *from_epoch && epoch < *heal_epoch)
        })
    }

    /// The combined store-write slowdown factor (product of every
    /// [`Fault::SlowDisk`] in the plan; `1.0` when none is injected).
    pub fn slow_disk_factor(&self) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SlowDisk { factor } => Some(*factor),
                _ => None,
            })
            .product()
    }

    /// The enforced tensor-pool budget at `epoch`, if a
    /// [`Fault::MemPressure`] window is active (the tightest cap wins
    /// when windows overlap).
    pub fn mem_cap_at(&self, epoch: usize) -> Option<usize> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::MemPressure { cap_bytes, from_epoch, heal_epoch }
                    if epoch >= *from_epoch && epoch < *heal_epoch =>
                {
                    Some(*cap_bytes)
                }
                _ => None,
            })
            .min()
    }

    /// True when the plan contains any resource fault (disk-full, slow
    /// disk, memory pressure, or hang).
    pub fn has_resource_faults(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f,
                Fault::DiskFull { .. }
                    | Fault::SlowDisk { .. }
                    | Fault::MemPressure { .. }
                    | Fault::Hang { .. }
            )
        })
    }

    /// Decides whether the checkpoint generation persisted at boundary
    /// `epoch` gets a bit flipped on disk, and which bit. Returns a raw
    /// 64-bit draw to be reduced modulo the payload size by the store
    /// writer. Pure in `(seed, epoch)`.
    pub fn ckpt_fate(&self, epoch: usize) -> Option<u64> {
        for (i, f) in self.faults.iter().enumerate() {
            if let Fault::CorruptCkpt { epoch: e, p } = f {
                if e.is_none_or(|x| x == epoch) && self.coin(i, epoch, 0, 0, 1) < *p {
                    // Second independent draw selects the bit.
                    let bits = (self.coin(i, epoch, 0, 0, 2) * (1u64 << 53) as f64) as u64;
                    return Some(bits);
                }
            }
        }
        None
    }

    /// Deterministic uniform draw in `[0, 1)` for fault `idx` on one
    /// message: an FNV-1a mix of the identifying tuple finalized with the
    /// splitmix64 permutation.
    fn coin(&self, idx: usize, epoch: usize, src: usize, dst: usize, seq: u64) -> f64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for v in [idx as u64, epoch as u64, src as u64, dst as u64, seq] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // splitmix64 finalizer.
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn parse_worker(s: &str) -> Result<usize, String> {
    let digits = s
        .strip_prefix('w')
        .ok_or_else(|| format!("expected w<id>, got {s:?}"))?;
    digits.parse().map_err(|_| format!("bad worker id {s:?}"))
}

fn parse_epoch(s: &str) -> Result<usize, String> {
    let digits = s
        .strip_prefix('e')
        .ok_or_else(|| format!("expected e<epoch>, got {s:?}"))?;
    digits.parse().map_err(|_| format!("bad epoch {s:?}"))
}

fn parse_ms(s: &str) -> Result<u64, String> {
    let digits = s.strip_suffix("ms").unwrap_or(s);
    digits.parse().map_err(|_| format!("bad millisecond value {s:?}"))
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability {s:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_kind(s: &str) -> Result<KindSel, String> {
    match s {
        "rows" => Ok(KindSel::Rows),
        "grads" => Ok(KindSel::Grads),
        "allreduce" => Ok(KindSel::AllReduce),
        "control" => Ok(KindSel::Control),
        "query" => Ok(KindSel::Query),
        "reply" => Ok(KindSel::Reply),
        "any" | "*" => Ok(KindSel::Any),
        other => Err(format!(
            "unknown message kind {other:?} (rows|grads|allreduce|control|any)"
        )),
    }
}

/// Parses one CLI fault spec (see [`FaultPlan::push_spec`] for formats).
pub fn parse_fault(spec: &str) -> Result<Fault, String> {
    let (head, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("fault spec {spec:?}: expected <type>:<args>"))?;
    match head {
        "kill" => {
            let (w, e) = rest
                .split_once('@')
                .ok_or_else(|| format!("kill spec {rest:?}: expected w<id>@e<epoch>"))?;
            Ok(Fault::Kill { worker: parse_worker(w)?, epoch: parse_epoch(e)? })
        }
        "straggle" => {
            let (w, ms) = rest
                .split_once(':')
                .ok_or_else(|| format!("straggle spec {rest:?}: expected w<id>:<ms>"))?;
            Ok(Fault::Straggle { worker: parse_worker(w)?, delay_ms: parse_ms(ms)? })
        }
        "drop" | "delay" | "dup" | "corrupt" => {
            let (kind_s, rest2) = rest.split_once(':').ok_or_else(|| {
                format!("{head} spec {rest:?}: expected <kind>:<value>[@...]")
            })?;
            if head == "corrupt" && kind_s == "ckpt" {
                let mut parts = rest2.split('@');
                let value = parts
                    .next()
                    .ok_or_else(|| format!("corrupt spec {rest:?}: missing value"))?;
                let mut epoch = None;
                for q in parts {
                    if q.starts_with('e') {
                        epoch = Some(parse_epoch(q)?);
                    } else {
                        return Err(format!(
                            "qualifier {q:?}: checkpoint corruption only scopes by e<n>"
                        ));
                    }
                }
                return Ok(Fault::CorruptCkpt { epoch, p: parse_prob(value)? });
            }
            let kind = parse_kind(kind_s)?;
            let mut parts = rest2.split('@');
            let value = parts
                .next()
                .ok_or_else(|| format!("{head} spec {rest:?}: missing value"))?;
            let mut sel = MsgSel { kind, epoch: None, src: None, dst: None };
            for q in parts {
                if q.starts_with('e') {
                    sel.epoch = Some(parse_epoch(q)?);
                } else if let Some(ws) = q.strip_prefix('w') {
                    let (s, d) = ws.split_once("-w").ok_or_else(|| {
                        format!("qualifier {q:?}: expected w<src>-w<dst>")
                    })?;
                    sel.src =
                        Some(s.parse().map_err(|_| format!("bad src worker {q:?}"))?);
                    sel.dst =
                        Some(d.parse().map_err(|_| format!("bad dst worker {q:?}"))?);
                } else {
                    return Err(format!("unknown qualifier {q:?} (e<n> or w<s>-w<d>)"));
                }
            }
            Ok(match head {
                "drop" => Fault::Drop { sel, p: parse_prob(value)? },
                "dup" => Fault::Duplicate { sel, p: parse_prob(value)? },
                "corrupt" => Fault::Corrupt { sel, p: parse_prob(value)? },
                _ => Fault::Delay { sel, delay_ms: parse_ms(value)? },
            })
        }
        "partition" => {
            let (link, epochs) = rest.split_once('@').ok_or_else(|| {
                format!("partition spec {rest:?}: expected w<a>-w<b>@e<from>-e<heal>")
            })?;
            let (from_s, heal_s) = epochs.split_once('-').ok_or_else(|| {
                format!("partition epochs {epochs:?}: expected e<from>-e<heal>")
            })?;
            let (from_epoch, heal_epoch) = (parse_epoch(from_s)?, parse_epoch(heal_s)?);
            if heal_epoch <= from_epoch {
                return Err(format!(
                    "partition window e{from_epoch}-e{heal_epoch}: heal epoch must \
                     come after the start"
                ));
            }
            if let Some((s, d)) = link.split_once("->") {
                let (src, dst) = (parse_worker(s)?, parse_worker(d)?);
                if src == dst {
                    return Err(format!("partition link {link:?}: endpoints must differ"));
                }
                return Ok(Fault::AsymPartition { src, dst, from_epoch, heal_epoch });
            }
            let (a_s, b_s) = link
                .split_once('-')
                .ok_or_else(|| format!("partition link {link:?}: expected w<a>-w<b>"))?;
            let (a, b) = (parse_worker(a_s)?, parse_worker(b_s)?);
            if a == b {
                return Err(format!("partition link {link:?}: endpoints must differ"));
            }
            Ok(Fault::Partition { a, b, from_epoch, heal_epoch })
        }
        "flap" => {
            let mut parts = rest.splitn(3, ':');
            let link = parts
                .next()
                .ok_or_else(|| format!("flap spec {rest:?}: missing link"))?;
            let period_s = parts.next().ok_or_else(|| {
                format!("flap spec {rest:?}: expected w<a>-w<b>:<period>ms:<duty>")
            })?;
            let duty_s = parts.next().ok_or_else(|| {
                format!("flap spec {rest:?}: expected w<a>-w<b>:<period>ms:<duty>")
            })?;
            let (a_s, b_s) = link
                .split_once('-')
                .ok_or_else(|| format!("flap link {link:?}: expected w<a>-w<b>"))?;
            let (a, b) = (parse_worker(a_s)?, parse_worker(b_s)?);
            if a == b {
                return Err(format!("flap link {link:?}: endpoints must differ"));
            }
            let period_ms = parse_ms(period_s)?;
            if period_ms == 0 {
                return Err(format!("flap period {period_s:?} must be > 0"));
            }
            let duty: f64 = duty_s
                .parse()
                .map_err(|_| format!("bad flap duty {duty_s:?}"))?;
            if !(0.0..=1.0).contains(&duty) {
                return Err(format!("flap duty {duty} outside [0, 1]"));
            }
            Ok(Fault::Flap { a, b, period_ms, duty })
        }
        "diskfull" => {
            let (from_s, heal_s) = rest.split_once('-').ok_or_else(|| {
                format!("diskfull spec {rest:?}: expected e<from>-e<heal>")
            })?;
            let (from_epoch, heal_epoch) = (parse_epoch(from_s)?, parse_epoch(heal_s)?);
            if heal_epoch <= from_epoch {
                return Err(format!(
                    "diskfull window e{from_epoch}-e{heal_epoch}: heal epoch must \
                     come after the start"
                ));
            }
            Ok(Fault::DiskFull { from_epoch, heal_epoch })
        }
        "slowdisk" => {
            let factor: f64 =
                rest.parse().map_err(|_| format!("bad slowdisk factor {rest:?}"))?;
            if !factor.is_finite() || factor < 1.0 {
                return Err(format!("slowdisk factor {factor} must be >= 1"));
            }
            Ok(Fault::SlowDisk { factor })
        }
        "mempressure" => {
            let (bytes_s, epochs) = rest.split_once('@').ok_or_else(|| {
                format!("mempressure spec {rest:?}: expected <bytes>@e<from>-e<heal>")
            })?;
            let cap_bytes: usize = bytes_s
                .parse()
                .map_err(|_| format!("bad mempressure byte budget {bytes_s:?}"))?;
            if cap_bytes == 0 {
                return Err("mempressure budget must be > 0 bytes".to_string());
            }
            let (from_s, heal_s) = epochs.split_once('-').ok_or_else(|| {
                format!("mempressure epochs {epochs:?}: expected e<from>-e<heal>")
            })?;
            let (from_epoch, heal_epoch) = (parse_epoch(from_s)?, parse_epoch(heal_s)?);
            if heal_epoch <= from_epoch {
                return Err(format!(
                    "mempressure window e{from_epoch}-e{heal_epoch}: heal epoch must \
                     come after the start"
                ));
            }
            Ok(Fault::MemPressure { cap_bytes, from_epoch, heal_epoch })
        }
        "hang" => {
            let (w, e) = rest
                .split_once('@')
                .ok_or_else(|| format!("hang spec {rest:?}: expected w<id>@e<epoch>"))?;
            Ok(Fault::Hang { worker: parse_worker(w)?, epoch: parse_epoch(e)? })
        }
        other => Err(format!(
            "unknown fault type {other:?} \
             (kill|straggle|drop|delay|dup|corrupt|partition|flap\
             |diskfull|slowdisk|mempressure|hang)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_benign() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.send_fate(0, 0, 1, None, 1), SendFate::default());
        assert_eq!(plan.kill_epoch(0), None);
    }

    #[test]
    fn kill_plan_targets_one_worker() {
        let plan = FaultPlan::kill(2, 3);
        assert_eq!(plan.kill_epoch(2), Some(3));
        assert_eq!(plan.kill_epoch(1), None);
        // A crash does not perturb message fates.
        assert_eq!(plan.send_fate(3, 2, 0, None, 1), SendFate::default());
    }

    #[test]
    fn retire_kill_removes_only_the_fired_crash() {
        let mut plan = FaultPlan::kill(1, 2).with_fault(Fault::Kill { worker: 1, epoch: 5 });
        plan.retire_kill(1, 2);
        assert_eq!(plan.kill_epoch(1), Some(5));
        plan.retire_kill(1, 5);
        assert!(plan.is_empty());
    }

    #[test]
    fn retire_straggle_cures_only_the_target_worker() {
        let mut plan = FaultPlan::default()
            .with_fault(Fault::Straggle { worker: 1, delay_ms: 30 })
            .with_fault(Fault::Straggle { worker: 2, delay_ms: 10 });
        plan.retire_straggle(1);
        assert_eq!(plan.send_fate(0, 1, 0, None, 1).delay_ms, 0);
        assert_eq!(plan.send_fate(0, 2, 0, None, 1).delay_ms, 10);
    }

    #[test]
    fn straggler_delays_all_its_sends() {
        let plan =
            FaultPlan::default().with_fault(Fault::Straggle { worker: 1, delay_ms: 30 });
        assert_eq!(plan.send_fate(0, 1, 0, None, 1).delay_ms, 30);
        assert_eq!(plan.send_fate(0, 0, 1, None, 1).delay_ms, 0);
    }

    #[test]
    fn drop_coin_is_deterministic_and_calibrated() {
        let plan = FaultPlan::default()
            .with_seed(7)
            .with_fault(Fault::Drop { sel: MsgSel::any(), p: 0.25 });
        let mut dropped = 0;
        for seq in 1..=4000u64 {
            let a = plan.send_fate(0, 0, 1, None, seq);
            let b = plan.send_fate(0, 0, 1, None, seq);
            assert_eq!(a, b, "fate must be deterministic");
            if a.delay_ms > 0 {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk = |seed| {
            FaultPlan::default()
                .with_seed(seed)
                .with_fault(Fault::Drop { sel: MsgSel::any(), p: 0.5 })
        };
        let (a, b) = (mk(1), mk(2));
        let differs = (1..=64u64)
            .any(|seq| a.send_fate(0, 0, 1, None, seq) != b.send_fate(0, 0, 1, None, seq));
        assert!(differs);
    }

    #[test]
    fn selector_scopes_epoch_and_channel() {
        let sel = MsgSel { kind: KindSel::Any, epoch: Some(3), src: Some(0), dst: Some(2) };
        let plan = FaultPlan::default().with_fault(Fault::Delay { sel, delay_ms: 10 });
        assert_eq!(plan.send_fate(3, 0, 2, None, 1).delay_ms, 10);
        assert_eq!(plan.send_fate(2, 0, 2, None, 1).delay_ms, 0);
        assert_eq!(plan.send_fate(3, 1, 2, None, 1).delay_ms, 0);
        assert_eq!(plan.send_fate(3, 0, 1, None, 1).delay_ms, 0);
    }

    #[test]
    fn kind_selector_filters_typed_messages() {
        let sel = MsgSel { kind: KindSel::Rows, epoch: None, src: None, dst: None };
        let plan = FaultPlan::default().with_fault(Fault::Delay { sel, delay_ms: 10 });
        let rows = MessageKind::Rows { layer: 0, ids: vec![1], cols: 1, data: vec![0.0] };
        let ctl = MessageKind::Control(1.0);
        assert_eq!(plan.send_fate(0, 0, 1, Some(&rows), 1).delay_ms, 10);
        assert_eq!(plan.send_fate(0, 0, 1, Some(&ctl), 1).delay_ms, 0);
        // Untyped (simulator) transfers match any kind filter.
        assert_eq!(plan.send_fate(0, 0, 1, None, 1).delay_ms, 10);
    }

    #[test]
    fn parses_issue_example_specs() {
        assert_eq!(
            parse_fault("kill:w2@e3").unwrap(),
            Fault::Kill { worker: 2, epoch: 3 }
        );
        assert_eq!(
            parse_fault("drop:rows:0.01").unwrap(),
            Fault::Drop {
                sel: MsgSel { kind: KindSel::Rows, epoch: None, src: None, dst: None },
                p: 0.01
            }
        );
        assert_eq!(
            parse_fault("straggle:w1:25ms").unwrap(),
            Fault::Straggle { worker: 1, delay_ms: 25 }
        );
        assert_eq!(
            parse_fault("delay:any:15@e2@w0-w3").unwrap(),
            Fault::Delay {
                sel: MsgSel {
                    kind: KindSel::Any,
                    epoch: Some(2),
                    src: Some(0),
                    dst: Some(3)
                },
                delay_ms: 15
            }
        );
        assert_eq!(
            parse_fault("dup:allreduce:1.0").unwrap(),
            Fault::Duplicate {
                sel: MsgSel { kind: KindSel::AllReduce, epoch: None, src: None, dst: None },
                p: 1.0
            }
        );
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse_fault("kill").unwrap_err().contains("expected <type>"));
        assert!(parse_fault("kill:2@3").unwrap_err().contains("w<id>"));
        assert!(parse_fault("drop:rows:1.5").unwrap_err().contains("[0, 1]"));
        assert!(parse_fault("drop:frames:0.1").unwrap_err().contains("unknown message kind"));
        assert!(parse_fault("meteor:w0@e1").unwrap_err().contains("unknown fault type"));
        assert!(parse_fault("drop:rows:0.1@x9").unwrap_err().contains("qualifier"));
    }

    #[test]
    fn parses_corrupt_specs() {
        assert_eq!(
            parse_fault("corrupt:any:0.2").unwrap(),
            Fault::Corrupt { sel: MsgSel::any(), p: 0.2 }
        );
        assert_eq!(
            parse_fault("corrupt:rows:0.1@e2@w0-w3").unwrap(),
            Fault::Corrupt {
                sel: MsgSel {
                    kind: KindSel::Rows,
                    epoch: Some(2),
                    src: Some(0),
                    dst: Some(3)
                },
                p: 0.1
            }
        );
        assert_eq!(
            parse_fault("corrupt:ckpt:1.0@e4").unwrap(),
            Fault::CorruptCkpt { epoch: Some(4), p: 1.0 }
        );
        assert_eq!(
            parse_fault("corrupt:ckpt:0.5").unwrap(),
            Fault::CorruptCkpt { epoch: None, p: 0.5 }
        );
        assert!(parse_fault("corrupt:ckpt:0.5@w0-w1").unwrap_err().contains("e<n>"));
        assert!(parse_fault("corrupt:rows:1.5").unwrap_err().contains("[0, 1]"));
    }

    #[test]
    fn specs_round_trip_through_to_spec() {
        let faults = [
            Fault::Kill { worker: 2, epoch: 3 },
            Fault::Straggle { worker: 1, delay_ms: 25 },
            Fault::Drop { sel: MsgSel::any(), p: 0.125 },
            Fault::Delay {
                sel: MsgSel {
                    kind: KindSel::AllReduce,
                    epoch: Some(2),
                    src: Some(0),
                    dst: Some(3),
                },
                delay_ms: 15,
            },
            Fault::Duplicate {
                sel: MsgSel { kind: KindSel::Control, epoch: None, src: None, dst: None },
                p: 1.0,
            },
            Fault::Corrupt {
                sel: MsgSel { kind: KindSel::Grads, epoch: Some(1), src: None, dst: None },
                p: 0.25,
            },
            Fault::CorruptCkpt { epoch: Some(4), p: 1.0 },
            Fault::CorruptCkpt { epoch: None, p: 0.5 },
            Fault::Partition { a: 1, b: 2, from_epoch: 2, heal_epoch: 4 },
            Fault::AsymPartition { src: 0, dst: 3, from_epoch: 1, heal_epoch: 5 },
            Fault::Flap { a: 0, b: 1, period_ms: 40, duty: 0.6 },
            Fault::DiskFull { from_epoch: 2, heal_epoch: 6 },
            Fault::SlowDisk { factor: 2.5 },
            Fault::MemPressure { cap_bytes: 1 << 20, from_epoch: 1, heal_epoch: 4 },
            Fault::Hang { worker: 1, epoch: 3 },
        ];
        for f in faults {
            let spec = f.to_spec();
            assert_eq!(parse_fault(&spec).unwrap(), f, "round-trip of {spec:?}");
        }
    }

    #[test]
    fn parses_partition_and_flap_specs() {
        assert_eq!(
            parse_fault("partition:w1-w2@e2-e4").unwrap(),
            Fault::Partition { a: 1, b: 2, from_epoch: 2, heal_epoch: 4 }
        );
        assert_eq!(
            parse_fault("partition:w0->w2@e1-e3").unwrap(),
            Fault::AsymPartition { src: 0, dst: 2, from_epoch: 1, heal_epoch: 3 }
        );
        assert_eq!(
            parse_fault("flap:w0-w1:40ms:0.5").unwrap(),
            Fault::Flap { a: 0, b: 1, period_ms: 40, duty: 0.5 }
        );
        assert!(parse_fault("partition:w1-w2").unwrap_err().contains("expected"));
        assert!(parse_fault("partition:w1-w2@e4-e2").unwrap_err().contains("heal"));
        assert!(parse_fault("partition:w1-w1@e1-e2").unwrap_err().contains("differ"));
        assert!(parse_fault("flap:w0-w1:0ms:0.5").unwrap_err().contains("> 0"));
        assert!(parse_fault("flap:w0-w1:40ms:1.5").unwrap_err().contains("[0, 1]"));
        assert!(parse_fault("flap:w0:40ms:0.5").unwrap_err().contains("w<a>-w<b>"));
    }

    #[test]
    fn partition_severs_both_directions_inside_its_window() {
        let plan = FaultPlan::default()
            .with_fault(Fault::Partition { a: 1, b: 2, from_epoch: 2, heal_epoch: 4 });
        let kind = MessageKind::Control(1.0);
        for epoch in [2, 3] {
            assert!(plan.send_fate(epoch, 1, 2, Some(&kind), 1).severed);
            assert!(plan.send_fate(epoch, 2, 1, Some(&kind), 1).severed);
            assert!(plan.link_severed(epoch, 1, 2, 0));
        }
        // Outside the window and off the link: untouched.
        for epoch in [0, 1, 4, 5] {
            assert!(!plan.send_fate(epoch, 1, 2, Some(&kind), 1).severed);
            assert!(!plan.link_severed(epoch, 1, 2, 0));
        }
        assert!(!plan.send_fate(3, 0, 2, Some(&kind), 1).severed);
        // The simulator sees retransmission inflation, not a black hole.
        let sim = plan.send_fate(3, 1, 2, None, 1);
        assert!(!sim.severed);
        assert_eq!(sim.delay_ms, plan.retransmit_ms);
    }

    #[test]
    fn asym_partition_severs_one_direction_only() {
        let plan = FaultPlan::default().with_fault(Fault::AsymPartition {
            src: 0,
            dst: 2,
            from_epoch: 1,
            heal_epoch: 3,
        });
        let kind = MessageKind::Control(1.0);
        assert!(plan.send_fate(1, 0, 2, Some(&kind), 1).severed);
        assert!(!plan.send_fate(1, 2, 0, Some(&kind), 1).severed, "reverse flows");
        assert!(plan.link_severed(2, 0, 2, 0));
        assert!(!plan.link_severed(2, 2, 0, 0));
    }

    #[test]
    fn flap_holds_messages_until_the_next_up_window() {
        let plan = FaultPlan::default()
            .with_fault(Fault::Flap { a: 0, b: 1, period_ms: 40, duty: 0.5 });
        let kind = MessageKind::Control(1.0);
        // Down for the first 20ms of every 40ms window: a send at 5ms is
        // held 15ms, a send at 25ms goes straight through.
        let down = plan.send_fate_at(0, 0, 1, Some(&kind), 1, 5);
        assert!(!down.severed, "flapped messages are delayed, never lost");
        assert_eq!(down.delay_ms, 15);
        let up = plan.send_fate_at(0, 1, 0, Some(&kind), 1, 25);
        assert_eq!(up.delay_ms, 0);
        // The next period flaps again.
        assert_eq!(plan.send_fate_at(0, 0, 1, Some(&kind), 1, 41).delay_ms, 19);
        assert!(plan.link_severed(0, 0, 1, 5));
        assert!(!plan.link_severed(0, 0, 1, 25));
        // Off the link: untouched at any time.
        assert_eq!(plan.send_fate_at(0, 0, 2, Some(&kind), 1, 5).delay_ms, 0);
    }

    #[test]
    fn flap_sim_fate_charges_a_duty_fraction_of_transfers() {
        let plan = FaultPlan::default()
            .with_seed(5)
            .with_fault(Fault::Flap { a: 0, b: 1, period_ms: 40, duty: 0.4 });
        let mut hit = 0;
        for seq in 1..=4000u64 {
            let fate = plan.send_fate(0, 0, 1, None, seq);
            assert_eq!(fate, plan.send_fate(0, 0, 1, None, seq));
            if fate.delay_ms > 0 {
                // Expected residual down-time: (40 * 0.4) / 2 = 8ms.
                assert_eq!(fate.delay_ms, 8);
                hit += 1;
            }
        }
        let rate = hit as f64 / 4000.0;
        assert!((rate - 0.4).abs() < 0.05, "flap sim rate {rate}");
    }

    #[test]
    fn retire_links_cures_only_the_departed_worker() {
        let mut plan = FaultPlan::default()
            .with_fault(Fault::Partition { a: 0, b: 1, from_epoch: 0, heal_epoch: 9 })
            .with_fault(Fault::Flap { a: 1, b: 2, period_ms: 40, duty: 0.5 })
            .with_fault(Fault::AsymPartition {
                src: 0,
                dst: 2,
                from_epoch: 0,
                heal_epoch: 9,
            })
            .with_fault(Fault::Straggle { worker: 1, delay_ms: 5 });
        assert!(plan.has_link_faults());
        plan.retire_links(1);
        assert_eq!(plan.faults.len(), 2, "both links touching w1 retire");
        assert!(plan.link_severed(1, 0, 2, 0), "w0-w2 link fault survives");
        assert_eq!(
            plan.send_fate(0, 1, 0, None, 1).delay_ms,
            5,
            "non-link faults are untouched"
        );
        plan.retire_links(2);
        assert!(!plan.has_link_faults());
    }

    #[test]
    fn corrupt_fate_is_deterministic_and_calibrated() {
        let plan = FaultPlan::default()
            .with_seed(11)
            .with_fault(Fault::Corrupt { sel: MsgSel::any(), p: 0.3 });
        let kind = MessageKind::Control(1.0);
        let mut hits = 0;
        for seq in 1..=4000u64 {
            let a = plan.send_fate(0, 0, 1, Some(&kind), seq);
            assert_eq!(a, plan.send_fate(0, 0, 1, Some(&kind), seq));
            assert_eq!(a.delay_ms, 0, "typed corrupt does not delay the logical send");
            if a.corrupt {
                hits += 1;
            }
        }
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.05, "corrupt rate {rate}");
        // Untyped (simulator) transfers see the retransmission delay instead.
        let sim_fate_hits = (1..=4000u64)
            .filter(|&seq| plan.send_fate(0, 0, 1, None, seq).delay_ms > 0)
            .count();
        assert!(sim_fate_hits > 0);
    }

    #[test]
    fn ckpt_fate_scopes_by_epoch_and_is_deterministic() {
        let plan = FaultPlan::default()
            .with_seed(3)
            .with_fault(Fault::CorruptCkpt { epoch: Some(4), p: 1.0 });
        let hit = plan.ckpt_fate(4).expect("p=1.0 must fire");
        assert_eq!(plan.ckpt_fate(4), Some(hit), "bit draw must be deterministic");
        assert_eq!(plan.ckpt_fate(2), None, "other boundaries untouched");
        assert_eq!(FaultPlan::default().ckpt_fate(4), None);
    }

    #[test]
    fn parses_resource_specs() {
        assert_eq!(
            parse_fault("diskfull:e2-e4").unwrap(),
            Fault::DiskFull { from_epoch: 2, heal_epoch: 4 }
        );
        assert_eq!(parse_fault("slowdisk:3").unwrap(), Fault::SlowDisk { factor: 3.0 });
        assert_eq!(
            parse_fault("mempressure:1048576@e1-e5").unwrap(),
            Fault::MemPressure { cap_bytes: 1 << 20, from_epoch: 1, heal_epoch: 5 }
        );
        assert_eq!(
            parse_fault("hang:w1@e3").unwrap(),
            Fault::Hang { worker: 1, epoch: 3 }
        );
        assert!(parse_fault("diskfull:e4-e2").unwrap_err().contains("heal"));
        assert!(parse_fault("slowdisk:0.5").unwrap_err().contains(">= 1"));
        assert!(parse_fault("mempressure:0@e1-e2").unwrap_err().contains("> 0"));
        assert!(parse_fault("mempressure:4096").unwrap_err().contains("expected"));
        assert!(parse_fault("hang:w1").unwrap_err().contains("w<id>@e<epoch>"));
    }

    #[test]
    fn resource_faults_never_touch_message_fates() {
        let plan = FaultPlan::default()
            .with_fault(Fault::DiskFull { from_epoch: 0, heal_epoch: 9 })
            .with_fault(Fault::SlowDisk { factor: 4.0 })
            .with_fault(Fault::MemPressure {
                cap_bytes: 4096,
                from_epoch: 0,
                heal_epoch: 9,
            })
            .with_fault(Fault::Hang { worker: 1, epoch: 3 });
        let kind = MessageKind::Control(1.0);
        for epoch in 0..6 {
            assert_eq!(plan.send_fate(epoch, 0, 1, Some(&kind), 1), SendFate::default());
        }
        assert!(!plan.has_link_faults());
        assert!(plan.has_resource_faults());
    }

    #[test]
    fn disk_and_mem_windows_scope_by_epoch() {
        let plan = FaultPlan::default()
            .with_fault(Fault::DiskFull { from_epoch: 2, heal_epoch: 4 })
            .with_fault(Fault::MemPressure {
                cap_bytes: 8192,
                from_epoch: 1,
                heal_epoch: 3,
            })
            .with_fault(Fault::MemPressure {
                cap_bytes: 4096,
                from_epoch: 2,
                heal_epoch: 5,
            });
        assert!(!plan.disk_full_at(1));
        assert!(plan.disk_full_at(2) && plan.disk_full_at(3));
        assert!(!plan.disk_full_at(4));
        assert_eq!(plan.mem_cap_at(0), None);
        assert_eq!(plan.mem_cap_at(1), Some(8192));
        assert_eq!(plan.mem_cap_at(2), Some(4096), "tightest overlapping cap wins");
        assert_eq!(plan.mem_cap_at(4), Some(4096));
        assert_eq!(plan.mem_cap_at(5), None);
        assert_eq!(plan.slow_disk_factor(), 1.0, "no slowdisk fault: unit factor");
        let slow = FaultPlan::default()
            .with_fault(Fault::SlowDisk { factor: 2.0 })
            .with_fault(Fault::SlowDisk { factor: 3.0 });
        assert_eq!(slow.slow_disk_factor(), 6.0, "factors compose");
    }

    #[test]
    fn retire_hang_removes_only_the_fired_hang() {
        let mut plan = FaultPlan::default()
            .with_fault(Fault::Hang { worker: 1, epoch: 2 })
            .with_fault(Fault::Hang { worker: 1, epoch: 5 });
        assert_eq!(plan.hang_epoch(1), Some(2));
        assert_eq!(plan.hang_epoch(0), None);
        plan.retire_hang(1, 2);
        assert_eq!(plan.hang_epoch(1), Some(5));
        plan.retire_hang(1, 5);
        assert!(plan.is_empty());
    }

    #[test]
    fn push_spec_accumulates() {
        let mut plan = FaultPlan::default();
        plan.push_spec("kill:w1@e2").unwrap();
        plan.push_spec("drop:any:0.1").unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert!(plan.push_spec("bogus").is_err());
    }
}

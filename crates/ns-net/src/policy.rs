//! Unified deadline / backoff / circuit-breaker policy for everything
//! that waits on a peer.
//!
//! Before this module, every caller that could block on the network had
//! its own fixed timeout: the executor's receive retry doubled a base
//! window, the serve frontend had `reply_timeout_ms`, shard workers had
//! `fetch_timeout_ms`, and none of them knew about each other. Under a
//! link partition that means (a) nested retries can wait far past the
//! operation's overall deadline, (b) every worker retries on the same
//! fixed schedule, so a shared stall turns into a synchronized retry
//! storm, and (c) a caller keeps paying the full timeout on every
//! operation against a link that has been dead for minutes.
//!
//! Three small, composable pieces fix the three problems:
//!
//! * [`Budget`] — an overall deadline for one logical operation. Nested
//!   waits call [`Budget::clamp`] so no inner retry ever sleeps past the
//!   operation's deadline, and [`Budget::exhausted`] tells the caller to
//!   stop retrying (metered as `net.deadline.exhausted` by callers).
//! * [`Backoff`] — bounded exponential backoff over retry windows with
//!   *deterministic seeded jitter*: two workers retrying after the same
//!   stall draw different window widths (seeded by who they are), so
//!   they desynchronize, but a rerun of the same seed reproduces the
//!   exact schedule. The first window and the final window are left at
//!   their nominal width — the first so fast failures stay fast and
//!   reproducible, the final so the total wait still absorbs the
//!   longest injected retransmit delay the unjittered schedule could.
//! * [`CircuitBreaker`] — per-peer Closed → Open → HalfOpen state. After
//!   `threshold` consecutive failures the breaker opens and further
//!   attempts fail instantly (no window spent) until `cooldown` passes;
//!   then exactly one probe is let through (HalfOpen) and its outcome
//!   re-opens or closes the breaker. Callers export the counters in
//!   [`BreakerStats`] as `net.breaker.*`.
//!
//! None of this is wall-clock-free: budgets and cooldowns are measured
//! on [`Instant`]. What *is* deterministic is every decision that does
//! not depend on real elapsed time — the jittered window sequence is a
//! pure function of `(seed, key, attempt)`.

use std::time::{Duration, Instant};

/// splitmix64 finalizer: the same bit mixer the fault layer uses, so one
/// seed gives independent-looking streams for every `(key, attempt)`.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic uniform draw in `[0, 1)` from `(seed, key, attempt)`.
fn unit(seed: u64, key: u64, attempt: u32) -> f64 {
    let h = mix64(seed ^ mix64(key ^ ((attempt as u64) << 32)));
    // 53 mantissa bits — the standard u64 -> f64 unit-interval map.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// An overall deadline for one logical operation, shared by every nested
/// wait inside it.
///
/// ```
/// use std::time::Duration;
/// use ns_net::policy::Budget;
///
/// let budget = Budget::new(Duration::from_millis(200));
/// // An inner retry that wants a 500 ms window gets at most what's left.
/// assert!(budget.clamp(Duration::from_millis(500)) <= Duration::from_millis(200));
/// assert!(!budget.exhausted());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    start: Instant,
    total: Duration,
}

impl Budget {
    /// Starts an operation budget of `total`, counting from now.
    pub fn new(total: Duration) -> Self {
        Budget { start: Instant::now(), total }
    }

    /// Convenience constructor from milliseconds.
    pub fn from_ms(total_ms: u64) -> Self {
        Self::new(Duration::from_millis(total_ms))
    }

    /// Time left before the deadline (zero once passed).
    pub fn remaining(&self) -> Duration {
        self.total.saturating_sub(self.start.elapsed())
    }

    /// Whether the deadline has passed.
    pub fn exhausted(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Clamps a desired wait to the remaining budget: a nested retry can
    /// never sleep past the operation's overall deadline.
    pub fn clamp(&self, want: Duration) -> Duration {
        want.min(self.remaining())
    }
}

/// Bounded exponential backoff with deterministic seeded jitter.
///
/// Window `i` (0-based attempt counter) is nominally `base << i`.
/// Middle windows are scaled by a jitter factor in `[0.5, 1.0)` drawn
/// deterministically from `(seed, key, attempt)`; the first and final
/// windows stay nominal (see module docs for why). The iterator yields
/// `retries + 1` windows, then `None`.
///
/// ```
/// use ns_net::policy::Backoff;
///
/// let mut a = Backoff::new(100, 3, 42, 7);
/// let mut b = Backoff::new(100, 3, 42, 8); // different key (e.g. other worker)
/// let wa: Vec<_> = std::iter::from_fn(|| a.next_wait()).collect();
/// let wb: Vec<_> = std::iter::from_fn(|| b.next_wait()).collect();
/// assert_eq!(wa.len(), 4);
/// assert_eq!(wa[0], wb[0], "first window is nominal for both");
/// assert_ne!(wa[1..3], wb[1..3], "middle windows desynchronize");
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    retries: u32,
    seed: u64,
    key: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule of `retries + 1` windows starting at `base_ms`,
    /// doubling each attempt, jittered by `(seed, key)`.
    pub fn new(base_ms: u64, retries: u32, seed: u64, key: u64) -> Self {
        Backoff { base_ms: base_ms.max(1), retries, seed, key, attempt: 0 }
    }

    /// Attempts handed out so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Sum of the *nominal* (unjittered) windows — the natural overall
    /// [`Budget`] for the operation this schedule retries.
    pub fn nominal_total_ms(&self) -> u64 {
        (0..=self.retries)
            .map(|i| self.base_ms.saturating_mul(1u64 << i.min(20)))
            .fold(0u64, u64::saturating_add)
    }

    /// Next receive/retry window, or `None` when the retry budget is
    /// spent. Never returns a zero window.
    pub fn next_wait(&mut self) -> Option<Duration> {
        if self.attempt > self.retries {
            return None;
        }
        let i = self.attempt;
        self.attempt += 1;
        let nominal = self.base_ms.saturating_mul(1u64 << i.min(20));
        let ms = if i == 0 || i == self.retries {
            // First window: fast failures stay fast and reproducible.
            // Final window: keep the full-width catch-all so the total
            // schedule still outwaits the longest modeled retransmit.
            nominal
        } else {
            let u = unit(self.seed, self.key, i);
            ((nominal as f64) * (0.5 + 0.5 * u)) as u64
        };
        Some(Duration::from_millis(ms.max(1)))
    }
}

/// Breaker state, in the classic three-state pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every attempt is allowed.
    Closed,
    /// Tripped: attempts fail instantly until the cooldown passes.
    Open,
    /// Cooldown passed: exactly one probe is in flight; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

/// Counters a breaker accumulates over its lifetime; callers export
/// them as `net.breaker.{opens,closes,half_opens,fast_fails}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/HalfOpen → Open transitions.
    pub opens: u64,
    /// Open → HalfOpen transitions (probes admitted).
    pub half_opens: u64,
    /// HalfOpen → Closed transitions (probe succeeded).
    pub closes: u64,
    /// Attempts rejected instantly because the breaker was Open.
    pub fast_fails: u64,
}

/// Per-peer circuit breaker: stop hammering a link that keeps failing,
/// probe it again after a cooldown.
///
/// ```
/// use std::time::Duration;
/// use ns_net::policy::{BreakerState, CircuitBreaker};
///
/// let mut br = CircuitBreaker::new(2, Duration::from_millis(0));
/// assert!(br.allow());
/// br.record_failure();
/// br.record_failure(); // threshold reached -> Open
/// assert_eq!(br.state(), BreakerState::Open);
/// // Zero cooldown: the next attempt is the HalfOpen probe.
/// assert!(br.allow());
/// br.record_success();
/// assert_eq!(br.state(), BreakerState::Closed);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// Opens after `threshold` consecutive failures; admits a HalfOpen
    /// probe once `cooldown` has passed since opening. A threshold of 0
    /// is treated as 1 (a breaker that can never close is useless).
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            opened_at: None,
            stats: BreakerStats::default(),
        }
    }

    /// Current state (does not advance Open → HalfOpen; only
    /// [`allow`](Self::allow) does that).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime transition counters.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Whether an attempt may proceed right now. `false` means fail
    /// fast without spending any wait. Advances Open → HalfOpen when
    /// the cooldown has passed (admitting exactly one probe).
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                // One probe at a time: further attempts fail fast until
                // the in-flight probe reports.
                self.stats.fast_fails += 1;
                false
            }
            BreakerState::Open => {
                let cooled = self
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if cooled {
                    self.state = BreakerState::HalfOpen;
                    self.stats.half_opens += 1;
                    true
                } else {
                    self.stats.fast_fails += 1;
                    false
                }
            }
        }
    }

    /// Reports a successful attempt: any state returns to Closed and the
    /// failure streak resets.
    pub fn record_success(&mut self) {
        if self.state != BreakerState::Closed {
            self.stats.closes += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// Reports a failed attempt. In HalfOpen the probe failed and the
    /// breaker re-opens immediately; in Closed the streak grows and
    /// trips the breaker at the threshold.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = Some(Instant::now());
                self.stats.opens += 1;
            }
            BreakerState::Closed => {
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(Instant::now());
                    self.stats.opens += 1;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_clamps_and_exhausts() {
        let b = Budget::from_ms(50);
        assert!(b.clamp(Duration::from_millis(500)) <= Duration::from_millis(50));
        assert!(b.clamp(Duration::from_millis(5)) <= Duration::from_millis(5));
        assert!(!b.exhausted());
        let tiny = Budget::new(Duration::ZERO);
        assert!(tiny.exhausted());
        assert_eq!(tiny.clamp(Duration::from_millis(10)), Duration::ZERO);
    }

    #[test]
    fn budget_counts_real_elapsed_time() {
        let b = Budget::from_ms(30);
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Duration::ZERO);
    }

    #[test]
    fn backoff_yields_retries_plus_one_windows_then_none() {
        let mut bo = Backoff::new(10, 3, 1, 2);
        let windows: Vec<_> = std::iter::from_fn(|| bo.next_wait()).collect();
        assert_eq!(windows.len(), 4);
        assert!(bo.next_wait().is_none());
        assert_eq!(bo.attempt(), 4);
    }

    #[test]
    fn backoff_first_and_final_windows_are_nominal() {
        let mut bo = Backoff::new(10, 3, 99, 7);
        let w: Vec<_> = std::iter::from_fn(|| bo.next_wait()).collect();
        assert_eq!(w[0], Duration::from_millis(10));
        assert_eq!(w[3], Duration::from_millis(80));
        // Middle windows are jittered into [0.5, 1.0) of nominal.
        assert!(w[1] >= Duration::from_millis(10) && w[1] < Duration::from_millis(20));
        assert!(w[2] >= Duration::from_millis(20) && w[2] < Duration::from_millis(40));
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_key() {
        let draw = |seed, key| {
            let mut bo = Backoff::new(100, 4, seed, key);
            std::iter::from_fn(move || bo.next_wait()).collect::<Vec<_>>()
        };
        assert_eq!(draw(5, 1), draw(5, 1), "same seed+key replays exactly");
        assert_ne!(draw(5, 1)[1..4], draw(5, 2)[1..4], "different key desyncs");
        assert_ne!(draw(5, 1)[1..4], draw(6, 1)[1..4], "different seed desyncs");
    }

    #[test]
    fn backoff_total_never_exceeds_nominal() {
        for key in 0..32 {
            let mut bo = Backoff::new(10, 5, 11, key);
            let nominal = bo.nominal_total_ms();
            let total: u64 = std::iter::from_fn(|| bo.next_wait())
                .map(|d| d.as_millis() as u64)
                .sum();
            assert!(total <= nominal, "key {key}: {total} > {nominal}");
            // ...and the unjittered head+tail keep at least half the
            // schedule, so injected retransmit delays still fit.
            assert!(total >= nominal / 2, "key {key}: {total} < {}", nominal / 2);
        }
    }

    #[test]
    fn breaker_opens_at_threshold_and_fast_fails() {
        let mut br = CircuitBreaker::new(3, Duration::from_secs(60));
        for _ in 0..2 {
            assert!(br.allow());
            br.record_failure();
            assert_eq!(br.state(), BreakerState::Closed);
        }
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Open);
        assert!(!br.allow(), "open breaker rejects instantly");
        assert_eq!(br.stats().opens, 1);
        assert_eq!(br.stats().fast_fails, 1);
    }

    #[test]
    fn breaker_probe_closes_on_success_and_reopens_on_failure() {
        let mut br = CircuitBreaker::new(1, Duration::from_millis(0));
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Open);
        // Cooldown 0: the next attempt is the probe.
        assert!(br.allow());
        assert_eq!(br.state(), BreakerState::HalfOpen);
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Open, "failed probe re-opens");
        assert!(br.allow());
        br.record_success();
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.stats().half_opens, 2);
        assert_eq!(br.stats().closes, 1);
        assert_eq!(br.stats().opens, 2);
    }

    #[test]
    fn breaker_respects_cooldown() {
        let mut br = CircuitBreaker::new(1, Duration::from_millis(40));
        br.record_failure();
        assert!(!br.allow(), "still cooling down");
        std::thread::sleep(Duration::from_millis(50));
        assert!(br.allow(), "cooldown passed -> probe admitted");
        assert_eq!(br.state(), BreakerState::HalfOpen);
        // Only one probe at a time.
        assert!(!br.allow());
    }

    #[test]
    fn breaker_success_resets_the_failure_streak() {
        let mut br = CircuitBreaker::new(3, Duration::from_secs(1));
        br.record_failure();
        br.record_failure();
        br.record_success();
        assert_eq!(br.consecutive_failures(), 0);
        br.record_failure();
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Closed, "streak restarted after success");
    }
}

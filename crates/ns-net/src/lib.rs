//! Cluster fabric and discrete-event cluster simulation.
//!
//! The NeutronStar reproduction runs its distributed training for real —
//! one OS thread per worker, tensors moving over [`fabric`] channels — but
//! the *time* an epoch would take on a target cluster (Aliyun ECS with T4
//! GPUs over 6 Gbps Ethernet, or the paper's 100 Gbps InfiniBand V100
//! cluster) is obtained by replaying the epoch's task DAG through the
//! [`sim`] event simulator. The engines in `ns-runtime` emit one
//! [`sim::TaskGraph`] per epoch: compute tasks weighted in FLOPs and
//! messages weighted in bytes, with dependency edges that encode the
//! paper's ring scheduling and communication/computation overlap.
//!
//! Module map:
//!
//! * [`cluster`] — device/NIC models and named cluster presets.
//! * [`sim`] — the task graph and the event-driven scheduler; produces
//!   makespan plus per-resource busy timelines (the utilization traces of
//!   the paper's Fig. 13).
//! * [`fabric`] — real crossbeam-channel mesh carrying tensor rows,
//!   gradient chunks, and all-reduce payloads between worker threads.
//! * [`buffer`] — the lock-free position-indexed message buffer of §4.3,
//!   plus a mutex-guarded variant used as the ablation baseline.
//! * [`wire`] — checksummed frame format (magic, kind, length, CRC32)
//!   wrapping every fabric payload; receivers verify before decode.
//! * [`fault`] — deterministic, seeded fault injection (drops, delays,
//!   duplicates, corruption, stragglers, worker kills) honored by both the
//!   fabric and the simulator.
//! * [`membership`] — the coordinator's cluster membership view and the
//!   worker rejoin handshake used by the elastic trainer.
//! * [`policy`] — the shared deadline-budget / jittered-backoff /
//!   circuit-breaker policy every network wait runs under.

pub mod buffer;
pub mod cluster;
pub mod fabric;
pub mod fault;
pub mod membership;
pub mod policy;
pub mod sim;
pub mod wire;

pub use buffer::{LockFreeChunkBuffer, MutexChunkBuffer, ParallelEnqueue};
pub use cluster::{ClusterSpec, DeviceModel, ExecOptions, NetModel};
pub use fabric::{Endpoint, Fabric, Message, MessageKind, NetError, NetStats, KIND_NAMES};
pub use fault::{Fault, FaultPlan, KindSel, MsgSel, SendFate};
pub use membership::{
    MemberState, MembershipEvent, MembershipEventKind, MembershipView, RejoinOffer,
};
pub use policy::{Backoff, BreakerState, BreakerStats, Budget, CircuitBreaker};
pub use sim::{SimReport, TaskGraph, TaskId};
pub use wire::{crc32, FrameError, FRAME_HEADER_BYTES};

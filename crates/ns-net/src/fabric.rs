//! The real message fabric connecting worker threads.
//!
//! Workers exchange actual tensor payloads over a full mesh of crossbeam
//! channels — one channel per ordered `(src, dst)` pair so per-pair FIFO
//! order holds and `recv_from(src)` never interleaves senders. The
//! simulator decides how long these messages *would* take on a modeled
//! network; the fabric makes the training numerically real.
//!
//! Failure semantics: fabric operations never panic in production paths.
//! A peer whose endpoint has been dropped (crashed worker) surfaces as
//! [`NetError::PeerDisconnected`] on both the send and the receive side; a
//! wedged or slow peer surfaces as [`NetError::RecvTimeout`] from
//! [`Endpoint::recv_from_timeout`]; a protocol desync surfaces as
//! [`NetError::UnexpectedKind`] (raised by callers that demand a specific
//! message kind). Deterministic faults from a
//! [`FaultPlan`](crate::fault::FaultPlan) are applied on the send side:
//! drops become retransmission delays (`deliver_at` in the future),
//! duplicates become a second physical delivery that receivers suppress by
//! sequence number, flapped links hold messages until their next
//! up-window, and an active partition black-holes the send entirely — the
//! call still succeeds, so only the receiver's timeout/backoff machinery
//! can surface the outage, exactly like a real network partition.
//!
//! Integrity: every message carries the CRC32 of its compact wire
//! serialization (see [`wire`](crate::wire)), stamped at send time.
//! Receivers verify the checksum *before* admitting a message; a mismatch
//! (injected by a `corrupt` fault) surfaces as [`NetError::CorruptFrame`]
//! without advancing the duplicate-suppression watermark, so the clean
//! retransmission shipped under the same sequence number is still
//! admissible. Frame-header overhead is not metered in `sent_bytes` —
//! that counter stays the payload ground truth.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::fault::FaultPlan;
use crate::wire;

/// Failures surfaced by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer's endpoint was dropped — its worker crashed or exited.
    PeerDisconnected {
        /// The dead peer.
        peer: usize,
    },
    /// No message arrived from the peer within the receive window.
    RecvTimeout {
        /// The silent peer.
        peer: usize,
        /// Total time waited, milliseconds.
        waited_ms: u64,
    },
    /// A message of the wrong kind arrived (protocol desync).
    UnexpectedKind {
        /// The offending peer.
        peer: usize,
        /// Kind the protocol demanded.
        expected: &'static str,
        /// Kind that actually arrived.
        got: &'static str,
    },
    /// A frame failed CRC verification (bit flip in flight). Retriable:
    /// the sender's clean retransmission arrives under the same sequence
    /// number, so the caller should simply receive again.
    CorruptFrame {
        /// Peer whose frame failed verification.
        peer: usize,
        /// Sequence number of the corrupt frame.
        seq: u64,
        /// CRC carried in the frame header.
        expected: u32,
        /// CRC recomputed over the received payload.
        computed: u32,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::PeerDisconnected { peer } => {
                write!(f, "peer {peer} disconnected")
            }
            NetError::RecvTimeout { peer, waited_ms } => {
                write!(f, "no message from peer {peer} after {waited_ms} ms")
            }
            NetError::UnexpectedKind { peer, expected, got } => {
                write!(f, "peer {peer} sent {got}, expected {expected}")
            }
            NetError::CorruptFrame { peer, seq, expected, computed } => write!(
                f,
                "corrupt frame from peer {peer} (seq {seq}): \
                 header CRC {expected:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

/// Fixed header bytes of a compact `Rows` / `Grads` serialization:
/// kind tag (1) + layer (4) + cols (4) + row count (4).
pub const ROWS_HEADER_BYTES: u64 = 13;
/// Fixed header bytes of an `AllReduce` chunk: kind tag (1) + round (4) +
/// chunk length (4).
pub const ALLREDUCE_HEADER_BYTES: u64 = 9;
/// Fixed bytes of a `Control` message: kind tag (1) + value (8).
pub const CONTROL_BYTES: u64 = 9;
/// Fixed header bytes of a `Query` serialization: kind tag (1) + query
/// count (4) + vertex count (4).
pub const QUERY_HEADER_BYTES: u64 = 9;
/// Fixed header bytes of a `Reply` serialization: kind tag (1) + query
/// count (4).
pub const REPLY_HEADER_BYTES: u64 = 5;

/// What a message carries.
#[derive(Debug, Clone)]
pub enum MessageKind {
    /// Vertex-representation rows: forward-phase master→mirror sync
    /// (`GetFromDepNbr` in DepComm mode).
    Rows {
        /// GNN layer index the rows belong to.
        layer: u32,
        /// Global vertex ids, one per row.
        ids: Vec<u32>,
        /// Row width.
        cols: u32,
        /// Row-major payload, `ids.len() * cols` long.
        data: Vec<f32>,
    },
    /// Gradient rows: backward-phase mirror→master sync (`PostToDepNbr`).
    Grads {
        /// GNN layer index the gradients belong to.
        layer: u32,
        /// Global vertex ids, one per row.
        ids: Vec<u32>,
        /// Row width.
        cols: u32,
        /// Row-major payload.
        data: Vec<f32>,
    },
    /// A slice of flattened parameter gradients for ring all-reduce.
    AllReduce {
        /// Reduction round (for debugging / assertions).
        round: u32,
        /// Payload chunk.
        data: Vec<f32>,
    },
    /// Scalar control value (loss terms, counters, handshakes).
    Control(f64),
    /// Inference-path request. Frontend → shard: `qids[i]` is the query
    /// id whose seed vertex is `verts[i]` (parallel arrays). Shard →
    /// shard: `qids` is empty and `verts` lists the feature rows the
    /// sender wants (answered with a layer-0 [`MessageKind::Rows`]).
    Query {
        /// Query ids, parallel to `verts` (empty for feature fetches).
        qids: Vec<u32>,
        /// Seed vertices (frontend→shard) or wanted rows (shard→shard).
        verts: Vec<u32>,
    },
    /// Inference-path answer, shard → frontend: the predicted class for
    /// each answered query id.
    Reply {
        /// Query ids answered, parallel to `classes`.
        qids: Vec<u32>,
        /// Argmax class per query.
        classes: Vec<u32>,
    },
}

impl MessageKind {
    /// Wire size in bytes of a compact serialization: the fixed
    /// per-message header (kind tag plus the layer/cols/round metadata
    /// fields) plus per-row ids and the `f32` payload. Used to meter the
    /// simulator.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            MessageKind::Rows { ids, data, .. } | MessageKind::Grads { ids, data, .. } => {
                ROWS_HEADER_BYTES
                    + (ids.len() * std::mem::size_of::<u32>()
                        + data.len() * std::mem::size_of::<f32>()) as u64
            }
            MessageKind::AllReduce { data, .. } => {
                ALLREDUCE_HEADER_BYTES + (data.len() * std::mem::size_of::<f32>()) as u64
            }
            MessageKind::Control(_) => CONTROL_BYTES,
            MessageKind::Query { qids, verts } => {
                QUERY_HEADER_BYTES
                    + ((qids.len() + verts.len()) * std::mem::size_of::<u32>()) as u64
            }
            MessageKind::Reply { qids, classes } => {
                REPLY_HEADER_BYTES
                    + ((qids.len() + classes.len()) * std::mem::size_of::<u32>()) as u64
            }
        }
    }

    /// Variant name, for [`NetError::UnexpectedKind`] diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            MessageKind::Rows { .. } => "Rows",
            MessageKind::Grads { .. } => "Grads",
            MessageKind::AllReduce { .. } => "AllReduce",
            MessageKind::Control(_) => "Control",
            MessageKind::Query { .. } => "Query",
            MessageKind::Reply { .. } => "Reply",
        }
    }

    /// Stable index of this kind into the per-kind [`NetStats`] arrays;
    /// parallel to [`KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            MessageKind::Rows { .. } => 0,
            MessageKind::Grads { .. } => 1,
            MessageKind::AllReduce { .. } => 2,
            MessageKind::Control(_) => 3,
            MessageKind::Query { .. } => 4,
            MessageKind::Reply { .. } => 5,
        }
    }
}

/// Snake-case kind names, parallel to [`MessageKind::kind_index`]. Used to
/// name per-kind metric counters.
pub const KIND_NAMES: [&str; 6] = ["rows", "grads", "allreduce", "control", "query", "reply"];

/// Always-on traffic counters metered by one [`Endpoint`].
///
/// Send-side counters meter *logical* sends: one message counted once, at its
/// [`MessageKind::payload_bytes`] wire size, regardless of fault-injected
/// physical duplicates (those are tallied separately in `dups_injected`).
/// This makes `sent_bytes` the ground truth the metrics layer exposes as
/// `net.sent.bytes` — exactly the bytes the training protocol put on the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Logical messages sent, all kinds and peers.
    pub sent_msgs: u64,
    /// Logical bytes sent ([`MessageKind::payload_bytes`] sum).
    pub sent_bytes: u64,
    /// Messages sent, indexed by [`MessageKind::kind_index`].
    pub sent_msgs_by_kind: [u64; 6],
    /// Bytes sent, indexed by [`MessageKind::kind_index`].
    pub sent_bytes_by_kind: [u64; 6],
    /// Messages sent to each destination worker (self-sends included).
    pub sent_msgs_by_peer: Vec<u64>,
    /// Bytes sent to each destination worker.
    pub sent_bytes_by_peer: Vec<u64>,
    /// Sends the fault plan delayed (the fabric's model of drop+retransmit).
    pub delays_injected: u64,
    /// Sends black-holed by an active link partition: the send succeeded
    /// from the caller's point of view but nothing was ever delivered.
    pub severed_msgs: u64,
    /// Sends the fault plan physically duplicated.
    pub dups_injected: u64,
    /// Received duplicates this endpoint suppressed by sequence number.
    pub dups_suppressed: u64,
    /// Sends the fault plan bit-flipped in flight (a clean retransmission
    /// follows each one).
    pub corrupts_injected: u64,
    /// Received frames this endpoint rejected on CRC mismatch.
    pub crc_failures: u64,
    /// Clean retransmissions admitted after a CRC rejection of the same
    /// sequence number.
    pub rereads: u64,
    /// Wire frames encoded by the send path (one per non-severed send).
    pub encode_frames: u64,
    /// Total encoded frame bytes (header + payload), written into the
    /// endpoint's reusable frame buffer.
    pub encode_bytes: u64,
}

impl NetStats {
    fn for_world(workers: usize) -> Self {
        NetStats {
            sent_msgs_by_peer: vec![0; workers],
            sent_bytes_by_peer: vec![0; workers],
            ..NetStats::default()
        }
    }
}

/// An addressed message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending worker.
    pub src: usize,
    /// Per-`(src, dst)` sequence number, starting at 1. Receivers drop
    /// messages whose sequence number they have already seen (duplicate
    /// suppression).
    pub seq: u64,
    /// Earliest delivery time injected by the fault plan; `None` delivers
    /// immediately.
    pub deliver_at: Option<Instant>,
    /// Frame checksum: CRC32 of the compact payload serialization (see
    /// [`wire::payload_crc`]), stamped by the sender and verified by the
    /// receiver before the message is admitted.
    pub crc: u32,
    /// Payload.
    pub kind: MessageKind,
}

/// One worker's handle onto the mesh.
///
/// The endpoint carries per-peer send/receive bookkeeping (sequence
/// counters, duplicate-suppression watermarks, one stashed not-yet-due
/// message per peer) in `RefCell`s: an endpoint is owned by exactly one
/// worker thread and is not `Sync`.
pub struct Endpoint {
    me: usize,
    txs: Vec<Sender<Message>>,
    rxs: Vec<Receiver<Message>>,
    faults: Arc<FaultPlan>,
    // Link-layer clock origin shared by every endpoint of the fabric, so
    // time-dependent link faults (flaps) evaluate consistently mesh-wide.
    origin: Instant,
    epoch: Cell<usize>,
    next_seq: RefCell<Vec<u64>>,
    last_seen: RefCell<Vec<u64>>,
    // Sequence number of the last CRC-rejected frame per peer (0 = none);
    // lets the endpoint meter the clean retransmission as a re-read.
    last_corrupt: RefCell<Vec<u64>>,
    pending: RefCell<Vec<Option<Message>>>,
    stats: RefCell<NetStats>,
    // Reusable NSF1 frame buffer: every outgoing message is encoded into
    // this one allocation (header reserved, payload written in place, CRC
    // patched — see `wire::encode_frame_into`), so the send path stops
    // allocating once the buffer has grown to the largest frame.
    frame: RefCell<Vec<u8>>,
}

impl Endpoint {
    /// This worker's id.
    pub fn id(&self) -> usize {
        self.me
    }

    /// Number of workers in the mesh.
    pub fn world(&self) -> usize {
        self.txs.len()
    }

    /// The fault plan the fabric was built with.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sets the epoch stamped onto outgoing messages, so `(epoch, src,
    /// dst)`-scoped faults hit the right sends.
    pub fn set_epoch(&self, epoch: usize) {
        self.epoch.set(epoch);
    }

    /// The epoch currently stamped onto outgoing messages.
    pub fn epoch(&self) -> usize {
        self.epoch.get()
    }

    /// Milliseconds on the fabric-wide link-layer clock (time since the
    /// mesh came up). Every endpoint of one fabric reads the same clock;
    /// it decides where inside a flap period a send lands, and callers
    /// use it with [`FaultPlan::link_severed`] for breaker heal checks.
    pub fn link_now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// Sends `kind` to `dst` (self-sends are allowed and loop back).
    /// Returns the metered payload size, or `PeerDisconnected` when `dst`'s
    /// endpoint has been dropped. A send over a partitioned link still
    /// returns `Ok` — it is silently black-holed (metered in
    /// [`NetStats::severed_msgs`]), because a real sender cannot tell a
    /// severed link from a slow one at the moment of the send.
    pub fn send(&self, dst: usize, kind: MessageKind) -> Result<u64, NetError> {
        let bytes = kind.payload_bytes();
        let kidx = kind.kind_index();
        let seq = {
            let mut seqs = self.next_seq.borrow_mut();
            seqs[dst] += 1;
            seqs[dst]
        };
        let fate = self.faults.send_fate_at(
            self.epoch.get(),
            self.me,
            dst,
            Some(&kind),
            seq,
            self.link_now_ms(),
        );
        let deliver_at = (fate.delay_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(fate.delay_ms));
        {
            let mut st = self.stats.borrow_mut();
            st.sent_msgs += 1;
            st.sent_bytes += bytes;
            st.sent_msgs_by_kind[kidx] += 1;
            st.sent_bytes_by_kind[kidx] += bytes;
            st.sent_msgs_by_peer[dst] += 1;
            st.sent_bytes_by_peer[dst] += bytes;
            if fate.severed {
                st.severed_msgs += 1;
            } else {
                if deliver_at.is_some() {
                    st.delays_injected += 1;
                }
                if fate.duplicate {
                    st.dups_injected += 1;
                }
                if fate.corrupt {
                    st.corrupts_injected += 1;
                }
            }
        }
        if fate.severed {
            // Black hole: the sequence number is consumed (the transport
            // believes it transmitted), nothing reaches the receiver, and
            // the caller sees success. Receive timeouts are the only
            // symptom — the honest partition failure mode.
            return Ok(bytes);
        }
        // Encode the wire frame into the endpoint's reusable buffer and
        // stamp the CRC the encoder computed in place — one serialization
        // pass, zero allocation at steady state.
        let crc = {
            let mut frame = self.frame.borrow_mut();
            wire::encode_frame_into(&kind, &mut frame);
            let mut st = self.stats.borrow_mut();
            st.encode_frames += 1;
            st.encode_bytes += frame.len() as u64;
            wire::frame_crc(&frame)
        };
        let mut msg = Message { src: self.me, seq, deliver_at, crc, kind };
        if fate.corrupt {
            // Ship a bit-flipped physical copy now (stamped with the clean
            // CRC, so the receiver's verification fails) and push the clean
            // copy out behind the modeled retransmission delay — the
            // fabric's view of "corruption detected, re-requested".
            let bit_seed = seq
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(((self.me as u64) << 32) | dst as u64);
            let corrupted = Message {
                kind: wire::flip_payload_bit(&msg.kind, bit_seed),
                ..msg.clone()
            };
            // Best-effort like duplicates: the receiver may already have
            // exited; the corrupt copy would have been rejected anyway.
            let _ = self.txs[dst].send(corrupted);
            msg.deliver_at = Some(
                Instant::now()
                    + Duration::from_millis(fate.delay_ms + self.faults.retransmit_ms),
            );
        }
        let dup = fate.duplicate.then(|| msg.clone());
        self.txs[dst]
            .send(msg)
            .map_err(|_| NetError::PeerDisconnected { peer: dst })?;
        if let Some(copy) = dup {
            // Best-effort: the duplicate is an injected artifact riding on
            // a send that already succeeded. The receiver may legitimately
            // exit right after consuming the original (e.g. it was the last
            // message of its run), so a dead channel here is not a send
            // failure — the copy would have been suppressed anyway.
            let _ = self.txs[dst].send(copy);
        }
        Ok(bytes)
    }

    /// Snapshot of this endpoint's traffic counters.
    pub fn stats(&self) -> NetStats {
        self.stats.borrow().clone()
    }

    /// Surfaces `msg` unless it is a duplicate delivery (`Ok(None)`) or it
    /// fails CRC verification (`Err(CorruptFrame)`). Verification happens
    /// *before* the duplicate-suppression watermark advances, so the clean
    /// retransmission of a rejected sequence number is still admissible.
    fn admit(&self, src: usize, msg: Message) -> Result<Option<Message>, NetError> {
        if msg.seq <= self.last_seen.borrow()[src] {
            self.stats.borrow_mut().dups_suppressed += 1;
            return Ok(None);
        }
        let computed = wire::payload_crc(&msg.kind);
        if computed != msg.crc {
            self.stats.borrow_mut().crc_failures += 1;
            self.last_corrupt.borrow_mut()[src] = msg.seq;
            return Err(NetError::CorruptFrame {
                peer: src,
                seq: msg.seq,
                expected: msg.crc,
                computed,
            });
        }
        {
            let mut corrupt = self.last_corrupt.borrow_mut();
            if corrupt[src] == msg.seq {
                corrupt[src] = 0;
                self.stats.borrow_mut().rereads += 1;
            }
        }
        self.last_seen.borrow_mut()[src] = msg.seq;
        Ok(Some(msg))
    }

    /// Blocks until a verified message from `src` arrives (waiting out
    /// injected delivery delays), or the peer disconnects. CRC-rejected
    /// frames are counted and skipped — the blocking receive simply waits
    /// for the clean retransmission.
    pub fn recv_from(&self, src: usize) -> Result<Message, NetError> {
        loop {
            let msg = match self.pending.borrow_mut()[src].take() {
                Some(m) => m,
                None => self.rxs[src]
                    .recv()
                    .map_err(|_| NetError::PeerDisconnected { peer: src })?,
            };
            if let Some(at) = msg.deliver_at {
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
            }
            match self.admit(src, msg) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) | Err(NetError::CorruptFrame { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Like [`recv_from`](Self::recv_from) but gives up with
    /// [`NetError::RecvTimeout`] after `timeout`. A message whose injected
    /// delivery time falls beyond the window counts as not yet arrived (it
    /// is kept pending for the next attempt), so dropped-and-retransmitted
    /// messages genuinely exercise the caller's retry path. A CRC-rejected
    /// frame surfaces immediately as [`NetError::CorruptFrame`] — retriable,
    /// since the clean retransmission follows under the same sequence
    /// number.
    pub fn recv_from_timeout(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        let waited_ms = timeout.as_millis() as u64;
        loop {
            let msg = match self.pending.borrow_mut()[src].take() {
                Some(m) => m,
                None => match self.rxs[src].recv_deadline(deadline) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(NetError::RecvTimeout { peer: src, waited_ms })
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(NetError::PeerDisconnected { peer: src })
                    }
                },
            };
            if let Some(at) = msg.deliver_at {
                if at > deadline {
                    self.pending.borrow_mut()[src] = Some(msg);
                    let now = Instant::now();
                    if deadline > now {
                        std::thread::sleep(deadline - now);
                    }
                    return Err(NetError::RecvTimeout { peer: src, waited_ms });
                }
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
            }
            match self.admit(src, msg) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Non-blocking receive from `src`. Messages with a pending injected
    /// delay are not yet visible; CRC-rejected frames are counted and
    /// skipped.
    pub fn try_recv_from(&self, src: usize) -> Option<Message> {
        loop {
            let msg = match self.pending.borrow_mut()[src].take() {
                Some(m) => m,
                None => self.rxs[src].try_recv().ok()?,
            };
            if let Some(at) = msg.deliver_at {
                if at > Instant::now() {
                    self.pending.borrow_mut()[src] = Some(msg);
                    return None;
                }
            }
            match self.admit(src, msg) {
                Ok(Some(m)) => return Some(m),
                Ok(None) | Err(_) => continue,
            }
        }
    }
}

/// A full mesh of `m x m` channels.
pub struct Fabric {
    endpoints: Vec<Endpoint>,
}

impl Fabric {
    /// Builds a fault-free mesh for `workers` nodes.
    pub fn new(workers: usize) -> Self {
        Self::with_faults(workers, FaultPlan::default())
    }

    /// Builds the mesh with an injected fault plan shared by every
    /// endpoint.
    pub fn with_faults(workers: usize, faults: FaultPlan) -> Self {
        assert!(workers >= 1, "fabric needs at least one worker");
        let faults = Arc::new(faults);
        // One clock origin for the whole mesh: flap windows must open and
        // close at the same wall moments for every endpoint.
        let origin = Instant::now();
        // channel[src][dst], built dst-major so each src's tx vector is
        // already in dst order (no placeholder/unwrap shuffling needed).
        let mut txs_by_src: Vec<Vec<Sender<Message>>> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        let mut rxs_by_dst: Vec<Vec<Receiver<Message>>> = Vec::with_capacity(workers);
        for _dst in 0..workers {
            let mut rxs = Vec::with_capacity(workers);
            for txs in txs_by_src.iter_mut() {
                let (tx, rx) = unbounded();
                txs.push(tx);
                rxs.push(rx);
            }
            rxs_by_dst.push(rxs);
        }
        let endpoints = txs_by_src
            .into_iter()
            .zip(rxs_by_dst)
            .enumerate()
            .map(|(me, (txs, rxs))| Endpoint {
                me,
                txs,
                rxs,
                faults: Arc::clone(&faults),
                origin,
                epoch: Cell::new(0),
                next_seq: RefCell::new(vec![0; workers]),
                last_seen: RefCell::new(vec![0; workers]),
                last_corrupt: RefCell::new(vec![0; workers]),
                pending: RefCell::new((0..workers).map(|_| None).collect()),
                stats: RefCell::new(NetStats::for_world(workers)),
                frame: RefCell::new(Vec::new()),
            })
            .collect();
        Self { endpoints }
    }

    /// Consumes the fabric into its per-worker endpoints (index = worker
    /// id), ready to be moved into worker threads.
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, MsgSel};

    #[test]
    fn point_to_point_delivery() {
        let eps = Fabric::new(2).into_endpoints();
        let bytes = eps[0]
            .send(
                1,
                MessageKind::Rows { layer: 0, ids: vec![7], cols: 2, data: vec![1.0, 2.0] },
            )
            .unwrap();
        assert_eq!(bytes, ROWS_HEADER_BYTES + 4 + 8);
        let msg = eps[1].recv_from(0).unwrap();
        assert_eq!(msg.src, 0);
        match msg.kind {
            MessageKind::Rows { ids, data, .. } => {
                assert_eq!(ids, vec![7]);
                assert_eq!(data, vec![1.0, 2.0]);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn per_pair_fifo_order() {
        let eps = Fabric::new(2).into_endpoints();
        for i in 0..10 {
            eps[0].send(1, MessageKind::Control(i as f64)).unwrap();
        }
        for i in 0..10 {
            match eps[1].recv_from(0).unwrap().kind {
                MessageKind::Control(v) => assert_eq!(v, i as f64),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn self_send_loops_back() {
        let eps = Fabric::new(1).into_endpoints();
        eps[0].send(0, MessageKind::Control(42.0)).unwrap();
        match eps[0].recv_from(0).unwrap().kind {
            MessageKind::Control(v) => assert_eq!(v, 42.0),
            _ => panic!(),
        }
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let eps = Fabric::new(2).into_endpoints();
        assert!(eps[1].try_recv_from(0).is_none());
        eps[0].send(1, MessageKind::Control(1.0)).unwrap();
        assert!(eps[1].try_recv_from(0).is_some());
    }

    #[test]
    fn cross_thread_exchange() {
        let mut eps = Fabric::new(2).into_endpoints();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        // `move` closures: the endpoint's seen/pending bookkeeping makes
        // it Send but not Sync, so each thread must own its endpoint.
        crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                e0.send(1, MessageKind::Control(3.0)).unwrap();
                match e0.recv_from(1).unwrap().kind {
                    MessageKind::Control(v) => assert_eq!(v, 4.0),
                    _ => panic!(),
                }
            });
            s.spawn(move |_| {
                match e1.recv_from(0).unwrap().kind {
                    MessageKind::Control(v) => assert_eq!(v, 3.0),
                    _ => panic!(),
                }
                e1.send(0, MessageKind::Control(4.0)).unwrap();
            });
        })
        .unwrap();
    }

    #[test]
    fn payload_bytes_metering() {
        let k = MessageKind::AllReduce { round: 0, data: vec![0.0; 100] };
        assert_eq!(k.payload_bytes(), ALLREDUCE_HEADER_BYTES + 400);
        assert_eq!(MessageKind::Control(0.0).payload_bytes(), CONTROL_BYTES);
        let r = MessageKind::Rows { layer: 0, ids: vec![1, 2], cols: 3, data: vec![0.0; 6] };
        assert_eq!(r.payload_bytes(), ROWS_HEADER_BYTES + 2 * 4 + 6 * 4);
        let q = MessageKind::Query { qids: vec![1, 2], verts: vec![9, 10] };
        assert_eq!(q.payload_bytes(), QUERY_HEADER_BYTES + 4 * 4);
        let rep = MessageKind::Reply { qids: vec![1], classes: vec![3] };
        assert_eq!(rep.payload_bytes(), REPLY_HEADER_BYTES + 2 * 4);
    }

    #[test]
    fn query_reply_roundtrip_over_fabric() {
        let eps = Fabric::new(2).into_endpoints();
        eps[0]
            .send(1, MessageKind::Query { qids: vec![7, 8], verts: vec![100, 200] })
            .unwrap();
        match eps[1].recv_from(0).unwrap().kind {
            MessageKind::Query { qids, verts } => {
                assert_eq!(qids, vec![7, 8]);
                assert_eq!(verts, vec![100, 200]);
            }
            other => panic!("wrong kind {}", other.name()),
        }
        eps[1].send(0, MessageKind::Reply { qids: vec![7, 8], classes: vec![2, 5] }).unwrap();
        match eps[0].recv_from(1).unwrap().kind {
            MessageKind::Reply { qids, classes } => {
                assert_eq!(qids, vec![7, 8]);
                assert_eq!(classes, vec![2, 5]);
            }
            other => panic!("wrong kind {}", other.name()),
        }
        let st = eps[0].stats();
        assert_eq!(st.sent_msgs_by_kind[4], 1);
        assert_eq!(eps[1].stats().sent_msgs_by_kind[5], 1);
    }

    #[test]
    fn dropped_peer_surfaces_on_send_and_recv() {
        let mut eps = Fabric::new(2).into_endpoints();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        drop(e1);
        assert_eq!(
            e0.send(1, MessageKind::Control(1.0)),
            Err(NetError::PeerDisconnected { peer: 1 })
        );
        // `Message` carries float payloads and no PartialEq; compare the
        // error side only.
        assert_eq!(
            e0.recv_from(1).unwrap_err(),
            NetError::PeerDisconnected { peer: 1 }
        );
        assert_eq!(
            e0.recv_from_timeout(1, Duration::from_millis(50)).unwrap_err(),
            NetError::PeerDisconnected { peer: 1 }
        );
    }

    #[test]
    fn recv_timeout_on_silent_peer() {
        let eps = Fabric::new(2).into_endpoints();
        let t0 = Instant::now();
        let err = eps[1].recv_from_timeout(0, Duration::from_millis(30)).unwrap_err();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(err, NetError::RecvTimeout { peer: 0, waited_ms: 30 });
    }

    #[test]
    fn stats_meter_logical_sends_by_kind_and_peer() {
        let eps = Fabric::new(3).into_endpoints();
        let b0 = eps[0]
            .send(
                1,
                MessageKind::Rows { layer: 0, ids: vec![1, 2], cols: 4, data: vec![0.0; 8] },
            )
            .unwrap();
        let b1 = eps[0]
            .send(2, MessageKind::AllReduce { round: 1, data: vec![0.0; 5] })
            .unwrap();
        eps[0].send(1, MessageKind::Control(7.0)).unwrap();
        let st = eps[0].stats();
        assert_eq!(st.sent_msgs, 3);
        assert_eq!(st.sent_bytes, b0 + b1 + CONTROL_BYTES);
        assert_eq!(st.sent_msgs_by_kind, [1, 0, 1, 1, 0, 0]);
        assert_eq!(st.sent_bytes_by_kind[0], b0);
        assert_eq!(st.sent_bytes_by_kind[2], b1);
        assert_eq!(st.sent_msgs_by_peer, vec![0, 2, 1]);
        assert_eq!(st.sent_bytes_by_peer.iter().sum::<u64>(), st.sent_bytes);
        assert_eq!(
            st.sent_bytes_by_kind.iter().sum::<u64>(),
            st.sent_bytes,
            "per-kind bytes partition the total"
        );
        // Receivers meter nothing on the send side.
        assert_eq!(eps[1].stats().sent_msgs, 0);
    }

    #[test]
    fn stats_count_injected_faults_and_suppressed_dups() {
        let plan = FaultPlan::default()
            .with_fault(Fault::Duplicate { sel: MsgSel::any(), p: 1.0 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        eps[0].send(1, MessageKind::Control(1.0)).unwrap();
        let st = eps[0].stats();
        assert_eq!(st.sent_msgs, 1, "logical send counted once");
        assert_eq!(st.dups_injected, 1);
        // Receiver drains both physical copies; one is suppressed.
        let _ = eps[1].recv_from(0).unwrap();
        assert!(eps[1].try_recv_from(0).is_none());
        assert_eq!(eps[1].stats().dups_suppressed, 1);
    }

    #[test]
    fn duplicates_are_suppressed_by_seq() {
        let plan = FaultPlan::default()
            .with_fault(Fault::Duplicate { sel: MsgSel::any(), p: 1.0 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        eps[0].send(1, MessageKind::Control(1.0)).unwrap();
        eps[0].send(1, MessageKind::Control(2.0)).unwrap();
        // Both messages were physically sent twice; the receiver sees each
        // exactly once, in order.
        for expect in [1.0, 2.0] {
            match eps[1].recv_from(0).unwrap().kind {
                MessageKind::Control(v) => assert_eq!(v, expect),
                _ => panic!(),
            }
        }
        assert!(eps[1].try_recv_from(0).is_none());
    }

    #[test]
    fn injected_delay_postpones_delivery() {
        let plan = FaultPlan::default()
            .with_fault(Fault::Delay { sel: MsgSel::any(), delay_ms: 40 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        eps[0].send(1, MessageKind::Control(5.0)).unwrap();
        // Not visible before the delay elapses...
        assert!(eps[1].try_recv_from(0).is_none());
        let t0 = Instant::now();
        let msg = eps[1].recv_from(0).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert!(matches!(msg.kind, MessageKind::Control(v) if v == 5.0));
    }

    #[test]
    fn delayed_message_times_out_then_arrives_on_retry() {
        // A "dropped" message is delayed past the first receive window;
        // the retry (longer window) picks it up — the fabric-level view of
        // drop + retransmission.
        let plan = FaultPlan::default()
            .with_fault(Fault::Delay { sel: MsgSel::any(), delay_ms: 60 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        eps[0].send(1, MessageKind::Control(9.0)).unwrap();
        let err = eps[1].recv_from_timeout(0, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, NetError::RecvTimeout { peer: 0, .. }));
        let msg = eps[1].recv_from_timeout(0, Duration::from_millis(500)).unwrap();
        assert!(matches!(msg.kind, MessageKind::Control(v) if v == 9.0));
    }

    #[test]
    fn corrupt_frame_is_detected_then_clean_copy_arrives() {
        let plan =
            FaultPlan::default().with_fault(Fault::Corrupt { sel: MsgSel::any(), p: 1.0 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        eps[0].send(1, MessageKind::Control(6.5)).unwrap();
        assert_eq!(eps[0].stats().corrupts_injected, 1);
        // First physical copy fails verification...
        let err = eps[1].recv_from_timeout(0, Duration::from_millis(500)).unwrap_err();
        assert!(matches!(err, NetError::CorruptFrame { peer: 0, seq: 1, .. }), "{err:?}");
        // ...and the retry admits the clean retransmission, same seq.
        let msg = eps[1].recv_from_timeout(0, Duration::from_millis(500)).unwrap();
        assert_eq!(msg.seq, 1);
        assert!(matches!(msg.kind, MessageKind::Control(v) if v == 6.5));
        let st = eps[1].stats();
        assert_eq!(st.crc_failures, 1);
        assert_eq!(st.rereads, 1);
        assert_eq!(st.dups_suppressed, 0, "clean copy is not a duplicate");
    }

    #[test]
    fn blocking_recv_skips_corrupt_copy_transparently() {
        let plan =
            FaultPlan::default().with_fault(Fault::Corrupt { sel: MsgSel::any(), p: 1.0 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        let payload = MessageKind::Rows {
            layer: 1,
            ids: vec![3, 4],
            cols: 2,
            data: vec![1.0, 2.0, 3.0, 4.0],
        };
        eps[0].send(1, payload).unwrap();
        let msg = eps[1].recv_from(0).unwrap();
        match msg.kind {
            MessageKind::Rows { ids, data, .. } => {
                assert_eq!(ids, vec![3, 4]);
                assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0], "admitted payload is clean");
            }
            _ => panic!("wrong kind"),
        }
        assert_eq!(eps[1].stats().crc_failures, 1);
        assert_eq!(eps[1].stats().rereads, 1);
    }

    #[test]
    fn corrupt_faults_preserve_fifo_and_content_across_a_stream() {
        let plan = FaultPlan::default()
            .with_seed(5)
            .with_fault(Fault::Corrupt { sel: MsgSel::any(), p: 0.5 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        for i in 0..20 {
            eps[0].send(1, MessageKind::Control(i as f64)).unwrap();
        }
        for i in 0..20 {
            match eps[1].recv_from(0).unwrap().kind {
                MessageKind::Control(v) => assert_eq!(v, i as f64),
                _ => panic!(),
            }
        }
        let st = eps[1].stats();
        assert!(st.crc_failures > 0, "p=0.5 over 20 sends must corrupt something");
        assert_eq!(st.crc_failures, st.rereads, "every rejection was re-read");
        assert_eq!(st.crc_failures, eps[0].stats().corrupts_injected);
    }

    #[test]
    fn partitioned_send_succeeds_but_never_arrives() {
        let plan = FaultPlan::default()
            .with_fault(Fault::Partition { a: 0, b: 1, from_epoch: 0, heal_epoch: 2 });
        let eps = Fabric::with_faults(3, plan).into_endpoints();
        // Both directions of the severed link black-hole: the send call
        // succeeds, the receiver only ever times out.
        assert!(eps[0].send(1, MessageKind::Control(1.0)).is_ok());
        assert!(eps[1].send(0, MessageKind::Control(2.0)).is_ok());
        assert!(matches!(
            eps[1].recv_from_timeout(0, Duration::from_millis(30)).unwrap_err(),
            NetError::RecvTimeout { peer: 0, .. }
        ));
        assert!(matches!(
            eps[0].recv_from_timeout(1, Duration::from_millis(30)).unwrap_err(),
            NetError::RecvTimeout { peer: 1, .. }
        ));
        assert_eq!(eps[0].stats().severed_msgs, 1);
        assert_eq!(eps[1].stats().severed_msgs, 1);
        // Links not named by the partition are untouched.
        eps[0].send(2, MessageKind::Control(3.0)).unwrap();
        assert!(eps[2].try_recv_from(0).is_some());
        // Past heal_epoch the link carries traffic again.
        eps[0].set_epoch(2);
        eps[0].send(1, MessageKind::Control(4.0)).unwrap();
        let msg = eps[1].recv_from_timeout(0, Duration::from_millis(500)).unwrap();
        assert!(matches!(msg.kind, MessageKind::Control(v) if v == 4.0));
    }

    #[test]
    fn asym_partition_severs_only_the_named_direction() {
        let plan = FaultPlan::default().with_fault(Fault::AsymPartition {
            src: 0,
            dst: 1,
            from_epoch: 0,
            heal_epoch: 10,
        });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        assert!(eps[0].send(1, MessageKind::Control(1.0)).is_ok());
        assert!(eps[1].try_recv_from(0).is_none(), "0->1 is black-holed");
        // The reverse direction still delivers.
        eps[1].send(0, MessageKind::Control(2.0)).unwrap();
        let msg = eps[0].recv_from_timeout(1, Duration::from_millis(500)).unwrap();
        assert!(matches!(msg.kind, MessageKind::Control(v) if v == 2.0));
        assert_eq!(eps[0].stats().severed_msgs, 1);
        assert_eq!(eps[1].stats().severed_msgs, 0);
    }

    #[test]
    fn flapped_link_delays_but_delivers_intact() {
        // duty 1.0 keeps the link down for (almost) the whole period, so a
        // send at any instant is held until the next period boundary —
        // deterministically delayed, never lost.
        let plan = FaultPlan::default()
            .with_fault(Fault::Flap { a: 0, b: 1, period_ms: 50, duty: 1.0 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        eps[0].send(1, MessageKind::Control(8.0)).unwrap();
        let st = eps[0].stats();
        assert_eq!(st.severed_msgs, 0, "flap holds, it does not sever");
        assert_eq!(st.delays_injected, 1);
        let msg = eps[1].recv_from_timeout(0, Duration::from_millis(1000)).unwrap();
        assert!(matches!(msg.kind, MessageKind::Control(v) if v == 8.0));
    }

    #[test]
    fn epoch_scoped_fault_only_hits_its_epoch() {
        let sel = MsgSel { epoch: Some(1), ..MsgSel::any() };
        let plan = FaultPlan::default().with_fault(Fault::Delay { sel, delay_ms: 50 });
        let eps = Fabric::with_faults(2, plan).into_endpoints();
        // Epoch 0: immediate.
        eps[0].send(1, MessageKind::Control(0.0)).unwrap();
        assert!(eps[1].try_recv_from(0).is_some());
        // Epoch 1: delayed.
        eps[0].set_epoch(1);
        eps[0].send(1, MessageKind::Control(1.0)).unwrap();
        assert!(eps[1].try_recv_from(0).is_none());
    }
}

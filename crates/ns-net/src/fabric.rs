//! The real message fabric connecting worker threads.
//!
//! Workers exchange actual tensor payloads over a full mesh of crossbeam
//! channels — one channel per ordered `(src, dst)` pair so per-pair FIFO
//! order holds and `recv_from(src)` never interleaves senders. The
//! simulator decides how long these messages *would* take on a modeled
//! network; the fabric makes the training numerically real.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// What a message carries.
#[derive(Debug, Clone)]
pub enum MessageKind {
    /// Vertex-representation rows: forward-phase master→mirror sync
    /// (`GetFromDepNbr` in DepComm mode).
    Rows {
        /// GNN layer index the rows belong to.
        layer: u32,
        /// Global vertex ids, one per row.
        ids: Vec<u32>,
        /// Row width.
        cols: u32,
        /// Row-major payload, `ids.len() * cols` long.
        data: Vec<f32>,
    },
    /// Gradient rows: backward-phase mirror→master sync (`PostToDepNbr`).
    Grads {
        /// GNN layer index the gradients belong to.
        layer: u32,
        /// Global vertex ids, one per row.
        ids: Vec<u32>,
        /// Row width.
        cols: u32,
        /// Row-major payload.
        data: Vec<f32>,
    },
    /// A slice of flattened parameter gradients for ring all-reduce.
    AllReduce {
        /// Reduction round (for debugging / assertions).
        round: u32,
        /// Payload chunk.
        data: Vec<f32>,
    },
    /// Scalar control value (loss terms, counters, handshakes).
    Control(f64),
}

impl MessageKind {
    /// Approximate wire size in bytes (payload + per-row id, matching what
    /// a compact serialization would ship). Used to meter the simulator.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            MessageKind::Rows { ids, data, .. } | MessageKind::Grads { ids, data, .. } => {
                (ids.len() * std::mem::size_of::<u32>()
                    + data.len() * std::mem::size_of::<f32>()) as u64
            }
            MessageKind::AllReduce { data, .. } => {
                (data.len() * std::mem::size_of::<f32>()) as u64
            }
            MessageKind::Control(_) => 8,
        }
    }
}

/// An addressed message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending worker.
    pub src: usize,
    /// Payload.
    pub kind: MessageKind,
}

/// One worker's handle onto the mesh.
pub struct Endpoint {
    me: usize,
    txs: Vec<Sender<Message>>,
    rxs: Vec<Receiver<Message>>,
}

impl Endpoint {
    /// This worker's id.
    pub fn id(&self) -> usize {
        self.me
    }

    /// Number of workers in the mesh.
    pub fn world(&self) -> usize {
        self.txs.len()
    }

    /// Sends `kind` to `dst` (self-sends are allowed and loop back).
    /// Returns the metered payload size.
    pub fn send(&self, dst: usize, kind: MessageKind) -> u64 {
        let bytes = kind.payload_bytes();
        self.txs[dst]
            .send(Message { src: self.me, kind })
            .expect("fabric receiver dropped");
        bytes
    }

    /// Blocks until a message from `src` arrives.
    pub fn recv_from(&self, src: usize) -> Message {
        self.rxs[src].recv().expect("fabric sender dropped")
    }

    /// Non-blocking receive from `src`.
    pub fn try_recv_from(&self, src: usize) -> Option<Message> {
        self.rxs[src].try_recv().ok()
    }
}

/// A full mesh of `m x m` channels.
pub struct Fabric {
    endpoints: Vec<Endpoint>,
}

impl Fabric {
    /// Builds the mesh for `workers` nodes.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "fabric needs at least one worker");
        // channel[src][dst]
        let mut senders: Vec<Vec<Sender<Message>>> = Vec::with_capacity(workers);
        let mut receivers: Vec<Vec<Option<Receiver<Message>>>> =
            (0..workers).map(|_| (0..workers).map(|_| None).collect()).collect();
        for src in 0..workers {
            let mut row = Vec::with_capacity(workers);
            for dst in 0..workers {
                let (tx, rx) = unbounded();
                row.push(tx);
                receivers[dst][src] = Some(rx);
            }
            senders.push(row);
        }
        let endpoints = senders
            .into_iter()
            .enumerate()
            .map(|(me, txs)| Endpoint {
                me,
                txs,
                rxs: receivers[me].iter_mut().map(|r| r.take().unwrap()).collect(),
            })
            .collect();
        Self { endpoints }
    }

    /// Consumes the fabric into its per-worker endpoints (index = worker
    /// id), ready to be moved into worker threads.
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let eps = Fabric::new(2).into_endpoints();
        let bytes = eps[0].send(
            1,
            MessageKind::Rows { layer: 0, ids: vec![7], cols: 2, data: vec![1.0, 2.0] },
        );
        assert_eq!(bytes, 4 + 8);
        let msg = eps[1].recv_from(0);
        assert_eq!(msg.src, 0);
        match msg.kind {
            MessageKind::Rows { ids, data, .. } => {
                assert_eq!(ids, vec![7]);
                assert_eq!(data, vec![1.0, 2.0]);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn per_pair_fifo_order() {
        let eps = Fabric::new(2).into_endpoints();
        for i in 0..10 {
            eps[0].send(1, MessageKind::Control(i as f64));
        }
        for i in 0..10 {
            match eps[1].recv_from(0).kind {
                MessageKind::Control(v) => assert_eq!(v, i as f64),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn self_send_loops_back() {
        let eps = Fabric::new(1).into_endpoints();
        eps[0].send(0, MessageKind::Control(42.0));
        match eps[0].recv_from(0).kind {
            MessageKind::Control(v) => assert_eq!(v, 42.0),
            _ => panic!(),
        }
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let eps = Fabric::new(2).into_endpoints();
        assert!(eps[1].try_recv_from(0).is_none());
        eps[0].send(1, MessageKind::Control(1.0));
        assert!(eps[1].try_recv_from(0).is_some());
    }

    #[test]
    fn cross_thread_exchange() {
        let mut eps = Fabric::new(2).into_endpoints();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                e0.send(1, MessageKind::Control(3.0));
                match e0.recv_from(1).kind {
                    MessageKind::Control(v) => assert_eq!(v, 4.0),
                    _ => panic!(),
                }
            });
            s.spawn(|_| {
                match e1.recv_from(0).kind {
                    MessageKind::Control(v) => assert_eq!(v, 3.0),
                    _ => panic!(),
                }
                e1.send(0, MessageKind::Control(4.0));
            });
        })
        .unwrap();
    }

    #[test]
    fn payload_bytes_metering() {
        let k = MessageKind::AllReduce { round: 0, data: vec![0.0; 100] };
        assert_eq!(k.payload_bytes(), 400);
        assert_eq!(MessageKind::Control(0.0).payload_bytes(), 8);
    }
}

//! Property tests for fault injection: composed fault plans must be
//! deterministic under a fixed seed, and duplicate deliveries must never
//! surface twice from the fabric (a gradient message applied twice would
//! silently corrupt training).
//!
//! These run under `cargo test` with the real proptest crate; the offline
//! shadow workspace skips them (its proptest stand-in is empty).

use proptest::prelude::*;

use ns_net::fault::parse_fault;
use ns_net::{Fabric, Fault, FaultPlan, KindSel, MessageKind, MsgSel};

/// Every message-kind filter the spec grammar can name.
fn arb_kind() -> impl Strategy<Value = KindSel> {
    prop_oneof![
        Just(KindSel::Rows),
        Just(KindSel::Grads),
        Just(KindSel::AllReduce),
        Just(KindSel::Control),
        Just(KindSel::Query),
        Just(KindSel::Reply),
        Just(KindSel::Any),
    ]
}

/// Canonical selectors: the spec suffix can only express src and dst
/// together (`@w<src>-w<dst>`), so generate them paired.
fn arb_sel() -> impl Strategy<Value = MsgSel> {
    (
        arb_kind(),
        proptest::option::of(0usize..32),
        proptest::option::of((0usize..16, 0usize..16)),
    )
        .prop_map(|(kind, epoch, pair)| MsgSel {
            kind,
            epoch,
            src: pair.map(|(s, _)| s),
            dst: pair.map(|(_, d)| d),
        })
}

/// Every fault variant, constrained to what the parser admits (distinct
/// link endpoints, heal after start, nonzero flap period, duty and
/// probabilities inside [0, 1]).
fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0usize..16, 0usize..64)
            .prop_map(|(worker, epoch)| Fault::Kill { worker, epoch }),
        (0usize..16, 0u64..2_000)
            .prop_map(|(worker, delay_ms)| Fault::Straggle { worker, delay_ms }),
        (arb_sel(), 0.0f64..=1.0).prop_map(|(sel, p)| Fault::Drop { sel, p }),
        (arb_sel(), 0u64..1_000)
            .prop_map(|(sel, delay_ms)| Fault::Delay { sel, delay_ms }),
        (arb_sel(), 0.0f64..=1.0).prop_map(|(sel, p)| Fault::Duplicate { sel, p }),
        (arb_sel(), 0.0f64..=1.0).prop_map(|(sel, p)| Fault::Corrupt { sel, p }),
        (proptest::option::of(0usize..64), 0.0f64..=1.0)
            .prop_map(|(epoch, p)| Fault::CorruptCkpt { epoch, p }),
        (0usize..16, 1usize..16, 0usize..32, 1usize..32).prop_map(
            |(a, off, from_epoch, span)| Fault::Partition {
                a,
                b: (a + off) % 16,
                from_epoch,
                heal_epoch: from_epoch + span,
            }
        ),
        (0usize..16, 1usize..16, 0usize..32, 1usize..32).prop_map(
            |(src, off, from_epoch, span)| Fault::AsymPartition {
                src,
                dst: (src + off) % 16,
                from_epoch,
                heal_epoch: from_epoch + span,
            }
        ),
        (0usize..16, 1usize..16, 1u64..5_000, 0.0f64..=1.0).prop_map(
            |(a, off, period_ms, duty)| Fault::Flap {
                a,
                b: (a + off) % 16,
                period_ms,
                duty,
            }
        ),
        (0usize..32, 1usize..32).prop_map(|(from_epoch, span)| Fault::DiskFull {
            from_epoch,
            heal_epoch: from_epoch + span,
        }),
        (1.0f64..64.0).prop_map(|factor| Fault::SlowDisk { factor }),
        (1usize..1 << 30, 0usize..32, 1usize..32).prop_map(
            |(cap_bytes, from_epoch, span)| Fault::MemPressure {
                cap_bytes,
                from_epoch,
                heal_epoch: from_epoch + span,
            }
        ),
        (0usize..16, 0usize..64)
            .prop_map(|(worker, epoch)| Fault::Hang { worker, epoch }),
    ]
}

/// A fault plan composing drop + delay + duplicate over every message.
fn composed_plan(seed: u64, p_drop: f64, delay_ms: u64, p_dup: f64) -> FaultPlan {
    FaultPlan::default()
        .with_seed(seed)
        .with_fault(Fault::Drop { sel: MsgSel::any(), p: p_drop })
        .with_fault(Fault::Delay { sel: MsgSel::any(), delay_ms })
        .with_fault(Fault::Duplicate { sel: MsgSel::any(), p: p_dup })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same seed must yield the same per-message fate for an
    /// arbitrary composition of drop, delay, and duplicate faults —
    /// chaos schedules are only reproducible if every coin is a pure
    /// function of (seed, fault, message identity).
    #[test]
    fn composed_faults_are_deterministic_under_a_seed(
        seed in 0u64..10_000,
        p_drop in 0.0f64..0.9,
        delay_ms in 0u64..50,
        p_dup in 0.0f64..0.9,
        epoch in 0usize..8,
        src in 0usize..4,
        dst in 0usize..4,
        seq in 1u64..200,
    ) {
        let a = composed_plan(seed, p_drop, delay_ms, p_dup);
        let b = composed_plan(seed, p_drop, delay_ms, p_dup);
        let kind = MessageKind::AllReduce { round: 0, data: vec![1.0] };
        let fa = a.send_fate(epoch, src, dst, Some(&kind), seq);
        let fb = b.send_fate(epoch, src, dst, Some(&kind), seq);
        prop_assert_eq!(fa, fb, "identical plans disagreed on a fate");
        // The fixed delay component always applies; the drop component
        // can only add the retransmission delay on top of it.
        prop_assert!(fa.delay_ms == delay_ms || fa.delay_ms == delay_ms + a.retransmit_ms);
    }

    /// A different seed is allowed to (and for aggressive probabilities
    /// eventually must) flip at least one coin across a message grid —
    /// the seed genuinely parameterizes the schedule rather than being
    /// ignored.
    #[test]
    fn seed_changes_reach_the_coins(seed in 0u64..10_000) {
        let a = composed_plan(seed, 0.5, 0, 0.5);
        let b = composed_plan(seed + 1, 0.5, 0, 0.5);
        let kind = MessageKind::AllReduce { round: 0, data: vec![1.0] };
        let differs = (0..4usize).any(|src| {
            (0..4usize).filter(|&dst| dst != src).any(|dst| {
                (1..64u64).any(|seq| {
                    a.send_fate(0, src, dst, Some(&kind), seq)
                        != b.send_fate(0, src, dst, Some(&kind), seq)
                })
            })
        });
        prop_assert!(differs, "256 coins never changed across adjacent seeds");
    }

    /// Duplicated gradient messages must surface from the receiving
    /// endpoint exactly once each, in send order: the suppressed copies
    /// are counted, never delivered, so no gradient can be applied twice.
    #[test]
    fn duplicates_never_surface_twice(
        seed in 0u64..5_000,
        p_dup in 0.1f64..1.0,
        n in 1usize..40,
    ) {
        let plan = FaultPlan::default().with_seed(seed).with_fault(Fault::Duplicate {
            sel: MsgSel { kind: KindSel::Grads, epoch: None, src: None, dst: None },
            p: p_dup,
        });
        let mut eps = Fabric::with_faults(2, plan).into_endpoints();
        let rx = eps.pop().unwrap();
        let tx = eps.pop().unwrap();
        for i in 0..n {
            tx.send(
                1,
                MessageKind::Grads {
                    layer: 0,
                    ids: vec![i as u32],
                    cols: 1,
                    data: vec![i as f32],
                },
            )
            .unwrap();
        }
        // Every logical message arrives exactly once, in order.
        for i in 0..n {
            let msg = rx.recv_from(0).unwrap();
            let MessageKind::Grads { ids, .. } = msg.kind else {
                return Err(TestCaseError::fail("non-Grads message surfaced"));
            };
            prop_assert_eq!(ids, vec![i as u32], "message out of order or repeated");
        }
        // Nothing left over: the duplicate copies were all suppressed.
        prop_assert!(rx.try_recv_from(0).is_none(), "a duplicate escaped suppression");
        let injected = tx.stats().dups_injected;
        let suppressed = rx.stats().dups_suppressed;
        prop_assert_eq!(injected, suppressed, "injected dups must all be suppressed");
    }

    /// Every fault spec round-trips: for an arbitrary parser-admissible
    /// fault, `to_spec` → `parse_fault` reconstructs the identical fault,
    /// and a second `to_spec` reproduces the identical spec text. This
    /// pins the canonical grammar — chaos schedules are logged as spec
    /// strings, so a lossy corner here silently breaks replayability.
    #[test]
    fn fault_specs_round_trip(fault in arb_fault()) {
        let spec = fault.to_spec();
        let reparsed = parse_fault(&spec)
            .map_err(|e| TestCaseError::fail(format!("{spec:?} failed to parse: {e}")))?;
        prop_assert_eq!(reparsed, fault, "parse(to_spec) lost information: {}", spec);
        prop_assert_eq!(
            reparsed.to_spec(),
            spec,
            "display is not a fixed point of parse -> display"
        );
    }
}

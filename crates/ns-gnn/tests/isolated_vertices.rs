//! Zero-in-degree audit across the four `Aggregator` variants.
//!
//! Real partitions routinely hand a worker destination vertices with no
//! local in-edges (isolated after partitioning, or masked subgraphs).
//! These tests pin the contract for such vertices on every aggregator:
//!
//! * forward: the aggregated row is exactly **zero** — in particular
//!   `Max` must not leak `-inf` from its running maximum, and `Mean`
//!   must not divide by zero;
//! * backward: the incoming gradient for an isolated destination is
//!   **dropped** (no edge carries it anywhere), and vertices that *do*
//!   have edges receive exactly the gradient they would in a graph
//!   without the isolated vertex.

use ns_gnn::ops::{aggregate_neighbors_with, Aggregator};
use ns_gnn::topology::LayerTopology;
use ns_tensor::{Tape, Tensor};

const ALL: [Aggregator; 4] = [
    Aggregator::Sum,
    Aggregator::WeightedSum,
    Aggregator::Mean,
    Aggregator::Max,
];

/// 3 sources; dst0 <- {src0 (w 0.5), src1 (w 2.0)}, dst1 isolated,
/// dst2 <- {src2 (w 1.0)}.
fn topo_with_isolated_middle() -> LayerTopology {
    LayerTopology::from_adjacency(
        3,
        &[
            vec![(0, 0.5), (1, 2.0)],
            vec![],
            vec![(2, 1.0)],
        ],
        vec![0, 1, 2],
    )
}

fn input() -> Tensor {
    // Strictly negative column 1 so Max would expose a -inf / "max of
    // nothing" bug; distinct values so argmax is unambiguous.
    Tensor::from_vec(3, 2, vec![1.0, -3.0, 4.0, -1.0, 2.0, -2.0])
}

#[test]
fn forward_isolated_vertex_is_zero_for_every_aggregator() {
    for agg in ALL {
        let t = topo_with_isolated_middle();
        let mut tape = Tape::new();
        let h = tape.leaf(input());
        let out = aggregate_neighbors_with(&mut tape, h, &t, agg);
        let v = tape.value(out);
        assert_eq!(v.shape(), (3, 2), "{agg:?}");
        assert_eq!(v.row(1), &[0.0, 0.0], "{agg:?}: isolated row must be zero");
        assert!(
            v.data().iter().all(|x| x.is_finite()),
            "{agg:?}: non-finite output {:?}",
            v.data()
        );
    }
}

#[test]
fn forward_connected_vertices_unaffected_by_isolated_neighbor() {
    let t = topo_with_isolated_middle();
    for (agg, row0, row2) in [
        (Aggregator::Sum, [5.0, -4.0], [2.0, -2.0]),
        // 0.5*h0 + 2.0*h1 ; 1.0*h2
        (Aggregator::WeightedSum, [8.5, -3.5], [2.0, -2.0]),
        (Aggregator::Mean, [2.5, -2.0], [2.0, -2.0]),
        // max(h0, h1) elementwise ; h2
        (Aggregator::Max, [4.0, -1.0], [2.0, -2.0]),
    ] {
        let mut tape = Tape::new();
        let h = tape.leaf(input());
        let out = aggregate_neighbors_with(&mut tape, h, &t, agg);
        let v = tape.value(out);
        assert_eq!(v.row(0), &row0, "{agg:?} dst0");
        assert_eq!(v.row(2), &row2, "{agg:?} dst2");
    }
}

#[test]
fn backward_drops_gradient_of_isolated_vertex() {
    // Seed the isolated destination with a large gradient; it must not
    // reach any source. Other destinations get zero gradient, so *all*
    // source gradients must be exactly zero.
    for agg in ALL {
        let t = topo_with_isolated_middle();
        let mut tape = Tape::new();
        let h = tape.leaf(input());
        let out = aggregate_neighbors_with(&mut tape, h, &t, agg);
        let mut seed = Tensor::zeros(3, 2);
        seed.row_mut(1).copy_from_slice(&[100.0, -100.0]);
        tape.backward_from(out, seed);
        let g = tape.grad(h).expect("input gradient");
        assert_eq!(
            g.data(),
            &[0.0; 6],
            "{agg:?}: isolated vertex leaked gradient"
        );
    }
}

#[test]
fn backward_connected_gradients_are_exact() {
    let t = topo_with_isolated_middle();
    // Upstream gradient: dst0 = [1, 2], dst1 = [10, 20], dst2 = [3, 4].
    let seed = || Tensor::from_vec(3, 2, vec![1., 2., 10., 20., 3., 4.]);
    for (agg, want) in [
        // Sum: src0 += g0, src1 += g0, src2 += g2.
        (Aggregator::Sum, vec![1., 2., 1., 2., 3., 4.]),
        // WeightedSum: weights 0.5 / 2.0 / 1.0.
        (Aggregator::WeightedSum, vec![0.5, 1., 2., 4., 3., 4.]),
        // Mean: dst0 degree 2 -> weight 0.5 each; dst2 degree 1.
        (Aggregator::Mean, vec![0.5, 1., 0.5, 1., 3., 4.]),
        // Max: winners — col0: src1 (4 > 1), col1: src1 (-1 > -3); dst2
        // forwards both columns to src2.
        (Aggregator::Max, vec![0., 0., 1., 2., 3., 4.]),
    ] {
        let mut tape = Tape::new();
        let h = tape.leaf(input());
        let out = aggregate_neighbors_with(&mut tape, h, &t, agg);
        tape.backward_from(out, seed());
        let g = tape.grad(h).expect("input gradient");
        assert_eq!(g.data(), &want[..], "{agg:?}");
    }
}

#[test]
fn all_vertices_isolated_is_a_valid_degenerate_graph() {
    // A worker can receive a shard whose every local destination is
    // isolated (e.g. after aggressive masking); forward must be all-zero
    // and backward a no-op rather than a panic.
    for agg in ALL {
        let t = LayerTopology::from_adjacency(2, &[vec![], vec![]], vec![0, 1]);
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(2, 1, vec![7.0, -7.0]));
        let out = aggregate_neighbors_with(&mut tape, h, &t, agg);
        assert_eq!(tape.value(out).data(), &[0.0, 0.0], "{agg:?}");
        tape.backward_from(out, Tensor::from_vec(2, 1, vec![5.0, 5.0]));
        assert_eq!(
            tape.grad(h).expect("grad").data(),
            &[0.0, 0.0],
            "{agg:?}: gradient must be dropped entirely"
        );
    }
}

#[test]
fn isolated_vertex_contract_holds_in_parallel_mode() {
    // The zero-in-degree path must be thread-count invariant too: empty
    // segments are skipped identically by every chunk owner.
    let t = topo_with_isolated_middle();
    let run = |agg: Aggregator| {
        let mut tape = Tape::new();
        let h = tape.leaf(input());
        let out = aggregate_neighbors_with(&mut tape, h, &t, agg);
        let fwd = tape.value(out).clone();
        tape.backward_from(out, Tensor::from_vec(3, 2, vec![1., 2., 10., 20., 3., 4.]));
        (fwd.into_vec(), tape.grad(h).expect("grad").clone().into_vec())
    };
    for agg in ALL {
        ns_par::set_threads(1);
        let base = run(agg);
        ns_par::set_threads(4);
        assert_eq!(run(agg), base, "{agg:?}");
        ns_par::set_threads(1);
    }
}

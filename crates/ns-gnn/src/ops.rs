//! The named graph operators of NeutronStar's execution flow (Fig. 6).
//!
//! Forward: `GetFromDepNbr → ScatterToEdge → EdgeForward → GatherByDst →
//! VertexForward`. Backward: `VertexBackward → ScatterBackToEdge →
//! EdgeBackward → GatherBySrc → PostToDepNbr`.
//!
//! `GetFromDepNbr`/`PostToDepNbr` are dependency-management operators and
//! live in the runtime (they are where DepCache / DepComm / Hybrid
//! differ). The four structure ops in between are defined here as thin,
//! named wrappers over tape primitives; their adjoints (recorded by the
//! tape) *are* the backward duals — `ScatterToEdge`'s adjoint gathers by
//! source (`GatherBySrc`), and `GatherByDst`'s adjoint scatters back to
//! edges (`ScatterBackToEdge`) — which is how the paper gets cross-layer
//! autograd from per-layer autograd segments.

use std::sync::Arc;

use ns_tensor::{Tape, Var};

use crate::topology::LayerTopology;

/// `ScatterToEdge`: expands vertex rows onto edges by source, producing
/// the `e x d` matrix of source representations per edge.
pub fn scatter_to_edge_src(tape: &mut Tape, h: Var, topo: &LayerTopology) -> Var {
    tape.gather_rows(h, Arc::clone(&topo.edge_src))
}

/// `ScatterToEdge` (destination side): expands each destination's own
/// representation onto its in-edges. Used by models whose edge function
/// reads both endpoints (GAT attention).
pub fn scatter_to_edge_dst(tape: &mut Tape, h: Var, topo: &LayerTopology) -> Var {
    // Two hops: vertex rows -> destination rows -> edge rows.
    let per_dst = tape.gather_rows(h, Arc::clone(&topo.dst_in_rows));
    tape.gather_rows(per_dst, Arc::clone(&topo.edge_dst))
}

/// Commutative/associative neighborhood aggregators supported by
/// `GatherByDst` (the paper names "min, max, sum"; mean and the
/// statically-weighted sum are the forms the evaluation models use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// Plain sum (GIN).
    Sum,
    /// Sum weighted by the topology's static edge weights (GCN symmetric
    /// normalization).
    WeightedSum,
    /// Mean over in-edges (GraphSAGE-mean).
    Mean,
    /// Element-wise max over in-edges (GraphSAGE-pool style).
    Max,
}

/// Fused `EdgeForward` (copy / weighted copy) + `GatherByDst` for models
/// whose edge function does not need materialized per-edge tensors:
/// computes each destination's aggregated neighborhood directly (SpMM /
/// segmented max).
pub fn aggregate_neighbors_with(
    tape: &mut Tape,
    h: Var,
    topo: &LayerTopology,
    agg: Aggregator,
) -> Var {
    let edge_src = Arc::clone(&topo.edge_src);
    let dst_offsets = Arc::clone(&topo.dst_offsets);
    match agg {
        Aggregator::Sum => tape.weighted_aggregate(h, edge_src, dst_offsets, None),
        Aggregator::WeightedSum => tape.weighted_aggregate(
            h,
            edge_src,
            dst_offsets,
            Some(Arc::clone(&topo.edge_weight)),
        ),
        Aggregator::Mean => {
            let mut weights = vec![0.0f32; topo.num_edges()];
            for d in 0..topo.n_dst {
                let (s, e) = (topo.dst_offsets[d], topo.dst_offsets[d + 1]);
                let inv = if e > s { 1.0 / (e - s) as f32 } else { 0.0 };
                for w in &mut weights[s..e] {
                    *w = inv;
                }
            }
            tape.weighted_aggregate(h, edge_src, dst_offsets, Some(weights.into()))
        }
        Aggregator::Max => tape.max_aggregate(h, edge_src, dst_offsets),
    }
}

/// Back-compat helper: weighted (GCN) or plain (GIN) sum.
pub fn aggregate_neighbors(
    tape: &mut Tape,
    h: Var,
    topo: &LayerTopology,
    weighted: bool,
) -> Var {
    let agg = if weighted { Aggregator::WeightedSum } else { Aggregator::Sum };
    aggregate_neighbors_with(tape, h, topo, agg)
}

/// `GatherByDst`: sum-aggregates edge messages into destination rows.
/// (Sum is the commutative/associative aggregator the paper's examples
/// use; min/max variants would slot in the same way.)
pub fn gather_by_dst(tape: &mut Tape, msgs: Var, topo: &LayerTopology) -> Var {
    tape.scatter_add_rows(msgs, Arc::clone(&topo.edge_dst), topo.n_dst)
}

/// Gathers each destination's own previous-layer representation
/// (self-information used by GIN's combiner).
pub fn gather_dst_self(tape: &mut Tape, h: Var, topo: &LayerTopology) -> Var {
    tape.gather_rows(h, Arc::clone(&topo.dst_in_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_tensor::Tensor;

    fn topo() -> LayerTopology {
        LayerTopology::from_adjacency(
            3,
            &[vec![(0, 1.0), (1, 1.0)], vec![(1, 1.0), (2, 1.0)]],
            vec![0, 2],
        )
    }

    #[test]
    fn scatter_then_gather_is_neighborhood_sum() {
        let t = topo();
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.]));
        let e = scatter_to_edge_src(&mut tape, h, &t);
        let agg = gather_by_dst(&mut tape, e, &t);
        // dst0 = h0 + h1 = [3, 30]; dst1 = h1 + h2 = [5, 50].
        assert_eq!(tape.value(agg).data(), &[3., 30., 5., 50.]);
    }

    #[test]
    fn adjoint_of_scatter_is_gather_by_src() {
        let t = topo();
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        let e = scatter_to_edge_src(&mut tape, h, &t);
        // Seed per-edge gradients 1..4; source 1 appears on edges 1 and 2.
        tape.backward_from(e, Tensor::from_vec(4, 1, vec![1., 2., 3., 4.]));
        assert_eq!(tape.grad(h).unwrap().data(), &[1., 5., 4.]);
    }

    #[test]
    fn adjoint_of_gather_by_dst_scatters_back_to_edges() {
        let t = topo();
        let mut tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec(4, 1, vec![1., 2., 3., 4.]));
        let agg = gather_by_dst(&mut tape, m, &t);
        tape.backward_from(agg, Tensor::from_vec(2, 1, vec![10., 20.]));
        // Each edge receives its destination's gradient.
        assert_eq!(tape.grad(m).unwrap().data(), &[10., 10., 20., 20.]);
    }

    #[test]
    fn dst_side_scatter_reads_destination_rows() {
        let t = topo();
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(3, 1, vec![5., 6., 7.]));
        let e = scatter_to_edge_dst(&mut tape, h, &t);
        // dst0 self-row = 0 (value 5), dst1 self-row = 2 (value 7).
        assert_eq!(tape.value(e).data(), &[5., 5., 7., 7.]);
        let s = gather_dst_self(&mut tape, h, &t);
        assert_eq!(tape.value(s).data(), &[5., 7.]);
    }
}

//! Prediction head: softmax cross-entropy over the last layer's logits
//! (the paper's `P→`/`P←` operators, Algorithm 1 lines 6–10).

use std::sync::Arc;

use ns_tensor::{Tape, Tensor};

/// Loss value and the gradient seed for the last GNN layer.
#[derive(Debug, Clone)]
pub struct LossResult {
    /// Weighted negative log-likelihood (summed over the given rows).
    pub loss: f64,
    /// `∇ logits` — the backward seed for the last layer's output.
    pub logit_grad: Tensor,
    /// FLOPs of the head's forward + backward.
    pub flops: u64,
}

/// Computes softmax cross-entropy and its gradient on `logits`
/// (`n x classes`). `labels[r]` is the class of row `r`; `weights[r]`
/// scales row `r`'s contribution (0 for unlabeled/non-training rows; each
/// worker typically uses `1 / total_train_vertices` so that the
/// cluster-wide sum is the mean training loss).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u32], weights: &[f32]) -> LossResult {
    assert_eq!(labels.len(), logits.rows(), "label count");
    assert_eq!(weights.len(), logits.rows(), "weight count");
    let mut tape = Tape::new();
    let x = tape.leaf(logits.clone());
    let lp = tape.log_softmax_rows(x);
    let labels: Arc<[u32]> = labels.to_vec().into();
    let weights: Arc<[f32]> = weights.to_vec().into();
    let loss = tape.nll_loss(lp, labels, weights);
    let value = tape.value(loss).scalar_value() as f64;
    tape.backward(loss);
    let flops = tape.flops();
    let logit_grad = tape
        .take_grad(x)
        .unwrap_or_else(|| Tensor::zeros(logits.rows(), logits.cols()));
    LossResult { loss: value, logit_grad, flops }
}

/// Counts correct argmax predictions among rows where `mask` is true.
/// Returns `(correct, total)`.
pub fn accuracy(logits: &Tensor, labels: &[u32], mask: &[bool]) -> (usize, usize) {
    assert_eq!(labels.len(), logits.rows());
    assert_eq!(mask.len(), logits.rows());
    let pred = logits.argmax_rows();
    let mut correct = 0;
    let mut total = 0;
    for r in 0..logits.rows() {
        if mask[r] {
            total += 1;
            if pred[r] == labels[r] as usize {
                correct += 1;
            }
        }
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_have_low_loss() {
        let logits = Tensor::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]);
        let r = softmax_cross_entropy(&logits, &[0, 1], &[1.0, 1.0]);
        assert!(r.loss < 1e-3, "loss {}", r.loss);
        assert!(r.logit_grad.norm() < 1e-3);
    }

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let logits = Tensor::zeros(1, 4);
        let r = softmax_cross_entropy(&logits, &[2], &[1.0]);
        assert!((r.loss - (4.0f64).ln()).abs() < 1e-5);
        // Gradient: softmax - onehot = 0.25 everywhere except -0.75 at 2.
        assert!((r.logit_grad.get(0, 2) + 0.75).abs() < 1e-5);
        assert!((r.logit_grad.get(0, 0) - 0.25).abs() < 1e-5);
    }

    #[test]
    fn zero_weight_rows_contribute_nothing() {
        let logits = Tensor::from_vec(2, 2, vec![1.0, -1.0, 3.0, 0.5]);
        let r = softmax_cross_entropy(&logits, &[0, 1], &[1.0, 0.0]);
        assert_eq!(r.logit_grad.row(1), &[0.0, 0.0]);
        let only_first = softmax_cross_entropy(
            &Tensor::from_vec(1, 2, vec![1.0, -1.0]),
            &[0],
            &[1.0],
        );
        assert!((r.loss - only_first.loss).abs() < 1e-6);
    }

    #[test]
    fn accuracy_respects_mask() {
        let logits = Tensor::from_vec(3, 2, vec![2., 1., 0., 5., 4., 3.]);
        // predictions: 0, 1, 0 ; labels: 0, 0, 0
        let (c, t) = accuracy(&logits, &[0, 0, 0], &[true, true, false]);
        assert_eq!((c, t), (1, 2));
        let (c2, t2) = accuracy(&logits, &[0, 0, 0], &[true, true, true]);
        assert_eq!((c2, t2), (2, 3));
    }

    #[test]
    fn loss_decreases_along_gradient_step() {
        let logits = Tensor::from_vec(2, 3, vec![0.5, -0.5, 0.1, 0.2, 0.3, -0.1]);
        let labels = [2u32, 0];
        let w = [0.5f32, 0.5];
        let r = softmax_cross_entropy(&logits, &labels, &w);
        let mut stepped = logits.clone();
        stepped.axpy(-0.5, &r.logit_grad);
        let r2 = softmax_cross_entropy(&stepped, &labels, &w);
        assert!(r2.loss < r.loss);
    }
}

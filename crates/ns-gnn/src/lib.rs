//! GNN models in NeutronStar's decoupled execution flow.
//!
//! NeutronStar's central software idea (§4.1) is to decouple each GNN
//! layer into *graph operations* (`ScatterToEdge`, `GatherByDst` and their
//! backward duals — structure-dependent, framework-owned) and *NN
//! operations* (`EdgeForward`, `VertexForward` — parameterized, delegated
//! to an autograd library). This crate implements that flow on top of
//! `ns-tensor`:
//!
//! * [`ops`] — the named graph operators of Fig. 6, as tape ops whose
//!   adjoints realize `ScatterBackToEdge` / `GatherBySrc` automatically.
//! * [`topology`] — [`LayerTopology`], the local
//!   edge structure a worker assembles for one layer (whatever mixture of
//!   owned, cached, and communicated vertices the engine decided on).
//! * [`layers`] — GCN, GIN, and GAT layers. Each `forward` records one
//!   tape segment and returns a [`LayerRun`] whose
//!   `backward` accepts the output gradient (arriving from the next layer
//!   or from remote mirrors) and yields the input gradient — the
//!   per-layer *synchronize-compute / compute-synchronize* contract of
//!   §4.1.
//! * [`model`] — layer stacks with the paper's 2-layer defaults.
//! * [`loss`] — softmax cross-entropy prediction head and accuracy.

pub mod inference;
pub mod layers;
pub mod loss;
pub mod model;
pub mod ops;
pub mod topology;

pub use layers::{GatLayer, GcnLayer, GinLayer, GnnLayer, LayerRun, SageLayer};
pub use ops::Aggregator;
pub use model::{GnnModel, ModelKind};
pub use topology::LayerTopology;

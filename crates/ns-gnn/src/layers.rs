//! GNN layer implementations: GCN, GIN, GAT.
//!
//! Each layer's `forward` records one autograd tape segment over the
//! decoupled flow of Fig. 6 and returns a [`LayerRun`]. The engine calls
//! `LayerRun::backward` with the gradient of the layer's *output*
//! (obtained from the next layer locally, and/or accumulated from remote
//! mirrors via `PostToDepNbr`) and receives the gradient of the layer's
//! *input* rows, which it routes back across workers. Parameter gradients
//! accumulate into the id-indexed gradient vector for the all-reduce.

use rand::rngs::StdRng;
#[cfg(test)]
use rand::SeedableRng;
use std::sync::Arc;

use ns_tensor::nn::{Bindings, Init, Linear, Mlp, ParamId, ParamStore};
use ns_tensor::{Tape, Tensor, Var};

use crate::ops;
use crate::topology::LayerTopology;

/// The in-flight state of one layer's forward pass on one worker.
pub struct LayerRun {
    tape: Tape,
    bindings: Bindings,
    input: Var,
    output: Var,
    forward_flops: u64,
    fwd_graph_ns: u64,
    fwd_nn_ns: u64,
}

impl LayerRun {
    /// The layer's output values (`n_dst x out_dim`).
    pub fn output(&self) -> &Tensor {
        self.tape.value(self.output)
    }

    /// FLOPs spent by the forward pass.
    pub fn forward_flops(&self) -> u64 {
        self.forward_flops
    }

    /// Forward wall time attributed to graph operators, nanoseconds
    /// (tape-granularity attribution; see `ns_tensor::Tape::graph_op_ns`).
    pub fn fwd_graph_ns(&self) -> u64 {
        self.fwd_graph_ns
    }

    /// Forward wall time attributed to NN operators, nanoseconds.
    pub fn fwd_nn_ns(&self) -> u64 {
        self.fwd_nn_ns
    }

    /// Runs the backward pass seeded with `output_grad`; accumulates
    /// parameter gradients into `grads` (parallel to the store) and
    /// returns `(input_gradient, backward_flops)`.
    pub fn backward(self, output_grad: Tensor, grads: &mut [Tensor]) -> (Tensor, u64) {
        let (input_grad, flops, _, _) = self.backward_split(output_grad, grads);
        (input_grad, flops)
    }

    /// Like [`LayerRun::backward`], additionally returning the backward
    /// pass's graph-op vs NN-op wall-time split:
    /// `(input_gradient, backward_flops, bwd_graph_ns, bwd_nn_ns)`.
    pub fn backward_split(
        mut self,
        output_grad: Tensor,
        grads: &mut [Tensor],
    ) -> (Tensor, u64, u64, u64) {
        let before = self.tape.flops();
        let (graph_before, nn_before) = (self.tape.graph_op_ns(), self.tape.nn_op_ns());
        self.tape.backward_from(self.output, output_grad);
        let flops = self.tape.flops() - before;
        let bwd_graph_ns = self.tape.graph_op_ns() - graph_before;
        let bwd_nn_ns = self.tape.nn_op_ns() - nn_before;
        self.bindings.collect_grads(&mut self.tape, grads);
        let shape = self.tape.value(self.input).shape();
        let input_grad = self
            .tape
            .take_grad(self.input)
            .unwrap_or_else(|| Tensor::zeros(shape.0, shape.1));
        (input_grad, flops, bwd_graph_ns, bwd_nn_ns)
    }
}

/// One GNN layer, in the paper's decoupled edge/vertex formulation.
pub trait GnnLayer: Send + Sync {
    /// Input representation width (`d^{(l-1)}` — also the width
    /// communicated for this layer's dependencies).
    fn in_dim(&self) -> usize;

    /// Output representation width (`d^{(l)}`).
    fn out_dim(&self) -> usize;

    /// Records the forward pass over `topo` with input rows `h`
    /// (`topo.n_src x in_dim`).
    fn forward(&self, store: &ParamStore, topo: &LayerTopology, h: Tensor) -> LayerRun;

    /// Analytic per-edge FLOP estimate (edge function + aggregation), used
    /// by the cost model before any data exists.
    fn edge_flops_estimate(&self) -> u64;

    /// Analytic per-vertex FLOP estimate (vertex function), used by the
    /// cost model before any data exists.
    fn vertex_flops_estimate(&self) -> u64;

    /// Width (floats per edge) of the per-edge tensors an optimized
    /// backend must actually *materialize* in device memory for this
    /// layer. Copy-style edge functions (GCN's weighted copy, GIN's copy)
    /// fuse into an SpMM-like aggregation and keep nothing per edge
    /// beyond the static weight; parameterized edge functions (GAT) hold
    /// logits, attention coefficients and weighted messages.
    fn edge_tensor_width(&self) -> usize;
}

fn start_run(h: Tensor) -> (Tape, Bindings, Var) {
    let mut tape = Tape::new();
    let bindings = Bindings::new();
    let input = tape.leaf(h);
    (tape, bindings, input)
}

fn finish_run(tape: Tape, bindings: Bindings, input: Var, output: Var) -> LayerRun {
    let forward_flops = tape.flops();
    let fwd_graph_ns = tape.graph_op_ns();
    let fwd_nn_ns = tape.nn_op_ns();
    LayerRun { tape, bindings, input, output, forward_flops, fwd_graph_ns, fwd_nn_ns }
}

/// Graph Convolutional Network layer (Kipf & Welling):
/// `h' = σ(Σ_{u→v} w_uv · h_u · W + b)` with the pre-computed symmetric
/// normalization `w_uv` as the (non-parameterized) edge function.
pub struct GcnLayer {
    lin: Linear,
    activation: bool,
}

impl GcnLayer {
    /// Registers a GCN layer's parameters. `activation` applies ReLU
    /// (disabled on the output layer, whose logits feed the softmax head).
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        activation: bool,
        rng: &mut StdRng,
    ) -> Self {
        Self { lin: Linear::new(store, prefix, in_dim, out_dim, rng), activation }
    }
}

impl GnnLayer for GcnLayer {
    fn in_dim(&self) -> usize {
        self.lin.in_features()
    }

    fn out_dim(&self) -> usize {
        self.lin.out_features()
    }

    fn forward(&self, store: &ParamStore, topo: &LayerTopology, h: Tensor) -> LayerRun {
        assert_eq!(h.cols(), self.in_dim(), "gcn input width");
        assert_eq!(h.rows(), topo.n_src, "gcn input rows");
        let (mut tape, mut binds, input) = start_run(h);
        // EdgeForward (weighted copy) fused with GatherByDst: the copy
        // edge function needs no materialized edge tensor, so it runs as
        // one SpMM — the fusion real GNN backends apply.
        let agg = ops::aggregate_neighbors(&mut tape, input, topo, true);
        // VertexForward: linear (+ ReLU).
        let z = self.lin.forward(&mut tape, &mut binds, store, agg);
        let out = if self.activation { tape.relu(z) } else { z };
        finish_run(tape, binds, input, out)
    }

    fn edge_flops_estimate(&self) -> u64 {
        // weighted copy + aggregation add, per input dimension.
        2 * self.in_dim() as u64
    }

    fn vertex_flops_estimate(&self) -> u64 {
        self.lin.forward_flops(1)
    }

    fn edge_tensor_width(&self) -> usize {
        1 // only the static normalization weight
    }
}

/// Graph Isomorphism Network layer (Xu et al.):
/// `h' = MLP((1 + ε) · h_v + Σ_{u→v} h_u)` with a learnable scalar `ε`.
pub struct GinLayer {
    mlp: Mlp,
    eps: ParamId,
    in_dim: usize,
    activation: bool,
}

impl GinLayer {
    /// Registers a GIN layer: a 2-layer MLP `in → out → out` and ε.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        activation: bool,
        rng: &mut StdRng,
    ) -> Self {
        let mlp = Mlp::new(store, &format!("{prefix}.mlp"), &[in_dim, out_dim, out_dim], rng);
        let eps = store.register(format!("{prefix}.eps"), Init::Zeros.tensor(1, 1, rng));
        Self { mlp, eps, in_dim, activation }
    }
}

impl GnnLayer for GinLayer {
    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.mlp.out_features()
    }

    fn forward(&self, store: &ParamStore, topo: &LayerTopology, h: Tensor) -> LayerRun {
        assert_eq!(h.cols(), self.in_dim(), "gin input width");
        assert_eq!(h.rows(), topo.n_src, "gin input rows");
        let (mut tape, mut binds, input) = start_run(h);
        // EdgeForward (plain copy) fused with GatherByDst (SpMM).
        let agg = ops::aggregate_neighbors(&mut tape, input, topo, false);
        // VertexForward: (1+ε)h_v + agg, then the MLP.
        let self_h = ops::gather_dst_self(&mut tape, input, topo);
        let eps = binds.bind(&mut tape, store, self.eps);
        let comb = tape.eps_combine(eps, self_h, agg);
        let z = self.mlp.forward(&mut tape, &mut binds, store, comb);
        let out = if self.activation { tape.relu(z) } else { z };
        finish_run(tape, binds, input, out)
    }

    fn edge_flops_estimate(&self) -> u64 {
        self.in_dim() as u64
    }

    fn vertex_flops_estimate(&self) -> u64 {
        self.mlp.forward_flops(1) + 2 * self.in_dim() as u64
    }

    fn edge_tensor_width(&self) -> usize {
        0 // plain copy, fully fused into the aggregation
    }
}

/// Graph Attention Network layer (Veličković et al.), single head:
/// attention logits `LeakyReLU(a_sᵀ W h_u + a_dᵀ W h_v)` per edge,
/// softmax-normalized over each destination's in-edges, then an
/// attention-weighted sum with ELU. The parameterized edge function
/// exercises the `EdgeForward`/`EdgeBackward` path (which ROC lacks —
/// the paper notes ROC cannot run GAT).
pub struct GatLayer {
    heads: Vec<GatHead>,
    in_dim: usize,
    head_dim: usize,
    activation: bool,
}

/// One attention head's parameters.
struct GatHead {
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
}

impl GatHead {
    fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        head_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(
            format!("{prefix}.W"),
            Init::XavierUniform.tensor(in_dim, head_dim, rng),
        );
        let a_src = store.register(
            format!("{prefix}.a_src"),
            Init::XavierUniform.tensor(head_dim, 1, rng),
        );
        let a_dst = store.register(
            format!("{prefix}.a_dst"),
            Init::XavierUniform.tensor(head_dim, 1, rng),
        );
        Self { w, a_src, a_dst }
    }

    /// One head's attention-weighted aggregation (`n_dst x head_dim`).
    fn attend(
        &self,
        tape: &mut Tape,
        binds: &mut Bindings,
        store: &ParamStore,
        input: Var,
        topo: &LayerTopology,
    ) -> Var {
        let w = binds.bind(tape, store, self.w);
        let a_s = binds.bind(tape, store, self.a_src);
        let a_d = binds.bind(tape, store, self.a_dst);

        let wh = tape.matmul(input, w);
        // Per-vertex attention terms.
        let s_src = tape.matmul(wh, a_s);
        let wh_dst = tape.gather_rows(wh, Arc::clone(&topo.dst_in_rows));
        let s_dst = tape.matmul(wh_dst, a_d);
        // EdgeForward: logits from both endpoints.
        let e_src = tape.gather_rows(s_src, Arc::clone(&topo.edge_src));
        let e_dst = tape.gather_rows(s_dst, Arc::clone(&topo.edge_dst));
        let sums = tape.add(e_src, e_dst);
        let logits = tape.leaky_relu(sums, GatLayer::LEAKY_SLOPE);
        // Per-destination softmax (all of a destination's in-edges are
        // local to its worker, so this never crosses workers).
        let alpha = tape.segment_softmax(logits, Arc::clone(&topo.dst_offsets));
        // Attention-weighted aggregation.
        let msgs = ops::scatter_to_edge_src(tape, wh, topo);
        let weighted = tape.mul_col_broadcast(msgs, alpha);
        ops::gather_by_dst(tape, weighted, topo)
    }
}

impl GatLayer {
    /// Leaky-ReLU negative slope used for attention logits.
    pub const LEAKY_SLOPE: f32 = 0.2;

    /// Registers a single-head GAT layer's parameters.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        activation: bool,
        rng: &mut StdRng,
    ) -> Self {
        Self::multi_head(store, prefix, in_dim, out_dim, 1, activation, rng)
    }

    /// Registers a multi-head GAT layer; head outputs are concatenated,
    /// so `out_dim = heads * head_dim` (the standard GAT construction).
    pub fn multi_head(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        head_dim: usize,
        heads: usize,
        activation: bool,
        rng: &mut StdRng,
    ) -> Self {
        assert!(heads >= 1, "need at least one attention head");
        let heads = (0..heads)
            .map(|h| GatHead::new(store, &format!("{prefix}.head{h}"), in_dim, head_dim, rng))
            .collect();
        Self { heads, in_dim, head_dim, activation }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }
}

impl GnnLayer for GatLayer {
    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.head_dim * self.heads.len()
    }

    fn forward(&self, store: &ParamStore, topo: &LayerTopology, h: Tensor) -> LayerRun {
        assert_eq!(h.cols(), self.in_dim(), "gat input width");
        assert_eq!(h.rows(), topo.n_src, "gat input rows");
        let (mut tape, mut binds, input) = start_run(h);
        let mut agg = self.heads[0].attend(&mut tape, &mut binds, store, input, topo);
        for head in &self.heads[1..] {
            let next = head.attend(&mut tape, &mut binds, store, input, topo);
            agg = tape.concat_cols(agg, next);
        }
        let out = if self.activation { tape.elu(agg, 1.0) } else { agg };
        finish_run(tape, binds, input, out)
    }

    fn edge_flops_estimate(&self) -> u64 {
        // Per head: logit add + leaky relu + softmax + weighting +
        // aggregation.
        (self.heads.len() * (6 + 2 * self.head_dim)) as u64
    }

    fn vertex_flops_estimate(&self) -> u64 {
        (self.heads.len() * (2 * self.in_dim * self.head_dim + 4 * self.head_dim)) as u64
    }

    fn edge_tensor_width(&self) -> usize {
        // Per head: logits + attention coefficient + weighted messages.
        self.heads.len() * (self.head_dim + 2)
    }
}

/// GraphSAGE layer (Hamilton et al.): `h' = σ(W · [h_v ‖ AGG(h_u)])`
/// with a mean or element-wise-max neighborhood aggregator — the
/// aggregator family the paper's `GatherByDst` is defined over.
pub struct SageLayer {
    lin: Linear,
    in_dim: usize,
    aggregator: ops::Aggregator,
    activation: bool,
}

impl SageLayer {
    /// Registers a GraphSAGE layer. `aggregator` must be `Mean` or `Max`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        aggregator: ops::Aggregator,
        activation: bool,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            matches!(aggregator, ops::Aggregator::Mean | ops::Aggregator::Max),
            "GraphSAGE uses mean or max aggregation"
        );
        // Concatenation of self and neighborhood doubles the input width.
        let lin = Linear::new(store, prefix, 2 * in_dim, out_dim, rng);
        Self { lin, in_dim, aggregator, activation }
    }

    /// The configured aggregator.
    pub fn aggregator(&self) -> ops::Aggregator {
        self.aggregator
    }
}

impl GnnLayer for SageLayer {
    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.lin.out_features()
    }

    fn forward(&self, store: &ParamStore, topo: &LayerTopology, h: Tensor) -> LayerRun {
        assert_eq!(h.cols(), self.in_dim(), "sage input width");
        assert_eq!(h.rows(), topo.n_src, "sage input rows");
        let (mut tape, mut binds, input) = start_run(h);
        let agg = ops::aggregate_neighbors_with(&mut tape, input, topo, self.aggregator);
        let self_h = ops::gather_dst_self(&mut tape, input, topo);
        let cat = tape.concat_cols(self_h, agg);
        let z = self.lin.forward(&mut tape, &mut binds, store, cat);
        let out = if self.activation { tape.relu(z) } else { z };
        finish_run(tape, binds, input, out)
    }

    fn edge_flops_estimate(&self) -> u64 {
        self.in_dim as u64
    }

    fn vertex_flops_estimate(&self) -> u64 {
        self.lin.forward_flops(1)
    }

    fn edge_tensor_width(&self) -> usize {
        0 // mean/max both fuse into segmented kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> LayerTopology {
        // 4 sources, 3 destinations; dst d's own row is d.
        LayerTopology::from_adjacency(
            4,
            &[
                vec![(0, 1.0), (3, 0.5)],
                vec![(1, 1.0)],
                vec![(0, 0.25), (1, 0.25), (2, 0.5)],
            ],
            vec![0, 1, 2],
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn input(rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect(),
        )
    }

    fn numeric_input_grad(
        layer: &dyn GnnLayer,
        store: &ParamStore,
        topo: &LayerTopology,
        h: &Tensor,
        coeff: &Tensor,
    ) -> Tensor {
        let f = |x: &Tensor| -> f32 {
            layer.forward(store, topo, x.clone()).output().mul(coeff).sum()
        };
        let mut g = Tensor::zeros(h.rows(), h.cols());
        let eps = 1e-3;
        for i in 0..h.len() {
            let mut p = h.clone();
            p.data_mut()[i] += eps;
            let mut m = h.clone();
            m.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&p) - f(&m)) / (2.0 * eps);
        }
        g
    }

    fn check_layer_gradients(layer: &dyn GnnLayer, store: &ParamStore, tol: f32) {
        let t = topo();
        let h = input(4, layer.in_dim());
        let run = layer.forward(store, &t, h.clone());
        assert_eq!(run.output().shape(), (3, layer.out_dim()));
        let coeff = input(3, layer.out_dim());
        let mut grads = store.zero_grads();
        let (input_grad, back_flops) = run.backward(coeff.clone(), &mut grads);
        assert!(back_flops > 0);
        let numeric = numeric_input_grad(layer, store, &t, &h, &coeff);
        let diff = input_grad.max_abs_diff(&numeric);
        assert!(diff < tol, "input grad mismatch: {diff}");
        // At least one parameter must have received gradient.
        assert!(grads.iter().any(|g| g.norm() > 0.0));
    }

    #[test]
    fn gcn_forward_known_values() {
        // Identity-ish check with hand-set weights: 1 input dim, 1 output.
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GcnLayer::new(&mut store, "l", 1, 1, false, &mut r);
        let (wid, bid) = layer.lin.param_ids();
        *store.value_mut(wid) = Tensor::scalar(2.0);
        *store.value_mut(bid) = Tensor::scalar(1.0);
        let t = topo();
        let h = Tensor::from_vec(4, 1, vec![1., 2., 3., 4.]);
        let run = layer.forward(&store, &t, h);
        // dst0 = (1*1 + 4*0.5) * 2 + 1 = 7; dst1 = 2*2+1 = 5;
        // dst2 = (0.25 + 0.5 + 1.5) * 2 + 1 = 5.5.
        assert_eq!(run.output().data(), &[7., 5., 5.5]);
    }

    #[test]
    fn gcn_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GcnLayer::new(&mut store, "gcn", 3, 2, true, &mut r);
        check_layer_gradients(&layer, &store, 2e-2);
    }

    #[test]
    fn gin_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GinLayer::new(&mut store, "gin", 3, 2, false, &mut r);
        check_layer_gradients(&layer, &store, 2e-2);
    }

    #[test]
    fn gat_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GatLayer::new(&mut store, "gat", 3, 2, true, &mut r);
        check_layer_gradients(&layer, &store, 2e-2);
    }

    #[test]
    fn gat_attention_rows_sum_to_one_effectively() {
        // With W = I and uniform features, the output must equal Wh (the
        // attention weights sum to 1 per destination).
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GatLayer::new(&mut store, "gat", 2, 2, false, &mut r);
        *store.value_mut(layer.heads[0].w) = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        let t = topo();
        let h = Tensor::full(4, 2, 3.0);
        let run = layer.forward(&store, &t, h);
        for v in run.output().data() {
            assert!((v - 3.0).abs() < 1e-5, "{v}");
        }
    }

    #[test]
    fn gin_eps_shifts_self_contribution() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GinLayer::new(&mut store, "gin", 2, 2, false, &mut r);
        // Pin the MLP to a benign affine map (identity weights, large
        // positive bias on the hidden layer) so no ReLU unit is dead and
        // the ε shift must reach the output.
        let eye = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        for (i, lin) in layer.mlp.layers().iter().enumerate() {
            let (w, b) = lin.param_ids();
            *store.value_mut(w) = eye.clone();
            *store.value_mut(b) = Tensor::full(1, 2, if i == 0 { 10.0 } else { 0.0 });
        }
        let t = topo();
        let h = input(4, 2);
        let base = layer.forward(&store, &t, h.clone()).output().clone();
        *store.value_mut(layer.eps) = Tensor::scalar(1.0);
        let shifted = layer.forward(&store, &t, h.clone()).output().clone();
        // Difference is exactly ε · h_self pushed through the affine map.
        let expected = h.gather_rows(&[0, 1, 2]);
        assert!(base.max_abs_diff(&shifted) > 1e-4);
        assert!(shifted.sub(&base).max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn flop_estimates_are_positive_and_scale_with_dims() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let small = GcnLayer::new(&mut store, "s", 8, 8, true, &mut r);
        let large = GcnLayer::new(&mut store, "l", 64, 64, true, &mut r);
        assert!(large.vertex_flops_estimate() > small.vertex_flops_estimate());
        assert!(large.edge_flops_estimate() > small.edge_flops_estimate());
    }

    #[test]
    fn sage_mean_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = SageLayer::new(
            &mut store, "sage", 3, 2, crate::ops::Aggregator::Mean, true, &mut r,
        );
        check_layer_gradients(&layer, &store, 2e-2);
    }

    #[test]
    fn sage_max_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = SageLayer::new(
            &mut store, "sage", 3, 2, crate::ops::Aggregator::Max, false, &mut r,
        );
        check_layer_gradients(&layer, &store, 2e-2);
    }

    #[test]
    fn multi_head_gat_concatenates_heads() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GatLayer::multi_head(&mut store, "gat", 3, 4, 3, true, &mut r);
        assert_eq!(layer.num_heads(), 3);
        assert_eq!(layer.out_dim(), 12);
        let run = layer.forward(&store, &topo(), input(4, 3));
        assert_eq!(run.output().shape(), (3, 12));
    }

    #[test]
    fn multi_head_gat_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GatLayer::multi_head(&mut store, "gat", 3, 2, 2, true, &mut r);
        check_layer_gradients(&layer, &store, 2e-2);
    }

    #[test]
    #[should_panic(expected = "mean or max")]
    fn sage_rejects_sum_aggregator() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let _ = SageLayer::new(
            &mut store, "sage", 3, 2, crate::ops::Aggregator::Sum, true, &mut r,
        );
    }

    #[test]
    fn forward_flops_recorded() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = GcnLayer::new(&mut store, "g", 3, 2, true, &mut r);
        let run = layer.forward(&store, &topo(), input(4, 3));
        assert!(run.forward_flops() > 0);
    }
}

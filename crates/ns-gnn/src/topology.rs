//! The per-layer local edge structure a worker computes over.
//!
//! Engines (crate `ns-runtime`) decide *where* each dependency's data
//! comes from — locally owned, locally cached replica, or received from a
//! remote master. By the time a layer runs, all required source rows sit
//! in one input matrix `h` (`n_src x d_in`), and the [`LayerTopology`]
//! describes the edges in local row coordinates. This is exactly the
//! paper's `GetFromDepNbr` postcondition: after it, "the GNN propagation
//! of each layer runs like in a single machine".

use std::sync::Arc;

/// Local edge structure for one layer's computation on one worker.
///
/// Invariants (validated by [`LayerTopology::validate`]):
/// * `edge_src[e] < n_src`, `edge_dst[e] < n_dst` for every edge;
/// * edges are grouped by destination: `edge_dst` is non-decreasing and
///   `dst_offsets[d]..dst_offsets[d+1]` are exactly the edges of
///   destination `d` (CSC order — forward aggregation and GAT's
///   per-destination softmax depend on it);
/// * `dst_in_rows[d] < n_src` maps each destination to its *own*
///   previous-layer row in the input matrix (self-information for GIN's
///   `(1+ε)h + agg` and GAT's attention destination term).
#[derive(Debug, Clone)]
pub struct LayerTopology {
    /// Number of rows in the layer-input matrix.
    pub n_src: usize,
    /// Number of output vertices (rows in the layer-output matrix).
    pub n_dst: usize,
    /// Per-edge source row, grouped by destination.
    pub edge_src: Arc<[u32]>,
    /// Per-edge destination row, non-decreasing.
    pub edge_dst: Arc<[u32]>,
    /// CSC offsets: `n_dst + 1` entries into the edge arrays.
    pub dst_offsets: Arc<[usize]>,
    /// Per-edge static weight (GCN symmetric normalization).
    pub edge_weight: Arc<[f32]>,
    /// Input-matrix row holding each destination's own representation.
    pub dst_in_rows: Arc<[u32]>,
}

impl LayerTopology {
    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Checks all structural invariants; returns a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        let e = self.num_edges();
        if self.edge_dst.len() != e || self.edge_weight.len() != e {
            return Err("edge array length mismatch".into());
        }
        if self.dst_offsets.len() != self.n_dst + 1 {
            return Err("dst_offsets length must be n_dst + 1".into());
        }
        if self.dst_offsets[0] != 0 || *self.dst_offsets.last().unwrap() != e {
            return Err("dst_offsets must span all edges".into());
        }
        if self.dst_in_rows.len() != self.n_dst {
            return Err("dst_in_rows length must be n_dst".into());
        }
        for d in 0..self.n_dst {
            if self.dst_offsets[d] > self.dst_offsets[d + 1] {
                return Err(format!("dst_offsets not monotone at {d}"));
            }
            for i in self.dst_offsets[d]..self.dst_offsets[d + 1] {
                if self.edge_dst[i] as usize != d {
                    return Err(format!("edge {i} not grouped under destination {d}"));
                }
            }
            if self.dst_in_rows[d] as usize >= self.n_src {
                return Err(format!("dst_in_rows[{d}] out of range"));
            }
        }
        if self.edge_src.iter().any(|&s| s as usize >= self.n_src) {
            return Err("edge_src out of range".into());
        }
        Ok(())
    }

    /// Builds a topology from per-destination adjacency lists given in
    /// destination order: `in_edges[d]` lists `(src_row, weight)` pairs
    /// for destination `d`. `dst_in_rows[d]` is each destination's own
    /// input row.
    pub fn from_adjacency(
        n_src: usize,
        in_edges: &[Vec<(u32, f32)>],
        dst_in_rows: Vec<u32>,
    ) -> Self {
        let n_dst = in_edges.len();
        assert_eq!(dst_in_rows.len(), n_dst);
        let e: usize = in_edges.iter().map(Vec::len).sum();
        let mut edge_src = Vec::with_capacity(e);
        let mut edge_dst = Vec::with_capacity(e);
        let mut edge_weight = Vec::with_capacity(e);
        let mut dst_offsets = Vec::with_capacity(n_dst + 1);
        dst_offsets.push(0usize);
        for (d, list) in in_edges.iter().enumerate() {
            for &(s, w) in list {
                edge_src.push(s);
                edge_dst.push(d as u32);
                edge_weight.push(w);
            }
            dst_offsets.push(edge_src.len());
        }
        let topo = Self {
            n_src,
            n_dst,
            edge_src: edge_src.into(),
            edge_dst: edge_dst.into(),
            dst_offsets: dst_offsets.into(),
            edge_weight: edge_weight.into(),
            dst_in_rows: dst_in_rows.into(),
        };
        debug_assert_eq!(topo.validate(), Ok(()));
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerTopology {
        // 3 sources; 2 destinations. dst0 <- {0, 1}; dst1 <- {1, 2}.
        LayerTopology::from_adjacency(
            3,
            &[vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0), (2, 1.0)]],
            vec![0, 2],
        )
    }

    #[test]
    fn from_adjacency_builds_valid_csc() {
        let t = sample();
        assert_eq!(t.num_edges(), 4);
        assert_eq!(&*t.edge_src, &[0, 1, 1, 2]);
        assert_eq!(&*t.edge_dst, &[0, 0, 1, 1]);
        assert_eq!(&*t.dst_offsets, &[0, 2, 4]);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_bad_offsets() {
        let mut t = sample();
        t.dst_offsets = vec![0usize, 3, 4].into();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_range_src() {
        let mut t = sample();
        t.edge_src = vec![0u32, 9, 1, 2].into();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_dst_in_rows() {
        let mut t = sample();
        t.dst_in_rows = vec![0u32, 99].into();
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_destination_is_fine() {
        let t = LayerTopology::from_adjacency(2, &[vec![], vec![(0, 1.0)]], vec![0, 1]);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.num_edges(), 1);
    }
}

//! Full-graph inference: run a trained model over an entire dataset on
//! one machine (no sampling, no distribution) to obtain logits,
//! predictions, and split accuracies.
//!
//! This is the deployment half of the system: training produces a
//! parameter store (every worker holds an identical replica), and
//! inference consumes it. Also used to evaluate sampled-training
//! baselines at full-neighborhood fidelity, as DistDGL-style systems do
//! for their reported accuracies.

use crate::loss::accuracy;
use crate::model::GnnModel;
use crate::topology::LayerTopology;
use ns_graph::Dataset;
use ns_tensor::{ParamStore, Tensor};

/// Inference results over a whole dataset.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// `|V| x classes` logits.
    pub logits: Tensor,
    /// Argmax class per vertex.
    pub predictions: Vec<usize>,
    /// Accuracy over the training split.
    pub train_acc: f64,
    /// Accuracy over the validation split.
    pub val_acc: f64,
    /// Accuracy over the test split.
    pub test_acc: f64,
}

/// Builds the single-machine full-graph topology of a dataset (every
/// vertex is both source and destination; self rows are identity).
pub fn full_graph_topology(dataset: &Dataset) -> LayerTopology {
    let n = dataset.graph.num_vertices();
    let mut lists: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        lists.push(
            dataset
                .graph
                .in_neighbors(v)
                .iter()
                .zip(dataset.graph.in_weights(v))
                .map(|(&u, &w)| (u, w))
                .collect(),
        );
    }
    let self_rows = (0..n as u32).collect();
    LayerTopology::from_adjacency(n, &lists, self_rows)
}

/// Runs the model forward over the full graph with the given parameters.
pub fn infer(dataset: &Dataset, model: &GnnModel, store: &ParamStore) -> InferenceResult {
    assert_eq!(
        model.dims()[0],
        dataset.feature_dim(),
        "model input width must match dataset features"
    );
    let topo = full_graph_topology(dataset);
    let mut h = dataset.features.clone();
    for lz in 0..model.num_layers() {
        let run = model.layer(lz).forward(store, &topo, h);
        h = run.output().clone();
    }
    let predictions = h.argmax_rows();
    let acc = |mask: &[bool]| {
        let (c, t) = accuracy(&h, &dataset.labels, mask);
        if t == 0 {
            0.0
        } else {
            c as f64 / t as f64
        }
    };
    InferenceResult {
        train_acc: acc(&dataset.train_mask),
        val_acc: acc(&dataset.val_mask),
        test_acc: acc(&dataset.test_mask),
        predictions,
        logits: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use ns_graph::datasets::by_name;

    fn setup() -> (Dataset, GnnModel) {
        let ds = by_name("cora").unwrap().materialize(0.15, 9);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 4);
        (ds, model)
    }

    #[test]
    fn shapes_and_determinism() {
        let (ds, model) = setup();
        let store = model.fresh_store();
        let a = infer(&ds, &model, &store);
        let b = infer(&ds, &model, &store);
        assert_eq!(a.logits.shape(), (ds.graph.num_vertices(), ds.num_classes));
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.logits.data(), b.logits.data());
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let (ds, model) = setup();
        let r = infer(&ds, &model, &model.fresh_store());
        // 7 classes: untrained accuracy should be nowhere near learned.
        assert!(r.test_acc < 0.6, "untrained acc {}", r.test_acc);
    }

    #[test]
    fn full_graph_topology_is_valid_and_complete() {
        let (ds, _) = setup();
        let topo = full_graph_topology(&ds);
        assert_eq!(topo.validate(), Ok(()));
        assert_eq!(topo.num_edges(), ds.graph.num_edges());
        assert_eq!(topo.n_dst, ds.graph.num_vertices());
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn dimension_mismatch_rejected() {
        let (ds, _) = setup();
        let wrong = GnnModel::two_layer(ModelKind::Gcn, 5, 4, ds.num_classes, 1);
        infer(&ds, &wrong, &wrong.fresh_store());
    }
}

//! Layer stacks with the paper's model configurations.
//!
//! All three evaluation models (GCN, GIN, GAT) are 2-layer in the paper
//! (§5.1); the stack here is depth-generic. The parameter store returned
//! by [`GnnModel::fresh_store`] is what each worker replicates — layers
//! themselves are immutable and shared.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ns_tensor::nn::ParamStore;

use crate::layers::{GatLayer, GcnLayer, GinLayer, GnnLayer, SageLayer};
use crate::ops::Aggregator;

/// Which GNN architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Graph Convolutional Network.
    Gcn,
    /// Graph Isomorphism Network.
    Gin,
    /// Graph Attention Network.
    Gat,
    /// GraphSAGE (mean aggregator).
    Sage,
}

impl ModelKind {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gin => "GIN",
            ModelKind::Gat => "GAT",
            ModelKind::Sage => "GraphSAGE",
        }
    }
}

/// An immutable stack of GNN layers plus the initial parameter values.
pub struct GnnModel {
    kind: ModelKind,
    layers: Vec<Box<dyn GnnLayer>>,
    init_store: ParamStore,
    dims: Vec<usize>,
}

impl GnnModel {
    /// Builds a model with layer widths `dims = [in, hidden..., classes]`
    /// (so `dims.len() - 1` layers). The final layer has no activation —
    /// its output feeds the softmax prediction head. All randomness flows
    /// from `seed`.
    pub fn new(kind: ModelKind, dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn GnnLayer>> = Vec::with_capacity(dims.len() - 1);
        for (l, w) in dims.windows(2).enumerate() {
            let act = l + 2 < dims.len();
            let prefix = format!("layer{l}");
            let layer: Box<dyn GnnLayer> = match kind {
                ModelKind::Gcn => {
                    Box::new(GcnLayer::new(&mut store, &prefix, w[0], w[1], act, &mut rng))
                }
                ModelKind::Gin => {
                    Box::new(GinLayer::new(&mut store, &prefix, w[0], w[1], act, &mut rng))
                }
                ModelKind::Gat => {
                    Box::new(GatLayer::new(&mut store, &prefix, w[0], w[1], act, &mut rng))
                }
                ModelKind::Sage => Box::new(SageLayer::new(
                    &mut store, &prefix, w[0], w[1], Aggregator::Mean, act, &mut rng,
                )),
            };
            layers.push(layer);
        }
        Self { kind, layers, init_store: store, dims: dims.to_vec() }
    }

    /// Convenience: a 2-layer model `in → hidden → classes`.
    pub fn two_layer(
        kind: ModelKind,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        Self::new(kind, &[in_dim, hidden, classes], seed)
    }

    /// The architecture.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of layers (`L`).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer `l` (0-based; the paper's layer `l+1`).
    pub fn layer(&self, l: usize) -> &dyn GnnLayer {
        self.layers[l].as_ref()
    }

    /// Layer widths `[in, hidden..., classes]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// A fresh replica of the initial parameters (identical on every
    /// call — workers start in sync and stay in sync via all-reduce).
    pub fn fresh_store(&self) -> ParamStore {
        self.init_store.clone()
    }

    /// Bytes a full parameter-gradient all-reduce moves per worker.
    pub fn gradient_bytes(&self) -> u64 {
        self.init_store.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LayerTopology;
    use ns_tensor::Tensor;

    #[test]
    fn two_layer_shapes() {
        for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat, ModelKind::Sage] {
            let m = GnnModel::two_layer(kind, 8, 4, 3, 1);
            assert_eq!(m.num_layers(), 2);
            assert_eq!(m.layer(0).in_dim(), 8);
            assert_eq!(m.layer(0).out_dim(), 4);
            assert_eq!(m.layer(1).in_dim(), 4);
            assert_eq!(m.layer(1).out_dim(), 3);
            assert!(m.gradient_bytes() > 0, "{}", kind.name());
        }
    }

    #[test]
    fn fresh_stores_are_identical() {
        let m = GnnModel::two_layer(ModelKind::Gcn, 4, 4, 2, 7);
        let s1 = m.fresh_store();
        let s2 = m.fresh_store();
        for ((_, _, v1), (_, _, v2)) in s1.iter().zip(s2.iter()) {
            assert_eq!(v1.data(), v2.data());
        }
    }

    #[test]
    fn same_seed_same_model() {
        let a = GnnModel::two_layer(ModelKind::Gat, 4, 4, 2, 7);
        let b = GnnModel::two_layer(ModelKind::Gat, 4, 4, 2, 7);
        let sa = a.fresh_store();
        let sb = b.fresh_store();
        for ((_, _, v1), (_, _, v2)) in sa.iter().zip(sb.iter()) {
            assert_eq!(v1.data(), v2.data());
        }
    }

    #[test]
    fn deep_stack_builds_and_runs() {
        let m = GnnModel::new(ModelKind::Gcn, &[3, 5, 4, 2], 3);
        assert_eq!(m.num_layers(), 3);
        let topo = LayerTopology::from_adjacency(
            2,
            &[vec![(0, 1.0)], vec![(0, 0.5), (1, 0.5)]],
            vec![0, 1],
        );
        let store = m.fresh_store();
        let mut h = Tensor::full(2, 3, 1.0);
        for l in 0..m.num_layers() {
            let run = m.layer(l).forward(&store, &topo, h);
            h = run.output().clone();
        }
        assert_eq!(h.shape(), (2, 2));
    }
}

//! Sinks: render a [`RunMetrics`] as a summary table, JSON, or a Chrome trace.
//!
//! JSON is hand-rolled (the crate has no dependencies). Schemas are documented
//! in `docs/OBSERVABILITY.md`; the integration tests parse both outputs with a
//! real JSON parser to keep the writers honest.

use crate::{Histogram, MetricsFrame, Phase, RunMetrics, COORDINATOR};
use std::fmt::Write as _;

/// Schema tag embedded in the metrics JSON.
pub const METRICS_SCHEMA: &str = "ns-metrics/v1";

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    esc(s, &mut out);
    out.push('"');
    out
}

/// Worker id as rendered in the sinks: the coordinator becomes `-1`.
fn worker_id_json(w: usize) -> i64 {
    if w == COORDINATOR {
        -1
    } else {
        w as i64
    }
}

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.percentile(0.5),
        h.percentile(0.9),
        h.percentile(0.99)
    )
}

/// Render machine-readable JSON for the whole run (the `--metrics-out` sink).
///
/// Top level: `{"schema", "wall_s", "workers": [...]}` — one entry per worker,
/// coordinator last with `"worker": -1`. See `docs/OBSERVABILITY.md` for the
/// full schema.
pub fn to_json(run: &RunMetrics) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"schema\":{},\"wall_s\":{},\"workers\":[",
        jstr(METRICS_SCHEMA),
        run.wall_s
    );
    let mut first = true;
    for frame in run.frames.values() {
        if !first {
            out.push(',');
        }
        first = false;
        frame_json(frame, &mut out);
    }
    out.push_str("]}");
    out
}

fn frame_json(f: &MetricsFrame, out: &mut String) {
    let _ = write!(out, "{{\"worker\":{},\"counters\":{{", worker_id_json(f.worker));
    let mut first = true;
    for (k, v) in &f.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{}", jstr(k), v);
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (k, h) in &f.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{}", jstr(k), hist_json(h));
    }
    out.push_str("},\"phases\":[");
    first = true;
    for ((phase, layer), ns) in &f.phase_ns {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"phase\":{},\"layer\":{},\"total_ns\":{}}}",
            jstr(phase.name()),
            layer,
            ns
        );
    }
    out.push_str("],\"layers\":[");
    first = true;
    for (layer, s) in f.layer_split.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"layer\":{},\"fwd_graph_ns\":{},\"fwd_nn_ns\":{},\"bwd_graph_ns\":{},\"bwd_nn_ns\":{}}}",
            layer, s.fwd_graph_ns, s.fwd_nn_ns, s.bwd_graph_ns, s.bwd_nn_ns
        );
    }
    let _ = write!(
        out,
        "],\"retained_spans\":{},\"dropped_spans\":{}}}",
        f.spans.len(),
        f.dropped_spans
    );
}

/// Render a Chrome `trace_event` JSON file (the `--trace-out` sink), loadable
/// in Perfetto or `chrome://tracing`.
///
/// Process 0 is the real-clock run with one track (thread) per worker plus a
/// `coordinator` track; process 1, when simulator spans are present, is the
/// *simulated* cluster timeline with one track per (worker, resource).
/// Durations are microseconds; complete events (`"ph":"X"`).
pub fn to_chrome_trace(run: &RunMetrics) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };

    emit(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"training run (real clock)\"}}".to_string(),
        &mut out,
    );
    // The coordinator track sits after the highest real worker id.
    let coord_tid = run
        .frames
        .keys()
        .filter(|&&w| w != COORDINATOR)
        .max()
        .map(|&w| w as i64 + 1)
        .unwrap_or(0);
    for frame in run.frames.values() {
        let (tid, tname) = if frame.worker == COORDINATOR {
            (coord_tid, "coordinator".to_string())
        } else {
            (frame.worker as i64, format!("worker {}", frame.worker))
        };
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                tid,
                jstr(&tname)
            ),
            &mut out,
        );
        for s in &frame.spans {
            let name = if s.layer >= 0 {
                format!("{} L{}", s.phase.name(), s.layer)
            } else {
                s.phase.name().to_string()
            };
            emit(
                format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\"cat\":{},\"ts\":{},\"dur\":{},\"args\":{{\"epoch\":{},\"layer\":{}}}}}",
                    tid,
                    jstr(&name),
                    jstr(s.phase.name()),
                    s.start_ns as f64 / 1e3,
                    (s.end_ns.saturating_sub(s.start_ns)) as f64 / 1e3,
                    s.epoch,
                    s.layer
                ),
                &mut out,
            );
        }
    }

    if !run.sim_spans.is_empty() {
        emit(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cluster simulator (modeled clock)\"}}".to_string(),
            &mut out,
        );
        // One track per (worker, resource); stable tid = worker * #resources + idx.
        let resources = ["device", "nic_in", "nic_out"];
        let mut named: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
        for s in &run.sim_spans {
            let ridx = resources.iter().position(|&r| r == s.resource).unwrap_or(0) as i64;
            let tid = s.worker as i64 * resources.len() as i64 + ridx;
            if named.insert(tid) {
                emit(
                    format!(
                        "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                        tid,
                        jstr(&format!("w{} {}", s.worker, s.resource))
                    ),
                    &mut out,
                );
            }
            emit(
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"sim\",\"ts\":{},\"dur\":{},\"args\":{{\"worker\":{}}}}}",
                    tid,
                    jstr(s.resource),
                    s.start_us,
                    s.end_us - s.start_us,
                    s.worker
                ),
                &mut out,
            );
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render the human-readable end-of-run summary table.
pub fn summary_table(run: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- metrics ({:.3}s wall) --", run.wall_s);

    // Phase totals per worker.
    let shown: Vec<Phase> = Phase::ALL
        .iter()
        .copied()
        .filter(|p| run.frames.values().any(|f| f.phase_total_ns(*p) > 0))
        .collect();
    if !shown.is_empty() {
        let _ = write!(out, "{:>12}", "phase (s)");
        for p in &shown {
            let _ = write!(out, "  {:>11}", p.name());
        }
        out.push('\n');
        for frame in run.frames.values() {
            let label = if frame.worker == COORDINATOR {
                "coord".to_string()
            } else {
                format!("w{}", frame.worker)
            };
            let _ = write!(out, "{label:>12}");
            for p in &shown {
                let _ = write!(out, "  {:>11.4}", seconds(frame.phase_total_ns(*p)));
            }
            out.push('\n');
        }
    }

    // Graph-op vs NN-op split per layer, aggregated over workers.
    let layers = run
        .frames
        .values()
        .map(|f| f.layer_split.len())
        .max()
        .unwrap_or(0);
    if layers > 0 {
        let _ = writeln!(
            out,
            "{:>12}  {:>11}  {:>11}  {:>11}  {:>11}",
            "layer (s)", "fwd_graph", "fwd_nn", "bwd_graph", "bwd_nn"
        );
        for lz in 0..layers {
            let mut acc = crate::LayerSplit::default();
            for f in run.frames.values() {
                if let Some(s) = f.layer_split.get(lz) {
                    acc.add(*s);
                }
            }
            let _ = writeln!(
                out,
                "{:>12}  {:>11.4}  {:>11.4}  {:>11.4}  {:>11.4}",
                format!("L{lz}"),
                seconds(acc.fwd_graph_ns),
                seconds(acc.fwd_nn_ns),
                seconds(acc.bwd_graph_ns),
                seconds(acc.bwd_nn_ns)
            );
        }
    }

    // Counters, aggregated across workers.
    let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for f in run.frames.values() {
        for (k, v) in &f.counters {
            *totals.entry(k.as_str()).or_insert(0) += v;
        }
    }
    if !totals.is_empty() {
        let _ = writeln!(out, "counters (all workers):");
        for (k, v) in &totals {
            let _ = writeln!(out, "  {k:<32} {v}");
        }
    }

    // Histograms, merged across workers.
    let mut hists: std::collections::BTreeMap<&str, Histogram> =
        std::collections::BTreeMap::new();
    for f in run.frames.values() {
        for (k, h) in &f.histograms {
            hists.entry(k.as_str()).or_default().merge(h);
        }
    }
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<32} {:>9} {:>12} {:>12} {:>12}",
            "histogram", "count", "p50", "p99", "max"
        );
        for (k, h) in &hists {
            let _ = writeln!(
                out,
                "{:<32} {:>9} {:>12} {:>12} {:>12}",
                k,
                h.count,
                h.percentile(0.5),
                h.percentile(0.99),
                h.max
            );
        }
    }

    let dropped: u64 = run.frames.values().map(|f| f.dropped_spans).sum();
    if dropped > 0 {
        let _ = writeln!(out, "note: {dropped} spans dropped (ring buffer full)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerSplit, MetricsRecorder, Phase, SimSpan, SpanRecord};
    use std::time::Instant;

    fn sample_run() -> RunMetrics {
        let mut run = RunMetrics::new();
        for w in 0..2usize {
            let rec = MetricsRecorder::new(w, Instant::now());
            rec.set_epoch(1);
            rec.incr("net.sent.bytes", 100 + w as u64);
            rec.observe("net.recv.wait_ns", 2_000);
            {
                let _g = rec.span(Phase::FwdComm, None);
            }
            {
                let _g = rec.span(Phase::FwdCompute, Some(0));
            }
            rec.add_layer_split(
                0,
                LayerSplit {
                    fwd_graph_ns: 10,
                    fwd_nn_ns: 20,
                    bwd_graph_ns: 30,
                    bwd_nn_ns: 40,
                },
            );
            run.absorb(rec.finish());
        }
        let coord = MetricsRecorder::new(COORDINATOR, Instant::now());
        {
            let _g = coord.span(Phase::CkptSave, None);
        }
        coord.incr("recovery.rollbacks", 1);
        run.absorb(coord.finish());
        run.sim_spans.push(SimSpan {
            worker: 0,
            resource: "device",
            start_us: 0.0,
            end_us: 12.5,
        });
        run.wall_s = 0.25;
        run
    }

    /// Minimal structural JSON validation: balanced braces/brackets outside
    /// strings, proper string termination. The workspace-level integration
    /// test parses sink output with a real JSON parser.
    fn assert_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced JSON");
    }

    #[test]
    fn json_sink_is_balanced_and_complete() {
        let run = sample_run();
        let j = to_json(&run);
        assert_balanced_json(&j);
        assert!(j.starts_with("{\"schema\":\"ns-metrics/v1\""));
        assert!(j.contains("\"worker\":0"));
        assert!(j.contains("\"worker\":1"));
        assert!(j.contains("\"worker\":-1"), "coordinator renders as -1");
        assert!(j.contains("\"net.sent.bytes\":100"));
        assert!(j.contains("\"phase\":\"fwd_compute\""));
        assert!(j.contains("\"fwd_graph_ns\":10"));
        assert!(j.contains("\"p99\":"));
    }

    #[test]
    fn trace_sink_has_one_track_per_worker() {
        let run = sample_run();
        let t = to_chrome_trace(&run);
        assert_balanced_json(&t);
        assert!(t.contains("\"traceEvents\""));
        assert!(t.contains("\"name\":\"worker 0\""));
        assert!(t.contains("\"name\":\"worker 1\""));
        assert!(t.contains("\"name\":\"coordinator\""));
        // Coordinator track does not collide with worker tracks.
        assert!(t.contains("\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"coordinator\"}"));
        // Simulated timeline is a second process.
        assert!(t.contains("\"pid\":1"));
        assert!(t.contains("\"name\":\"w0 device\""));
        // Complete events carry epoch/layer args.
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"epoch\":1"));
    }

    #[test]
    fn summary_table_lists_phases_counters_hists() {
        let run = sample_run();
        let s = summary_table(&run);
        assert!(s.contains("fwd_comm"));
        assert!(s.contains("fwd_compute"));
        assert!(s.contains("net.sent.bytes"));
        assert!(s.contains("201"), "counters aggregate across workers");
        assert!(s.contains("net.recv.wait_ns"));
        assert!(s.contains("fwd_graph"));
        assert!(s.contains("coord"));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        let mut f = crate::MetricsFrame::new(0);
        f.counters.insert("we\"ird\\key\n\u{1}".into(), 1);
        let mut run = RunMetrics::new();
        run.absorb(f);
        let j = to_json(&run);
        assert_balanced_json(&j);
        assert!(j.contains("we\\\"ird\\\\key\\n\\u0001"));
    }

    #[test]
    fn empty_run_renders() {
        let run = RunMetrics::new();
        assert_balanced_json(&to_json(&run));
        assert_balanced_json(&to_chrome_trace(&run));
        let _ = summary_table(&run);
    }

    #[test]
    fn trace_span_timestamps_are_microseconds() {
        let mut f = crate::MetricsFrame::new(0);
        f.spans.push(SpanRecord {
            phase: Phase::Head,
            layer: -1,
            epoch: 0,
            start_ns: 3_000,
            end_ns: 5_500,
        });
        let mut run = RunMetrics::new();
        run.absorb(f);
        let t = to_chrome_trace(&run);
        assert!(t.contains("\"ts\":3,\"dur\":2.5"));
    }
}

//! Lightweight observability for the NeutronStar reproduction.
//!
//! Every worker thread owns a [`MetricsRecorder`]: a thread-local, allocation-light
//! collection of counters, power-of-two-bucket histograms, per-phase time
//! accumulators, and a bounded ring of timestamped [`SpanRecord`]s. Workers never
//! share a recorder — there are no locks and no atomics on the hot path. When a
//! worker finishes (or fails), the recorder is drained into an immutable, `Send`
//! [`MetricsFrame`]; the coordinator merges frames into a [`RunMetrics`] at join
//! time ("merged-at-join"). Three sinks render a `RunMetrics`:
//!
//! * [`summary_table`] — a human-readable end-of-run table,
//! * [`to_json`] — machine-readable JSON (the `--metrics-out` file),
//! * [`to_chrome_trace`] — Chrome `trace_event` JSON (the `--trace-out` file),
//!   loadable in Perfetto or `chrome://tracing` with one track per worker.
//!
//! The crate has no external dependencies and hand-rolls its JSON output.
//! See `docs/OBSERVABILITY.md` in the repository root for the metrics catalog,
//! the sink schemas, and a worked profiling walkthrough.
//!
//! ```
//! use ns_metrics::{MetricsRecorder, Phase, RunMetrics, span};
//! use std::time::Instant;
//!
//! let origin = Instant::now();            // shared by all workers of one run
//! let rec = MetricsRecorder::new(0, origin);
//! rec.set_epoch(0);
//! rec.incr("demo.events", 3);
//! rec.observe("demo.wait_ns", 1_500);
//! {
//!     let _fwd = span!(rec, Phase::FwdCompute, 0); // ends when the guard drops
//! }
//! let frame = rec.finish();
//! assert_eq!(frame.counter("demo.events"), 3);
//! assert_eq!(frame.spans.len(), 1);
//!
//! let mut run = RunMetrics::new();
//! run.absorb(frame);
//! println!("{}", ns_metrics::summary_table(&run));
//! ```
#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

mod sink;

pub use sink::{summary_table, to_chrome_trace, to_json};

/// Worker id used for coordinator-side frames (checkpoint save/load, rollback
/// bookkeeping). Rendered as `-1` in the JSON sink and as a dedicated
/// `coordinator` track in the Chrome trace.
pub const COORDINATOR: usize = usize::MAX;

/// Default capacity of a recorder's span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A training-path phase that spans attribute wall-clock time to.
///
/// The graph-op vs NN-op split is deliberately *not* a phase: inside a layer's
/// forward/backward the two interleave at tape granularity (GAT attention mixes
/// gathers with matmuls), so they are reported as per-layer duration counters
/// ([`LayerSplit`]) instead of timeline spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Forward dependency communication: sending owned rows to mirrors,
    /// receiving remote rows, and assembling the layer input matrix.
    FwdComm,
    /// Forward in-worker compute: one GNN layer's tape forward pass
    /// (graph ops + NN ops together; see [`LayerSplit`] for the split).
    FwdCompute,
    /// Backward dependency communication: sending mirror gradients back to
    /// masters, local gradient routing, and receive-side accumulation.
    BwdComm,
    /// Backward in-worker compute: one layer's tape backward pass.
    BwdCompute,
    /// Loss head: softmax cross-entropy plus train/val/test accuracy.
    Head,
    /// Gradient synchronization wait: ring all-reduce or parameter-server
    /// reduce, including the blocking receives inside.
    SyncWait,
    /// Optimizer step (SGD/Adam parameter update).
    OptStep,
    /// Checkpoint capture (coordinator only).
    CkptSave,
    /// Checkpoint restore (coordinator only).
    CkptLoad,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 9] = [
        Phase::FwdComm,
        Phase::FwdCompute,
        Phase::BwdComm,
        Phase::BwdCompute,
        Phase::Head,
        Phase::SyncWait,
        Phase::OptStep,
        Phase::CkptSave,
        Phase::CkptLoad,
    ];

    /// Stable snake_case name used by every sink.
    pub fn name(self) -> &'static str {
        match self {
            Phase::FwdComm => "fwd_comm",
            Phase::FwdCompute => "fwd_compute",
            Phase::BwdComm => "bwd_comm",
            Phase::BwdCompute => "bwd_compute",
            Phase::Head => "head",
            Phase::SyncWait => "sync_wait",
            Phase::OptStep => "opt_step",
            Phase::CkptSave => "ckpt_save",
            Phase::CkptLoad => "ckpt_load",
        }
    }
}

/// One closed span: a phase interval on the real-clock timeline, relative to
/// the run's shared origin `Instant`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase the interval is attributed to.
    pub phase: Phase,
    /// Layer index, or `-1` when the phase is not layer-scoped.
    pub layer: i32,
    /// Epoch the recorder was set to when the span closed.
    pub epoch: u32,
    /// Start offset from the run origin, nanoseconds.
    pub start_ns: u64,
    /// End offset from the run origin, nanoseconds.
    pub end_ns: u64,
}

/// Power-of-two-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Bucket 0 holds zero; bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
/// Merging is bucket-wise addition, so merge order never changes the result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Merge another histogram into this one (bucket-wise; associative).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Approximate percentile (`p` in `[0, 1]`): the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `p * count`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i).saturating_sub(1).max(self.min).min(self.max)
                };
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per-layer graph-op vs NN-op wall-time split, in nanoseconds, as measured at
/// tape granularity by `ns-tensor` (each tape event's elapsed time accrues to
/// the kind of the operator just recorded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerSplit {
    /// Forward time spent in graph operators (gather/scatter/aggregate/segment-softmax).
    pub fwd_graph_ns: u64,
    /// Forward time spent in NN operators (matmul, bias, activations, ...).
    pub fwd_nn_ns: u64,
    /// Backward time spent in graph-operator duals.
    pub bwd_graph_ns: u64,
    /// Backward time spent in NN-operator duals.
    pub bwd_nn_ns: u64,
}

impl LayerSplit {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: LayerSplit) {
        self.fwd_graph_ns += other.fwd_graph_ns;
        self.fwd_nn_ns += other.fwd_nn_ns;
        self.bwd_graph_ns += other.bwd_graph_ns;
        self.bwd_nn_ns += other.bwd_nn_ns;
    }
}

/// Bounded ring of spans: when full, the oldest record is overwritten and the
/// `dropped` counter increments, so tracing never grows without bound.
#[derive(Debug)]
struct SpanRing {
    cap: usize,
    buf: Vec<SpanRecord>,
    next: usize,
    dropped: u64,
}

impl SpanRing {
    fn new(cap: usize) -> Self {
        SpanRing {
            cap: cap.max(1),
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Drain into chronological order (oldest retained span first).
    fn into_ordered(self) -> (Vec<SpanRecord>, u64) {
        let SpanRing {
            buf, next, dropped, ..
        } = self;
        if dropped == 0 || next == 0 {
            (buf, dropped)
        } else {
            let mut out = Vec::with_capacity(buf.len());
            out.extend_from_slice(&buf[next..]);
            out.extend_from_slice(&buf[..next]);
            (out, dropped)
        }
    }
}

#[derive(Debug)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    phase_ns: BTreeMap<(Phase, i32), u64>,
    layer_split: Vec<LayerSplit>,
    spans: SpanRing,
    epoch: u32,
    depth: usize,
}

/// Per-worker metrics recorder. One per worker thread; never shared, never
/// locked. Drained into a [`MetricsFrame`] with [`MetricsRecorder::finish`].
///
/// All workers of a run must be given the *same* `origin` [`Instant`] so that
/// their span timestamps land on one common timeline (one trace track per
/// worker, mutually aligned).
#[derive(Debug)]
pub struct MetricsRecorder {
    worker: usize,
    origin: Instant,
    inner: RefCell<Inner>,
}

impl MetricsRecorder {
    /// New recorder for `worker`, with the default span capacity.
    pub fn new(worker: usize, origin: Instant) -> Self {
        Self::with_span_capacity(worker, origin, DEFAULT_SPAN_CAPACITY)
    }

    /// New recorder whose span ring holds at most `capacity` records.
    pub fn with_span_capacity(worker: usize, origin: Instant, capacity: usize) -> Self {
        MetricsRecorder {
            worker,
            origin,
            inner: RefCell::new(Inner {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                phase_ns: BTreeMap::new(),
                layer_split: Vec::new(),
                spans: SpanRing::new(capacity),
                epoch: 0,
                depth: 0,
            }),
        }
    }

    /// The worker id this recorder belongs to.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The shared run origin all span timestamps are relative to.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Set the epoch stamped onto subsequently closed spans.
    pub fn set_epoch(&self, epoch: u32) {
        self.inner.borrow_mut().epoch = epoch;
    }

    /// Add `by` to the counter named `key` (created at zero on first use).
    pub fn incr(&self, key: &str, by: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.counters.get_mut(key) {
            Some(c) => *c += by,
            None => {
                inner.counters.insert(key.to_string(), by);
            }
        }
    }

    /// Record one sample into the histogram named `key`.
    pub fn observe(&self, key: &str, value: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.histograms.get_mut(key) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                inner.histograms.insert(key.to_string(), h);
            }
        }
    }

    /// Open a span for `phase` (optionally layer-scoped). The span closes —
    /// and its duration accrues — when the returned guard drops. Spans may
    /// nest; the [`span!`] macro is the usual entry point.
    pub fn span(&self, phase: Phase, layer: Option<usize>) -> SpanGuard<'_> {
        self.inner.borrow_mut().depth += 1;
        SpanGuard {
            rec: self,
            phase,
            layer: layer.map(|l| l as i32).unwrap_or(-1),
            start: Instant::now(),
        }
    }

    /// Accumulate a per-layer graph/NN split (extends the layer table on demand).
    pub fn add_layer_split(&self, layer: usize, split: LayerSplit) {
        let mut inner = self.inner.borrow_mut();
        if inner.layer_split.len() <= layer {
            inner.layer_split.resize(layer + 1, LayerSplit::default());
        }
        inner.layer_split[layer].add(split);
    }

    /// Number of currently open spans (0 whenever nesting is balanced).
    pub fn open_spans(&self) -> usize {
        self.inner.borrow().depth
    }

    /// Drain everything recorded so far into an immutable, `Send` frame,
    /// leaving the recorder empty (epoch and span capacity are preserved).
    pub fn finish(&self) -> MetricsFrame {
        let mut inner = self.inner.borrow_mut();
        let cap = inner.spans.cap;
        let epoch = inner.epoch;
        let depth = inner.depth;
        let taken = std::mem::replace(
            &mut *inner,
            Inner {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                phase_ns: BTreeMap::new(),
                layer_split: Vec::new(),
                spans: SpanRing::new(cap),
                epoch,
                depth,
            },
        );
        let (spans, dropped_spans) = taken.spans.into_ordered();
        MetricsFrame {
            worker: self.worker,
            counters: taken.counters,
            histograms: taken.histograms,
            phase_ns: taken.phase_ns,
            layer_split: taken.layer_split,
            spans,
            dropped_spans,
        }
    }
}

/// RAII guard returned by [`MetricsRecorder::span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    rec: &'a MetricsRecorder,
    phase: Phase,
    layer: i32,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = Instant::now();
        let start_ns = self.start.duration_since(self.rec.origin).as_nanos() as u64;
        let end_ns = end.duration_since(self.rec.origin).as_nanos() as u64;
        let mut inner = self.rec.inner.borrow_mut();
        inner.depth -= 1;
        *inner.phase_ns.entry((self.phase, self.layer)).or_insert(0) +=
            end_ns.saturating_sub(start_ns);
        let epoch = inner.epoch;
        inner.spans.push(SpanRecord {
            phase: self.phase,
            layer: self.layer,
            epoch,
            start_ns,
            end_ns,
        });
    }
}

/// Open a phase span on a recorder: `span!(rec, Phase::FwdComm)` or, layer-scoped,
/// `span!(rec, Phase::FwdCompute, layer)`. Bind the result (`let _g = span!(...)`)
/// so the span closes where the binding goes out of scope.
#[macro_export]
macro_rules! span {
    ($rec:expr, $phase:expr) => {
        $rec.span($phase, None)
    };
    ($rec:expr, $phase:expr, $layer:expr) => {
        $rec.span($phase, Some($layer))
    };
}

/// Immutable, `Send` snapshot of one recorder, produced at worker join.
#[derive(Clone, Debug, Default)]
pub struct MetricsFrame {
    /// Worker id ([`COORDINATOR`] for coordinator-side frames).
    pub worker: usize,
    /// Named monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Named histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Accumulated span time per `(phase, layer)`; layer `-1` = not layer-scoped.
    pub phase_ns: BTreeMap<(Phase, i32), u64>,
    /// Per-layer graph-op vs NN-op split.
    pub layer_split: Vec<LayerSplit>,
    /// Retained spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans overwritten because the ring filled up.
    pub dropped_spans: u64,
}

impl MetricsFrame {
    /// Empty frame for `worker`.
    pub fn new(worker: usize) -> Self {
        MetricsFrame {
            worker,
            ..Default::default()
        }
    }

    /// Counter value, or 0 if never incremented.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Total time accrued to `phase` across all layers, nanoseconds.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_ns
            .iter()
            .filter(|((p, _), _)| *p == phase)
            .map(|(_, ns)| ns)
            .sum()
    }

    /// Sum of all phase time, nanoseconds.
    pub fn total_phase_ns(&self) -> u64 {
        self.phase_ns.values().sum()
    }

    /// Merge another frame into this one. Counters, histograms, phase times
    /// and layer splits add; spans concatenate. The operation is associative
    /// and (up to span order) commutative, so frames may be merged in any
    /// join order — the unit tests pin this.
    pub fn merge(&mut self, other: &MetricsFrame) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, ns) in &other.phase_ns {
            *self.phase_ns.entry(*k).or_insert(0) += ns;
        }
        if self.layer_split.len() < other.layer_split.len() {
            self.layer_split
                .resize(other.layer_split.len(), LayerSplit::default());
        }
        for (dst, src) in self.layer_split.iter_mut().zip(other.layer_split.iter()) {
            dst.add(*src);
        }
        self.spans.extend_from_slice(&other.spans);
        self.dropped_spans += other.dropped_spans;
    }
}

/// One busy interval on the *simulated* cluster timeline (microseconds of
/// modeled time), bridged from the discrete-event simulator's report. Rendered
/// as a second process in the Chrome trace so the real-clock and modeled
/// timelines sit side by side.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSpan {
    /// Simulated worker id.
    pub worker: usize,
    /// Resource the interval occupies (`"device"`, `"nic_in"`, `"nic_out"`).
    pub resource: &'static str,
    /// Interval start, microseconds of simulated time.
    pub start_us: f64,
    /// Interval end, microseconds of simulated time.
    pub end_us: f64,
}

/// All metrics of one training run: per-worker frames keyed by worker id,
/// optional simulated-timeline spans, and the run's wall-clock seconds.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// One merged frame per worker ([`COORDINATOR`] holds coordinator frames).
    pub frames: BTreeMap<usize, MetricsFrame>,
    /// Busy intervals on the simulated cluster timeline.
    pub sim_spans: Vec<SimSpan>,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
}

impl RunMetrics {
    /// Empty run.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Fold a frame in, merging with any existing frame for the same worker.
    pub fn absorb(&mut self, frame: MetricsFrame) {
        match self.frames.get_mut(&frame.worker) {
            Some(existing) => existing.merge(&frame),
            None => {
                self.frames.insert(frame.worker, frame);
            }
        }
    }

    /// Merge a whole run (e.g. one recovery chunk) into this one. Frames merge
    /// per worker; wall time adds; sim spans concatenate.
    pub fn merge(&mut self, other: RunMetrics) {
        for (_, frame) in other.frames {
            self.absorb(frame);
        }
        self.sim_spans.extend(other.sim_spans);
        self.wall_s += other.wall_s;
    }

    /// Sum of a counter across every frame.
    pub fn total_counter(&self, key: &str) -> u64 {
        self.frames.values().map(|f| f.counter(key)).sum()
    }

    /// Worker ids present, excluding the coordinator.
    pub fn worker_ids(&self) -> Vec<usize> {
        self.frames
            .keys()
            .copied()
            .filter(|&w| w != COORDINATOR)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn frame(worker: usize, seed: u64) -> MetricsFrame {
        let mut f = MetricsFrame::new(worker);
        f.counters.insert("a".into(), seed);
        f.counters.insert(format!("b{}", seed % 3), 2 * seed);
        let mut h = Histogram::default();
        for i in 0..seed % 7 + 1 {
            h.record(seed * 17 + i * 13);
        }
        f.histograms.insert("h".into(), h);
        f.phase_ns.insert((Phase::FwdComm, -1), seed * 10);
        f.phase_ns.insert((Phase::FwdCompute, seed as i32 % 2), 5);
        f.layer_split.push(LayerSplit {
            fwd_graph_ns: seed,
            fwd_nn_ns: seed + 1,
            bwd_graph_ns: seed + 2,
            bwd_nn_ns: seed + 3,
        });
        f.spans.push(SpanRecord {
            phase: Phase::Head,
            layer: -1,
            epoch: 0,
            start_ns: seed,
            end_ns: seed + 100,
        });
        f.dropped_spans = seed % 2;
        f
    }

    fn canon(f: &MetricsFrame) -> (Vec<(String, u64)>, Vec<((Phase, i32), u64)>, u64, usize) {
        (
            f.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            f.phase_ns.iter().map(|(k, v)| (*k, *v)).collect(),
            f.dropped_spans,
            f.spans.len(),
        )
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (frame(0, 3), frame(0, 8), frame(0, 11));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(canon(&left), canon(&right));
        assert_eq!(left.histograms["h"], right.histograms["h"]);
        assert_eq!(left.layer_split, right.layer_split);
    }

    #[test]
    fn merge_counters_commute() {
        let (a, b) = (frame(0, 5), frame(0, 9));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.phase_ns, ba.phase_ns);
        assert_eq!(ab.histograms, ba.histograms);
    }

    #[test]
    fn span_nesting_balances() {
        let rec = MetricsRecorder::new(0, Instant::now());
        assert_eq!(rec.open_spans(), 0);
        {
            let _outer = span!(rec, Phase::FwdComm);
            assert_eq!(rec.open_spans(), 1);
            {
                let _mid = span!(rec, Phase::FwdCompute, 0);
                let _inner = span!(rec, Phase::Head);
                assert_eq!(rec.open_spans(), 3);
            }
            assert_eq!(rec.open_spans(), 1);
        }
        assert_eq!(rec.open_spans(), 0);
        let f = rec.finish();
        assert_eq!(f.spans.len(), 3);
        // Inner spans close first.
        assert_eq!(f.spans[0].phase, Phase::Head);
        assert_eq!(f.spans[2].phase, Phase::FwdComm);
        // Every span is well-formed on the shared timeline.
        for s in &f.spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn span_durations_accrue_per_phase_and_layer() {
        let rec = MetricsRecorder::new(7, Instant::now());
        rec.set_epoch(4);
        {
            let _g = span!(rec, Phase::FwdCompute, 1);
            std::thread::sleep(Duration::from_millis(2));
        }
        let f = rec.finish();
        assert_eq!(f.worker, 7);
        assert_eq!(f.spans[0].epoch, 4);
        assert_eq!(f.spans[0].layer, 1);
        let accrued = f.phase_ns[&(Phase::FwdCompute, 1)];
        assert!(accrued >= 2_000_000, "accrued {accrued}ns < 2ms sleep");
        assert_eq!(f.phase_total_ns(Phase::FwdCompute), accrued);
    }

    #[test]
    fn span_ring_bounds_and_counts_drops() {
        let rec = MetricsRecorder::with_span_capacity(0, Instant::now(), 4);
        for _ in 0..10 {
            let _g = span!(rec, Phase::OptStep);
        }
        let f = rec.finish();
        assert_eq!(f.spans.len(), 4);
        assert_eq!(f.dropped_spans, 6);
        // The retained spans are the newest, in chronological order.
        for w in f.spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
        // Accrued phase time still covers all 10 spans.
        assert_eq!(f.phase_ns.len(), 1);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 900, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1907);
        assert_eq!(h.percentile(0.0), 0);
        assert!(h.percentile(0.5) <= 3);
        assert!(h.percentile(1.0) >= 900);

        let mut a = Histogram::default();
        a.record(5);
        let mut b = Histogram::default();
        b.record(1_000_000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 2);
        assert_eq!(ab.min, 5);
        assert_eq!(ab.max, 1_000_000);
    }

    #[test]
    fn finish_drains_and_preserves_epoch() {
        let rec = MetricsRecorder::new(0, Instant::now());
        rec.set_epoch(3);
        rec.incr("x", 2);
        let f1 = rec.finish();
        assert_eq!(f1.counter("x"), 2);
        let f2 = rec.finish();
        assert_eq!(f2.counter("x"), 0);
        {
            let _g = span!(rec, Phase::Head);
        }
        let f3 = rec.finish();
        assert_eq!(f3.spans[0].epoch, 3, "epoch survives finish()");
    }

    #[test]
    fn run_metrics_absorb_merges_same_worker() {
        let mut run = RunMetrics::new();
        run.absorb(frame(0, 2));
        run.absorb(frame(0, 4));
        run.absorb(frame(1, 6));
        run.absorb(MetricsFrame::new(COORDINATOR));
        assert_eq!(run.frames.len(), 3);
        assert_eq!(run.frames[&0].counter("a"), 6);
        assert_eq!(run.total_counter("a"), 12);
        assert_eq!(run.worker_ids(), vec![0, 1]);
    }

    #[test]
    fn run_metrics_merge_adds_wall_and_frames() {
        let mut a = RunMetrics::new();
        a.absorb(frame(0, 1));
        a.wall_s = 1.5;
        let mut b = RunMetrics::new();
        b.absorb(frame(0, 2));
        b.absorb(frame(2, 3));
        b.wall_s = 0.5;
        a.merge(b);
        assert_eq!(a.frames.len(), 2);
        assert_eq!(a.frames[&0].counter("a"), 3);
        assert!((a.wall_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn layer_split_accumulates() {
        let rec = MetricsRecorder::new(0, Instant::now());
        rec.add_layer_split(
            1,
            LayerSplit {
                fwd_graph_ns: 10,
                fwd_nn_ns: 20,
                bwd_graph_ns: 30,
                bwd_nn_ns: 40,
            },
        );
        rec.add_layer_split(
            1,
            LayerSplit {
                fwd_graph_ns: 1,
                fwd_nn_ns: 2,
                bwd_graph_ns: 3,
                bwd_nn_ns: 4,
            },
        );
        let f = rec.finish();
        assert_eq!(f.layer_split.len(), 2);
        assert_eq!(f.layer_split[0], LayerSplit::default());
        assert_eq!(
            f.layer_split[1],
            LayerSplit {
                fwd_graph_ns: 11,
                fwd_nn_ns: 22,
                bwd_graph_ns: 33,
                bwd_nn_ns: 44,
            }
        );
    }
}

//! End-to-end serving integration: train with a durable checkpoint
//! store, load the newest generation back the way `nts serve` does, and
//! answer sharded k-hop inference queries over the partitioned graph.
//!
//! The two invariants under test:
//!
//! 1. **Exactness** — every sharded answer (including rows fetched from
//!    peer shards) equals the class a full-graph inference pass assigns
//!    from the same checkpoint.
//! 2. **Graceful degradation** — killing a shard mid-run slows answers
//!    down (reroutes, mirror fallbacks) but drops nothing, and the
//!    answers that reroute are still exact.

use std::path::PathBuf;

use neutronstar::prelude::*;
use ns_gnn::inference::infer;
use ns_net::fault::FaultPlan;
use ns_runtime::serve::load::OpenLoop;
use ns_runtime::{CheckpointStore, RecoveryConfig, ServeConfig, ServeDeployment};
use ns_tensor::nn::ParamStore;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nts-serve-it-{tag}-{}", std::process::id()))
}

/// Trains a small GCN with a durable store, then loads the newest
/// generation back through the operator path.
fn train_and_load(tag: &str) -> (ns_graph::Dataset, GnnModel, ParamStore) {
    let ds = DatasetSpec::named("cora").unwrap().materialize(0.2, 42);
    let model =
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 42);
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let session = TrainingSession::builder()
        .recovery(RecoveryConfig::every(1))
        .checkpoint_dir(&dir)
        .build(&ds, &model)
        .expect("build session");
    session.train(2).expect("train");
    drop(session);

    let store = CheckpointStore::open(&dir, 3).expect("open store");
    let loaded = store.load_latest();
    assert_eq!(loaded.fallbacks, 0, "undamaged store needed no fallbacks");
    let ckpt = loaded.checkpoint.expect("an intact generation on disk");
    let (params, _) = ckpt.restore().expect("restore");
    let params = params.expect("trained parameters in the checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    (ds, model, params)
}

#[test]
fn durable_checkpoint_serves_answers_equal_to_full_graph_inference() {
    let (ds, model, params) = train_and_load("equiv");
    let reference = infer(&ds, &model, &params);

    let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
    let deploy = ServeDeployment::new(&ds, &model, params, cfg).expect("deployment");
    let n = ds.graph.num_vertices() as u32;
    let seeds: Vec<u32> = (0..120).map(|i| (i * 131) % n).collect();
    let report = deploy.answer_all(&seeds).expect("serve");

    assert_eq!(report.answers.len(), seeds.len());
    assert_eq!(report.dropped, 0);
    for a in &report.answers {
        assert_eq!(
            a.class as usize, reference.predictions[a.seed as usize],
            "sharded answer for vertex {} diverged from full-graph inference",
            a.seed
        );
    }
    // Cross-shard traffic actually happened (the partition boundary is
    // exercised, not just local rows).
    let fetched = report.metrics.total_counter("serve.rows.fetched");
    assert!(fetched > 0, "expected cross-shard feature fetches");
}

#[test]
fn killed_shard_degrades_latency_but_answers_stay_exact_and_complete() {
    let (ds, model, params) = train_and_load("fault");
    let reference = infer(&ds, &model, &params);

    let mut fault = FaultPlan::default().with_seed(42);
    fault.push_spec("kill:w2@e60").expect("fault spec");
    let cfg = ServeConfig {
        shards: 2,
        reply_timeout_ms: 150,
        fault,
        ..ServeConfig::default()
    };
    let deploy = ServeDeployment::new(&ds, &model, params, cfg).expect("deployment");
    let load = OpenLoop { queries: 200, rate_qps: 1_500.0, seed: 42, zipf_s: 0.9 };
    let report = deploy.run_open_loop(&load).expect("serve under fault");

    // Zero-drop guarantee: everything admitted was answered, even the
    // batch in flight at the dead shard.
    assert_eq!(report.dropped, 0, "shard loss dropped queries");
    assert_eq!(
        report.answers.len() as u64 + report.rejected,
        report.offered,
        "answers + rejects must account for every offered query"
    );
    assert_eq!(report.shard_deaths, 1, "the kill fault must fire exactly once");
    assert!(report.reroutes > 0, "orphaned queries must reroute to the survivor");
    // Degraded answers are still exact: the survivor reads dead-owner
    // rows from the replicated mirror, which holds the same features.
    let seeds = load.seeds(ds.graph.num_vertices() as u32);
    for a in &report.answers {
        assert_eq!(a.seed, seeds[a.qid as usize], "answer paired with wrong query");
        assert_eq!(
            a.class as usize, reference.predictions[a.seed as usize],
            "rerouted answer for vertex {} diverged",
            a.seed
        );
    }
}

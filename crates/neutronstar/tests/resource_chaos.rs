//! Resource-exhaustion chaos soak (invariant 7): >= 32 seeded schedules
//! mixing disk-full windows, slow disks, memory-pressure caps, and hung
//! workers must degrade — squeezed retention, shed buffers, watchdog
//! evictions — and still finish within the loss tolerance with zero
//! aborts. Lives in its own test binary because memory-pressure runs
//! re-cap the process-global tensor pool; sharing a process with the
//! other chaos soaks would let their allocations pollute the high-water
//! mark the invariant checks.

use std::sync::{Mutex, MutexGuard, OnceLock};

use neutronstar::chaos::{baseline, generate, run_schedule, ChaosConfig};
use neutronstar::net::fault::Fault;

const SOAK_SEEDS: u64 = 32;
const BASE_SEED: u64 = 1000;

/// Serializes tests that train under a pool cap: the tensor pool is
/// process-global, so two concurrent capped runs would corrupt each
/// other's peak accounting.
fn pool_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn cfg(ckpt_base: Option<std::path::PathBuf>) -> ChaosConfig {
    ChaosConfig { resource: true, ckpt_base, ..ChaosConfig::default() }
}

#[test]
fn resource_soak_32_seeds_uphold_all_invariants() {
    let _guard = pool_guard();
    let base_dir = std::env::temp_dir()
        .join(format!("nts-resource-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let cfg = cfg(Some(base_dir.clone()));
    let base = baseline(&cfg).expect("fault-free baseline");
    let mut failed = Vec::new();
    for seed in BASE_SEED..BASE_SEED + SOAK_SEEDS {
        let schedule = neutronstar::chaos::generate_with_baseline(seed, &cfg, Some(&base));
        let outcome = run_schedule(&cfg, &base, &schedule);
        assert_eq!(
            outcome.passed(),
            outcome.invariant_pass.iter().all(|p| *p),
            "per-invariant verdicts must agree with the violation list"
        );
        if !outcome.passed() {
            failed.push(format!(
                "seed {seed} [{}]: {:?}",
                outcome.schedule, outcome.violations
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&base_dir);
    assert!(
        failed.is_empty(),
        "{} of {SOAK_SEEDS} resource schedules violated invariants:\n{}",
        failed.len(),
        failed.join("\n")
    );
}

#[test]
fn resource_seed_range_exercises_every_resource_fault_kind() {
    // The soak only proves invariant 7 if the generator actually covers
    // the resource-fault space over the seeds the soak runs.
    let cfg = cfg(Some(std::path::PathBuf::from("unused-by-generate")));
    let (mut disk_full, mut slow_disk, mut pressure, mut hangs) = (0, 0, 0, 0);
    for seed in BASE_SEED..BASE_SEED + SOAK_SEEDS {
        let s = generate(seed, &cfg);
        assert!(s.rejoin, "resource schedules always re-admit evicted workers");
        for f in &s.faults {
            match f {
                Fault::DiskFull { .. } => disk_full += 1,
                Fault::SlowDisk { .. } => slow_disk += 1,
                Fault::MemPressure { .. } => pressure += 1,
                Fault::Hang { .. } => hangs += 1,
                other => panic!("resource matrix must not schedule {other:?}"),
            }
        }
    }
    assert!(disk_full > 0, "no disk-full windows across the soak range");
    assert!(slow_disk > 0, "no slow disks across the soak range");
    assert!(pressure > 0, "no memory pressure across the soak range");
    assert!(hangs > 0, "no hangs across the soak range");
}

#[test]
fn disk_full_run_keeps_a_loadable_generation() {
    let _guard = pool_guard();
    let base_dir = std::env::temp_dir()
        .join(format!("nts-resource-enospc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let cfg = cfg(Some(base_dir.clone()));
    let base = baseline(&cfg).expect("fault-free baseline");
    let b = cfg.checkpoint_every;
    let schedule = neutronstar::chaos::ChaosSchedule {
        seed: 9,
        faults: vec![Fault::DiskFull { from_epoch: b, heal_epoch: b + 1 }],
        rejoin: true,
    };
    let outcome = run_schedule(&cfg, &base, &schedule);
    let _ = std::fs::remove_dir_all(&base_dir);
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert!(outcome.invariant_pass[6], "invariant 7 must hold");
}

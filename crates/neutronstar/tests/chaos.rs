//! Chaos soak: >= 32 seeded randomized fault schedules must complete
//! training with every robustness invariant intact (see
//! `neutronstar::chaos` for the invariant list).

use std::sync::OnceLock;

use neutronstar::chaos::{baseline, generate, run_schedule, Baseline, ChaosConfig};
use neutronstar::net::fault::Fault;

const SOAK_SEEDS: u64 = 32;
const BASE_SEED: u64 = 1000;

fn cfg() -> ChaosConfig {
    ChaosConfig::default()
}

fn shared_baseline() -> &'static Baseline {
    static BASE: OnceLock<Baseline> = OnceLock::new();
    BASE.get_or_init(|| baseline(&cfg()).expect("fault-free baseline"))
}

#[test]
fn soak_32_seeds_uphold_all_invariants() {
    let cfg = cfg();
    let base = shared_baseline();
    let mut failed = Vec::new();
    for seed in BASE_SEED..BASE_SEED + SOAK_SEEDS {
        let schedule = generate(seed, &cfg);
        let outcome = run_schedule(&cfg, base, &schedule);
        if !outcome.passed() {
            failed.push(format!(
                "seed {seed} [{}]: {:?}",
                outcome.schedule, outcome.violations
            ));
        }
    }
    assert!(
        failed.is_empty(),
        "{} of {SOAK_SEEDS} schedules violated invariants:\n{}",
        failed.len(),
        failed.join("\n")
    );
}

#[test]
fn soak_seed_range_exercises_every_fault_kind() {
    // The harness is only a soak if the generator actually covers the
    // fault space over the seeds the soak runs.
    let cfg = cfg();
    let mut kills = 0;
    let mut straggles = 0;
    let mut drops = 0;
    let mut delays = 0;
    let mut dups = 0;
    let mut corrupts = 0;
    let mut rejoins = 0;
    for seed in BASE_SEED..BASE_SEED + SOAK_SEEDS {
        let s = generate(seed, &cfg);
        rejoins += s.rejoin as usize;
        for f in &s.faults {
            match f {
                Fault::Kill { .. } => kills += 1,
                Fault::Straggle { .. } => straggles += 1,
                Fault::Drop { .. } => drops += 1,
                Fault::Delay { .. } => delays += 1,
                Fault::Duplicate { .. } => dups += 1,
                Fault::Corrupt { .. } | Fault::CorruptCkpt { .. } => corrupts += 1,
                Fault::Partition { .. } | Fault::AsymPartition { .. } | Fault::Flap { .. } => {
                    panic!("default matrix must not schedule link faults")
                }
                Fault::DiskFull { .. }
                | Fault::SlowDisk { .. }
                | Fault::MemPressure { .. }
                | Fault::Hang { .. } => {
                    panic!("default matrix must not schedule resource faults")
                }
            }
        }
    }
    assert!(kills > 0, "no kills across the soak range");
    assert!(straggles > 0, "no stragglers across the soak range");
    assert!(drops > 0, "no drops across the soak range");
    assert!(delays > 0, "no delays across the soak range");
    assert!(dups > 0, "no duplicates across the soak range");
    assert!(corrupts > 0, "no corruptions across the soak range");
    assert!(rejoins > 0, "no rejoin schedules across the soak range");
}

#[test]
fn partition_soak_32_seeds_upholds_liveness() {
    // Invariant 6 soak: 32 healable link-fault schedules (partitions,
    // half-partitions, flaps — no kills) must terminate on their own
    // with baseline-quality loss and zero circuit breakers left open
    // against healed links.
    let cfg = ChaosConfig { partition: true, ..ChaosConfig::default() };
    let base = shared_baseline();
    let mut failed = Vec::new();
    for seed in BASE_SEED..BASE_SEED + SOAK_SEEDS {
        let schedule = generate(seed, &cfg);
        let outcome = run_schedule(&cfg, base, &schedule);
        if !outcome.passed() {
            failed.push(format!(
                "seed {seed} [{}]: {:?}",
                outcome.schedule, outcome.violations
            ));
        }
    }
    assert!(
        failed.is_empty(),
        "{} of {SOAK_SEEDS} partition schedules violated invariants:\n{}",
        failed.len(),
        failed.join("\n")
    );
}

#[test]
fn killed_worker_rejoins_and_restores_world() {
    // Directly exercise the rejoin invariant: a schedule with one early
    // kill and rejoin enabled must log a Failed -> Rejoined transition
    // and end the run at full world size (checked by run_schedule's
    // membership replay).
    let cfg = cfg();
    let base = shared_baseline();
    let schedule = neutronstar::chaos::ChaosSchedule {
        seed: 77,
        faults: vec![Fault::Kill { worker: 1, epoch: 2 }],
        rejoin: true,
    };
    let outcome = run_schedule(&cfg, base, &schedule);
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert_eq!(outcome.recoveries, 1);
    assert!(
        outcome.membership_events >= 2,
        "expected Failed + Rejoined, got {} events",
        outcome.membership_events
    );
}

//! # NeutronStar — distributed GNN training with hybrid dependency management
//!
//! A from-scratch Rust reproduction of *NeutronStar: Distributed GNN
//! Training with Hybrid Dependency Management* (SIGMOD 2022). GNN training
//! must resolve **vertex dependencies** — each vertex's representation
//! update needs its in-neighbors' representations. Existing distributed
//! systems either **cache** every worker's k-hop dependency neighborhood
//! locally (redundant computation, zero per-epoch communication — the
//! DistDGL family) or **communicate** boundary representations every layer
//! (zero redundancy, per-epoch communication — the ROC family).
//! NeutronStar's contribution is a per-dependency cost model that mixes
//! both treatments, plus a set of runtime optimizations (ring-scheduled
//! source-chunked communication, communication/computation overlap,
//! lock-free message enqueuing) that this crate reproduces end to end.
//!
//! ## Quickstart
//!
//! ```
//! use neutronstar::prelude::*;
//!
//! // A scaled-down instance of the paper's Google web graph (R-MAT stand-in).
//! let dataset = DatasetSpec::named("google").unwrap().materialize(0.001, 42);
//! let model = GnnModel::two_layer(
//!     ModelKind::Gcn,
//!     dataset.feature_dim(),
//!     dataset.hidden_dim,
//!     dataset.num_classes,
//!     7,
//! );
//! let session = TrainingSession::builder()
//!     .engine(EngineKind::Hybrid)
//!     .cluster(ClusterSpec::aliyun_ecs(4))
//!     .build(&dataset, &model)
//!     .unwrap();
//! let report = session.train(3).unwrap();
//! assert_eq!(report.epochs.len(), 3);
//! println!(
//!     "per-epoch: {:.4}s simulated, final loss {:.4}",
//!     report.sim.epoch_seconds,
//!     report.final_loss()
//! );
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | role |
//! |---|---|---|
//! | facade | `neutronstar` | this API + the `nts` CLI (train / simulate / probe / chaos / serve) |
//! | engines | `ns-runtime` | DepCache / DepComm / Hybrid (Algorithms 2–4), executor, task graphs, checkpoint store, serving |
//! | models | `ns-gnn` | GCN / GIN / GAT in the decoupled graph-op / NN-op flow (Fig. 6) |
//! | fabric | `ns-net` | worker channels, lock-free buffers, fault plans, discrete-event cluster simulator |
//! | graphs | `ns-graph` | CSC/CSR storage, Table 2 dataset registry, partitioners, k-hop closures |
//! | tensors | `ns-tensor` | dense tensors + tape autograd (the PyTorch role) |
//! | threads | `ns-par` | intra-worker thread pool + lock-free work queues |
//! | baselines | `ns-baselines` | DistDGL-like, ROC-like, DGL/PyG-like comparisons |
//! | metrics | `ns-metrics` | phase timers, counters, trace/JSON sinks (`docs/OBSERVABILITY.md`) |
//! | bench | `bench` | one binary per paper table/figure, `bench_serve`, Criterion microbenches |

pub use ns_baselines as baselines;
pub use ns_gnn as gnn;
pub use ns_graph as graph;
pub use ns_metrics as metrics;
pub use ns_net as net;
pub use ns_runtime as runtime;
pub use ns_tensor as tensor;

pub mod chaos;
pub mod cli;
pub mod session;

pub use session::{SessionBuilder, TrainingSession};

/// The types most programs need.
pub mod prelude {
    pub use crate::session::{SessionBuilder, TrainingSession};
    pub use ns_gnn::{GnnModel, ModelKind};
    pub use ns_graph::{Dataset, Partitioner};
    pub use ns_net::{ClusterSpec, ExecOptions};
    pub use ns_runtime::{EngineKind, HybridConfig, RuntimeError, TrainingReport};

    /// Re-export of the dataset registry with an ergonomic lookup.
    pub use crate::DatasetSpec;
}

/// Ergonomic wrapper around the Table 2 dataset registry.
#[derive(Debug, Clone)]
pub struct DatasetSpec(pub ns_graph::datasets::DatasetSpec);

impl DatasetSpec {
    /// Looks a dataset up by its paper name (`google`, `pokec`,
    /// `livejournal`, `reddit`, `orkut`, `wikilink`, `twitter`, `cora`,
    /// `citeseer`, `pubmed`).
    pub fn named(name: &str) -> Option<Self> {
        ns_graph::datasets::by_name(name).map(Self)
    }

    /// All registered datasets.
    pub fn all() -> Vec<Self> {
        ns_graph::datasets::registry().into_iter().map(Self).collect()
    }

    /// Materializes a scaled synthetic instance (see
    /// [`ns_graph::datasets::DatasetSpec::materialize`]).
    pub fn materialize(&self, scale: f64, seed: u64) -> ns_graph::Dataset {
        self.0.materialize(scale, seed)
    }
}

impl std::ops::Deref for DatasetSpec {
    type Target = ns_graph::datasets::DatasetSpec;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_lookup_works() {
        assert!(DatasetSpec::named("reddit").is_some());
        assert!(DatasetSpec::named("no-such-graph").is_none());
        assert_eq!(DatasetSpec::all().len(), 10);
        let spec = DatasetSpec::named("cora").unwrap();
        assert_eq!(spec.num_classes, 7);
    }
}

//! `nts` — command-line front end for the NeutronStar reproduction.
//!
//! ```text
//! nts datasets
//! nts train    --dataset pokec --engine hybrid --workers 8 --epochs 20
//! nts simulate --dataset reddit --engine depcache --workers 16
//! nts probe    --dataset livejournal --cluster ibv
//! ```

use neutronstar::chaos::{self, ChaosConfig};
use neutronstar::cli::{parse, ChaosArgs, Command, RunArgs, ServeArgs, USAGE};
use neutronstar::metrics::{summary_table, to_chrome_trace, to_json};
use neutronstar::prelude::*;
use neutronstar::runtime::cost::probe_threaded;
use neutronstar::runtime::serve::ServeReport;
use neutronstar::runtime::{CheckpointStore, ServeDeployment, TrainerConfig};
use neutronstar::tensor::checkpoint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => print!("{USAGE}"),
        Ok(Command::Datasets) => datasets(),
        Ok(Command::Train(ra)) => run(&ra, Mode::Train),
        Ok(Command::Simulate(ra)) => run(&ra, Mode::Simulate),
        Ok(Command::Probe(ra)) => run(&ra, Mode::Probe),
        Ok(Command::Chaos(ca)) => run_chaos(&ca),
        Ok(Command::Serve(sa)) => run_serve(&sa),
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn datasets() {
    println!(
        "{:<12} {:>10} {:>12} {:>6} {:>4} {:>8} {:>5}",
        "name", "|V|", "|E|", "ftr", "#L", "avg-deg", "hid"
    );
    for spec in neutronstar::graph::datasets::registry() {
        println!(
            "{:<12} {:>10} {:>12} {:>6} {:>4} {:>8.2} {:>5}",
            spec.name,
            spec.vertices,
            spec.edges,
            spec.feature_dim,
            spec.num_classes,
            spec.avg_degree(),
            spec.hidden_dim
        );
    }
}

enum Mode {
    Train,
    Simulate,
    Probe,
}

/// `nts chaos`: run seeded randomized fault schedules and check the
/// robustness invariants; exit nonzero if any schedule violates one.
fn run_chaos(ca: &ChaosArgs) {
    // Durable stores need a directory; default to a seed-derived scratch
    // path so corrupt-checkpoint faults have generations to damage.
    let ckpt_base = match &ca.ckpt_dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("nts-chaos-{}-{}", ca.seed, std::process::id())),
    };
    let cfg = ChaosConfig {
        dataset: ca.dataset.clone(),
        scale: ca.scale,
        workers: ca.workers,
        epochs: ca.epochs,
        checkpoint_every: ca.checkpoint_every,
        corrupt: ca.corrupt,
        ckpt_base: Some(ckpt_base.clone()),
        partition: ca.partition,
        resource: ca.resource,
        ..ChaosConfig::default()
    };
    println!(
        "chaos soak ({}): {} schedules from seed {} | {} x{} workers, {} epochs, \
         checkpoint every {}, corrupt <= {:.2}, stores under {}",
        if cfg.partition {
            "link-fault matrix"
        } else if cfg.resource {
            "resource-fault matrix"
        } else {
            "process-fault matrix"
        },
        ca.schedules,
        ca.seed,
        cfg.dataset,
        cfg.workers,
        cfg.epochs,
        cfg.checkpoint_every,
        cfg.corrupt,
        ckpt_base.display(),
    );
    let outcomes = match chaos::soak(&cfg, ca.seed, ca.schedules) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    if ca.ckpt_dir.is_none() {
        let _ = std::fs::remove_dir_all(&ckpt_base);
    }
    println!(
        "{:<6} {:<6} {:>10} {:>5} {:>7} {:>7} {:>5} {:>5}  {}",
        "seed", "pass", "loss", "rec", "member", "replans", "crc", "fall", "schedule"
    );
    let mut failures = 0usize;
    for o in &outcomes {
        println!(
            "{:<6} {:<6} {:>10.4} {:>5} {:>7} {:>7} {:>5} {:>5}  {}",
            o.seed,
            if o.passed() { "ok" } else { "FAIL" },
            o.final_loss,
            o.recoveries,
            o.membership_events,
            o.replans,
            o.crc_failures,
            o.ckpt_fallbacks,
            o.schedule,
        );
        for violation in &o.violations {
            println!("       violation: {violation}");
            failures += 1;
        }
    }
    let passed = outcomes.iter().filter(|o| o.passed()).count();
    // Per-invariant pass counts: which guarantee broke, not just how
    // many seeds did.
    const INVARIANTS: [&str; 7] = [
        "termination",
        "loss-tolerance",
        "replay-bound",
        "rejoin-world",
        "zero-corruption",
        "breaker-liveness",
        "resource-degrade",
    ];
    print!("invariants:");
    for (i, name) in INVARIANTS.iter().enumerate() {
        let ok = outcomes.iter().filter(|o| o.invariant_pass[i]).count();
        print!(" {name} {ok}/{}", outcomes.len());
    }
    println!();
    println!("{passed}/{} schedules passed", outcomes.len());
    if failures > 0 {
        std::process::exit(1);
    }
}

/// `nts serve`: load the newest intact checkpoint generation from the
/// durable store, stand up the sharded read-only deployment, and drive
/// it with the seeded open-loop load.
fn run_serve(sa: &ServeArgs) {
    let spec = match DatasetSpec::named(&sa.dataset) {
        Some(s) => s,
        None => {
            eprintln!("error: unknown dataset {:?} (see `nts datasets`)", sa.dataset);
            std::process::exit(2);
        }
    };
    let dataset = spec.materialize(sa.scale, sa.seed);
    let hidden = sa.hidden.unwrap_or(dataset.hidden_dim);
    let model = GnnModel::two_layer(
        sa.model,
        dataset.feature_dim(),
        hidden,
        dataset.num_classes,
        sa.seed,
    );

    let store = match CheckpointStore::open(
        std::path::Path::new(&sa.ckpt_dir),
        sa.keep_checkpoints,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot open checkpoint store {}: {e}", sa.ckpt_dir);
            std::process::exit(1);
        }
    };
    let loaded = store.load_latest();
    let Some(ckpt) = loaded.checkpoint else {
        eprintln!(
            "error: no intact checkpoint generation under {} — train one first \
             with `nts train --ckpt-dir {} --checkpoint-every <n>`",
            sa.ckpt_dir, sa.ckpt_dir
        );
        std::process::exit(1);
    };
    if loaded.fallbacks > 0 {
        println!(
            "store: skipped {} damaged generation(s) before an intact one",
            loaded.fallbacks
        );
    }
    let params = match ckpt.restore() {
        Ok((Some(params), _)) => params,
        Ok((None, _)) => {
            eprintln!("error: checkpoint under {} carries no parameters", sa.ckpt_dir);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: checkpoint restore failed: {e}");
            std::process::exit(1);
        }
    };

    let cfg = match sa.serve_config() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let deploy = match ServeDeployment::new(&dataset, &model, params, cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serve | {} x{} (scale {}) | {} hid {} | {} shards | checkpoint at epoch {} \
         | {} queries at {} qps (zipf {})",
        dataset.name,
        dataset.graph.num_vertices(),
        sa.scale,
        sa.model.name(),
        hidden,
        sa.shards,
        ckpt.next_epoch,
        sa.queries,
        sa.rate_qps,
        sa.zipf_s,
    );

    let report = match deploy.run_open_loop(&sa.open_loop()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "answered {} / offered {} | rejected {} | dropped {} | {:.0} qps achieved",
        report.answers.len(),
        report.offered,
        report.rejected,
        report.dropped,
        report.achieved_qps,
    );
    println!(
        "latency p50 {} µs | p99 {} µs | p999 {} µs | cache hit {:.1}%",
        report.percentile_us(50.0),
        report.percentile_us(99.0),
        report.percentile_us(99.9),
        report.cache_hit_ratio() * 100.0,
    );
    if report.rejected > 0 {
        // Rejections are admission-control back-pressure (bounded queue
        // full at the offered rate) — expected at saturation. Drops are
        // admitted queries that were lost, and always a bug.
        println!(
            "saturation: {} queries rejected at admission (bounded queue full); \
             rejects are back-pressure, not loss",
            report.rejected,
        );
    }
    if report.shard_deaths > 0 {
        println!(
            "degraded: {} shard death(s), {} queries rerouted, zero dropped",
            report.shard_deaths, report.reroutes,
        );
    }
    let hedge_issued = report.metrics.total_counter("serve.hedge.issued");
    let hedge_wins = report.metrics.total_counter("serve.hedge.wins");
    let fallback_rows = report.metrics.total_counter("serve.rows.fallback");
    if hedge_issued > 0 || fallback_rows > 0 {
        println!(
            "degraded fetch path: {hedge_issued} hedges issued, {hedge_wins} won \
             (mirror beat the peer), {fallback_rows} rows from mirror fallback",
        );
    }
    if let Some(path) = &sa.metrics_out {
        write_artifact(path, &to_json(&report.metrics), "metrics JSON");
    }
    if let Some(path) = &sa.report_out {
        write_artifact(path, &serve_report_json(sa, &report), "serve report");
    }
    if report.dropped > 0 {
        std::process::exit(1);
    }
}

/// Renders one serving run as a single-entry `bench-serve/v1` document
/// (the same shape `bench_serve` emits for its rate sweeps).
fn serve_report_json(sa: &ServeArgs, r: &ServeReport) -> String {
    format!(
        "{{\n  \"schema\": \"bench-serve/v1\",\n  \"runs\": [\n    {{\n      \
         \"rate_qps\": {:.1},\n      \"queries\": {},\n      \"answered\": {},\n      \
         \"rejects\": {},\n      \"dropped\": {},\n      \"achieved_qps\": {:.1},\n      \
         \"p50_us\": {},\n      \"p99_us\": {},\n      \"p999_us\": {},\n      \
         \"cache_hit_ratio\": {:.4},\n      \"shard_deaths\": {},\n      \
         \"reroutes\": {},\n      \"hedge_issued\": {},\n      \
         \"hedge_wins\": {},\n      \"fetch_fallback_rows\": {}\n    }}\n  ]\n}}\n",
        sa.rate_qps,
        r.offered,
        r.answers.len(),
        r.rejected,
        r.dropped,
        r.achieved_qps,
        r.percentile_us(50.0),
        r.percentile_us(99.0),
        r.percentile_us(99.9),
        r.cache_hit_ratio(),
        r.shard_deaths,
        r.reroutes,
        r.metrics.total_counter("serve.hedge.issued"),
        r.metrics.total_counter("serve.hedge.wins"),
        r.metrics.total_counter("serve.rows.fallback"),
    )
}

/// Writes an observability artifact (metrics JSON or Chrome trace),
/// exiting with the same error shape as the checkpoint writer.
fn write_artifact(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
    println!("{what} written to {path}");
}

fn run(ra: &RunArgs, mode: Mode) {
    let spec = match DatasetSpec::named(&ra.dataset) {
        Some(s) => s,
        None => {
            eprintln!("error: unknown dataset {:?} (see `nts datasets`)", ra.dataset);
            std::process::exit(2);
        }
    };
    let dataset = spec.materialize(ra.scale, ra.seed);
    let hidden = ra.hidden.unwrap_or(dataset.hidden_dim);
    let model = GnnModel::two_layer(
        ra.model,
        dataset.feature_dim(),
        hidden,
        dataset.num_classes,
        ra.seed,
    );
    let cluster = match ra.cluster_spec() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    println!(
        "{} | {} x{} (scale {}) | {} hid {} | {} workers on {}",
        match mode {
            Mode::Train => "train",
            Mode::Simulate => "simulate",
            Mode::Probe => "probe",
        },
        dataset.name,
        dataset.graph.num_vertices(),
        ra.scale,
        ra.model.name(),
        hidden,
        cluster.workers,
        cluster.name,
    );

    if let Mode::Probe = mode {
        ns_par::set_threads(ra.threads);
        let costs = probe_threaded(&model, &cluster, ns_par::threads());
        println!("layer  T_v(s)      T_e(s)      T_c(s)");
        for lz in 0..model.num_layers() {
            println!(
                "{:>5}  {:<10.3e}  {:<10.3e}  {:<10.3e}",
                lz + 1,
                costs.t_v[lz],
                costs.t_e[lz],
                costs.t_c[lz]
            );
        }
        return;
    }

    let mut cfg = TrainerConfig::new(ra.engine, cluster);
    cfg.partitioner = ra.partitioner;
    cfg.threads = ra.threads;
    cfg.opts = ra.opts;
    cfg.lr = ra.lr;
    cfg.sync = ra.sync;
    cfg.fault = match ra.fault_plan() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    cfg.recovery = ra.recovery();
    cfg.recv = ra.recv();
    cfg.store = ra.store();
    let trainer = match neutronstar::runtime::Trainer::prepare(&dataset, &model, cfg) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    match mode {
        Mode::Simulate => {
            let sim = trainer.simulate_epoch();
            println!(
                "epoch: {:.6}s | {:.3} MB moved | {:.3} GFLOP | device util {:.1}% | NIC util {:.1}%",
                sim.epoch_seconds,
                sim.bytes_per_epoch as f64 / 1e6,
                sim.flops_per_epoch as f64 / 1e9,
                sim.device_utilization * 100.0,
                sim.nic_utilization * 100.0,
            );
        }
        Mode::Train => match trainer.train(ra.epochs) {
            Ok(report) => {
                println!("epoch  loss      train  val    test");
                for e in &report.epochs {
                    println!(
                        "{:>5}  {:<8.4}  {:.3}  {:.3}  {:.3}",
                        e.epoch, e.loss, e.train_acc, e.val_acc, e.test_acc
                    );
                }
                println!(
                    "simulated: {:.6}s/epoch ({:.3}s total)",
                    report.sim.epoch_seconds,
                    report.simulated_seconds(ra.epochs)
                );
                for (worker, epoch, engine) in &report.recoveries {
                    println!(
                        "recovered: worker {worker} lost, rolled back to epoch \
                         {epoch}, resumed on {engine}"
                    );
                }
                for e in &report.membership {
                    println!(
                        "membership: worker {} {} at epoch {}",
                        e.worker,
                        e.kind.name(),
                        e.epoch
                    );
                }
                for r in &report.replans {
                    println!(
                        "replan: epoch {} ({}) comm x{:.2}, moved {} deps to \
                         cache / {} to comm",
                        r.epoch,
                        r.reason,
                        r.comm_factor,
                        r.moved_to_cached.iter().sum::<usize>(),
                        r.moved_to_comm.iter().sum::<usize>(),
                    );
                }
                print!("{}", summary_table(&report.metrics));
                if let Some(path) = &ra.metrics_out {
                    write_artifact(path, &to_json(&report.metrics), "metrics JSON");
                }
                if let Some(path) = &ra.trace_out {
                    write_artifact(path, &to_chrome_trace(&report.metrics), "trace");
                }
                if let Some(path) = &ra.save {
                    let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
                        eprintln!("error: cannot create {path}: {e}");
                        std::process::exit(1);
                    });
                    checkpoint::save(&report.final_params, &mut f)
                        .expect("write checkpoint");
                    println!("checkpoint written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Mode::Probe => unreachable!(),
    }
}

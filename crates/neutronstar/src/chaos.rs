//! Seeded chaos soak harness.
//!
//! Generates randomized-but-reproducible fault schedules (kills,
//! stragglers, drops, delays, duplicates, optional rejoin), runs real
//! recovering training under each, and checks the robustness invariants
//! the elastic runtime promises:
//!
//! 1. training terminates with every epoch accounted for and a finite
//!    final loss;
//! 2. the final loss lands within a tolerance of the fault-free
//!    baseline (faults may reorder float summation and reroute
//!    dependencies, but must not corrupt the numerics);
//! 3. every restart replays at most `checkpoint_every - 1` epochs
//!    (checkpoint-bounded rollback; each durable-generation fallback
//!    relaxes the bound by one more cadence);
//! 4. every rejoin restores the full world size;
//! 5. zero silent corruptions: every injected bit-flip on the wire is
//!    caught by a frame CRC (`integrity.crc_fail`), and every damaged
//!    checkpoint generation is skipped via the store's fallback chain
//!    (`ckpt.fallbacks`) rather than loaded;
//! 6. liveness under healable partitions: a run whose link faults all
//!    heal must terminate with baseline-quality loss and zero circuit
//!    breakers left open against reachable peers
//!    (`net.breaker.stuck_open` = 0);
//! 7. resource exhaustion degrades, never aborts: a disk-full window
//!    squeezes retention (`ckpt.enospc`, `ckpt.retention_squeezed`) and
//!    leaves at least one loadable generation, an injected memory cap is
//!    never exceeded by the pool high-water mark (`alloc.peak_bytes`),
//!    and a hung worker is cancelled by the liveness watchdog
//!    (`watchdog.trips`) and routed through membership recovery.
//!
//! Schedules are derived from a single `u64` seed via SplitMix64, so a
//! failing seed reported by CI or `nts chaos` reproduces exactly.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ns_graph::datasets::by_name;
use ns_graph::Dataset;
use ns_gnn::{GnnModel, ModelKind};
use ns_net::fault::{Fault, FaultPlan, MsgSel};
use ns_net::membership::MembershipEventKind;
use ns_net::ClusterSpec;
use ns_runtime::{
    CheckpointStore, EngineKind, RecoveryConfig, RecvConfig, RuntimeError, StoreConfig,
    Trainer, TrainerConfig, TrainingReport, WatchdogConfig,
};

/// Fixed workload the soak runs: small enough to execute hundreds of
/// times, large enough to exercise multi-chunk recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Registry dataset name.
    pub dataset: String,
    /// Materialization scale.
    pub scale: f64,
    /// Worker count (at least 2; kills need a survivor).
    pub workers: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Checkpoint cadence (bounds replay per restart).
    pub checkpoint_every: usize,
    /// Engine under test.
    pub engine: EngineKind,
    /// Relative final-loss tolerance versus the fault-free baseline.
    pub loss_tolerance: f64,
    /// Upper bound on the per-message wire-corruption probability drawn
    /// by the generator (`0` disables corrupt faults entirely).
    pub corrupt: f64,
    /// Base directory for per-seed durable checkpoint stores. `None`
    /// keeps checkpoints memory-only, which also disables on-disk
    /// checkpoint-corruption faults (there is nothing to damage).
    pub ckpt_base: Option<PathBuf>,
    /// Generate link-fault schedules (healable partitions and flapping
    /// links, no kills) instead of the default crash/noise matrix, and
    /// check the partition-liveness invariant (6).
    pub partition: bool,
    /// Generate resource-exhaustion schedules (disk-full windows, slow
    /// disks, memory-pressure caps, hung workers; no kills or wire
    /// noise) and check the degrade-don't-die invariant (7). Runs with
    /// the liveness watchdog armed.
    pub resource: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            dataset: "google".to_string(),
            scale: 0.002,
            workers: 3,
            epochs: 6,
            checkpoint_every: 2,
            engine: EngineKind::DepComm,
            loss_tolerance: 0.15,
            corrupt: 0.25,
            ckpt_base: None,
            partition: false,
            resource: false,
        }
    }
}

/// One generated schedule: the fault plan plus the recovery knobs it is
/// meant to be survived with.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Seed the schedule was derived from.
    pub seed: u64,
    /// Faults, in generation order.
    pub faults: Vec<Fault>,
    /// Whether failed workers re-admit at checkpoint boundaries.
    pub rejoin: bool,
}

impl ChaosSchedule {
    /// Human-readable one-line summary of the schedule.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for f in &self.faults {
            if !s.is_empty() {
                s.push(' ');
            }
            match f {
                Fault::Kill { worker, epoch } => {
                    let _ = write!(s, "kill:w{worker}@e{epoch}");
                }
                Fault::Straggle { worker, delay_ms } => {
                    let _ = write!(s, "straggle:w{worker}:{delay_ms}ms");
                }
                Fault::Drop { p, .. } => {
                    let _ = write!(s, "drop:{p:.2}");
                }
                Fault::Delay { delay_ms, .. } => {
                    let _ = write!(s, "delay:{delay_ms}ms");
                }
                Fault::Duplicate { p, .. } => {
                    let _ = write!(s, "dup:{p:.2}");
                }
                Fault::Corrupt { p, .. } => {
                    let _ = write!(s, "corrupt:{p:.2}");
                }
                Fault::CorruptCkpt { epoch, p } => match epoch {
                    Some(e) => {
                        let _ = write!(s, "corrupt:ckpt:{p:.2}@e{e}");
                    }
                    None => {
                        let _ = write!(s, "corrupt:ckpt:{p:.2}");
                    }
                },
                Fault::Partition { .. }
                | Fault::AsymPartition { .. }
                | Fault::Flap { .. }
                | Fault::DiskFull { .. }
                | Fault::SlowDisk { .. }
                | Fault::MemPressure { .. }
                | Fault::Hang { .. } => {
                    let _ = write!(s, "{}", f.to_spec());
                }
            }
        }
        if self.rejoin {
            s.push_str(" +rejoin");
        }
        if s.is_empty() {
            s.push_str("(fault-free)");
        }
        s
    }
}

/// SplitMix64: the standard 64-bit mixing PRNG. Deterministic and
/// dependency-free, so schedules reproduce everywhere.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Derives a randomized fault schedule from `seed`. Every schedule is
/// survivable by construction: at most `max_restarts` kills, each at a
/// distinct epoch for a distinct worker, and message-level faults stay
/// within probabilities the retransmit/dedup machinery absorbs.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosSchedule {
    generate_with_baseline(seed, cfg, None)
}

/// [`generate`] with the fault-free baseline available, so resource
/// schedules can derive a satisfiable memory cap from the measured pool
/// high-water mark. Without a baseline the resource matrix falls back to
/// a generous fixed cap.
pub fn generate_with_baseline(
    seed: u64,
    cfg: &ChaosConfig,
    base: Option<&Baseline>,
) -> ChaosSchedule {
    let mut rng = SplitMix64(seed ^ 0x6e74_735f_6368_616f); // "nts_chao"
    if cfg.resource {
        return generate_resource(&mut rng, seed, cfg, base);
    }
    if cfg.partition {
        return generate_partition(&mut rng, seed, cfg);
    }
    let mut faults = Vec::new();
    let restart_budget = RecoveryConfig::every(cfg.checkpoint_every).max_restarts as u64;

    // 0..=min(2, budget) kills, distinct (worker, epoch) pairs.
    let n_kills = rng.below(restart_budget.min(2) + 1);
    let mut used_workers = Vec::new();
    let mut used_epochs = Vec::new();
    for _ in 0..n_kills {
        let worker = rng.below(cfg.workers as u64) as usize;
        let epoch = 1 + rng.below(cfg.epochs as u64 - 1) as usize;
        if used_workers.contains(&worker) || used_epochs.contains(&epoch) {
            continue; // fewer kills this seed; keeps the pair distinct
        }
        used_workers.push(worker);
        used_epochs.push(epoch);
        faults.push(Fault::Kill { worker, epoch });
    }

    // Optional straggler on a worker that is not killed.
    if rng.unit() < 0.5 {
        let worker = rng.below(cfg.workers as u64) as usize;
        if !used_workers.contains(&worker) {
            let delay_ms = 5 + rng.below(21);
            faults.push(Fault::Straggle { worker, delay_ms });
        }
    }

    // Message-level noise: drop (modeled loss + retransmission), fixed
    // extra latency, duplicate delivery.
    if rng.unit() < 0.5 {
        faults.push(Fault::Drop { sel: MsgSel::any(), p: rng.unit() * 0.3 });
    }
    if rng.unit() < 0.5 {
        faults.push(Fault::Delay { sel: MsgSel::any(), delay_ms: 1 + rng.below(10) });
    }
    if rng.unit() < 0.5 {
        faults.push(Fault::Duplicate { sel: MsgSel::any(), p: rng.unit() * 0.5 });
    }
    // Wire corruption: seeded bit-flips the receiver must catch by frame
    // CRC and recover via the clean retransmitted copy — numerics must
    // not move.
    if cfg.corrupt > 0.0 && rng.unit() < 0.5 {
        faults.push(Fault::Corrupt { sel: MsgSel::any(), p: rng.unit() * cfg.corrupt });
    }

    // On-disk corruption: with a durable store active, damage the
    // generation persisted at the boundary of the chunk the *earliest*
    // kill lands in, so its rollback finds the newest generation torn
    // and must fall back one cadence further. The anchor has to be the
    // earliest kill: after any failure or straggler eviction the
    // survivors renumber, and a later kill's worker index may fall off
    // the shrunken world and never fire — leaving the damaged
    // generation unread. For the same reason the anchor's index must
    // survive one possible eviction-renumber when a straggle is also
    // scheduled.
    if cfg.ckpt_base.is_some() {
        let straggles = faults.iter().any(|f| matches!(f, Fault::Straggle { .. }));
        let anchor = faults
            .iter()
            .filter_map(|f| match f {
                Fault::Kill { worker, epoch } => Some((*epoch, *worker)),
                _ => None,
            })
            .min();
        if let Some((epoch, worker)) = anchor {
            let boundary = (epoch / cfg.checkpoint_every) * cfg.checkpoint_every;
            let survives_renumber = worker + usize::from(straggles) < cfg.workers;
            if boundary >= cfg.checkpoint_every && survives_renumber {
                faults.push(Fault::CorruptCkpt { epoch: Some(boundary), p: 1.0 });
            }
        }
    }

    ChaosSchedule { seed, faults, rejoin: rng.unit() < 0.7 }
}

/// The healable link-fault matrix (`--partition` mode): at most one
/// severed or half-severed link that always heals at a checkpoint
/// boundary strictly before the last epoch (so the timed-out side is
/// re-admitted and its breakers get traffic to close against), an
/// optional flapping link, and mild latency noise. No kills and rejoin
/// always on — invariant 6 demands these runs come back on their own.
fn generate_partition(rng: &mut SplitMix64, seed: u64, cfg: &ChaosConfig) -> ChaosSchedule {
    assert!(cfg.workers >= 2, "link faults need two endpoints");
    assert!(
        cfg.epochs > cfg.checkpoint_every + 1,
        "healable partitions need a boundary to heal at plus a post-heal epoch"
    );
    let mut faults = Vec::new();
    let n = cfg.workers as u64;
    let mut pair = |rng: &mut SplitMix64| {
        let a = rng.below(n) as usize;
        let b = (a + 1 + rng.below(n - 1) as usize) % cfg.workers;
        (a, b)
    };
    // A severed link in two of three seeds; the rest stay flap-only.
    let kind = rng.below(3);
    if kind < 2 {
        let (a, b) = pair(rng);
        // Start the outage early enough that the next checkpoint
        // boundary (the heal point) lands at or before epochs-1, so the
        // final epoch always runs with the link back up.
        let ck = cfg.checkpoint_every;
        let last_from = ck * ((cfg.epochs - 1) / ck) - 1;
        let from_epoch = 1 + rng.below(last_from as u64) as usize;
        let heal_epoch = ((from_epoch / ck) + 1) * ck;
        debug_assert!(from_epoch < heal_epoch && heal_epoch < cfg.epochs);
        if kind == 0 {
            faults.push(Fault::Partition { a, b, from_epoch, heal_epoch });
        } else {
            faults.push(Fault::AsymPartition { src: a, dst: b, from_epoch, heal_epoch });
        }
    }
    // Flapping link: messages inside a down-window are held to the next
    // up-window, never lost, so flaps need no heal epoch to stay
    // survivable — the retransmit windows absorb the delay.
    if kind == 2 || rng.unit() < 0.5 {
        let (a, b) = pair(rng);
        let period_ms = 10 + rng.below(41);
        let duty = 0.1 + rng.unit() * 0.5;
        faults.push(Fault::Flap { a, b, period_ms, duty });
    }
    if rng.unit() < 0.5 {
        faults.push(Fault::Delay { sel: MsgSel::any(), delay_ms: 1 + rng.below(5) });
    }
    ChaosSchedule { seed, faults, rejoin: true }
}

/// The resource-exhaustion matrix (`--resource` mode): a disk-full
/// window covering exactly one interior checkpoint boundary (the final
/// boundary always saves clean, proving the store recovered), an
/// optional slow disk, a memory-pressure window whose cap sits 12.5%
/// above the baseline pool high-water mark (tight enough to trip the
/// 75% pressure threshold, loose enough that invariant 7's
/// peak-under-cap bound is satisfiable), and a hung worker for the
/// liveness watchdog to cancel. No kills and rejoin always on — these
/// runs must degrade and come back, never abort.
fn generate_resource(
    rng: &mut SplitMix64,
    seed: u64,
    cfg: &ChaosConfig,
    base: Option<&Baseline>,
) -> ChaosSchedule {
    assert!(cfg.workers >= 2, "a hang needs a survivor");
    assert!(
        cfg.epochs > cfg.checkpoint_every + 1,
        "resource windows need an interior boundary plus a clean final one"
    );
    let ck = cfg.checkpoint_every;
    let mut faults = Vec::new();
    // Disk faults only matter against a durable store.
    if cfg.ckpt_base.is_some() {
        let interior = (cfg.epochs / ck).saturating_sub(1);
        if interior >= 1 && rng.unit() < 0.7 {
            let b = ck * (1 + rng.below(interior as u64) as usize);
            faults.push(Fault::DiskFull { from_epoch: b, heal_epoch: b + 1 });
        }
        if rng.unit() < 0.5 {
            faults.push(Fault::SlowDisk { factor: 1.5 + rng.unit() * 2.5 });
        }
    }
    if rng.unit() < 0.7 {
        let peak = base.map_or(0, |b| b.peak_bytes);
        let cap_bytes = if peak > 0 {
            (peak + peak / 8).max(1) as usize
        } else {
            64 << 20
        };
        let from_epoch = 1 + rng.below((cfg.epochs - 2) as u64) as usize;
        let heal_epoch = (from_epoch + 1 + rng.below(2) as usize).min(cfg.epochs);
        faults.push(Fault::MemPressure { cap_bytes, from_epoch, heal_epoch });
    }
    if rng.unit() < 0.6 {
        let worker = rng.below(cfg.workers as u64) as usize;
        let epoch = 1 + rng.below((cfg.epochs - 1) as u64) as usize;
        faults.push(Fault::Hang { worker, epoch });
    }
    ChaosSchedule { seed, faults, rejoin: true }
}

/// The fault-free reference run the invariants compare against.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Final loss of the clean run.
    pub final_loss: f64,
    /// Tensor-pool high-water mark (bytes) of the clean run — the anchor
    /// the resource matrix derives satisfiable memory caps from.
    pub peak_bytes: u64,
}

/// Outcome of one chaos run: the report's robustness-relevant facts plus
/// any invariant violations (empty means the run upheld all of them).
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Seed of the schedule that ran.
    pub seed: u64,
    /// One-line schedule description.
    pub schedule: String,
    /// Final loss under faults.
    pub final_loss: f64,
    /// Rollback-and-resume recoveries performed.
    pub recoveries: usize,
    /// Membership transitions (failures, evictions, rejoins).
    pub membership_events: usize,
    /// Adaptive replans performed.
    pub replans: usize,
    /// Corrupt frames detected by receive-side CRC checks
    /// (`integrity.crc_fail`).
    pub crc_failures: u64,
    /// Damaged durable generations skipped during rollback
    /// (`ckpt.fallbacks`).
    pub ckpt_fallbacks: u64,
    /// Per-invariant verdicts, indexed by invariant number minus one
    /// (`invariant_pass[6]` is invariant 7). An invariant a schedule
    /// never exercised passes vacuously.
    pub invariant_pass: [bool; 7],
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn materialize(cfg: &ChaosConfig) -> Result<(Dataset, GnnModel), String> {
    let spec = by_name(&cfg.dataset)
        .ok_or_else(|| format!("unknown dataset {:?}", cfg.dataset))?;
    let ds = spec.materialize(cfg.scale, 11);
    let model =
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 5);
    Ok((ds, model))
}

fn train(
    cfg: &ChaosConfig,
    ds: &Dataset,
    model: &GnnModel,
    fault: FaultPlan,
    rejoin: bool,
    store_dir: Option<&Path>,
) -> Result<TrainingReport, RuntimeError> {
    let mut tc = TrainerConfig::new(cfg.engine, ClusterSpec::aliyun_ecs(cfg.workers));
    tc.fault = fault;
    if cfg.partition {
        // Black-holed links surface only as receive timeouts; shrink the
        // retry schedule so each severed op fails over in ~0.5s instead
        // of the default multi-second budget, keeping 32-seed soaks fast.
        // The jittered windows still dwarf the generator's flap periods
        // and delay noise, so healthy links never misfire.
        tc.recv = RecvConfig { timeout_ms: 150, retries: 2, ..RecvConfig::default() };
    }
    tc.recovery = if rejoin {
        RecoveryConfig::every(cfg.checkpoint_every).with_rejoin()
    } else {
        RecoveryConfig::every(cfg.checkpoint_every)
    };
    if cfg.resource {
        // The resource matrix injects hangs, which only the liveness
        // watchdog can see. A tight floor keeps 32-seed soaks fast.
        tc.watchdog = Some(WatchdogConfig { multiplier: 8.0, floor_ms: 200, poll_ms: 2 });
    }
    if let Some(dir) = store_dir {
        tc.store = StoreConfig::at(dir);
    }
    Trainer::prepare(ds, model, tc)?.train(cfg.epochs)
}

/// Runs the fault-free reference for `cfg`.
pub fn baseline(cfg: &ChaosConfig) -> Result<Baseline, String> {
    let (ds, model) = materialize(cfg)?;
    // Re-arm the pool high-water mark so the measured peak belongs to
    // this workload, not whatever ran before in the process.
    ns_tensor::pool::set_cap_bytes(ns_tensor::pool::default_cap_bytes());
    let report = train(cfg, &ds, &model, FaultPlan::default(), false, None)
        .map_err(|e| format!("baseline run failed: {e}"))?;
    let peak_bytes = ns_tensor::pool::stats().peak_bytes;
    Ok(Baseline { final_loss: report.final_loss() as f64, peak_bytes })
}

/// Checks the report of a chaos run against the soak invariants,
/// returning the violations and the per-invariant verdicts.
fn check_invariants(
    cfg: &ChaosConfig,
    schedule: &ChaosSchedule,
    base: &Baseline,
    report: &TrainingReport,
    durable_loadable: Option<bool>,
) -> (Vec<String>, [bool; 7]) {
    let mut v = Vec::new();
    let mut pass = [true; 7];
    // Indexed by invariant number minus one; a closure would fight the
    // borrow checker, so each violation site marks its invariant inline.
    const TERMINATION: usize = 0;
    const LOSS: usize = 1;
    const REPLAY: usize = 2;
    const REJOIN: usize = 3;
    const CORRUPTION: usize = 4;
    const LIVENESS: usize = 5;
    const RESOURCE: usize = 6;

    // 1. Termination: every epoch accounted for, finite loss.
    if report.epochs.len() != cfg.epochs {
        pass[TERMINATION] = false;
        v.push(format!(
            "expected {} epochs, got {}",
            cfg.epochs,
            report.epochs.len()
        ));
    }
    let loss = report.final_loss() as f64;
    if !loss.is_finite() {
        pass[TERMINATION] = false;
        v.push(format!("non-finite final loss {loss}"));
    }

    // 2. Loss within tolerance of the fault-free baseline.
    let rel = (loss - base.final_loss).abs() / base.final_loss.abs().max(1e-9);
    if rel > cfg.loss_tolerance {
        pass[LOSS] = false;
        v.push(format!(
            "final loss {loss:.6} deviates {:.1}% from baseline {:.6} (> {:.1}%)",
            rel * 100.0,
            base.final_loss,
            cfg.loss_tolerance * 100.0
        ));
    }

    // 3. Checkpoint-bounded replay: each recovery pairs (in order) with
    // a Failed membership event carrying the epoch the failure surfaced
    // in; the rollback may replay at most cadence-1 completed epochs.
    // Every durable-generation fallback (a damaged newest generation the
    // store skipped) legitimately adds one more cadence of replay.
    let fallbacks = report.metrics.total_counter("ckpt.fallbacks");
    let replay_bound = cfg.checkpoint_every * (1 + fallbacks as usize) - 1;
    let failures: Vec<_> = report
        .membership
        .iter()
        .filter(|e| e.kind == MembershipEventKind::Failed)
        .collect();
    if failures.len() != report.recoveries.len() {
        pass[REPLAY] = false;
        v.push(format!(
            "{} Failed events but {} recoveries",
            failures.len(),
            report.recoveries.len()
        ));
    }
    for (fail, (worker, rollback_epoch, _)) in failures.iter().zip(&report.recoveries) {
        if fail.worker != *worker {
            pass[REPLAY] = false;
            v.push(format!(
                "failure of worker {} recovered as worker {worker}",
                fail.worker
            ));
        }
        if fail.epoch < *rollback_epoch {
            pass[REPLAY] = false;
            v.push(format!(
                "rollback to epoch {rollback_epoch} is after the failure at {}",
                fail.epoch
            ));
        } else if fail.epoch - rollback_epoch > replay_bound {
            pass[REPLAY] = false;
            v.push(format!(
                "restart replays {} epochs (failure at {}, rollback to \
                 {rollback_epoch}); cadence {} with {fallbacks} fallbacks bounds \
                 replay to {replay_bound}",
                fail.epoch - rollback_epoch,
                fail.epoch,
                cfg.checkpoint_every,
            ));
        }
    }
    if report.recoveries.len() > RecoveryConfig::every(cfg.checkpoint_every).max_restarts {
        pass[REPLAY] = false;
        v.push(format!("{} recoveries exceed the restart budget", report.recoveries.len()));
    }

    // 4. Every rejoin restores the full world: replay the membership log
    // against the world size. The trainer re-admits every missing member
    // at one checkpoint boundary, logging one Rejoined event per slot, so
    // the full-world check applies after the *last* Rejoined of each
    // same-epoch batch, not after each individual event.
    let mut active = cfg.workers;
    for (i, e) in report.membership.iter().enumerate() {
        match e.kind {
            MembershipEventKind::Failed | MembershipEventKind::Evicted => {
                active -= 1;
            }
            MembershipEventKind::Rejoined => {
                active += 1;
                let batch_continues = report.membership.get(i + 1).is_some_and(|n| {
                    n.kind == MembershipEventKind::Rejoined && n.epoch == e.epoch
                });
                if active != cfg.workers && !batch_continues {
                    pass[REJOIN] = false;
                    v.push(format!(
                        "world has {active}/{} members after worker {} rejoined at \
                         epoch {}",
                        cfg.workers, e.worker, e.epoch
                    ));
                }
            }
        }
    }
    if schedule.rejoin && !report.membership.is_empty() {
        // With rejoin on, any member lost before the last checkpoint
        // boundary must have been re-admitted by then.
        let last_boundary = (cfg.epochs / cfg.checkpoint_every) * cfg.checkpoint_every;
        let lost_early = report
            .membership
            .iter()
            .filter(|e| {
                e.kind != MembershipEventKind::Rejoined
                    && e.epoch + cfg.checkpoint_every < last_boundary
            })
            .count();
        let rejoined = report
            .membership
            .iter()
            .filter(|e| e.kind == MembershipEventKind::Rejoined)
            .count();
        if rejoined < lost_early {
            pass[REJOIN] = false;
            v.push(format!(
                "{lost_early} members lost with a boundary to spare but only \
                 {rejoined} rejoined"
            ));
        }
    }

    // 5. Zero silent corruptions. Every wire bit-flip the plan injected
    // must have tripped a receive-side CRC check, and a scheduled
    // checkpoint corruption must have forced the rollback onto the
    // fallback chain (loading the damaged generation would be silent
    // acceptance).
    let corrupts = report.metrics.total_counter("net.fault.corrupts");
    let crc_fail = report.metrics.total_counter("integrity.crc_fail");
    if corrupts > 0 && crc_fail == 0 {
        pass[CORRUPTION] = false;
        v.push(format!(
            "{corrupts} corrupt frames injected but zero CRC failures detected"
        ));
    }
    let ckpt_corruption_scheduled = schedule
        .faults
        .iter()
        .any(|f| matches!(f, Fault::CorruptCkpt { .. }));
    if ckpt_corruption_scheduled && fallbacks == 0 {
        pass[CORRUPTION] = false;
        v.push(
            "checkpoint corruption scheduled but no durable-generation fallback \
             recorded"
                .to_string(),
        );
    }

    // 6. Liveness under healable partitions: when every scheduled link
    // fault heals inside the run (flaps always deliver, so they count as
    // healed by construction), no circuit breaker may finish the run
    // latched open against a reachable peer. Invariants 1-2 already
    // force termination at baseline-quality loss; this adds zero breaker
    // deadlock — a stuck breaker would starve its link forever even
    // though the network came back.
    let has_link_faults = schedule.faults.iter().any(|f| {
        matches!(
            f,
            Fault::Partition { .. } | Fault::AsymPartition { .. } | Fault::Flap { .. }
        )
    });
    let all_heal = schedule.faults.iter().all(|f| match f {
        Fault::Partition { heal_epoch, .. } | Fault::AsymPartition { heal_epoch, .. } => {
            *heal_epoch < cfg.epochs
        }
        _ => true,
    });
    if has_link_faults && all_heal {
        let stuck = report.metrics.total_counter("net.breaker.stuck_open");
        if stuck > 0 {
            pass[LIVENESS] = false;
            v.push(format!(
                "{stuck} circuit breaker(s) left open after their links healed"
            ));
        }
    }

    // 7. Resource exhaustion degrades, never aborts. Each scheduled
    // resource fault must leave its proving meter behind: the pool's
    // high-water mark stays under an enforced memory cap, a disk-full
    // window forces retention squeezes yet leaves at least one loadable
    // durable generation, a hung worker trips the watchdog, and a slow
    // disk shows up as a bounded save penalty rather than a stall.
    for f in &schedule.faults {
        match f {
            Fault::MemPressure { cap_bytes, .. } => {
                let peak = report
                    .metrics
                    .frames
                    .values()
                    .filter_map(|fr| fr.histograms.get("alloc.peak_bytes"))
                    .map(|h| h.max)
                    .max();
                match peak {
                    None => {
                        pass[RESOURCE] = false;
                        v.push(
                            "memory pressure scheduled but no alloc.peak_bytes \
                             observation recorded"
                                .to_string(),
                        );
                    }
                    Some(peak) if peak > *cap_bytes as u64 => {
                        pass[RESOURCE] = false;
                        v.push(format!(
                            "pool high-water mark {peak} exceeds the enforced cap of \
                             {cap_bytes} bytes"
                        ));
                    }
                    Some(_) => {}
                }
            }
            Fault::DiskFull { .. } => {
                if report.metrics.total_counter("ckpt.enospc") == 0 {
                    pass[RESOURCE] = false;
                    v.push(
                        "disk-full window scheduled over a checkpoint boundary but \
                         ckpt.enospc never fired"
                            .to_string(),
                    );
                }
                if report.metrics.total_counter("ckpt.retention_squeezed") == 0 {
                    pass[RESOURCE] = false;
                    v.push(
                        "disk-full window scheduled but retention was never squeezed"
                            .to_string(),
                    );
                }
                if durable_loadable != Some(true) {
                    pass[RESOURCE] = false;
                    v.push(
                        "disk-full run left no loadable durable generation".to_string(),
                    );
                }
            }
            Fault::Hang { .. } => {
                if report.metrics.total_counter("watchdog.trips") == 0 {
                    pass[RESOURCE] = false;
                    v.push(
                        "hang scheduled but the liveness watchdog never tripped"
                            .to_string(),
                    );
                }
            }
            Fault::SlowDisk { .. } => {
                if cfg.ckpt_base.is_some()
                    && report.metrics.total_counter("ckpt.slow_disk_penalty_ns") == 0
                {
                    pass[RESOURCE] = false;
                    v.push(
                        "slow disk scheduled with a durable store but no save penalty \
                         was metered"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    (v, pass)
}

/// Runs one seeded schedule and checks the invariants against `base`.
pub fn run_schedule(
    cfg: &ChaosConfig,
    base: &Baseline,
    schedule: &ChaosSchedule,
) -> ChaosOutcome {
    let describe = schedule.describe();
    let failed = |violations: Vec<String>| ChaosOutcome {
        seed: schedule.seed,
        schedule: describe.clone(),
        final_loss: f64::NAN,
        recoveries: 0,
        membership_events: 0,
        replans: 0,
        crc_failures: 0,
        ckpt_fallbacks: 0,
        // A run that never produced a report fails termination; the
        // other invariants are vacuous without one.
        invariant_pass: [false, true, true, true, true, true, true],
        violations,
    };
    let (ds, model) = match materialize(cfg) {
        Ok(x) => x,
        Err(e) => return failed(vec![e]),
    };
    let mut plan = FaultPlan::default().with_seed(schedule.seed);
    for f in &schedule.faults {
        plan = plan.with_fault(f.clone());
    }
    // Each seed gets its own durable store so parallel soak runs never
    // share generations; the directory is scratch and removed after.
    let store_dir = cfg
        .ckpt_base
        .as_ref()
        .map(|b| b.join(format!("seed-{:08x}", schedule.seed)));
    let result = train(cfg, &ds, &model, plan, schedule.rejoin, store_dir.as_deref());
    // Probe the durable store *before* tearing the scratch directory
    // down: invariant 7 demands a disk-full run still leaves at least
    // one loadable generation behind.
    let durable_loadable = store_dir.as_ref().map(|dir| {
        CheckpointStore::open(dir, 1)
            .ok()
            .map(|st| st.load_latest().checkpoint.is_some())
            .unwrap_or(false)
    });
    if let Some(dir) = &store_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    match result {
        Ok(report) => {
            let (violations, invariant_pass) =
                check_invariants(cfg, schedule, base, &report, durable_loadable);
            ChaosOutcome {
                seed: schedule.seed,
                schedule: describe,
                final_loss: report.final_loss() as f64,
                recoveries: report.recoveries.len(),
                membership_events: report.membership.len(),
                replans: report.replans.len(),
                crc_failures: report.metrics.total_counter("integrity.crc_fail"),
                ckpt_fallbacks: report.metrics.total_counter("ckpt.fallbacks"),
                invariant_pass,
                violations,
            }
        }
        Err(e) => failed(vec![format!("run failed: {e}")]),
    }
}

/// Runs `count` schedules seeded `base_seed, base_seed+1, …` and returns
/// every outcome. The fault-free baseline is computed once.
pub fn soak(cfg: &ChaosConfig, base_seed: u64, count: usize) -> Result<Vec<ChaosOutcome>, String> {
    let base = baseline(cfg)?;
    Ok((0..count as u64)
        .map(|i| {
            run_schedule(
                cfg,
                &base,
                &generate_with_baseline(base_seed + i, cfg, Some(&base)),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        for seed in 0..50 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.describe(), b.describe());
            assert_eq!(a.rejoin, b.rejoin);
        }
    }

    #[test]
    fn schedules_vary_across_seeds() {
        let cfg = ChaosConfig::default();
        let descriptions: std::collections::BTreeSet<String> =
            (0..32).map(|s| generate(s, &cfg).describe()).collect();
        assert!(
            descriptions.len() > 16,
            "32 seeds should produce many distinct schedules, got {}",
            descriptions.len()
        );
    }

    #[test]
    fn generated_kills_fit_the_restart_budget() {
        let cfg = ChaosConfig::default();
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            let kills = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::Kill { .. }))
                .count();
            assert!(kills <= RecoveryConfig::every(cfg.checkpoint_every).max_restarts);
            for f in &s.faults {
                match f {
                    Fault::Kill { worker, epoch } => {
                        assert!(*worker < cfg.workers);
                        assert!(*epoch >= 1 && *epoch < cfg.epochs);
                    }
                    Fault::Straggle { worker, delay_ms } => {
                        assert!(*worker < cfg.workers);
                        assert!((5..=25).contains(delay_ms));
                        // Never straggles a worker that also dies.
                        assert!(!s.faults.iter().any(|k| matches!(
                            k,
                            Fault::Kill { worker: kw, .. } if kw == worker
                        )));
                    }
                    Fault::Drop { p, .. } => assert!(*p <= 0.3),
                    Fault::Delay { delay_ms, .. } => assert!(*delay_ms <= 10),
                    Fault::Duplicate { p, .. } => assert!(*p <= 0.5),
                    Fault::Corrupt { p, .. } => assert!(*p <= cfg.corrupt),
                    Fault::CorruptCkpt { .. } => {
                        panic!("ckpt corruption requires a durable store (ckpt_base)")
                    }
                    Fault::Partition { .. }
                    | Fault::AsymPartition { .. }
                    | Fault::Flap { .. } => {
                        panic!("link faults belong to the --partition matrix")
                    }
                    Fault::DiskFull { .. }
                    | Fault::SlowDisk { .. }
                    | Fault::MemPressure { .. }
                    | Fault::Hang { .. } => {
                        panic!("resource faults belong to the --resource matrix")
                    }
                }
            }
        }
    }

    #[test]
    fn resource_matrix_degrades_within_declared_bounds() {
        let cfg = ChaosConfig {
            resource: true,
            ckpt_base: Some(PathBuf::from("unused-by-generate")),
            ..ChaosConfig::default()
        };
        let ck = cfg.checkpoint_every;
        let (mut disk_full, mut slow_disk, mut pressure, mut hangs) = (0, 0, 0, 0);
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            assert!(s.rejoin, "resource schedules must always rejoin");
            assert_eq!(s.describe(), generate(seed, &cfg).describe());
            for f in &s.faults {
                match f {
                    Fault::DiskFull { from_epoch, heal_epoch } => {
                        disk_full += 1;
                        // Exactly one interior boundary inside the window,
                        // so ENOSPC provably fires yet the final boundary
                        // always saves clean.
                        assert_eq!(*heal_epoch, from_epoch + 1);
                        assert_eq!(from_epoch % ck, 0);
                        assert!(*from_epoch >= ck && *from_epoch < cfg.epochs);
                    }
                    Fault::SlowDisk { factor } => {
                        slow_disk += 1;
                        assert!((1.5..=4.0).contains(factor));
                    }
                    Fault::MemPressure { cap_bytes, from_epoch, heal_epoch } => {
                        pressure += 1;
                        assert!(*cap_bytes > 0);
                        assert!(*from_epoch >= 1 && from_epoch < heal_epoch);
                        assert!(*heal_epoch <= cfg.epochs);
                    }
                    Fault::Hang { worker, epoch } => {
                        hangs += 1;
                        assert!(*worker < cfg.workers);
                        assert!(*epoch >= 1 && *epoch < cfg.epochs);
                    }
                    other => panic!("resource matrix generated {other:?}"),
                }
            }
        }
        assert!(disk_full >= 1, "200 seeds should fill the disk at least once");
        assert!(slow_disk >= 1 && pressure >= 1 && hangs >= 1);
    }

    #[test]
    fn resource_matrix_without_a_store_skips_disk_faults() {
        let cfg = ChaosConfig { resource: true, ..ChaosConfig::default() };
        for seed in 0..100 {
            for f in &generate(seed, &cfg).faults {
                assert!(
                    !matches!(f, Fault::DiskFull { .. } | Fault::SlowDisk { .. }),
                    "disk faults need a durable store, got {f:?}"
                );
            }
        }
    }

    #[test]
    fn partition_matrix_is_healable_by_construction() {
        let cfg = ChaosConfig { partition: true, ..ChaosConfig::default() };
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            assert!(s.rejoin, "partition schedules must always rejoin");
            let mut link_faults = 0;
            for f in &s.faults {
                match f {
                    Fault::Partition { a, b, from_epoch, heal_epoch } => {
                        link_faults += 1;
                        assert!(*a < cfg.workers && *b < cfg.workers && a != b);
                        assert!(*from_epoch >= 1 && from_epoch < heal_epoch);
                        assert_eq!(heal_epoch % cfg.checkpoint_every, 0);
                        assert!(
                            *heal_epoch < cfg.epochs,
                            "link must heal before the final epoch"
                        );
                    }
                    Fault::AsymPartition { src, dst, from_epoch, heal_epoch } => {
                        link_faults += 1;
                        assert!(*src < cfg.workers && *dst < cfg.workers && src != dst);
                        assert!(*from_epoch >= 1 && from_epoch < heal_epoch);
                        assert_eq!(heal_epoch % cfg.checkpoint_every, 0);
                        assert!(*heal_epoch < cfg.epochs);
                    }
                    Fault::Flap { a, b, period_ms, duty } => {
                        link_faults += 1;
                        assert!(*a < cfg.workers && *b < cfg.workers && a != b);
                        assert!((10..=50).contains(period_ms));
                        assert!(*duty > 0.0 && *duty < 0.7);
                    }
                    Fault::Delay { delay_ms, .. } => assert!(*delay_ms <= 5),
                    other => panic!("partition matrix generated {other:?}"),
                }
            }
            assert!(link_faults >= 1, "every partition schedule exercises a link");
        }
    }

    #[test]
    fn generator_schedules_ckpt_corruption_only_with_a_fallback_target() {
        let cfg = ChaosConfig {
            ckpt_base: Some(PathBuf::from("unused-by-generate")),
            ..ChaosConfig::default()
        };
        let mut seen = false;
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            for f in &s.faults {
                if let Fault::CorruptCkpt { epoch, p } = f {
                    seen = true;
                    assert_eq!(*p, 1.0);
                    let b = epoch.expect("generator pins the boundary");
                    assert!(b >= cfg.checkpoint_every);
                    assert_eq!(b % cfg.checkpoint_every, 0);
                    // The damaged boundary must belong to the *earliest*
                    // kill: later kills may never fire once an earlier
                    // membership change renumbers the survivors.
                    let (anchor_epoch, anchor_worker) = s
                        .faults
                        .iter()
                        .filter_map(|k| match k {
                            Fault::Kill { worker, epoch } => Some((*epoch, *worker)),
                            _ => None,
                        })
                        .min()
                        .expect("ckpt corruption always rides a kill");
                    assert_eq!(
                        (anchor_epoch / cfg.checkpoint_every) * cfg.checkpoint_every,
                        b
                    );
                    // And the anchor's worker index must survive one
                    // straggler-eviction renumber, or the kill might
                    // address a slot that no longer exists.
                    let straggles =
                        s.faults.iter().any(|f| matches!(f, Fault::Straggle { .. }));
                    assert!(anchor_worker + usize::from(straggles) < cfg.workers);
                }
            }
        }
        assert!(seen, "200 seeds should schedule at least one ckpt corruption");
    }

    #[test]
    fn corrupt_faults_are_detected_and_survived() {
        let base_dir = std::env::temp_dir()
            .join(format!("nts-chaos-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base_dir);
        let cfg = ChaosConfig {
            ckpt_base: Some(base_dir.clone()),
            ..ChaosConfig::default()
        };
        let base = baseline(&cfg).unwrap();
        // Hand-built worst case: noisy wire plus a guaranteed-damaged
        // newest generation the rollback must skip.
        let schedule = ChaosSchedule {
            seed: 7,
            faults: vec![
                Fault::Kill { worker: 1, epoch: 5 },
                Fault::Corrupt { sel: MsgSel::any(), p: 0.25 },
                Fault::CorruptCkpt { epoch: Some(4), p: 1.0 },
            ],
            rejoin: false,
        };
        let outcome = run_schedule(&cfg, &base, &schedule);
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert_eq!(outcome.recoveries, 1);
        assert!(outcome.crc_failures > 0, "wire flips must trip CRC checks");
        assert!(outcome.ckpt_fallbacks >= 1, "torn generation must be skipped");
        let _ = std::fs::remove_dir_all(&base_dir);
    }

    #[test]
    fn fault_free_schedule_passes_invariants() {
        let cfg = ChaosConfig {
            epochs: 2,
            ..ChaosConfig::default()
        };
        let base = baseline(&cfg).unwrap();
        let clean = ChaosSchedule { seed: 0, faults: Vec::new(), rejoin: false };
        let outcome = run_schedule(&cfg, &base, &clean);
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert_eq!(outcome.recoveries, 0);
    }
}

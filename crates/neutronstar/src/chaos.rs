//! Seeded chaos soak harness.
//!
//! Generates randomized-but-reproducible fault schedules (kills,
//! stragglers, drops, delays, duplicates, optional rejoin), runs real
//! recovering training under each, and checks the robustness invariants
//! the elastic runtime promises:
//!
//! 1. training terminates with every epoch accounted for and a finite
//!    final loss;
//! 2. the final loss lands within a tolerance of the fault-free
//!    baseline (faults may reorder float summation and reroute
//!    dependencies, but must not corrupt the numerics);
//! 3. every restart replays at most `checkpoint_every - 1` epochs
//!    (checkpoint-bounded rollback);
//! 4. every rejoin restores the full world size.
//!
//! Schedules are derived from a single `u64` seed via SplitMix64, so a
//! failing seed reported by CI or `nts chaos` reproduces exactly.

use std::fmt::Write as _;

use ns_graph::datasets::by_name;
use ns_graph::Dataset;
use ns_gnn::{GnnModel, ModelKind};
use ns_net::fault::{Fault, FaultPlan, MsgSel};
use ns_net::membership::MembershipEventKind;
use ns_net::ClusterSpec;
use ns_runtime::{EngineKind, RecoveryConfig, RuntimeError, Trainer, TrainerConfig, TrainingReport};

/// Fixed workload the soak runs: small enough to execute hundreds of
/// times, large enough to exercise multi-chunk recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Registry dataset name.
    pub dataset: String,
    /// Materialization scale.
    pub scale: f64,
    /// Worker count (at least 2; kills need a survivor).
    pub workers: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Checkpoint cadence (bounds replay per restart).
    pub checkpoint_every: usize,
    /// Engine under test.
    pub engine: EngineKind,
    /// Relative final-loss tolerance versus the fault-free baseline.
    pub loss_tolerance: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            dataset: "google".to_string(),
            scale: 0.002,
            workers: 3,
            epochs: 6,
            checkpoint_every: 2,
            engine: EngineKind::DepComm,
            loss_tolerance: 0.15,
        }
    }
}

/// One generated schedule: the fault plan plus the recovery knobs it is
/// meant to be survived with.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Seed the schedule was derived from.
    pub seed: u64,
    /// Faults, in generation order.
    pub faults: Vec<Fault>,
    /// Whether failed workers re-admit at checkpoint boundaries.
    pub rejoin: bool,
}

impl ChaosSchedule {
    /// Human-readable one-line summary of the schedule.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for f in &self.faults {
            if !s.is_empty() {
                s.push(' ');
            }
            match f {
                Fault::Kill { worker, epoch } => {
                    let _ = write!(s, "kill:w{worker}@e{epoch}");
                }
                Fault::Straggle { worker, delay_ms } => {
                    let _ = write!(s, "straggle:w{worker}:{delay_ms}ms");
                }
                Fault::Drop { p, .. } => {
                    let _ = write!(s, "drop:{p:.2}");
                }
                Fault::Delay { delay_ms, .. } => {
                    let _ = write!(s, "delay:{delay_ms}ms");
                }
                Fault::Duplicate { p, .. } => {
                    let _ = write!(s, "dup:{p:.2}");
                }
            }
        }
        if self.rejoin {
            s.push_str(" +rejoin");
        }
        if s.is_empty() {
            s.push_str("(fault-free)");
        }
        s
    }
}

/// SplitMix64: the standard 64-bit mixing PRNG. Deterministic and
/// dependency-free, so schedules reproduce everywhere.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Derives a randomized fault schedule from `seed`. Every schedule is
/// survivable by construction: at most `max_restarts` kills, each at a
/// distinct epoch for a distinct worker, and message-level faults stay
/// within probabilities the retransmit/dedup machinery absorbs.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosSchedule {
    let mut rng = SplitMix64(seed ^ 0x6e74_735f_6368_616f); // "nts_chao"
    let mut faults = Vec::new();
    let restart_budget = RecoveryConfig::every(cfg.checkpoint_every).max_restarts as u64;

    // 0..=min(2, budget) kills, distinct (worker, epoch) pairs.
    let n_kills = rng.below(restart_budget.min(2) + 1);
    let mut used_workers = Vec::new();
    let mut used_epochs = Vec::new();
    for _ in 0..n_kills {
        let worker = rng.below(cfg.workers as u64) as usize;
        let epoch = 1 + rng.below(cfg.epochs as u64 - 1) as usize;
        if used_workers.contains(&worker) || used_epochs.contains(&epoch) {
            continue; // fewer kills this seed; keeps the pair distinct
        }
        used_workers.push(worker);
        used_epochs.push(epoch);
        faults.push(Fault::Kill { worker, epoch });
    }

    // Optional straggler on a worker that is not killed.
    if rng.unit() < 0.5 {
        let worker = rng.below(cfg.workers as u64) as usize;
        if !used_workers.contains(&worker) {
            let delay_ms = 5 + rng.below(21);
            faults.push(Fault::Straggle { worker, delay_ms });
        }
    }

    // Message-level noise: drop (modeled loss + retransmission), fixed
    // extra latency, duplicate delivery.
    if rng.unit() < 0.5 {
        faults.push(Fault::Drop { sel: MsgSel::any(), p: rng.unit() * 0.3 });
    }
    if rng.unit() < 0.5 {
        faults.push(Fault::Delay { sel: MsgSel::any(), delay_ms: 1 + rng.below(10) });
    }
    if rng.unit() < 0.5 {
        faults.push(Fault::Duplicate { sel: MsgSel::any(), p: rng.unit() * 0.5 });
    }

    ChaosSchedule { seed, faults, rejoin: rng.unit() < 0.7 }
}

/// The fault-free reference run the invariants compare against.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Final loss of the clean run.
    pub final_loss: f64,
}

/// Outcome of one chaos run: the report's robustness-relevant facts plus
/// any invariant violations (empty means the run upheld all of them).
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Seed of the schedule that ran.
    pub seed: u64,
    /// One-line schedule description.
    pub schedule: String,
    /// Final loss under faults.
    pub final_loss: f64,
    /// Rollback-and-resume recoveries performed.
    pub recoveries: usize,
    /// Membership transitions (failures, evictions, rejoins).
    pub membership_events: usize,
    /// Adaptive replans performed.
    pub replans: usize,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn materialize(cfg: &ChaosConfig) -> Result<(Dataset, GnnModel), String> {
    let spec = by_name(&cfg.dataset)
        .ok_or_else(|| format!("unknown dataset {:?}", cfg.dataset))?;
    let ds = spec.materialize(cfg.scale, 11);
    let model =
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 5);
    Ok((ds, model))
}

fn train(
    cfg: &ChaosConfig,
    ds: &Dataset,
    model: &GnnModel,
    fault: FaultPlan,
    rejoin: bool,
) -> Result<TrainingReport, RuntimeError> {
    let mut tc = TrainerConfig::new(cfg.engine, ClusterSpec::aliyun_ecs(cfg.workers));
    tc.fault = fault;
    tc.recovery = if rejoin {
        RecoveryConfig::every(cfg.checkpoint_every).with_rejoin()
    } else {
        RecoveryConfig::every(cfg.checkpoint_every)
    };
    Trainer::prepare(ds, model, tc)?.train(cfg.epochs)
}

/// Runs the fault-free reference for `cfg`.
pub fn baseline(cfg: &ChaosConfig) -> Result<Baseline, String> {
    let (ds, model) = materialize(cfg)?;
    let report = train(cfg, &ds, &model, FaultPlan::default(), false)
        .map_err(|e| format!("baseline run failed: {e}"))?;
    Ok(Baseline { final_loss: report.final_loss() as f64 })
}

/// Checks the report of a chaos run against the soak invariants.
fn check_invariants(
    cfg: &ChaosConfig,
    schedule: &ChaosSchedule,
    base: &Baseline,
    report: &TrainingReport,
) -> Vec<String> {
    let mut v = Vec::new();

    // 1. Termination: every epoch accounted for, finite loss.
    if report.epochs.len() != cfg.epochs {
        v.push(format!(
            "expected {} epochs, got {}",
            cfg.epochs,
            report.epochs.len()
        ));
    }
    let loss = report.final_loss() as f64;
    if !loss.is_finite() {
        v.push(format!("non-finite final loss {loss}"));
    }

    // 2. Loss within tolerance of the fault-free baseline.
    let rel = (loss - base.final_loss).abs() / base.final_loss.abs().max(1e-9);
    if rel > cfg.loss_tolerance {
        v.push(format!(
            "final loss {loss:.6} deviates {:.1}% from baseline {:.6} (> {:.1}%)",
            rel * 100.0,
            base.final_loss,
            cfg.loss_tolerance * 100.0
        ));
    }

    // 3. Checkpoint-bounded replay: each recovery pairs (in order) with
    // a Failed membership event carrying the epoch the failure surfaced
    // in; the rollback may replay at most cadence-1 completed epochs.
    let failures: Vec<_> = report
        .membership
        .iter()
        .filter(|e| e.kind == MembershipEventKind::Failed)
        .collect();
    if failures.len() != report.recoveries.len() {
        v.push(format!(
            "{} Failed events but {} recoveries",
            failures.len(),
            report.recoveries.len()
        ));
    }
    for (fail, (worker, rollback_epoch, _)) in failures.iter().zip(&report.recoveries) {
        if fail.worker != *worker {
            v.push(format!(
                "failure of worker {} recovered as worker {worker}",
                fail.worker
            ));
        }
        if fail.epoch < *rollback_epoch {
            v.push(format!(
                "rollback to epoch {rollback_epoch} is after the failure at {}",
                fail.epoch
            ));
        } else if fail.epoch - rollback_epoch > cfg.checkpoint_every - 1 {
            v.push(format!(
                "restart replays {} epochs (failure at {}, rollback to \
                 {rollback_epoch}); cadence {} bounds replay to {}",
                fail.epoch - rollback_epoch,
                fail.epoch,
                cfg.checkpoint_every,
                cfg.checkpoint_every - 1
            ));
        }
    }
    if report.recoveries.len() > RecoveryConfig::every(cfg.checkpoint_every).max_restarts {
        v.push(format!("{} recoveries exceed the restart budget", report.recoveries.len()));
    }

    // 4. Every rejoin restores the full world: replay the membership log
    // against the world size. The trainer re-admits every missing member
    // at one checkpoint boundary, logging one Rejoined event per slot, so
    // the full-world check applies after the *last* Rejoined of each
    // same-epoch batch, not after each individual event.
    let mut active = cfg.workers;
    for (i, e) in report.membership.iter().enumerate() {
        match e.kind {
            MembershipEventKind::Failed | MembershipEventKind::Evicted => {
                active -= 1;
            }
            MembershipEventKind::Rejoined => {
                active += 1;
                let batch_continues = report.membership.get(i + 1).is_some_and(|n| {
                    n.kind == MembershipEventKind::Rejoined && n.epoch == e.epoch
                });
                if active != cfg.workers && !batch_continues {
                    v.push(format!(
                        "world has {active}/{} members after worker {} rejoined at \
                         epoch {}",
                        cfg.workers, e.worker, e.epoch
                    ));
                }
            }
        }
    }
    if schedule.rejoin && !report.membership.is_empty() {
        // With rejoin on, any member lost before the last checkpoint
        // boundary must have been re-admitted by then.
        let last_boundary = (cfg.epochs / cfg.checkpoint_every) * cfg.checkpoint_every;
        let lost_early = report
            .membership
            .iter()
            .filter(|e| {
                e.kind != MembershipEventKind::Rejoined
                    && e.epoch + cfg.checkpoint_every < last_boundary
            })
            .count();
        let rejoined = report
            .membership
            .iter()
            .filter(|e| e.kind == MembershipEventKind::Rejoined)
            .count();
        if rejoined < lost_early {
            v.push(format!(
                "{lost_early} members lost with a boundary to spare but only \
                 {rejoined} rejoined"
            ));
        }
    }

    v
}

/// Runs one seeded schedule and checks the invariants against `base`.
pub fn run_schedule(
    cfg: &ChaosConfig,
    base: &Baseline,
    schedule: &ChaosSchedule,
) -> ChaosOutcome {
    let describe = schedule.describe();
    let (ds, model) = match materialize(cfg) {
        Ok(x) => x,
        Err(e) => {
            return ChaosOutcome {
                seed: schedule.seed,
                schedule: describe,
                final_loss: f64::NAN,
                recoveries: 0,
                membership_events: 0,
                replans: 0,
                violations: vec![e],
            }
        }
    };
    let mut plan = FaultPlan::default().with_seed(schedule.seed);
    for f in &schedule.faults {
        plan = plan.with_fault(f.clone());
    }
    match train(cfg, &ds, &model, plan, schedule.rejoin) {
        Ok(report) => {
            let violations = check_invariants(cfg, schedule, base, &report);
            ChaosOutcome {
                seed: schedule.seed,
                schedule: describe,
                final_loss: report.final_loss() as f64,
                recoveries: report.recoveries.len(),
                membership_events: report.membership.len(),
                replans: report.replans.len(),
                violations,
            }
        }
        Err(e) => ChaosOutcome {
            seed: schedule.seed,
            schedule: describe,
            final_loss: f64::NAN,
            recoveries: 0,
            membership_events: 0,
            replans: 0,
            violations: vec![format!("run failed: {e}")],
        },
    }
}

/// Runs `count` schedules seeded `base_seed, base_seed+1, …` and returns
/// every outcome. The fault-free baseline is computed once.
pub fn soak(cfg: &ChaosConfig, base_seed: u64, count: usize) -> Result<Vec<ChaosOutcome>, String> {
    let base = baseline(cfg)?;
    Ok((0..count as u64)
        .map(|i| run_schedule(cfg, &base, &generate(base_seed + i, cfg)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        for seed in 0..50 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.describe(), b.describe());
            assert_eq!(a.rejoin, b.rejoin);
        }
    }

    #[test]
    fn schedules_vary_across_seeds() {
        let cfg = ChaosConfig::default();
        let descriptions: std::collections::BTreeSet<String> =
            (0..32).map(|s| generate(s, &cfg).describe()).collect();
        assert!(
            descriptions.len() > 16,
            "32 seeds should produce many distinct schedules, got {}",
            descriptions.len()
        );
    }

    #[test]
    fn generated_kills_fit_the_restart_budget() {
        let cfg = ChaosConfig::default();
        for seed in 0..200 {
            let s = generate(seed, &cfg);
            let kills = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::Kill { .. }))
                .count();
            assert!(kills <= RecoveryConfig::every(cfg.checkpoint_every).max_restarts);
            for f in &s.faults {
                match f {
                    Fault::Kill { worker, epoch } => {
                        assert!(*worker < cfg.workers);
                        assert!(*epoch >= 1 && *epoch < cfg.epochs);
                    }
                    Fault::Straggle { worker, delay_ms } => {
                        assert!(*worker < cfg.workers);
                        assert!((5..=25).contains(delay_ms));
                        // Never straggles a worker that also dies.
                        assert!(!s.faults.iter().any(|k| matches!(
                            k,
                            Fault::Kill { worker: kw, .. } if kw == worker
                        )));
                    }
                    Fault::Drop { p, .. } => assert!(*p <= 0.3),
                    Fault::Delay { delay_ms, .. } => assert!(*delay_ms <= 10),
                    Fault::Duplicate { p, .. } => assert!(*p <= 0.5),
                }
            }
        }
    }

    #[test]
    fn fault_free_schedule_passes_invariants() {
        let cfg = ChaosConfig {
            epochs: 2,
            ..ChaosConfig::default()
        };
        let base = baseline(&cfg).unwrap();
        let clean = ChaosSchedule { seed: 0, faults: Vec::new(), rejoin: false };
        let outcome = run_schedule(&cfg, &base, &clean);
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert_eq!(outcome.recoveries, 0);
    }
}

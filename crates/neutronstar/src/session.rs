//! The high-level training session builder.

use ns_gnn::GnnModel;
use ns_graph::{Dataset, Partitioner};
use ns_net::fault::FaultPlan;
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::exec::{OptimizerKind, RecvConfig, SyncMode, WatchdogConfig};
use ns_runtime::trainer::{SimSummary, Trainer, TrainerConfig};
use ns_runtime::{
    EngineKind, HybridConfig, RecoveryConfig, RuntimeError, StoreConfig, TrainingReport,
};

/// Builder for a [`TrainingSession`].
///
/// Mirrors the knobs the paper exposes: engine (DepCache / DepComm /
/// Hybrid), graph partitioner (chunk / metis-like / fennel), cluster
/// (Aliyun ECS or IBV presets, any worker count), and the three system
/// optimizations of Fig. 9.
///
/// Every run is metered: the returned
/// [`TrainingReport::metrics`](ns_runtime::TrainingReport) carries
/// per-worker phase timings, traffic counters, and trace spans that the
/// `ns-metrics` sinks render as a summary table, JSON, or a Chrome
/// trace (see `docs/OBSERVABILITY.md`).
///
/// ```
/// use neutronstar::prelude::*;
///
/// let dataset = DatasetSpec::named("cora").unwrap().materialize(0.2, 3);
/// let model = neutronstar::gnn::GnnModel::two_layer(
///     neutronstar::gnn::ModelKind::Gcn,
///     dataset.feature_dim(),
///     16,
///     dataset.num_classes,
///     1,
/// );
/// let session = TrainingSession::builder()
///     .engine(EngineKind::Hybrid)
///     .cluster(ClusterSpec::aliyun_ecs(2))
///     .build(&dataset, &model)
///     .unwrap();
/// let report = session.train(2).unwrap();
///
/// // Per-worker frames plus the coordinator-free run summary.
/// assert_eq!(report.metrics.worker_ids(), vec![0, 1]);
/// assert!(report.metrics.total_counter("net.sent.bytes") > 0);
/// let json = neutronstar::metrics::to_json(&report.metrics);
/// assert!(json.contains("\"schema\""));
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    engine: EngineKind,
    partitioner: Partitioner,
    cluster: ClusterSpec,
    opts: ExecOptions,
    lr: f32,
    optimizer: OptimizerKind,
    hybrid: HybridConfig,
    sync: SyncMode,
    enforce_memory: bool,
    fault: FaultPlan,
    recovery: RecoveryConfig,
    recv: RecvConfig,
    threads: usize,
    store: StoreConfig,
    watchdog: Option<WatchdogConfig>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self {
            engine: EngineKind::Hybrid,
            partitioner: Partitioner::Chunk,
            cluster: ClusterSpec::aliyun_ecs(4),
            opts: ExecOptions::all(),
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            hybrid: HybridConfig::default(),
            sync: SyncMode::AllReduce,
            enforce_memory: true,
            fault: FaultPlan::default(),
            recovery: RecoveryConfig::default(),
            recv: RecvConfig::default(),
            threads: 0,
            store: StoreConfig::default(),
            watchdog: None,
        }
    }
}

impl SessionBuilder {
    /// Dependency engine (default: Hybrid).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Graph partitioner (default: chunk-based).
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Cluster model (default: 4-worker Aliyun ECS preset).
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// System-optimization toggles (default: all enabled).
    pub fn optimizations(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Learning rate (default: 0.01).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Optimizer (default: Adam).
    pub fn optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Hybrid-engine knobs (memory budget, Fig. 11 ratio override).
    pub fn hybrid(mut self, hybrid: HybridConfig) -> Self {
        self.hybrid = hybrid;
        self
    }

    /// Gradient synchronization strategy (default: ring all-reduce; the
    /// paper notes the Parameter-Server model is an orthogonal drop-in).
    pub fn sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Disable the projected device-memory check (useful for what-if runs
    /// of engines the modeled device could not actually hold).
    pub fn without_memory_check(mut self) -> Self {
        self.enforce_memory = false;
        self
    }

    /// Deterministic fault injection (default: no faults).
    pub fn faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Checkpoint/rollback policy (default: disabled — a worker failure
    /// surfaces as [`RuntimeError::WorkerFailed`]).
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Receive timeout/retry policy for the execution fabric.
    pub fn recv_policy(mut self, recv: RecvConfig) -> Self {
        self.recv = recv;
        self
    }

    /// Liveness watchdog over worker epoch progress (default: off). A
    /// worker that stops beating past the learned deadline is cancelled
    /// and routed through the same eviction/rejoin path as a crash.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Persist every checkpoint as a CRC-versioned generation under
    /// `dir` (default: memory-only). Rollbacks then read the durable
    /// store and skip damaged generations — the honest process-restart
    /// path.
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store.dir = Some(dir.into());
        self
    }

    /// How many durable generations to retain (default: 3; clamped to
    /// at least 1). Only meaningful with [`checkpoint_dir`](Self::checkpoint_dir).
    pub fn keep_checkpoints(mut self, k: usize) -> Self {
        self.store = self.store.keep(k);
        self
    }

    /// Intra-worker compute threads for the tensor/aggregation kernels
    /// (default: 0 = auto — one thread per available core, capped by the
    /// `ns-par` pool; results are bit-identical at any setting).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Plans the session (partitioning, dependency decisions, memory
    /// validation, cost probing).
    pub fn build<'a>(
        self,
        dataset: &'a Dataset,
        model: &'a GnnModel,
    ) -> Result<TrainingSession<'a>, RuntimeError> {
        let cfg = TrainerConfig {
            engine: self.engine,
            partitioner: self.partitioner,
            cluster: self.cluster,
            opts: self.opts,
            lr: self.lr,
            optimizer: self.optimizer,
            hybrid: self.hybrid,
            broadcast_full_partition: false,
            sync: self.sync,
            enforce_memory: self.enforce_memory,
            fault: self.fault,
            recovery: self.recovery,
            recv: self.recv,
            threads: self.threads,
            store: self.store,
            watchdog: self.watchdog,
        };
        Ok(TrainingSession { trainer: Trainer::prepare(dataset, model, cfg)? })
    }
}

/// A planned training session, ready to run.
pub struct TrainingSession<'a> {
    trainer: Trainer<'a>,
}

impl<'a> TrainingSession<'a> {
    /// Starts a builder.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Runs `epochs` epochs of real distributed training (one thread per
    /// modeled worker) and returns numerics plus simulated cluster timing.
    pub fn train(&self, epochs: usize) -> Result<TrainingReport, RuntimeError> {
        self.trainer.train(epochs)
    }

    /// Simulates one epoch on the modeled cluster without training.
    pub fn simulate_epoch(&self) -> SimSummary {
        self.trainer.simulate_epoch()
    }

    /// Access to the underlying trainer (plans, probed costs).
    pub fn trainer(&self) -> &Trainer<'a> {
        &self.trainer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::ModelKind;
    use ns_graph::datasets::by_name;

    #[test]
    fn builder_roundtrip_trains() {
        let ds = by_name("cora").unwrap().materialize(0.2, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 1);
        let session = TrainingSession::builder()
            .engine(EngineKind::DepComm)
            .cluster(ClusterSpec::aliyun_ecs(2))
            .learning_rate(0.02)
            .build(&ds, &model)
            .unwrap();
        let report = session.train(2).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.engine, "DepComm");
    }

    #[test]
    fn builder_wires_fault_and_recovery() {
        let ds = by_name("cora").unwrap().materialize(0.2, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 1);
        let session = TrainingSession::builder()
            .engine(EngineKind::DepComm)
            .cluster(ClusterSpec::aliyun_ecs(3))
            .faults(FaultPlan::kill(2, 1))
            .recovery(RecoveryConfig::every(1))
            .build(&ds, &model)
            .unwrap();
        let report = session.train(3).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.recoveries.len(), 1);
    }

    #[test]
    fn builder_wires_durable_checkpoints() {
        let dir = std::env::temp_dir()
            .join(format!("nts-session-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = by_name("cora").unwrap().materialize(0.2, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 1);
        let session = TrainingSession::builder()
            .engine(EngineKind::DepComm)
            .cluster(ClusterSpec::aliyun_ecs(2))
            .recovery(RecoveryConfig::every(1))
            .checkpoint_dir(&dir)
            .keep_checkpoints(2)
            .build(&ds, &model)
            .unwrap();
        let report = session.train(3).unwrap();
        assert_eq!(report.epochs.len(), 3);
        let generations: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        assert!(
            (1..=2).contains(&generations.len()),
            "retention keeps at most 2 generations, found {generations:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_without_training() {
        let ds = by_name("cora").unwrap().materialize(0.2, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gat, ds.feature_dim(), 8, ds.num_classes, 1);
        let session = TrainingSession::builder()
            .engine(EngineKind::DepCache)
            .build(&ds, &model)
            .unwrap();
        assert!(session.simulate_epoch().epoch_seconds > 0.0);
    }
}

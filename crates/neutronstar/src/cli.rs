//! Argument parsing and command dispatch for the `nts` command-line tool.
//!
//! Hand-rolled flag parsing (no CLI dependency): `--key value` pairs after
//! a subcommand. Parsing is separated from execution so it can be unit
//! tested without running anything.

use std::collections::BTreeMap;

use ns_gnn::ModelKind;
use ns_graph::Partitioner;
use ns_net::fault::{parse_fault, FaultPlan};
use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::exec::SyncMode;
use ns_runtime::serve::load::OpenLoop;
use ns_runtime::{EngineKind, RecoveryConfig, RecvConfig, ServeConfig, StoreConfig};

/// A parsed `nts` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `nts datasets` — list the registry.
    Datasets,
    /// `nts train ...` — real distributed training.
    Train(RunArgs),
    /// `nts simulate ...` — plan + simulate one epoch, no training.
    Simulate(RunArgs),
    /// `nts probe ...` — print the Algorithm 4 cost factors.
    Probe(RunArgs),
    /// `nts chaos ...` — seeded chaos soak over randomized fault
    /// schedules.
    Chaos(ChaosArgs),
    /// `nts serve ...` — sharded read-only inference serving from a
    /// durable checkpoint store.
    Serve(ServeArgs),
    /// `nts help`.
    Help,
}

/// Options for `nts serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Dataset name from the registry. Must match the training run that
    /// produced the checkpoint (parameter shapes are validated).
    pub dataset: String,
    /// Materialization scale; must match training.
    pub scale: f64,
    /// Model architecture; must match training.
    pub model: ModelKind,
    /// Hidden width (defaults to the dataset's paper pairing).
    pub hidden: Option<usize>,
    /// Dataset/model seed; must match training so the materialized
    /// graph is identical.
    pub seed: u64,
    /// Durable checkpoint store directory (required).
    pub ckpt_dir: String,
    /// Durable generations retained in the store.
    pub keep_checkpoints: usize,
    /// Shard worker count.
    pub shards: usize,
    /// Partitioner assigning vertices to shards.
    pub partitioner: Partitioner,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Maximum queries per dispatched batch.
    pub batch_max: usize,
    /// Adaptive batch accretion window, µs.
    pub batch_window_us: u64,
    /// Maximum queries outstanding at the shards.
    pub inflight_cap: usize,
    /// Per-shard LRU feature-cache capacity, rows.
    pub cache_rows: usize,
    /// Frontend reply deadline before a shard is declared dead, ms.
    pub reply_timeout_ms: u64,
    /// Shard-to-shard feature-fetch deadline, ms.
    pub fetch_timeout_ms: u64,
    /// Modeled mirror-read penalty per fallback burst, µs.
    pub slow_path_us: u64,
    /// Queries the open-loop generator offers.
    pub queries: usize,
    /// Offered rate, queries per second.
    pub rate_qps: f64,
    /// Zipf skew of seed-vertex popularity (0 = uniform).
    pub zipf_s: f64,
    /// Raw `--fault` specs (repeatable); `kill:w<id>@e<n>` kills the
    /// shard at endpoint `<id>` once it sees query id `>= n`.
    pub faults: Vec<String>,
    /// Metrics JSON output path.
    pub metrics_out: Option<String>,
    /// `bench-serve/v1` report output path.
    pub report_out: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let sc = ServeConfig::default();
        Self {
            dataset: "google".to_string(),
            scale: 0.005,
            model: ModelKind::Gcn,
            hidden: None,
            seed: 42,
            ckpt_dir: String::new(),
            keep_checkpoints: 3,
            shards: sc.shards,
            partitioner: sc.partitioner,
            queue_capacity: sc.queue_capacity,
            batch_max: sc.batch_max,
            batch_window_us: sc.batch_window_us,
            inflight_cap: sc.inflight_cap,
            cache_rows: sc.cache_rows,
            reply_timeout_ms: sc.reply_timeout_ms,
            fetch_timeout_ms: sc.fetch_timeout_ms,
            slow_path_us: sc.slow_path_us,
            queries: 10_000,
            rate_qps: 2_000.0,
            zipf_s: 0.9,
            faults: Vec::new(),
            metrics_out: None,
            report_out: None,
        }
    }
}

impl ServeArgs {
    /// Compiles the `--fault` specs into a seeded [`FaultPlan`].
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default().with_seed(self.seed);
        for spec in &self.faults {
            plan.push_spec(spec)?;
        }
        Ok(plan)
    }

    /// The serving engine configuration these flags describe.
    pub fn serve_config(&self) -> Result<ServeConfig, String> {
        Ok(ServeConfig {
            shards: self.shards,
            partitioner: self.partitioner,
            queue_capacity: self.queue_capacity,
            batch_max: self.batch_max,
            batch_window_us: self.batch_window_us,
            inflight_cap: self.inflight_cap,
            cache_rows: self.cache_rows,
            reply_timeout_ms: self.reply_timeout_ms,
            fetch_timeout_ms: self.fetch_timeout_ms,
            slow_path_us: self.slow_path_us,
            fault: self.fault_plan()?,
        })
    }

    /// The seeded open-loop load specification.
    pub fn open_loop(&self) -> OpenLoop {
        OpenLoop {
            queries: self.queries,
            rate_qps: self.rate_qps,
            seed: self.seed,
            zipf_s: self.zipf_s,
        }
    }
}

/// Options for `nts chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosArgs {
    /// Number of seeded schedules to run.
    pub schedules: usize,
    /// Base seed; schedule `i` uses `seed + i`.
    pub seed: u64,
    /// Dataset name from the registry.
    pub dataset: String,
    /// Materialization scale.
    pub scale: f64,
    /// Worker count.
    pub workers: usize,
    /// Training epochs per schedule.
    pub epochs: usize,
    /// Checkpoint cadence in epochs.
    pub checkpoint_every: usize,
    /// Upper bound on generated wire-corruption probabilities; 0
    /// disables corrupt faults.
    pub corrupt: f64,
    /// Base directory for per-seed durable checkpoint stores. `None`
    /// lets the runner pick a scratch directory under the system temp
    /// dir (durable-store corruption faults need somewhere to land).
    pub ckpt_dir: Option<String>,
    /// Generate healable link-fault schedules (partitions,
    /// half-partitions, flaps) instead of the default process-fault
    /// matrix, and check the liveness invariant.
    pub partition: bool,
    /// Generate resource-exhaustion schedules (disk-full windows, slow
    /// disks, memory-pressure caps, hung workers) instead of the default
    /// process-fault matrix, and check the degrade-don't-die invariant.
    pub resource: bool,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        Self {
            schedules: 8,
            seed: 42,
            dataset: "google".to_string(),
            scale: 0.002,
            workers: 3,
            epochs: 6,
            checkpoint_every: 2,
            corrupt: 0.25,
            ckpt_dir: None,
            partition: false,
            resource: false,
        }
    }
}

/// Options shared by `train` / `simulate` / `probe`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Dataset name from the registry.
    pub dataset: String,
    /// Materialization scale.
    pub scale: f64,
    /// Model architecture.
    pub model: ModelKind,
    /// Hidden width (defaults to the dataset's paper pairing).
    pub hidden: Option<usize>,
    /// Engine.
    pub engine: EngineKind,
    /// Worker count.
    pub workers: usize,
    /// Intra-worker compute threads (0 = auto).
    pub threads: usize,
    /// Cluster preset (`ecs` or `ibv`).
    pub cluster: String,
    /// Partitioner.
    pub partitioner: Partitioner,
    /// Epochs (train only).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Optimization toggles.
    pub opts: ExecOptions,
    /// Gradient sync mode.
    pub sync: SyncMode,
    /// RNG seed.
    pub seed: u64,
    /// Checkpoint output path (train only).
    pub save: Option<String>,
    /// Raw `--fault` specs (repeatable), e.g. `kill:w2@e3`,
    /// `drop:rows:0.01`, `straggle:w1:20`.
    pub faults: Vec<String>,
    /// Checkpoint cadence in epochs; 0 disables recovery.
    pub checkpoint_every: usize,
    /// Durable checkpoint store directory; `None` keeps checkpoints
    /// memory-only.
    pub ckpt_dir: Option<String>,
    /// Durable generations to retain under `--ckpt-dir`.
    pub keep_checkpoints: usize,
    /// Override for the first receive window in milliseconds.
    pub recv_timeout_ms: Option<u64>,
    /// Override for the number of doubled-window receive retries.
    pub recv_retries: Option<u32>,
    /// Metrics JSON output path (train only).
    pub metrics_out: Option<String>,
    /// Chrome `trace_event` JSON output path (train only).
    pub trace_out: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            dataset: "google".to_string(),
            scale: 0.005,
            model: ModelKind::Gcn,
            hidden: None,
            engine: EngineKind::Hybrid,
            workers: 4,
            threads: 0,
            cluster: "ecs".to_string(),
            partitioner: Partitioner::Chunk,
            epochs: 10,
            lr: 0.01,
            opts: ExecOptions::all(),
            sync: SyncMode::AllReduce,
            seed: 42,
            save: None,
            faults: Vec::new(),
            checkpoint_every: 0,
            ckpt_dir: None,
            keep_checkpoints: 3,
            recv_timeout_ms: None,
            recv_retries: None,
            metrics_out: None,
            trace_out: None,
        }
    }
}

impl RunArgs {
    /// Builds the modeled cluster from the preset name and worker count.
    pub fn cluster_spec(&self) -> Result<ClusterSpec, String> {
        match self.cluster.as_str() {
            "ecs" => Ok(ClusterSpec::aliyun_ecs(self.workers)),
            "ibv" => Ok(ClusterSpec::ibv(self.workers)),
            "cpu" => Ok(ClusterSpec::cpu_single()),
            other => Err(format!("unknown cluster preset {other:?} (ecs|ibv|cpu)")),
        }
    }

    /// Compiles the `--fault` specs into a seeded [`FaultPlan`].
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default().with_seed(self.seed);
        for spec in &self.faults {
            plan.push_spec(spec)?;
        }
        Ok(plan)
    }

    /// The recovery policy implied by `--checkpoint-every`.
    pub fn recovery(&self) -> RecoveryConfig {
        RecoveryConfig::every(self.checkpoint_every)
    }

    /// The durable checkpoint store implied by `--ckpt-dir` /
    /// `--keep-checkpoints` (disabled when no directory is given).
    pub fn store(&self) -> StoreConfig {
        match &self.ckpt_dir {
            Some(dir) => StoreConfig::at(dir).keep(self.keep_checkpoints),
            None => StoreConfig::default(),
        }
    }

    /// The receive policy: defaults with any `--recv-timeout-ms` /
    /// `--recv-retries` overrides applied.
    pub fn recv(&self) -> RecvConfig {
        let mut rc = RecvConfig::default();
        if let Some(ms) = self.recv_timeout_ms {
            rc.timeout_ms = ms;
        }
        if let Some(n) = self.recv_retries {
            rc.retries = n;
        }
        rc
    }
}

/// Usage text.
pub const USAGE: &str = "\
nts — NeutronStar reproduction CLI

USAGE:
  nts datasets
  nts train    [options]
  nts simulate [options]
  nts probe    [options]
  nts chaos    [chaos options]
  nts serve    --ckpt-dir <path> [serve options]

OPTIONS (train/simulate/probe):
  --dataset <name>        registry name (default google)
  --scale <f>             materialization scale (default 0.005)
  --model <gcn|gin|gat|sage>
  --hidden <n>            hidden width (default: dataset pairing)
  --engine <depcache|depcomm|hybrid>
  --workers <n>           worker count (default 4)
  --threads <n>           intra-worker compute threads for the tensor
                          and aggregation kernels; 0 = auto (one per
                          core). Results are bit-identical at any
                          setting (default 0)
  --cluster <ecs|ibv|cpu> cluster preset (default ecs)
  --partitioner <chunk|metis|fennel>
  --epochs <n>            training epochs (default 10)
  --lr <f>                learning rate (default 0.01)
  --sync <allreduce|ps>   gradient synchronization
  --seed <n>              RNG seed (default 42)
  --save <path>           write trained checkpoint (train only)
  --fault <spec>          inject a deterministic fault (repeatable):
                            kill:w<id>@e<epoch>      crash a worker
                            straggle:w<id>:<ms>      slow every send
                            drop:<kind>:<p>          drop+retransmit
                            delay:<kind>:<ms>        fixed extra latency
                            dup:<kind>:<p>           duplicate messages
                            corrupt:<kind>:<p>       flip a bit per frame;
                                                     caught by CRC, clean
                                                     copy retransmitted
                            corrupt:ckpt:<p>[@e<n>]  flip a bit in the
                                                     durable generation
                                                     saved at boundary n
                            partition:w<a>-w<b>@e<f>-e<h>
                                                     sever the link both
                                                     ways from epoch f,
                                                     heal at epoch h
                            partition:w<a>->w<b>@e<f>-e<h>
                                                     sever one direction
                                                     only (half-open)
                            flap:w<a>-w<b>:<ms>:<duty>
                                                     link cycles with the
                                                     given period; the
                                                     first duty fraction
                                                     of each period holds
                                                     messages to the next
                                                     up-window
                            diskfull:e<f>-e<h>       checkpoint saves hit
                                                     ENOSPC from boundary
                                                     f until h; retention
                                                     squeezes, never aborts
                            slowdisk:<factor>        durable writes take
                                                     factor x as long
                            mempressure:<bytes>@e<f>-e<h>
                                                     tensor-pool budget
                                                     capped at <bytes> for
                                                     epochs [f, h)
                            hang:w<id>@e<epoch>      worker wedges outside
                                                     the fabric until the
                                                     liveness watchdog
                                                     cancels it
                          <kind> is rows|grads|allreduce|control|any;
                          drop/delay/dup/corrupt accept @e<n> and
                          @w<src>-w<dst>; see docs/FAULTS.md for the
                          full grammar and worked examples
  --checkpoint-every <n>  checkpoint cadence in epochs; 0 disables
                          rollback recovery (default 0)
  --ckpt-dir <path>       persist each checkpoint as a CRC-versioned
                          generation under <path>; rollbacks reload
                          from disk, skipping damaged generations
  --keep-checkpoints <k>  durable generations to retain (default 3)
  --recv-timeout-ms <ms>  first receive window before a timeout retry
                          (default 1000)
  --recv-retries <n>      doubled-window retries after the first
                          timeout before the peer is declared failed
                          (default 3)
  --metrics-out <path>    write run metrics as JSON (train only)
  --trace-out <path>      write a Chrome trace_event JSON timeline,
                          loadable in Perfetto / chrome://tracing
                          (train only)
  --no-ring --no-lockfree --no-overlap   disable optimizations

CHAOS OPTIONS (chaos):
  --schedules <n>         seeded fault schedules to run (default 8)
  --seed <n>              base seed; schedule i uses seed+i (default 42)
  --dataset <name>        registry name (default google)
  --scale <f>             materialization scale (default 0.002)
  --workers <n>           worker count (default 3)
  --epochs <n>            epochs per schedule (default 6)
  --checkpoint-every <n>  checkpoint cadence (default 2)
  --corrupt <p>           max wire-corruption probability per schedule;
                          0 disables corrupt faults (default 0.25)
  --ckpt-dir <path>       base directory for per-seed durable stores
                          (default: scratch under the system temp dir)
  --partition             generate healable link-fault schedules
                          (partitions, half-partitions, flaps; no
                          kills) and check the liveness invariant:
                          every run must terminate with no circuit
                          breaker stuck open against a healed link
  --resource              generate resource-exhaustion schedules
                          (disk-full windows, slow disks, memory-
                          pressure caps, hung workers) and check the
                          degrade-don't-die invariant: runs finish
                          within the loss tolerance, the pool high-
                          water mark respects the cap, a disk-full
                          run keeps >= 1 loadable generation, and
                          every hang trips the watchdog

SERVE OPTIONS (serve):
  --ckpt-dir <path>       durable checkpoint store to serve (required);
                          the newest intact generation is loaded
  --keep-checkpoints <k>  generations retained in the store (default 3)
  --dataset/--scale/--model/--hidden/--seed
                          must match the training run; parameter names
                          and shapes are validated at startup
  --shards <n>            shard workers, one partition each (default 2)
  --partitioner <chunk|metis|fennel>
  --queue-cap <n>         bounded admission queue; a full queue rejects
                          rather than blocks (default 1024)
  --batch-max <n>         max queries per dispatched batch (default 32)
  --batch-window-us <us>  adaptive batch accretion window (default 400)
  --inflight <n>          max queries outstanding at shards (default 256)
  --cache-rows <n>        per-shard LRU feature-cache rows (default 4096)
  --reply-timeout-ms <ms> shard reply deadline before it is declared
                          dead and its queries reroute (default 250)
  --fetch-timeout-ms <ms> shard-to-shard feature-fetch deadline before
                          the mirror fallback (default 100)
  --slow-path-us <us>     modeled mirror-read penalty (default 300)
  --queries <n>           open-loop queries to offer (default 10000)
  --rate <qps>            offered rate (default 2000)
  --zipf <s>              seed-vertex popularity skew; 0 = uniform
                          (default 0.9)
  --fault <spec>          deterministic fault (repeatable); for serve,
                          kill:w<id>@e<n> kills the shard at endpoint
                          <id> (shards are 1..=S) once it receives a
                          query id >= n; wire faults apply to serve
                          traffic and heal via CRC + retransmission
  --metrics-out <path>    write run metrics as JSON
  --report <path>         write a bench-serve/v1 JSON report
";

fn parse_flag_value<'a>(
    flags: &'a BTreeMap<String, String>,
    key: &str,
) -> Option<&'a String> {
    flags.get(key)
}

/// Parses CLI arguments (excluding the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "datasets" => return Ok(Command::Datasets),
        "chaos" => return parse_chaos(&args[1..]),
        "serve" => return parse_serve(&args[1..]),
        "train" | "simulate" | "probe" => {}
        other => return Err(format!("unknown subcommand {other:?}")),
    }

    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let mut switches: Vec<String> = Vec::new();
    let mut faults: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        if matches!(key, "no-ring" | "no-lockfree" | "no-overlap") {
            switches.push(key.to_string());
        } else if key == "fault" {
            // Repeatable: each occurrence adds one fault to the plan.
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            parse_fault(value)?; // validate eagerly for a good error
            faults.push(value.clone());
        } else {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
        }
    }

    let mut ra = RunArgs::default();
    if let Some(v) = parse_flag_value(&flags, "dataset") {
        ra.dataset = v.clone();
    }
    if let Some(v) = parse_flag_value(&flags, "scale") {
        ra.scale = v.parse().map_err(|_| format!("bad --scale {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "model") {
        ra.model = match v.as_str() {
            "gcn" => ModelKind::Gcn,
            "gin" => ModelKind::Gin,
            "gat" => ModelKind::Gat,
            "sage" => ModelKind::Sage,
            _ => return Err(format!("bad --model {v:?}")),
        };
    }
    if let Some(v) = parse_flag_value(&flags, "hidden") {
        ra.hidden = Some(v.parse().map_err(|_| format!("bad --hidden {v:?}"))?);
    }
    if let Some(v) = parse_flag_value(&flags, "engine") {
        ra.engine = match v.as_str() {
            "depcache" => EngineKind::DepCache,
            "depcomm" => EngineKind::DepComm,
            "hybrid" => EngineKind::Hybrid,
            _ => return Err(format!("bad --engine {v:?}")),
        };
    }
    if let Some(v) = parse_flag_value(&flags, "workers") {
        ra.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "threads") {
        ra.threads = v.parse().map_err(|_| format!("bad --threads {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "cluster") {
        ra.cluster = v.clone();
    }
    if let Some(v) = parse_flag_value(&flags, "partitioner") {
        ra.partitioner = match v.as_str() {
            "chunk" => Partitioner::Chunk,
            "metis" | "metis-like" => Partitioner::MetisLike,
            "fennel" => Partitioner::Fennel,
            _ => return Err(format!("bad --partitioner {v:?}")),
        };
    }
    if let Some(v) = parse_flag_value(&flags, "epochs") {
        ra.epochs = v.parse().map_err(|_| format!("bad --epochs {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "lr") {
        ra.lr = v.parse().map_err(|_| format!("bad --lr {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "sync") {
        ra.sync = match v.as_str() {
            "allreduce" => SyncMode::AllReduce,
            "ps" | "parameter-server" => SyncMode::ParameterServer,
            _ => return Err(format!("bad --sync {v:?}")),
        };
    }
    if let Some(v) = parse_flag_value(&flags, "seed") {
        ra.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "save") {
        ra.save = Some(v.clone());
    }
    if let Some(v) = parse_flag_value(&flags, "checkpoint-every") {
        ra.checkpoint_every =
            v.parse().map_err(|_| format!("bad --checkpoint-every {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "ckpt-dir") {
        ra.ckpt_dir = Some(v.clone());
    }
    if let Some(v) = parse_flag_value(&flags, "keep-checkpoints") {
        ra.keep_checkpoints =
            v.parse().map_err(|_| format!("bad --keep-checkpoints {v:?}"))?;
    }
    if let Some(v) = parse_flag_value(&flags, "recv-timeout-ms") {
        ra.recv_timeout_ms =
            Some(v.parse().map_err(|_| format!("bad --recv-timeout-ms {v:?}"))?);
    }
    if let Some(v) = parse_flag_value(&flags, "recv-retries") {
        ra.recv_retries =
            Some(v.parse().map_err(|_| format!("bad --recv-retries {v:?}"))?);
    }
    if let Some(v) = parse_flag_value(&flags, "metrics-out") {
        ra.metrics_out = Some(v.clone());
    }
    if let Some(v) = parse_flag_value(&flags, "trace-out") {
        ra.trace_out = Some(v.clone());
    }
    ra.faults = faults;
    for s in switches {
        match s.as_str() {
            "no-ring" => ra.opts.ring = false,
            "no-lockfree" => ra.opts.lock_free = false,
            "no-overlap" => ra.opts.overlap = false,
            _ => unreachable!(),
        }
    }

    Ok(match sub.as_str() {
        "train" => Command::Train(ra),
        "simulate" => Command::Simulate(ra),
        "probe" => Command::Probe(ra),
        _ => unreachable!(),
    })
}

/// Parses the flags of `nts serve`.
fn parse_serve(args: &[String]) -> Result<Command, String> {
    let mut sa = ServeArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        match key {
            "dataset" => sa.dataset = value.clone(),
            "scale" => {
                sa.scale = value.parse().map_err(|_| format!("bad --scale {value:?}"))?;
            }
            "model" => {
                sa.model = match value.as_str() {
                    "gcn" => ModelKind::Gcn,
                    "gin" => ModelKind::Gin,
                    "gat" => ModelKind::Gat,
                    "sage" => ModelKind::Sage,
                    _ => return Err(format!("bad --model {value:?}")),
                };
            }
            "hidden" => {
                sa.hidden =
                    Some(value.parse().map_err(|_| format!("bad --hidden {value:?}"))?);
            }
            "seed" => {
                sa.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?;
            }
            "ckpt-dir" => sa.ckpt_dir = value.clone(),
            "keep-checkpoints" => {
                sa.keep_checkpoints = value
                    .parse()
                    .map_err(|_| format!("bad --keep-checkpoints {value:?}"))?;
            }
            "shards" => {
                sa.shards = value.parse().map_err(|_| format!("bad --shards {value:?}"))?;
            }
            "partitioner" => {
                sa.partitioner = match value.as_str() {
                    "chunk" => Partitioner::Chunk,
                    "metis" | "metis-like" => Partitioner::MetisLike,
                    "fennel" => Partitioner::Fennel,
                    _ => return Err(format!("bad --partitioner {value:?}")),
                };
            }
            "queue-cap" => {
                sa.queue_capacity =
                    value.parse().map_err(|_| format!("bad --queue-cap {value:?}"))?;
            }
            "batch-max" => {
                sa.batch_max =
                    value.parse().map_err(|_| format!("bad --batch-max {value:?}"))?;
            }
            "batch-window-us" => {
                sa.batch_window_us = value
                    .parse()
                    .map_err(|_| format!("bad --batch-window-us {value:?}"))?;
            }
            "inflight" => {
                sa.inflight_cap =
                    value.parse().map_err(|_| format!("bad --inflight {value:?}"))?;
            }
            "cache-rows" => {
                sa.cache_rows =
                    value.parse().map_err(|_| format!("bad --cache-rows {value:?}"))?;
            }
            "reply-timeout-ms" => {
                sa.reply_timeout_ms = value
                    .parse()
                    .map_err(|_| format!("bad --reply-timeout-ms {value:?}"))?;
            }
            "fetch-timeout-ms" => {
                sa.fetch_timeout_ms = value
                    .parse()
                    .map_err(|_| format!("bad --fetch-timeout-ms {value:?}"))?;
            }
            "slow-path-us" => {
                sa.slow_path_us =
                    value.parse().map_err(|_| format!("bad --slow-path-us {value:?}"))?;
            }
            "queries" => {
                sa.queries =
                    value.parse().map_err(|_| format!("bad --queries {value:?}"))?;
            }
            "rate" => {
                sa.rate_qps = value.parse().map_err(|_| format!("bad --rate {value:?}"))?;
                if sa.rate_qps <= 0.0 {
                    return Err(format!("--rate {value:?} must be positive"));
                }
            }
            "zipf" => {
                sa.zipf_s = value.parse().map_err(|_| format!("bad --zipf {value:?}"))?;
                if sa.zipf_s < 0.0 {
                    return Err(format!("--zipf {value:?} must be >= 0"));
                }
            }
            "fault" => {
                parse_fault(value)?; // validate eagerly for a good error
                sa.faults.push(value.clone());
            }
            "metrics-out" => sa.metrics_out = Some(value.clone()),
            "report" => sa.report_out = Some(value.clone()),
            other => return Err(format!("unknown serve flag --{other}")),
        }
    }
    if sa.ckpt_dir.is_empty() {
        return Err(
            "serve needs --ckpt-dir (a durable store written by \
             `nts train --ckpt-dir ...`)"
                .to_string(),
        );
    }
    if sa.shards == 0 {
        return Err("serve needs --shards >= 1".to_string());
    }
    if sa.queue_capacity == 0 || sa.batch_max == 0 || sa.inflight_cap == 0 {
        return Err(
            "--queue-cap, --batch-max, and --inflight must all be >= 1".to_string()
        );
    }
    Ok(Command::Serve(sa))
}

/// Parses the flags of `nts chaos`.
fn parse_chaos(args: &[String]) -> Result<Command, String> {
    let mut ca = ChaosArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        if key == "partition" {
            ca.partition = true;
            continue;
        }
        if key == "resource" {
            ca.resource = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        match key {
            "schedules" => {
                ca.schedules =
                    value.parse().map_err(|_| format!("bad --schedules {value:?}"))?;
            }
            "seed" => {
                ca.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?;
            }
            "dataset" => ca.dataset = value.clone(),
            "scale" => {
                ca.scale = value.parse().map_err(|_| format!("bad --scale {value:?}"))?;
            }
            "workers" => {
                ca.workers =
                    value.parse().map_err(|_| format!("bad --workers {value:?}"))?;
            }
            "epochs" => {
                ca.epochs = value.parse().map_err(|_| format!("bad --epochs {value:?}"))?;
            }
            "checkpoint-every" => {
                ca.checkpoint_every = value
                    .parse()
                    .map_err(|_| format!("bad --checkpoint-every {value:?}"))?;
            }
            "corrupt" => {
                ca.corrupt =
                    value.parse().map_err(|_| format!("bad --corrupt {value:?}"))?;
                if !(0.0..=1.0).contains(&ca.corrupt) {
                    return Err(format!("--corrupt {value:?} must be in [0, 1]"));
                }
            }
            "ckpt-dir" => ca.ckpt_dir = Some(value.clone()),
            other => return Err(format!("unknown chaos flag --{other}")),
        }
    }
    if ca.workers < 2 {
        return Err("chaos needs --workers >= 2 (kills need a survivor)".to_string());
    }
    if ca.checkpoint_every == 0 || ca.epochs <= ca.checkpoint_every {
        return Err("chaos needs 0 < --checkpoint-every < --epochs".to_string());
    }
    if ca.partition && ca.resource {
        return Err("--partition and --resource are mutually exclusive matrices".to_string());
    }
    if ca.resource && ca.epochs <= ca.checkpoint_every + 1 {
        return Err(
            "--resource needs --epochs > --checkpoint-every + 1 (a disk-full \
             window must leave a clean final boundary)"
                .to_string(),
        );
    }
    Ok(Command::Chaos(ca))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn datasets_subcommand() {
        assert_eq!(parse(&args("datasets")).unwrap(), Command::Datasets);
    }

    #[test]
    fn train_with_full_flags() {
        let cmd = parse(&args(
            "train --dataset reddit --scale 0.001 --model gat --engine depcomm \
             --workers 8 --cluster ibv --partitioner fennel --epochs 5 --lr 0.05 \
             --sync ps --seed 7 --save /tmp/m.ckpt --no-overlap \
             --metrics-out /tmp/m.json --trace-out /tmp/m.trace.json",
        ))
        .unwrap();
        let Command::Train(ra) = cmd else { panic!("expected train") };
        assert_eq!(ra.dataset, "reddit");
        assert_eq!(ra.scale, 0.001);
        assert_eq!(ra.model, ModelKind::Gat);
        assert_eq!(ra.engine, EngineKind::DepComm);
        assert_eq!(ra.workers, 8);
        assert_eq!(ra.cluster, "ibv");
        assert_eq!(ra.partitioner, Partitioner::Fennel);
        assert_eq!(ra.epochs, 5);
        assert_eq!(ra.lr, 0.05);
        assert_eq!(ra.sync, SyncMode::ParameterServer);
        assert_eq!(ra.seed, 7);
        assert_eq!(ra.save.as_deref(), Some("/tmp/m.ckpt"));
        assert_eq!(ra.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert_eq!(ra.trace_out.as_deref(), Some("/tmp/m.trace.json"));
        assert!(ra.opts.ring && ra.opts.lock_free && !ra.opts.overlap);
    }

    #[test]
    fn defaults_apply() {
        let Command::Simulate(ra) = parse(&args("simulate")).unwrap() else {
            panic!()
        };
        assert_eq!(ra, RunArgs::default());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&args("frobnicate")).unwrap_err().contains("unknown subcommand"));
        assert!(parse(&args("train --model vae")).unwrap_err().contains("--model"));
        assert!(parse(&args("train --epochs")).unwrap_err().contains("needs a value"));
        assert!(parse(&args("train epochs 3")).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn fault_flag_is_repeatable() {
        let cmd = parse(&args(
            "train --fault kill:w2@e3 --fault drop:rows:0.01 --checkpoint-every 2 --seed 9",
        ))
        .unwrap();
        let Command::Train(ra) = cmd else { panic!("expected train") };
        assert_eq!(ra.faults, vec!["kill:w2@e3", "drop:rows:0.01"]);
        assert_eq!(ra.checkpoint_every, 2);
        let plan = ra.fault_plan().unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.kill_epoch(2), Some(3));
        assert!(ra.recovery().enabled());
    }

    #[test]
    fn bad_fault_spec_rejected_at_parse_time() {
        let err = parse(&args("train --fault explode:w1")).unwrap_err();
        assert!(err.contains("fault"), "{err}");
        assert!(parse(&args("train --fault")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn recv_policy_flags() {
        let Command::Train(ra) =
            parse(&args("train --recv-timeout-ms 250 --recv-retries 5")).unwrap()
        else {
            panic!("expected train")
        };
        assert_eq!(ra.recv_timeout_ms, Some(250));
        assert_eq!(ra.recv_retries, Some(5));
        let rc = ra.recv();
        assert_eq!(rc.timeout_ms, 250);
        assert_eq!(rc.retries, 5);
        // Defaults pass through untouched.
        let rc = RunArgs::default().recv();
        assert_eq!(rc, RecvConfig::default());
        assert!(parse(&args("train --recv-retries many"))
            .unwrap_err()
            .contains("--recv-retries"));
    }

    #[test]
    fn threads_flag() {
        let Command::Train(ra) = parse(&args("train --threads 4")).unwrap() else {
            panic!("expected train")
        };
        assert_eq!(ra.threads, 4);
        assert_eq!(RunArgs::default().threads, 0);
        assert!(parse(&args("train --threads lots")).unwrap_err().contains("--threads"));
    }

    #[test]
    fn durable_store_flags() {
        let Command::Train(ra) =
            parse(&args("train --ckpt-dir /tmp/ckpts --keep-checkpoints 5")).unwrap()
        else {
            panic!("expected train")
        };
        assert_eq!(ra.ckpt_dir.as_deref(), Some("/tmp/ckpts"));
        assert_eq!(ra.keep_checkpoints, 5);
        let store = ra.store();
        assert!(store.enabled());
        assert_eq!(store.keep, 5);
        // Without --ckpt-dir, durability stays off.
        assert!(!RunArgs::default().store().enabled());
        assert!(parse(&args("train --keep-checkpoints none"))
            .unwrap_err()
            .contains("--keep-checkpoints"));
    }

    #[test]
    fn corrupt_fault_spec_round_trips() {
        let cmd = parse(&args(
            "train --fault corrupt:grads:0.25@e1 --fault corrupt:ckpt:1.0@e4",
        ))
        .unwrap();
        let Command::Train(ra) = cmd else { panic!("expected train") };
        assert_eq!(ra.faults, vec!["corrupt:grads:0.25@e1", "corrupt:ckpt:1.0@e4"]);
        let plan = ra.fault_plan().unwrap();
        let specs: Vec<String> = plan.faults.iter().map(|f| f.to_spec()).collect();
        assert_eq!(specs, vec!["corrupt:grads:0.25@e1", "corrupt:ckpt:1@e4"]);
        assert!(parse(&args("train --fault corrupt:ckpt:2.0"))
            .unwrap_err()
            .contains("probability"));
    }

    #[test]
    fn chaos_subcommand() {
        let Command::Chaos(ca) = parse(&args("chaos")).unwrap() else {
            panic!("expected chaos")
        };
        assert_eq!(ca, ChaosArgs::default());
        let Command::Chaos(ca) = parse(&args(
            "chaos --schedules 32 --seed 7 --workers 4 --epochs 8 --checkpoint-every 3",
        ))
        .unwrap() else {
            panic!("expected chaos")
        };
        assert_eq!(ca.schedules, 32);
        assert_eq!(ca.seed, 7);
        assert_eq!(ca.workers, 4);
        assert_eq!(ca.epochs, 8);
        assert_eq!(ca.checkpoint_every, 3);
        assert!(!ca.partition);
        let Command::Chaos(ca) = parse(&args("chaos --partition --schedules 4")).unwrap()
        else {
            panic!("expected chaos")
        };
        assert!(ca.partition);
        assert_eq!(ca.schedules, 4);
        let Command::Chaos(ca) = parse(&args("chaos --resource --schedules 4")).unwrap()
        else {
            panic!("expected chaos")
        };
        assert!(ca.resource && !ca.partition);
        assert!(parse(&args("chaos --partition --resource"))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse(&args("chaos --resource --epochs 3 --checkpoint-every 2"))
            .unwrap_err()
            .contains("clean final boundary"));
        assert!(parse(&args("chaos --workers 1")).unwrap_err().contains("workers"));
        assert!(parse(&args("chaos --epochs 2 --checkpoint-every 2"))
            .unwrap_err()
            .contains("checkpoint-every"));
        assert!(parse(&args("chaos --frobnicate 1")).unwrap_err().contains("chaos flag"));
    }

    #[test]
    fn serve_subcommand_with_full_flags() {
        let cmd = parse(&args(
            "serve --ckpt-dir /tmp/ckpts --dataset reddit --scale 0.001 --model sage \
             --seed 7 --shards 3 --partitioner fennel --queue-cap 256 --batch-max 16 \
             --batch-window-us 200 --inflight 64 --cache-rows 512 \
             --reply-timeout-ms 100 --fetch-timeout-ms 50 --slow-path-us 150 \
             --queries 5000 --rate 1500 --zipf 1.1 --fault kill:w2@e100 \
             --metrics-out /tmp/s.json --report /tmp/BENCH_serve.json",
        ))
        .unwrap();
        let Command::Serve(sa) = cmd else { panic!("expected serve") };
        assert_eq!(sa.ckpt_dir, "/tmp/ckpts");
        assert_eq!(sa.dataset, "reddit");
        assert_eq!(sa.model, ModelKind::Sage);
        assert_eq!(sa.seed, 7);
        assert_eq!(sa.shards, 3);
        assert_eq!(sa.partitioner, Partitioner::Fennel);
        assert_eq!(sa.queries, 5000);
        assert_eq!(sa.rate_qps, 1500.0);
        assert_eq!(sa.zipf_s, 1.1);
        assert_eq!(sa.faults, vec!["kill:w2@e100"]);
        assert_eq!(sa.metrics_out.as_deref(), Some("/tmp/s.json"));
        assert_eq!(sa.report_out.as_deref(), Some("/tmp/BENCH_serve.json"));
        let cfg = sa.serve_config().unwrap();
        assert_eq!(cfg.shards, 3);
        assert_eq!(cfg.queue_capacity, 256);
        assert_eq!(cfg.batch_max, 16);
        assert_eq!(cfg.batch_window_us, 200);
        assert_eq!(cfg.inflight_cap, 64);
        assert_eq!(cfg.cache_rows, 512);
        assert_eq!(cfg.reply_timeout_ms, 100);
        assert_eq!(cfg.fetch_timeout_ms, 50);
        assert_eq!(cfg.slow_path_us, 150);
        assert_eq!(cfg.fault.kill_epoch(2), Some(100));
        assert_eq!(cfg.fault.seed, 7);
        let load = sa.open_loop();
        assert_eq!(load.queries, 5000);
        assert_eq!(load.rate_qps, 1500.0);
    }

    #[test]
    fn serve_defaults_mirror_engine_defaults() {
        let Command::Serve(sa) = parse(&args("serve --ckpt-dir /tmp/c")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(sa, ServeArgs { ckpt_dir: "/tmp/c".into(), ..ServeArgs::default() });
        let want = ns_runtime::ServeConfig::default();
        let got = sa.serve_config().unwrap();
        assert_eq!(got.queue_capacity, want.queue_capacity);
        assert_eq!(got.batch_max, want.batch_max);
        assert_eq!(got.inflight_cap, want.inflight_cap);
        assert_eq!(got.cache_rows, want.cache_rows);
    }

    #[test]
    fn serve_validation_errors() {
        assert!(parse(&args("serve")).unwrap_err().contains("--ckpt-dir"));
        assert!(parse(&args("serve --ckpt-dir /c --shards 0"))
            .unwrap_err()
            .contains("--shards"));
        assert!(parse(&args("serve --ckpt-dir /c --queue-cap 0"))
            .unwrap_err()
            .contains("--queue-cap"));
        assert!(parse(&args("serve --ckpt-dir /c --rate -5"))
            .unwrap_err()
            .contains("--rate"));
        assert!(parse(&args("serve --ckpt-dir /c --zipf -1"))
            .unwrap_err()
            .contains("--zipf"));
        assert!(parse(&args("serve --ckpt-dir /c --fault explode:w1"))
            .unwrap_err()
            .contains("fault"));
        assert!(parse(&args("serve --frobnicate 1"))
            .unwrap_err()
            .contains("serve flag"));
        assert!(parse(&args("serve --queries")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn cluster_spec_resolution() {
        let mut ra = RunArgs { workers: 3, ..Default::default() };
        assert_eq!(ra.cluster_spec().unwrap().workers, 3);
        ra.cluster = "ibv".into();
        assert!(ra.cluster_spec().unwrap().name.starts_with("ibv"));
        ra.cluster = "mars".into();
        assert!(ra.cluster_spec().is_err());
    }
}

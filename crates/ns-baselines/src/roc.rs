//! ROC-like configuration of the NeutronStar runtime.
//!
//! ROC is a DepComm system; the paper attributes its performance gap to
//! communication structure, not numerics: "the ROC worker does not
//! differentiate the output messages with various destinations and sends
//! the whole messages block to all workers, where the remote workers pick
//! the necessary dependencies from the block" (§5.3), and it lacks
//! NeutronStar's ring scheduling, lock-free queuing, and
//! communication/computation overlap. Training numerics are identical to
//! DepComm (full-graph, full-neighbor), so we reuse the runtime with the
//! communication model swapped.

use ns_net::{ClusterSpec, ExecOptions};
use ns_runtime::{EngineKind, TrainerConfig};

/// A `TrainerConfig` that makes the NeutronStar runtime behave like ROC.
pub fn roc_like_config(cluster: ClusterSpec) -> TrainerConfig {
    let mut cfg = TrainerConfig::new(EngineKind::DepComm, cluster);
    cfg.opts = ExecOptions::none();
    cfg.broadcast_full_partition = true;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::{GnnModel, ModelKind};
    use ns_graph::datasets::by_name;
    use ns_runtime::Trainer;

    #[test]
    fn roc_like_is_slower_than_tuned_depcomm() {
        let ds = by_name("pokec").unwrap().materialize(0.001, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 1);
        let cluster = ClusterSpec::aliyun_ecs(4);
        let roc = Trainer::prepare(&ds, &model, roc_like_config(cluster.clone()))
            .unwrap()
            .simulate_epoch();
        let nts_comm = Trainer::prepare(
            &ds,
            &model,
            TrainerConfig::new(EngineKind::DepComm, cluster),
        )
        .unwrap()
        .simulate_epoch();
        assert!(
            roc.epoch_seconds > nts_comm.epoch_seconds,
            "roc {} vs depcomm {}",
            roc.epoch_seconds,
            nts_comm.epoch_seconds
        );
        assert!(roc.bytes_per_epoch > nts_comm.bytes_per_epoch);
    }

    #[test]
    fn roc_like_scales_poorly() {
        // ROC's whole-block transfers grow with cluster size; per-epoch
        // time should improve far less than chunked DepComm when going
        // from 4 to 8 workers.
        let ds = by_name("pokec").unwrap().materialize(0.001, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 1);
        let time = |cfg: TrainerConfig| {
            Trainer::prepare(&ds, &model, cfg).unwrap().simulate_epoch().epoch_seconds
        };
        let roc4 = time(roc_like_config(ClusterSpec::aliyun_ecs(4)));
        let roc8 = time(roc_like_config(ClusterSpec::aliyun_ecs(8)));
        let nts4 = time(TrainerConfig::new(
            EngineKind::DepComm,
            ClusterSpec::aliyun_ecs(4),
        ));
        let nts8 = time(TrainerConfig::new(
            EngineKind::DepComm,
            ClusterSpec::aliyun_ecs(8),
        ));
        let roc_speedup = roc4 / roc8;
        let nts_speedup = nts4 / nts8;
        assert!(
            nts_speedup > roc_speedup,
            "nts speedup {nts_speedup} should exceed roc speedup {roc_speedup}"
        );
    }
}

//! DistDGL-like sampled mini-batch training (DepCache + sampling).
//!
//! DistDGL reduces DepCache's redundant computation by *sampling* a
//! bounded set of dependencies per target vertex — the paper configures a
//! (10, 25) fan-out — and training on mini-batches. The consequences the
//! paper measures all follow from the mechanism reproduced here:
//!
//! * every batch must fetch its sampled block's features from the
//!   distributed store, so bandwidth use is the highest of all systems
//!   and never amortizes across epochs (Fig. 13c);
//! * the fetch→train loop is serialized, so GPU utilization is the lowest
//!   of all systems (Fig. 13a);
//! * aggregation sees only a sampled subset of neighbors, so the accuracy
//!   ceiling sits below full-graph training (Fig. 14).
//!
//! Training is numerically real: sampled blocks run through the same
//! `ns-gnn` layers, and the reported accuracies come from actual learned
//! parameters.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rustc_hash::{FxHashMap, FxHashSet};

use ns_gnn::loss::{accuracy, softmax_cross_entropy};
use ns_gnn::{GnnModel, LayerTopology};
use ns_graph::Dataset;
use ns_net::ClusterSpec;
use ns_tensor::{Adam, Optimizer};

/// Host-side cost of drawing one sampled edge from the distributed graph
/// store (hash lookups, RPC serialization, batching) — the sampler work
/// that bounds DistDGL's pipeline in the paper's analysis (§5.4: "bounded
/// by the I/O throughput of the storage").
pub const SAMPLE_SECONDS_PER_EDGE: f64 = 1.0e-6;

/// Configuration of the DistDGL-like trainer.
#[derive(Debug, Clone)]
pub struct DistDglConfig {
    /// Neighbor fan-outs `(first hop, second hop)`; the paper uses
    /// `(10, 25)`.
    pub fanouts: (usize, usize),
    /// Mini-batch size (target vertices per step).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for sampling and shuffling.
    pub seed: u64,
}

impl Default for DistDglConfig {
    fn default() -> Self {
        Self { fanouts: (10, 25), batch_size: 256, lr: 0.01, seed: 17 }
    }
}

/// Per-epoch numeric results.
#[derive(Debug, Clone)]
pub struct DistDglEpoch {
    /// Mean training loss over the epoch's batches.
    pub loss: f64,
    /// Training accuracy (on sampled blocks' targets).
    pub train_acc: f64,
    /// Full-graph validation accuracy is not evaluated per epoch by
    /// DistDGL-style trainers; we report test accuracy on the targets'
    /// final predictions from a full (unsampled) inference pass.
    pub test_acc: f64,
}

/// Everything the DistDGL-like run produces.
#[derive(Debug, Clone)]
pub struct DistDglReport {
    /// Per-epoch numerics.
    pub epochs: Vec<DistDglEpoch>,
    /// Modeled seconds per epoch on the target cluster.
    pub epoch_seconds: f64,
    /// Seconds per epoch spent sampling + fetching (the bottleneck).
    pub fetch_seconds: f64,
    /// Seconds per epoch of device compute.
    pub compute_seconds: f64,
    /// Bytes fetched per epoch (features + sampling RPCs + per-batch
    /// gradient synchronization).
    pub bytes_per_epoch: u64,
    /// Mean device utilization implied by the serialized pipeline.
    pub device_utilization: f64,
}

struct SampledBlock {
    topos: Vec<LayerTopology>,
    input_ids: Vec<u32>, // feature rows for layer 0 input
    targets: Vec<u32>,
    layer1_compute: Vec<u32>,
}

/// The DistDGL-like trainer.
pub struct DistDglLike<'a> {
    dataset: &'a Dataset,
    model: &'a GnnModel,
    cluster: ClusterSpec,
    cfg: DistDglConfig,
}

impl<'a> DistDglLike<'a> {
    /// Creates a trainer (2-layer models only, matching the paper's
    /// (10, 25) two-hop sampling).
    pub fn new(
        dataset: &'a Dataset,
        model: &'a GnnModel,
        cluster: ClusterSpec,
        cfg: DistDglConfig,
    ) -> Self {
        assert_eq!(model.num_layers(), 2, "fan-out sampling is two-hop");
        Self { dataset, model, cluster, cfg }
    }

    fn sample_neighbors(&self, v: u32, fanout: usize, rng: &mut StdRng) -> Vec<u32> {
        let nbrs = self.dataset.graph.in_neighbors(v);
        if nbrs.len() <= fanout {
            return nbrs.to_vec();
        }
        // Floyd's algorithm for a uniform sample without replacement.
        let mut chosen = FxHashSet::default();
        for i in nbrs.len() - fanout..nbrs.len() {
            let j = rng.random_range(0..=i);
            if !chosen.insert(nbrs[j]) {
                chosen.insert(nbrs[i]);
            }
        }
        let mut out: Vec<u32> = chosen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Builds the two-layer sampled block (MFG) for a batch of targets.
    fn sample_block(&self, targets: &[u32], rng: &mut StdRng) -> SampledBlock {
        let (f1, f2) = self.cfg.fanouts;
        // Hop 1: sampled in-neighbors of each target.
        let mut hop1: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut layer1_set: FxHashSet<u32> = targets.iter().copied().collect();
        for &t in targets {
            let s = self.sample_neighbors(t, f1, rng);
            layer1_set.extend(s.iter().copied());
            hop1.insert(t, s);
        }
        let mut layer1_compute: Vec<u32> = layer1_set.into_iter().collect();
        layer1_compute.sort_unstable();
        // Hop 2: sampled in-neighbors of every layer-1 vertex.
        let mut hop2: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut input_set: FxHashSet<u32> = layer1_compute.iter().copied().collect();
        for &v in &layer1_compute {
            let s = self.sample_neighbors(v, f2, rng);
            input_set.extend(s.iter().copied());
            hop2.insert(v, s);
        }
        let mut input_ids: Vec<u32> = input_set.into_iter().collect();
        input_ids.sort_unstable();

        let build = |compute: &[u32], inputs: &[u32], adj: &FxHashMap<u32, Vec<u32>>| {
            let pos: FxHashMap<u32, u32> =
                inputs.iter().enumerate().map(|(r, &id)| (id, r as u32)).collect();
            let mut lists: Vec<Vec<(u32, f32)>> = Vec::with_capacity(compute.len());
            let mut dst_in_rows = Vec::with_capacity(compute.len());
            for &v in compute {
                let nbrs = &adj[&v];
                // Mean-style weight over the *sampled* neighborhood plus
                // the self edge (sampling renormalization).
                let w = 1.0 / (nbrs.len().max(1)) as f32;
                let list: Vec<(u32, f32)> = nbrs.iter().map(|&u| (pos[&u], w)).collect();
                lists.push(list);
                dst_in_rows.push(pos[&v]);
            }
            LayerTopology::from_adjacency(inputs.len(), &lists, dst_in_rows)
        };
        let topo0 = build(&layer1_compute, &input_ids, &hop2);
        let topo1 = build(targets, &layer1_compute, &hop1);
        SampledBlock {
            topos: vec![topo0, topo1],
            input_ids,
            targets: targets.to_vec(),
            layer1_compute,
        }
    }

    /// Runs `epochs` epochs and returns the report.
    pub fn train(&self, epochs: usize) -> DistDglReport {
        let ds = self.dataset;
        let m = self.cluster.workers.max(1);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut store = self.model.fresh_store();
        let mut opt = Adam::new(self.cfg.lr);

        let train_ids: Vec<u32> = (0..ds.graph.num_vertices() as u32)
            .filter(|&v| ds.train_mask[v as usize])
            .collect();
        let feature_dim = ds.feature_dim();
        let mut epochs_out = Vec::with_capacity(epochs);

        // Cost accounting (identical every epoch; accumulate on the first).
        let mut fetch_bytes = 0u64;
        let mut sampled_edges = 0u64;
        let mut edge_flops = 0u64;
        let mut vertex_flops = 0u64;
        let mut batches_per_epoch = 0u64;

        for epoch in 0..epochs {
            let mut order = train_ids.clone();
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            let mut seen = 0usize;
            for batch in order.chunks(self.cfg.batch_size) {
                let mut targets = batch.to_vec();
                targets.sort_unstable();
                let block = self.sample_block(&targets, &mut rng);
                if epoch == 0 {
                    batches_per_epoch += 1;
                    sampled_edges +=
                        (block.topos[0].num_edges() + block.topos[1].num_edges()) as u64;
                    // Remote feature rows: uniformly distributed vertices,
                    // (m-1)/m of the block is remote.
                    let rows = block.input_ids.len() as u64;
                    let remote = rows * (m as u64 - 1) / m as u64;
                    fetch_bytes += remote * (4 * feature_dim as u64 + 4);
                    // Sampling RPC traffic: neighbor lists of two hops.
                    let sampled_edges = (block.topos[0].num_edges()
                        + block.topos[1].num_edges())
                        as u64;
                    fetch_bytes += sampled_edges * 8;
                }

                // Forward.
                let input = ds.features.gather_rows(&block.input_ids);
                let run0 = self.model.layer(0).forward(&store, &block.topos[0], input);
                let h1 = run0.output().clone();
                let run1 = self.model.layer(1).forward(&store, &block.topos[1], h1);
                let logits = run1.output().clone();

                let labels: Vec<u32> =
                    block.targets.iter().map(|&v| ds.labels[v as usize]).collect();
                let weights = vec![1.0 / block.targets.len() as f32; block.targets.len()];
                let head = softmax_cross_entropy(&logits, &labels, &weights);
                loss_sum += head.loss;
                let mask = vec![true; block.targets.len()];
                let (c, t) = accuracy(&logits, &labels, &mask);
                correct += c;
                seen += t;

                // Backward + per-batch gradient sync.
                let mut grads = store.zero_grads();
                let (g1, _) = run1.backward(head.logit_grad, &mut grads);
                let _ = run0.backward(g1, &mut grads);
                opt.step(&mut store, &grads);
                if epoch == 0 {
                    let (e, v) = run_flops_estimate(&block, self.model);
                    edge_flops += e;
                    vertex_flops += v;
                    fetch_bytes += 2 * (m as u64 - 1) / m as u64
                        * self.model.gradient_bytes();
                }
            }
            // Full-graph inference for the reported accuracy (cheap at our
            // scales; DistDGL itself evaluates on sampled blocks, which
            // under-estimates accuracy).
            let test_acc = self.full_graph_accuracy(&store);
            epochs_out.push(DistDglEpoch {
                loss: loss_sum / (train_ids.len().max(1) as f64 / self.cfg.batch_size as f64),
                train_acc: if seen == 0 { 0.0 } else { correct as f64 / seen as f64 },
                test_acc,
            });
        }

        // Timing model: batches are spread across m workers; within a
        // worker the sample/fetch -> compute -> sync loop is serialized
        // (DistDGL's sampler is the bottleneck the paper observes).
        let steps = batches_per_epoch.div_ceil(m as u64) as f64;
        let per_batch_fetch = fetch_bytes as f64 / batches_per_epoch.max(1) as f64
            / self.cluster.bandwidth_bps()
            + sampled_edges as f64 * SAMPLE_SECONDS_PER_EDGE
                / batches_per_epoch.max(1) as f64
            + 4.0 * self.cluster.net.latency_s; // two sampling hops + reply
        let per_batch_compute = (edge_flops as f64
            / (self.cluster.device.sparse_gflops * 1e9)
            + vertex_flops as f64 / (self.cluster.device.dense_gflops * 1e9))
            / batches_per_epoch.max(1) as f64;
        let epoch_seconds = steps * (per_batch_fetch + per_batch_compute);
        DistDglReport {
            epochs: epochs_out,
            epoch_seconds,
            fetch_seconds: steps * per_batch_fetch,
            compute_seconds: steps * per_batch_compute,
            bytes_per_epoch: fetch_bytes,
            device_utilization: if epoch_seconds > 0.0 {
                (steps * per_batch_compute) / epoch_seconds
            } else {
                0.0
            },
        }
    }

    /// Full-neighborhood inference accuracy on the test split.
    fn full_graph_accuracy(&self, store: &ns_tensor::ParamStore) -> f64 {
        let ds = self.dataset;
        let n = ds.graph.num_vertices();
        let all: Vec<u32> = (0..n as u32).collect();
        let pos_self: Vec<u32> = all.clone();
        let mut lists: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            lists.push(
                ds.graph
                    .in_neighbors(v)
                    .iter()
                    .zip(ds.graph.in_weights(v))
                    .map(|(&u, &w)| (u, w))
                    .collect(),
            );
        }
        let topo = LayerTopology::from_adjacency(n, &lists, pos_self);
        let run0 = self.model.layer(0).forward(store, &topo, ds.features.clone());
        let h1 = run0.output().clone();
        let run1 = self.model.layer(1).forward(store, &topo, h1);
        let labels: Vec<u32> = all.iter().map(|&v| ds.labels[v as usize]).collect();
        let (c, t) = accuracy(run1.output(), &labels, &ds.test_mask);
        if t == 0 {
            0.0
        } else {
            c as f64 / t as f64
        }
    }
}

/// Returns `(edge_flops, vertex_flops)` of one batch, forward + backward
/// (~3x the forward cost).
fn run_flops_estimate(block: &SampledBlock, model: &GnnModel) -> (u64, u64) {
    let l0 = model.layer(0);
    let l1 = model.layer(1);
    let e = block.topos[0].num_edges() as u64 * l0.edge_flops_estimate()
        + block.topos[1].num_edges() as u64 * l1.edge_flops_estimate();
    let v = block.layer1_compute.len() as u64 * l0.vertex_flops_estimate()
        + block.targets.len() as u64 * l1.vertex_flops_estimate();
    (3 * e, 3 * v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::ModelKind;
    use ns_graph::datasets::by_name;

    fn setup() -> (Dataset, GnnModel) {
        let ds = by_name("cora").unwrap().materialize(0.15, 5);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        (ds, model)
    }

    #[test]
    fn sampling_respects_fanout() {
        let (ds, model) = setup();
        let t = DistDglLike::new(&ds, &model, ClusterSpec::aliyun_ecs(4), DistDglConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..ds.graph.num_vertices() as u32 {
            let s = t.sample_neighbors(v, 5, &mut rng);
            assert!(s.len() <= 5.min(ds.graph.in_degree(v)).max(5));
            assert!(s.len() <= ds.graph.in_degree(v));
            for u in &s {
                assert!(ds.graph.in_neighbors(v).contains(u));
            }
        }
    }

    #[test]
    fn training_learns_and_meters() {
        let (ds, model) = setup();
        let t = DistDglLike::new(
            &ds,
            &model,
            ClusterSpec::aliyun_ecs(4),
            DistDglConfig { batch_size: 64, ..Default::default() },
        );
        let report = t.train(10);
        assert_eq!(report.epochs.len(), 10);
        assert!(report.epochs[9].loss < report.epochs[0].loss);
        assert!(report.epochs[9].test_acc > 0.4, "acc {}", report.epochs[9].test_acc);
        assert!(report.bytes_per_epoch > 0);
        assert!(report.epoch_seconds > 0.0);
        // The serialized sampler keeps utilization low.
        assert!(report.device_utilization < 0.9);
    }

    #[test]
    fn fetch_dominates_on_slow_networks() {
        let (ds, model) = setup();
        let t = DistDglLike::new(
            &ds,
            &model,
            ClusterSpec::aliyun_ecs(4),
            DistDglConfig { batch_size: 64, ..Default::default() },
        );
        let r = t.train(1);
        assert!(
            r.fetch_seconds > r.compute_seconds,
            "fetch {} vs compute {}",
            r.fetch_seconds,
            r.compute_seconds
        );
    }
}

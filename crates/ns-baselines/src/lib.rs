//! Comparison systems for the NeutronStar evaluation.
//!
//! The paper compares NeutronStar against DistDGL (the canonical
//! DepCache + sampling system), ROC (the canonical DepComm system), and —
//! on a single node — DGL and PyTorch Geometric. None of those code bases
//! exist in this environment, so this crate rebuilds each system's
//! *mechanism*, which is what the paper's findings rest on:
//!
//! * [`distdgl`] — sampled mini-batch training: per batch, fan-out
//!   neighbor sampling, remote feature fetch (metered against the modeled
//!   network), compute on the sampled block, per-batch all-reduce. The
//!   sampling pipeline's serialized fetch→train loop reproduces DistDGL's
//!   low GPU utilization and high bandwidth use; the partial-neighborhood
//!   gradients reproduce its lower accuracy ceiling.
//! * [`roc`] — a ROC-like configuration of the NeutronStar runtime:
//!   DepComm dependency handling with whole-partition block transfers
//!   (no source chunking), no ring schedule, no overlap, no lock-free
//!   queues — §5.3's description of ROC's communication.
//! * [`shared_memory`] — single-node system models (DGL-like, PyG-like,
//!   ROC-single, NeutronStar) for Tables 4 and 5: identical FLOP counts,
//!   differing memory policies (dense adjacency, fully materialized edge
//!   tensors, or chunk-streamed) and kernel efficiencies.

pub mod distdgl;
pub mod roc;
pub mod shared_memory;

pub use distdgl::{DistDglConfig, DistDglLike, DistDglReport};
pub use roc::roc_like_config;
pub use shared_memory::{shared_memory_row, SharedMemorySystem, SysResult};

//! Single-node system models for Tables 4 and 5.
//!
//! The shared-memory comparison pits NeutronStar against DGL and PyG on
//! one node (CPU for Table 4, one GPU for Table 5). All of these systems
//! execute the same GNN math; what separates them is *memory policy* and
//! *kernel efficiency*:
//!
//! * **PyG-like** — stores the graph as a dense matrix ("uses the matrix,
//!   instead of the compressed matrix, to store the graph"), so it OOMs
//!   on anything large, but its fused kernels are the fastest when the
//!   graph fits.
//! * **DGL-like** — CSR storage, but generic message-passing kernels
//!   materialize per-edge message tensors, which OOMs a 16 GB GPU on
//!   graphs like Google (0.87 M vertices × 512-wide features).
//! * **ROC-single** — CSR, no chunking; runs but with lower kernel
//!   efficiency (the paper measures ~2x over NTS on Google).
//! * **NTS** — chunk-streamed edge tensors and host-memory caching of
//!   intermediate results, so it survives graphs the others cannot.

use ns_gnn::GnnModel;
use ns_graph::{Dataset, Partitioner};
use ns_net::ClusterSpec;
use ns_runtime::memory::{dense_adjacency_bytes, plan_device_bytes, project_to_full_scale};
use ns_runtime::plan::{build_plans, DepDecision};

/// A modeled single-node system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedMemorySystem {
    /// PyTorch-Geometric-like: dense adjacency, fastest kernels.
    PygLike,
    /// DGL-like on GPU: CSR, but the generic message-passing path
    /// materializes per-edge message tensors in device memory.
    DglLike,
    /// DGL-like on CPU: the CPU backend fuses copy-reduce messages into
    /// SpMM, so no per-edge tensors are materialized (Table 4 rows).
    DglCpu,
    /// ROC restricted to one node: CSR, no chunking, modest kernels.
    RocSingle,
    /// NeutronStar single-node: chunked edge streaming + host caching.
    Nts,
}

impl SharedMemorySystem {
    /// Name used in table rows.
    pub fn name(self) -> &'static str {
        match self {
            SharedMemorySystem::PygLike => "PyG-like",
            SharedMemorySystem::DglLike => "DGL-like",
            SharedMemorySystem::DglCpu => "DGL-CPU",
            SharedMemorySystem::RocSingle => "ROC-like",
            SharedMemorySystem::Nts => "NTS",
        }
    }

    /// Sustained fraction of the device's modeled GFLOPs this system's
    /// kernels achieve (relative efficiencies consistent with Table 5's
    /// orderings on small graphs).
    fn efficiency(self) -> f64 {
        match self {
            SharedMemorySystem::PygLike => 1.15,
            SharedMemorySystem::DglLike => 0.95,
            SharedMemorySystem::DglCpu => 0.85,
            SharedMemorySystem::RocSingle => 0.45,
            SharedMemorySystem::Nts => 1.0,
        }
    }
}

/// The outcome of one (system, dataset, model) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SysResult {
    /// Per-epoch seconds.
    Time(f64),
    /// The projected working set exceeded device/host memory.
    Oom,
}

impl std::fmt::Display for SysResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysResult::Time(t) => write!(f, "{:.4}s", t),
            SysResult::Oom => write!(f, "OOM"),
        }
    }
}

/// Computes one table cell: per-epoch time of `system` training `model`
/// on `dataset` with the single node described by `cluster` (whose
/// `device.mem_bytes` is GPU memory for Table 5, host memory for the
/// CPU rows of Table 4).
pub fn shared_memory_row(
    system: SharedMemorySystem,
    dataset: &Dataset,
    model: &GnnModel,
    cluster: &ClusterSpec,
) -> SysResult {
    let part = Partitioner::Chunk.partition(&dataset.graph, 1);
    let plans = build_plans(&dataset.graph, &part, model.num_layers(), &DepDecision::CommAll)
        .expect("single-node plan");
    let dims = model.dims();
    let n_full = (dataset.graph.num_vertices() as f64 / dataset.scale) as u64;

    // Memory policy.
    let bytes = match system {
        SharedMemorySystem::PygLike => dense_adjacency_bytes(n_full, dims),
        SharedMemorySystem::DglLike | SharedMemorySystem::RocSingle => {
            // Fully materialized per-edge messages of every layer.
            let widths: Vec<usize> = dims[..dims.len() - 1].to_vec();
            project_to_full_scale(plan_device_bytes(&plans[0], dims, &widths, false, dataset.scale), dataset.scale)
        }
        SharedMemorySystem::DglCpu => {
            // Fused SpMM: whole-layer residency but no edge tensors.
            let widths: Vec<usize> = (0..model.num_layers())
                .map(|lz| model.layer(lz).edge_tensor_width())
                .collect();
            project_to_full_scale(plan_device_bytes(&plans[0], dims, &widths, false, dataset.scale), dataset.scale)
        }
        SharedMemorySystem::Nts => {
            // Chunk streaming + host caching: only the chunked working set
            // hits the device.
            let widths: Vec<usize> = (0..model.num_layers())
                .map(|lz| model.layer(lz).edge_tensor_width())
                .collect();
            let device = plan_device_bytes(&plans[0], dims, &widths, true, dataset.scale);
            // NTS spills intermediates to host memory; charge the device
            // with one layer's activations rather than all of them.
            project_to_full_scale(device / model.num_layers() as u64, dataset.scale)
        }
    };
    if bytes > cluster.device.mem_bytes {
        return SysResult::Oom;
    }

    // Compute time: identical math everywhere, scaled by kernel
    // efficiency.
    let costs = ns_runtime::cost::probe(model, cluster);
    let mut edge_flops = 0.0f64;
    let mut vertex_flops = 0.0f64;
    for (lz, lp) in plans[0].layers.iter().enumerate() {
        edge_flops += lp.topo.num_edges() as f64 * costs.flops[lz].edge_total();
        vertex_flops += lp.compute.len() as f64 * costs.flops[lz].vertex_total();
    }
    let seconds = (edge_flops / (cluster.device.sparse_gflops * 1e9)
        + vertex_flops / (cluster.device.dense_gflops * 1e9))
        / system.efficiency();
    SysResult::Time(seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::ModelKind;
    use ns_graph::datasets::by_name;

    fn gpu_node() -> ClusterSpec {
        ClusterSpec::aliyun_ecs(1)
    }

    #[test]
    fn small_graph_everyone_completes_pyg_fastest() {
        let ds = by_name("cora").unwrap().materialize(1.0, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 128, ds.num_classes, 1);
        let mut times = Vec::new();
        for sys in [
            SharedMemorySystem::PygLike,
            SharedMemorySystem::DglLike,
            SharedMemorySystem::RocSingle,
            SharedMemorySystem::Nts,
        ] {
            match shared_memory_row(sys, &ds, &model, &gpu_node()) {
                SysResult::Time(t) => times.push((sys.name(), t)),
                SysResult::Oom => panic!("{} OOM on cora", sys.name()),
            }
        }
        let pyg = times.iter().find(|(n, _)| *n == "PyG-like").unwrap().1;
        let roc = times.iter().find(|(n, _)| *n == "ROC-like").unwrap().1;
        assert!(pyg < roc, "PyG {pyg} should beat ROC {roc}");
    }

    #[test]
    fn google_ooms_dense_and_materialized_but_not_nts() {
        let ds = by_name("google").unwrap().materialize(0.002, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), ds.hidden_dim, ds.num_classes, 1);
        let gpu = gpu_node();
        assert_eq!(
            shared_memory_row(SharedMemorySystem::PygLike, &ds, &model, &gpu),
            SysResult::Oom
        );
        assert_eq!(
            shared_memory_row(SharedMemorySystem::DglLike, &ds, &model, &gpu),
            SysResult::Oom
        );
        assert!(matches!(
            shared_memory_row(SharedMemorySystem::Nts, &ds, &model, &gpu),
            SysResult::Time(_)
        ));
    }

    #[test]
    fn cpu_node_is_slower_than_gpu_node() {
        let ds = by_name("pubmed").unwrap().materialize(0.5, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 1);
        let gpu = gpu_node();
        let cpu = ClusterSpec::cpu_single();
        let t_gpu = match shared_memory_row(SharedMemorySystem::Nts, &ds, &model, &gpu) {
            SysResult::Time(t) => t,
            _ => panic!(),
        };
        let t_cpu = match shared_memory_row(SharedMemorySystem::Nts, &ds, &model, &cpu) {
            SysResult::Time(t) => t,
            _ => panic!(),
        };
        assert!(t_cpu > t_gpu);
    }
}

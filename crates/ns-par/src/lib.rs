//! Dependency-free intra-worker parallelism.
//!
//! NeutronStar's GPU workers saturate the device with parallel NN-ops and
//! graph-ops; this crate is the CPU reproduction's equivalent substrate: a
//! small, std-only (`std::thread` + atomics, no rayon) thread pool with a
//! *scoped, chunk-stealing* execution model that the tensor kernels
//! (`ns-tensor`), the CSR aggregators (`ns-gnn`), and the lock-free
//! parallel message enqueuer (`ns-net`) all route through.
//!
//! # Execution model
//!
//! [`par_ranges`] splits an index space `0..n` into fixed-size chunks and
//! publishes them behind a single atomic cursor. Every participating
//! thread — the caller plus up to `threads() - 1` pool workers — claims
//! chunks with `fetch_add` until the cursor runs dry. A slow thread
//! simply claims fewer chunks; a fast one *steals* the remainder. There
//! is no per-chunk lock and no work-queue mutex on the claim path.
//!
//! # Determinism
//!
//! The pool parallelizes only over *disjoint output ranges* (ownership by
//! destination row, see `DESIGN.md` §11): each output element is written
//! by exactly one thread running exactly the sequential kernel, so every
//! result is bit-identical to the single-threaded execution at any thread
//! count. This is the guarantee the `--threads` parity suite pins.
//!
//! # Nesting and contention
//!
//! One parallel job runs at a time. A caller that finds the pool busy
//! (another simulated worker is mid-job), or that *is* a pool worker
//! (nested parallelism), runs its chunk loop inline on its own thread —
//! same code path, same results, no deadlock. Distributed-training
//! workers therefore degrade gracefully instead of oversubscribing.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hardware parallelism of this machine (at least 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Configured worker count: `NS_PAR_THREADS` env override, else hardware
/// parallelism. Resolved once at first use; [`set_threads`] changes it.
fn default_threads() -> usize {
    std::env::var("NS_PAR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(max_threads)
}

static CONFIGURED: AtomicUsize = AtomicUsize::new(0); // 0 = not yet resolved

/// The effective thread count parallel sections will use (>= 1).
pub fn threads() -> usize {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => {
            let n = default_threads();
            // Racing initializers compute the same value.
            CONFIGURED.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Sets the thread count used by subsequent parallel sections. `0` means
/// "auto" (hardware parallelism / `NS_PAR_THREADS`). Results are
/// bit-identical at any setting; only throughput changes. Takes effect
/// for jobs started after the call, including on an already-built pool.
pub fn set_threads(n: usize) {
    let n = if n == 0 { default_threads() } else { n };
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Counters for the calling thread's parallel activity, drained with
/// [`take_thread_stats`]. The runtime exports them as the
/// `compute.par_jobs` / `compute.par_chunks` / `par.steal_count` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Parallel jobs issued by this thread.
    pub jobs: u64,
    /// Chunks executed across those jobs (by any participant).
    pub chunks: u64,
    /// Chunks executed by pool workers rather than the issuing thread —
    /// work the helpers "stole" from the caller via the shared cursor.
    pub stolen: u64,
    /// Jobs that ran inline because the pool was busy, nested, or the
    /// work was below the parallel threshold.
    pub inline_jobs: u64,
}

thread_local! {
    static STATS: std::cell::Cell<ParStats> = const { std::cell::Cell::new(ParStats {
        jobs: 0,
        chunks: 0,
        stolen: 0,
        inline_jobs: 0,
    }) };
    /// True on pool worker threads; forces nested sections inline.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Drains and returns the calling thread's [`ParStats`].
pub fn take_thread_stats() -> ParStats {
    STATS.with(|s| s.replace(ParStats::default()))
}

fn bump_stats(f: impl FnOnce(&mut ParStats)) {
    STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

/// Type-erased pointer to the job closure living on the issuing thread's
/// stack. Sound because the issuer blocks until every participant has
/// finished before the closure goes out of scope.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    participants: usize,
}

// SAFETY: the pointee is `Sync` and outlives the job (see `Pool::run`).
unsafe impl Send for Job {}

struct State {
    /// Monotonic job sequence number; workers watch it change.
    seq: u64,
    job: Option<Job>,
    /// Participants still running the current job.
    active: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new job.
    work: Condvar,
    /// The issuer waits here for the last participant.
    done: Condvar,
}

/// The process-wide pool: lazily spawned workers plus a busy latch that
/// serializes jobs (contenders run inline instead of queueing).
struct Pool {
    shared: &'static Shared,
    busy: AtomicBool,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Box::leak(Box::new(Shared {
            state: Mutex::new(State { seq: 0, job: None, active: 0 }),
            work: Condvar::new(),
            done: Condvar::new(),
        })),
        busy: AtomicBool::new(false),
        spawned: Mutex::new(0),
    })
}

fn worker_main(shared: &'static Shared, index: usize) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("ns-par state poisoned");
            while st.seq == last_seq {
                st = shared.work.wait(st).expect("ns-par state poisoned");
            }
            last_seq = st.seq;
            match st.job {
                // Only workers the job asked for participate; `active`
                // counts exactly those, so nobody is waited on twice.
                Some(j) if index <= j.participants => j,
                _ => continue,
            }
        };
        // SAFETY: the issuer keeps the closure alive until `active`
        // reaches zero, which happens only after this call returns.
        unsafe { (*job.f)(index) };
        let mut st = shared.state.lock().expect("ns-par state poisoned");
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

impl Pool {
    /// Ensures at least `n` workers exist.
    fn ensure_workers(&self, n: usize) {
        let mut spawned = self.spawned.lock().expect("ns-par spawn lock poisoned");
        while *spawned < n {
            *spawned += 1;
            let index = *spawned;
            let shared = self.shared;
            std::thread::Builder::new()
                .name(format!("ns-par-{index}"))
                .spawn(move || worker_main(shared, index))
                .expect("ns-par: failed to spawn worker");
        }
    }

    /// Runs `f(participant_index)` on the caller (index 0) and
    /// `helpers` pool workers (indices `1..=helpers`), returning after
    /// all of them finish. `f` must complete the whole job even if it
    /// only ever runs as `f(0)` (the inline fallback).
    ///
    /// Returns `false` when the job ran inline on the caller only.
    fn run(&self, helpers: usize, f: &(dyn Fn(usize) + Sync)) -> bool {
        if helpers == 0
            || IS_POOL_WORKER.with(|w| w.get())
            || self.busy.swap(true, Ordering::Acquire)
        {
            f(0);
            return false;
        }
        self.ensure_workers(helpers);
        {
            let mut st = self.shared.state.lock().expect("ns-par state poisoned");
            st.seq += 1;
            // Lifetime erasure: `f` outlives the job because this function
            // blocks on `done` below before returning.
            st.job = Some(Job {
                f: unsafe {
                    std::mem::transmute::<
                        *const (dyn Fn(usize) + Sync),
                        *const (dyn Fn(usize) + Sync + 'static),
                    >(f as *const _)
                },
                participants: helpers,
            });
            st.active = helpers;
            self.shared.work.notify_all();
        }
        f(0);
        {
            let mut st = self.shared.state.lock().expect("ns-par state poisoned");
            while st.active > 0 {
                st = self.shared.done.wait(st).expect("ns-par state poisoned");
            }
            st.job = None;
        }
        self.busy.store(false, Ordering::Release);
        true
    }
}

/// A raw pointer that may cross threads. Used by kernels that hand
/// *disjoint* output ranges to different chunks; the caller is
/// responsible for the disjointness that makes this sound.
pub struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: accesses through a `SendPtr` are confined to disjoint ranges by
// the chunk protocol (each chunk index is claimed exactly once).
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer.
    #[inline]
    pub fn get(self) -> *mut T {
        self.0
    }
}

/// A chunk length that yields a few chunks per thread (dynamic claiming
/// then balances uneven chunk costs), never zero.
pub fn chunk_len(n: usize, threads: usize) -> usize {
    const CHUNKS_PER_THREAD: usize = 4;
    (n / (threads.max(1) * CHUNKS_PER_THREAD)).max(1)
}

/// Splits `0..n` into chunks of `chunk` indices and runs
/// `f(start, end)` for every chunk across the configured threads, with
/// dynamic (stealing) chunk assignment. Chunks are disjoint and cover
/// `0..n` exactly once; `f` must tolerate any execution order.
///
/// Runs inline when `threads() == 1`, when there is at most one chunk,
/// or when the pool is busy/nested — same chunks, same results.
pub fn par_ranges(n: usize, chunk: usize, f: impl Fn(usize, usize) + Sync) {
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let t = threads();
    if t <= 1 || n_chunks <= 1 {
        bump_stats(|s| {
            s.jobs += 1;
            s.inline_jobs += 1;
            s.chunks += n_chunks as u64;
        });
        for c in 0..n_chunks {
            f(c * chunk, ((c + 1) * chunk).min(n));
        }
        return;
    }
    let helpers = (t - 1).min(n_chunks - 1);
    let cursor = AtomicUsize::new(0);
    let stolen = AtomicU64::new(0);
    let ran_parallel = pool().run(helpers, &|who| {
        let mut claimed = 0u64;
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            f(c * chunk, ((c + 1) * chunk).min(n));
            claimed += 1;
        }
        if who != 0 {
            stolen.fetch_add(claimed, Ordering::Relaxed);
        }
    });
    bump_stats(|s| {
        s.jobs += 1;
        s.chunks += n_chunks as u64;
        s.stolen += stolen.load(Ordering::Relaxed);
        if !ran_parallel {
            s.inline_jobs += 1;
        }
    });
}

/// Runs `f(chunk_index, chunk_slice)` over `chunk`-element chunks of
/// `data` across the configured threads. Chunk `i` is
/// `data[i*chunk .. min((i+1)*chunk, len)]`; every element belongs to
/// exactly one chunk, which is what makes the concurrent `&mut` sound.
pub fn par_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], chunk: usize, f: F) {
    let len = data.len();
    let chunk = chunk.max(1);
    let base = SendPtr(data.as_mut_ptr());
    par_ranges(len, chunk, |start, end| {
        // SAFETY: `par_ranges` hands out disjoint [start, end) ranges.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(start / chunk, slice);
    });
}

/// Runs `a` and `b`, in parallel when a pool worker is free. Both
/// closures always run exactly once; results come back as a tuple.
pub fn par_join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if threads() <= 1 {
        return (a(), b());
    }
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        // Each task is claimed exactly once off the shared cursor, so the
        // inline fallback (`f(0)` alone) still runs both.
        let sa = Mutex::new(Some((a, SendPtr(&mut ra as *mut Option<RA>))));
        let sb = Mutex::new(Some((b, SendPtr(&mut rb as *mut Option<RB>))));
        let cursor = AtomicUsize::new(0);
        pool().run(1, &|_| loop {
            match cursor.fetch_add(1, Ordering::Relaxed) {
                0 => {
                    if let Some((f, out)) = sa.lock().expect("par_join slot").take() {
                        // SAFETY: claimed once; `ra` outlives the job.
                        unsafe { *out.get() = Some(f()) };
                    }
                }
                1 => {
                    if let Some((f, out)) = sb.lock().expect("par_join slot").take() {
                        // SAFETY: claimed once; `rb` outlives the job.
                        unsafe { *out.get() = Some(f()) };
                    }
                }
                _ => break,
            }
        });
    }
    bump_stats(|s| s.jobs += 1);
    (
        ra.expect("par_join: task a did not run"),
        rb.expect("par_join: task b did not run"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// `set_threads` is process-global; tests that touch it must not
    /// interleave (libtest runs tests on multiple threads).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_ranges_covers_every_index_exactly_once() {
        let _g = serial();
        set_threads(4);
        let n = 10_001;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_ranges(n, 37, |s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_writes_disjoint_slices() {
        let _g = serial();
        set_threads(8);
        let mut data = vec![0usize; 4096];
        par_chunks(&mut data, 128, |ci, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = ci * 128 + k;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _g = serial();
        let run = |t: usize| {
            set_threads(t);
            let mut out = vec![0.0f32; 5000];
            par_chunks(&mut out, 64, |ci, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    let i = ci * 64 + k;
                    *v = (i as f32).sin() * 0.5 + (i as f32).sqrt();
                }
            });
            out
        };
        let base = run(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(run(t), base, "thread count {t} diverged");
        }
    }

    #[test]
    fn par_join_runs_both_and_returns_results() {
        let _g = serial();
        set_threads(2);
        let (a, b) = par_join(|| 21 * 2, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_sections_run_inline_without_deadlock() {
        let _g = serial();
        set_threads(4);
        let outer = AtomicU32::new(0);
        par_ranges(8, 1, |s, _| {
            // Nested job: must not deadlock, must still cover its range.
            let inner = AtomicU32::new(0);
            par_ranges(16, 4, |a, b| {
                inner.fetch_add((b - a) as u32, Ordering::Relaxed);
            });
            assert_eq!(inner.load(Ordering::Relaxed), 16);
            outer.fetch_add(s as u32, Ordering::Relaxed);
        });
        assert_eq!(outer.load(Ordering::Relaxed), (0..8).sum::<u32>());
    }

    #[test]
    fn stats_account_jobs_and_chunks() {
        let _g = serial();
        set_threads(2);
        let _ = take_thread_stats();
        par_ranges(100, 10, |_, _| {});
        let st = take_thread_stats();
        assert_eq!(st.jobs, 1);
        assert_eq!(st.chunks, 10);
        // Second take sees a clean slate.
        assert_eq!(take_thread_stats(), ParStats::default());
    }

    #[test]
    fn zero_work_is_a_no_op() {
        par_ranges(0, 8, |_, _| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        par_chunks(&mut empty, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn set_threads_zero_means_auto() {
        let _g = serial();
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);
    }
}

//! Durable checkpoint store integration tests: the fallback chain.
//!
//! The ISSUE acceptance criterion: when the newest on-disk generation is
//! torn (truncated or bit-flipped), recovery must detect it by CRC, skip
//! it, and resume from generation N-1 — and a full training run under an
//! injected checkpoint corruption must still finish with the fallback
//! accounted for in `ckpt.fallbacks`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ns_gnn::{GnnModel, ModelKind};
use ns_graph::datasets::by_name;
use ns_graph::Dataset;
use ns_net::fault::{Fault, FaultPlan};
use ns_net::ClusterSpec;
use ns_runtime::{
    Checkpoint, CheckpointStore, EngineKind, RecoveryConfig, StoreConfig, Trainer,
    TrainerConfig,
};
use ns_tensor::{ParamStore, Tensor};

/// Unique scratch directory per test (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "nts-store-it-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn params(seed: f32) -> ParamStore {
    let mut s = ParamStore::new();
    s.register(
        "w".to_string(),
        Tensor::from_vec(2, 3, (0..6).map(|i| seed + i as f32).collect()),
    );
    s
}

#[test]
fn torn_newest_generation_recovers_from_n_minus_1() {
    let dir = scratch_dir("fallback");
    let mut store = CheckpointStore::open(&dir, 3).expect("open store");

    // Generation N-1 (epoch boundary 2) and generation N (boundary 4).
    let good = Checkpoint::capture(2, &params(1.0), None);
    store.save(&good, 3).expect("save generation N-1");
    let newest = Checkpoint::capture(4, &params(2.0), None);
    let receipt = store.save(&newest, 3).expect("save generation N");

    // Tear the newest generation mid-payload, as a crash mid-write that
    // beat the rename would (rename is atomic, but bit-rot is not).
    let bytes = std::fs::read(&receipt.path).expect("read newest");
    std::fs::write(&receipt.path, &bytes[..bytes.len() / 2]).expect("truncate");

    let report = store.load_latest();
    assert_eq!(report.fallbacks, 1, "torn generation must be skipped");
    let resumed = report.checkpoint.expect("generation N-1 must load");
    assert_eq!(resumed.next_epoch, 2);
    assert_eq!(report.world, Some(3));
    let (restored, _) = resumed.restore().expect("N-1 restores");
    let restored = restored.expect("non-empty");
    let (_, name, tensor) = restored.iter().next().expect("one parameter");
    assert_eq!(name, "w");
    let (orig, _) = good.restore().expect("original restores");
    let orig = orig.expect("non-empty original");
    let (_, _, orig_tensor) = orig.iter().next().expect("one parameter");
    assert_eq!(tensor.data(), orig_tensor.data());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn training_survives_a_corrupted_newest_generation() {
    let dir = scratch_dir("train");
    let ds: Dataset = by_name("google").unwrap().materialize(0.002, 11);
    let model = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 5);

    let mut cfg = TrainerConfig::new(EngineKind::DepComm, ClusterSpec::aliyun_ecs(3));
    cfg.recovery = RecoveryConfig::every(2);
    cfg.store = StoreConfig::at(&dir);
    // Every generation saved at boundary 4 is damaged on disk; the kill
    // at epoch 5 forces the rollback through the fallback chain.
    cfg.fault = FaultPlan::kill(1, 5)
        .with_fault(Fault::CorruptCkpt { epoch: Some(4), p: 1.0 });

    let report = Trainer::prepare(&ds, &model, cfg)
        .expect("plan")
        .train(6)
        .expect("training must survive the torn generation");

    assert_eq!(report.epochs.len(), 6, "every epoch accounted for");
    assert!(report.final_loss().is_finite());
    // The rollback skipped the damaged boundary-4 generation and resumed
    // from the boundary-2 one.
    assert_eq!(report.recoveries.len(), 1);
    assert_eq!(report.recoveries[0].1, 2, "resumed from generation N-1");
    assert!(
        report.metrics.total_counter("ckpt.fallbacks") >= 1,
        "fallback must be metered"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

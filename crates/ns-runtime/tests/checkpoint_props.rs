//! Property tests hardening the checkpoint path: capture/restore must be
//! an exact roundtrip (parameters and Adam state bit-for-bit), and
//! arbitrarily damaged `NTSCKPT1` bytes must surface as a typed
//! [`CheckpointError`] — never a panic — because recovery reads
//! snapshots that a crashing process may have half-written. The durable
//! store gets the stronger torn-write guarantee: *any* single bit flip
//! or truncation of a generation file is detected at load (header CRC +
//! payload CRC) and skipped via the fallback chain.
//!
//! These run under `cargo test` with the real proptest crate; the offline
//! shadow workspace skips them (its proptest stand-in is empty).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use ns_runtime::{Checkpoint, CheckpointStore};
use ns_tensor::checkpoint::CheckpointError;
use ns_tensor::{AdamState, ParamStore, Tensor};

/// Unique scratch directory per proptest case (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "nts-props-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deterministic pseudo-random tensor (proptest drives shape + seed; the
/// contents only need to be varied, not uniform).
fn tensor_with(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed.wrapping_mul(2) + 1) % 1999;
            (h as f32 - 999.0) / 250.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// A parameter store with `n` tensors of the given shapes.
fn store_with(shapes: &[(usize, usize)], seed: u64) -> ParamStore {
    let mut s = ParamStore::new();
    for (i, &(r, c)) in shapes.iter().enumerate() {
        s.register(format!("p{i}"), tensor_with(r, c, seed + i as u64));
    }
    s
}

/// Adam moments parallel to the store's shapes.
fn adam_with(shapes: &[(usize, usize)], t: u64, seed: u64) -> AdamState {
    AdamState {
        t,
        m: shapes.iter().map(|&(r, c)| tensor_with(r, c, seed + 100)).collect(),
        v: shapes.iter().map(|&(r, c)| tensor_with(r, c, seed + 200)).collect(),
    }
}

fn shape_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((1usize..6, 1usize..6), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// capture -> restore is the identity on parameters and optimizer
    /// state: names, shapes, values, and Adam's (t, m, v) all match
    /// exactly. Rollback correctness depends on this being bit-for-bit.
    #[test]
    fn capture_restore_is_exact(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        next_epoch in 0usize..100,
        t in 0u64..1_000,
    ) {
        let store = store_with(&shapes, seed);
        let opt = adam_with(&shapes, t, seed);
        let ckpt = Checkpoint::capture(next_epoch, &store, Some(opt.clone()));
        prop_assert_eq!(ckpt.next_epoch, next_epoch);
        let (restored, ropt) = ckpt.restore().expect("fresh capture must restore");
        let restored = restored.expect("non-empty capture");
        prop_assert_eq!(restored.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(restored.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.shape(), v2.shape());
            prop_assert_eq!(v1.data(), v2.data());
        }
        prop_assert_eq!(ropt, Some(opt));
    }

    /// Rebuilding a checkpoint from its own raw bytes (what a
    /// process-level restart does after re-reading the snapshot from
    /// disk) restores identically to the original.
    #[test]
    fn raw_bytes_roundtrip_through_from_raw(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(7, &store, None);
        let rebuilt = Checkpoint::from_raw(7, ckpt.raw_bytes().to_vec(), None);
        let (a, _) = ckpt.restore().unwrap();
        let (b, _) = rebuilt.restore().unwrap();
        let (a, b) = (a.unwrap(), b.unwrap());
        prop_assert_eq!(a.len(), b.len());
        for ((_, n1, v1), (_, n2, v2)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.data(), v2.data());
        }
    }

    /// Truncating the serialized snapshot at any point yields a clean
    /// `io::Error` from restore — never a panic. (Length 0 is the
    /// documented "initial parameters" sentinel, so start at 1.)
    #[test]
    fn truncated_bytes_error_cleanly(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        cut in any::<prop::sample::Index>(),
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(3, &store, None);
        let full = ckpt.raw_bytes().to_vec();
        let keep = 1 + cut.index(full.len() - 1);
        if keep == full.len() {
            return Ok(()); // not actually truncated
        }
        let damaged = Checkpoint::from_raw(3, full[..keep].to_vec(), None);
        prop_assert!(damaged.restore().is_err(), "truncated snapshot restored");
    }

    /// Corrupting any single byte of a *raw-rebuilt* snapshot (no outer
    /// CRC recorded) either errors with a typed [`CheckpointError`] or
    /// restores a same-shaped store — it must never panic and never
    /// change the parameter count. (A raw flip inside the f32 payload is
    /// undetectable by design at this layer; structural damage must be
    /// caught, and the durable store's CRCs catch the rest.)
    #[test]
    fn bit_flips_never_panic(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(3, &store, None);
        let mut bytes = ckpt.raw_bytes().to_vec();
        let i = at.index(bytes.len());
        bytes[i] ^= flip;
        let damaged = Checkpoint::from_raw(3, bytes, None);
        match damaged.restore() {
            // Clean typed rejection: every variant carries the offset the
            // reader had reached, for forensics.
            Err(CheckpointError::Corrupt { .. })
            | Err(CheckpointError::Io { .. })
            | Err(CheckpointError::CrcMismatch { .. }) => {}
            Ok((Some(s), _)) => prop_assert_eq!(s.len(), store.len()),
            Ok((None, _)) => {
                return Err(TestCaseError::fail("non-empty bytes restored to nothing"));
            }
        }
    }

    /// A flip *after* capture is always caught: the in-memory checkpoint
    /// records a CRC over its bytes, so restore reports the mismatch no
    /// matter which bit moved (even deep inside the f32 payload).
    #[test]
    fn post_capture_flips_always_detected(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        at in any::<prop::sample::Index>(),
        flip_bit in 0u32..8,
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(3, &store, None);
        let mut bytes = ckpt.raw_bytes().to_vec();
        let i = at.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        // Keep the original CRC, as a torn in-place overwrite would.
        let damaged = Checkpoint::from_raw_with_crc(3, bytes, ckpt.crc(), None);
        match damaged.restore() {
            Err(CheckpointError::CrcMismatch { expected, computed, .. }) => {
                prop_assert_eq!(expected, ckpt.crc());
                prop_assert_ne!(expected, computed);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {i} escaped the checkpoint CRC: {:?}",
                    other.map(|_| ())
                )));
            }
        }
    }

    /// Torn-write guarantee for the durable store: any single bit flip
    /// anywhere in a generation file — header, length field, or payload —
    /// is detected at load and the damaged generation is skipped, never
    /// silently loaded.
    #[test]
    fn durable_generation_flips_detected_at_load(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        at in any::<prop::sample::Index>(),
        flip_bit in 0u32..8,
    ) {
        let dir = scratch_dir("flip");
        let mut store = CheckpointStore::open(&dir, 2).expect("open scratch store");
        let params = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(4, &params, Some(adam_with(&shapes, 1, seed)));
        let receipt = store.save(&ckpt, 3).expect("save generation");
        let mut bytes = std::fs::read(&receipt.path).expect("read generation back");
        let i = at.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        std::fs::write(&receipt.path, &bytes).expect("write damaged generation");
        let report = store.load_latest();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(report.fallbacks, 1, "flip at byte {} escaped detection", i);
        prop_assert!(report.checkpoint.is_none(), "damaged generation was loaded");
    }

    /// Torn-write guarantee, truncation flavor: a generation cut to any
    /// proper prefix (including zero bytes) is rejected at load.
    #[test]
    fn durable_generation_truncation_detected_at_load(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        cut in any::<prop::sample::Index>(),
    ) {
        let dir = scratch_dir("cut");
        let mut store = CheckpointStore::open(&dir, 2).expect("open scratch store");
        let params = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(2, &params, None);
        let receipt = store.save(&ckpt, 3).expect("save generation");
        let bytes = std::fs::read(&receipt.path).expect("read generation back");
        let keep = cut.index(bytes.len()); // any proper prefix
        std::fs::write(&receipt.path, &bytes[..keep]).expect("truncate generation");
        let report = store.load_latest();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(report.fallbacks, 1, "truncation to {} bytes escaped", keep);
        prop_assert!(report.checkpoint.is_none(), "truncated generation was loaded");
    }
}

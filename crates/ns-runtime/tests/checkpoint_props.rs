//! Property tests hardening the checkpoint path: capture/restore must be
//! an exact roundtrip (parameters and Adam state bit-for-bit), and
//! arbitrarily damaged `NTSCKPT1` bytes must surface as `io::Error` —
//! never a panic — because recovery reads snapshots that a crashing
//! process may have half-written.
//!
//! These run under `cargo test` with the real proptest crate; the offline
//! shadow workspace skips them (its proptest stand-in is empty).

use proptest::prelude::*;

use ns_runtime::Checkpoint;
use ns_tensor::{AdamState, ParamStore, Tensor};

/// Deterministic pseudo-random tensor (proptest drives shape + seed; the
/// contents only need to be varied, not uniform).
fn tensor_with(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed.wrapping_mul(2) + 1) % 1999;
            (h as f32 - 999.0) / 250.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// A parameter store with `n` tensors of the given shapes.
fn store_with(shapes: &[(usize, usize)], seed: u64) -> ParamStore {
    let mut s = ParamStore::new();
    for (i, &(r, c)) in shapes.iter().enumerate() {
        s.register(format!("p{i}"), tensor_with(r, c, seed + i as u64));
    }
    s
}

/// Adam moments parallel to the store's shapes.
fn adam_with(shapes: &[(usize, usize)], t: u64, seed: u64) -> AdamState {
    AdamState {
        t,
        m: shapes.iter().map(|&(r, c)| tensor_with(r, c, seed + 100)).collect(),
        v: shapes.iter().map(|&(r, c)| tensor_with(r, c, seed + 200)).collect(),
    }
}

fn shape_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((1usize..6, 1usize..6), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// capture -> restore is the identity on parameters and optimizer
    /// state: names, shapes, values, and Adam's (t, m, v) all match
    /// exactly. Rollback correctness depends on this being bit-for-bit.
    #[test]
    fn capture_restore_is_exact(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        next_epoch in 0usize..100,
        t in 0u64..1_000,
    ) {
        let store = store_with(&shapes, seed);
        let opt = adam_with(&shapes, t, seed);
        let ckpt = Checkpoint::capture(next_epoch, &store, Some(opt.clone()));
        prop_assert_eq!(ckpt.next_epoch, next_epoch);
        let (restored, ropt) = ckpt.restore().expect("fresh capture must restore");
        let restored = restored.expect("non-empty capture");
        prop_assert_eq!(restored.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(restored.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.shape(), v2.shape());
            prop_assert_eq!(v1.data(), v2.data());
        }
        prop_assert_eq!(ropt, Some(opt));
    }

    /// Rebuilding a checkpoint from its own raw bytes (what a
    /// process-level restart does after re-reading the snapshot from
    /// disk) restores identically to the original.
    #[test]
    fn raw_bytes_roundtrip_through_from_raw(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(7, &store, None);
        let rebuilt = Checkpoint::from_raw(7, ckpt.raw_bytes().to_vec(), None);
        let (a, _) = ckpt.restore().unwrap();
        let (b, _) = rebuilt.restore().unwrap();
        let (a, b) = (a.unwrap(), b.unwrap());
        prop_assert_eq!(a.len(), b.len());
        for ((_, n1, v1), (_, n2, v2)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.data(), v2.data());
        }
    }

    /// Truncating the serialized snapshot at any point yields a clean
    /// `io::Error` from restore — never a panic. (Length 0 is the
    /// documented "initial parameters" sentinel, so start at 1.)
    #[test]
    fn truncated_bytes_error_cleanly(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        cut in any::<prop::sample::Index>(),
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(3, &store, None);
        let full = ckpt.raw_bytes().to_vec();
        let keep = 1 + cut.index(full.len() - 1);
        if keep == full.len() {
            return Ok(()); // not actually truncated
        }
        let damaged = Checkpoint::from_raw(3, full[..keep].to_vec(), None);
        prop_assert!(damaged.restore().is_err(), "truncated snapshot restored");
    }

    /// Corrupting any single byte either errors cleanly or restores a
    /// same-shaped store — it must never panic and never change the
    /// parameter count. (A flip inside the f32 payload is undetectable
    /// by design; structural damage must be caught.)
    #[test]
    fn bit_flips_never_panic(
        shapes in shape_strategy(),
        seed in 0u64..10_000,
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let store = store_with(&shapes, seed);
        let ckpt = Checkpoint::capture(3, &store, None);
        let mut bytes = ckpt.raw_bytes().to_vec();
        let i = at.index(bytes.len());
        bytes[i] ^= flip;
        let damaged = Checkpoint::from_raw(3, bytes, None);
        match damaged.restore() {
            Err(_) => {} // clean rejection
            Ok((Some(s), _)) => prop_assert_eq!(s.len(), store.len()),
            Ok((None, _)) => {
                return Err(TestCaseError::fail("non-empty bytes restored to nothing"));
            }
        }
    }
}

//! Elastic-training integration tests: measured-cost adaptive replanning.
//!
//! The ISSUE acceptance criterion for the replanner: under an injected
//! straggler, the re-run Algorithm-4 greedy split must move at least one
//! dependency from communicated (`C_i^l`) to cached (`R_i^l`) for the
//! slow peer. This drives the whole feedback chain end to end — per-peer
//! receive-wait histograms → robust median attribution → calibrated
//! `CostFactors` + per-owner multipliers → greedy re-split → decision
//! diff — over the real threaded executor.

use ns_gnn::{GnnModel, ModelKind};
use ns_graph::datasets::by_name;
use ns_graph::Dataset;
use ns_net::fault::{Fault, FaultPlan};
use ns_net::ClusterSpec;
use ns_runtime::{EngineKind, RecoveryConfig, Trainer, TrainerConfig};
use std::sync::Mutex;

/// The replan trigger reads wall-clock receive waits; running both tests
/// concurrently makes them each other's stragglers. Serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn dataset() -> Dataset {
    by_name("google").unwrap().materialize(0.002, 11)
}

fn model(ds: &Dataset) -> GnnModel {
    GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 5)
}

#[test]
fn straggler_shifts_its_dependencies_toward_caching() {
    let _serial = SERIAL.lock().unwrap();
    let ds = dataset();
    let m = model(&ds);
    let mut cfg = TrainerConfig::new(EngineKind::Hybrid, ClusterSpec::aliyun_ecs(3));
    cfg.fault = FaultPlan::default().with_fault(Fault::Straggle {
        worker: 1,
        delay_ms: 30,
    });
    cfg.recovery = RecoveryConfig::every(2);
    let report = Trainer::prepare(&ds, &m, cfg).unwrap().train(6).unwrap();

    assert_eq!(report.epochs.len(), 6);
    assert!(report.final_loss().is_finite());
    assert!(
        !report.replans.is_empty(),
        "a 30ms straggler must trigger at least one drift replan"
    );

    let first = &report.replans[0];
    assert_eq!(first.reason, "drift");
    let max_mult = first
        .peer_mult
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (first.peer_mult[1] - max_mult).abs() < 1e-12,
        "the straggling peer must carry the largest multiplier: {:?}",
        first.peer_mult
    );
    assert!(
        first.peer_mult[1] >= 2.0,
        "straggler multiplier must cross the replan trigger: {:?}",
        first.peer_mult
    );
    assert!(
        first.moved_to_cached[1] >= 1,
        "replan must move >= 1 dependency owned by the slow peer from \
         communicated to cached: {:?}",
        first.moved_to_cached
    );

    // Metrics mirror the replan events.
    let coord = report
        .metrics
        .frames
        .get(&ns_metrics::COORDINATOR)
        .expect("coordinator frame");
    assert!(coord.counter("replan.events") >= report.replans.len() as u64);
    assert!(coord.counter("replan.moved_to_cached") >= 1);
}

#[test]
fn flap_partitioned_worker_is_evicted_heals_and_rejoins() {
    // A worker whose every link is flapping (held, not lost, 90% of each
    // period) is indistinguishable from a straggler to its peers: all
    // receivers' waits on it inflate together. The boundary pass must
    // evict it, which retires its link faults (the modeled replacement
    // host has fresh links), and rejoin must re-admit it at the next
    // checkpoint boundary — with no circuit breaker left open anywhere.
    let _serial = SERIAL.lock().unwrap();
    let ds = dataset();
    let m = model(&ds);
    let mut cfg = TrainerConfig::new(EngineKind::DepComm, ClusterSpec::aliyun_ecs(3));
    // duty 1.0 = no up-window: every message is held to the next period
    // boundary (~30ms), the link-level twin of a 30ms straggler. Lower
    // duties let ping-pong traffic synchronize into the short up-windows
    // and tunnel through with almost no measured wait.
    cfg.fault = FaultPlan::default()
        .with_fault(Fault::Flap { a: 0, b: 1, period_ms: 30, duty: 1.0 })
        .with_fault(Fault::Flap { a: 1, b: 2, period_ms: 30, duty: 1.0 });
    cfg.recovery = RecoveryConfig::every(2)
        .with_rejoin()
        .with_straggler_eviction(4.0);
    let report = Trainer::prepare(&ds, &m, cfg).unwrap().train(6).unwrap();

    assert_eq!(report.epochs.len(), 6);
    assert!(report.final_loss().is_finite());
    // The flap actually bit (messages were held) ...
    assert!(
        report.metrics.total_counter("net.fault.delays") > 0,
        "flapped links must inject hold delays"
    );
    assert!(
        report.recoveries.is_empty(),
        "a flapped (not killed) worker must not burn restart budget: {:?}",
        report.recoveries
    );
    let kinds: Vec<_> = report.membership.iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&ns_net::MembershipEventKind::Evicted),
        "the flapped worker must be evicted as a straggler: {kinds:?}"
    );
    assert_eq!(
        report.membership[0].worker, 1,
        "the flapped slot is the one evicted"
    );
    assert_eq!(
        kinds.last(),
        Some(&ns_net::MembershipEventKind::Rejoined),
        "the evicted member re-admits once its links are retired: {kinds:?}"
    );
    // After the heal + rejoin no breaker is left latched open
    // against a reachable peer.
    assert_eq!(
        report.metrics.total_counter("net.breaker.stuck_open"),
        0,
        "all circuit breakers must return to Closed after the links heal"
    );
}

#[test]
fn healthy_run_never_replans() {
    let _serial = SERIAL.lock().unwrap();
    let ds = dataset();
    let m = model(&ds);
    let mut cfg = TrainerConfig::new(EngineKind::Hybrid, ClusterSpec::aliyun_ecs(3));
    cfg.recovery = RecoveryConfig::every(2);
    let report = Trainer::prepare(&ds, &m, cfg).unwrap().train(4).unwrap();
    assert_eq!(report.epochs.len(), 4);
    assert!(
        report.replans.is_empty(),
        "no drift on a healthy cluster: {:?}",
        report.replans
    );
    assert!(report.membership.is_empty());
}

//! Engine-agnostic distributed execution of a dependency plan.
//!
//! One OS thread per worker; real tensors move over the `ns-net` fabric.
//! Per layer, the executor realizes the paper's forward
//! *synchronize-compute* mode (masters push dependency rows, mirrors
//! assemble their input matrix, then the layer's tape segment runs) and
//! the backward *compute-synchronize* mode (the tape segment's input
//! gradient is split into locally-routed rows and mirror gradients pushed
//! back to masters, where they are aggregated in fixed peer order for
//! determinism). Parameter gradients are combined with a ring all-reduce
//! and every worker applies an identical optimizer step, keeping the
//! replicated parameter stores bitwise in sync.

use std::sync::mpsc;
use std::time::Instant;

use ns_gnn::loss::{accuracy, softmax_cross_entropy};
use ns_gnn::GnnModel;
use ns_graph::Dataset;
use ns_net::{Endpoint, Fabric, MessageKind};
use ns_tensor::{Adam, Optimizer, Sgd, Tensor};

use crate::error::{Result, RuntimeError};
use crate::plan::WorkerPlan;

/// Which optimizer each worker replica runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// Adam.
    Adam,
}

/// How parameter gradients are combined across workers each epoch.
///
/// The paper uses all-reduce and notes it "is orthogonal to and can be
/// replaced by the Parameter-Server model"; both are provided. They are
/// numerically equivalent (same deterministic sums), but the PS pattern
/// funnels all gradient traffic through one node, which the simulator
/// penalizes with ingress contention at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Ring all-reduce: `2(m-1)` rounds of `bytes/m` chunks.
    AllReduce,
    /// Parameter server at worker 0: workers push full gradients, the
    /// server reduces in fixed order and broadcasts the sum back.
    ParameterServer,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Emit sends in ring order (`i+1, i+2, …`) as NeutronStar schedules
    /// them; otherwise naive ascending order. (Numerics are unaffected;
    /// receive-side accumulation is always in fixed peer order.)
    pub ring_order: bool,
    /// Gradient synchronization strategy.
    pub sync: SyncMode,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            ring_order: true,
            sync: SyncMode::AllReduce,
        }
    }
}

/// Numeric results of one epoch, aggregated over workers.
#[derive(Debug, Clone)]
pub struct EpochMetrics {
    /// Mean training loss (cluster-wide).
    pub loss: f64,
    /// Training accuracy.
    pub train_acc: f64,
    /// Validation accuracy.
    pub val_acc: f64,
    /// Test accuracy.
    pub test_acc: f64,
    /// Wall-clock seconds of the slowest worker.
    pub wall_s: f64,
}

struct WorkerReport {
    loss: f64,
    counts: [(usize, usize); 3], // (correct, total) for train/val/test
    wall_s: f64,
}

fn peer_order(me: usize, m: usize, ring: bool) -> Vec<usize> {
    if ring {
        (1..m).map(|k| (me + k) % m).collect()
    } else {
        (0..m).filter(|&j| j != me).collect()
    }
}

/// Ring all-reduce over the flattened parameter gradients. All workers
/// return identical sums (deterministic chunk-wise accumulation order).
fn ring_allreduce(ep: &Endpoint, grads: &mut [Tensor]) {
    let m = ep.world();
    if m == 1 {
        return;
    }
    let me = ep.id();
    let right = (me + 1) % m;
    let left = (me + m - 1) % m;
    // Flatten.
    let mut flat: Vec<f32> = Vec::new();
    for g in grads.iter() {
        flat.extend_from_slice(g.data());
    }
    let n = flat.len();
    let chunk_bounds: Vec<(usize, usize)> = (0..m)
        .map(|c| {
            let lo = c * n / m;
            let hi = (c + 1) * n / m;
            (lo, hi)
        })
        .collect();
    let slice = |flat: &[f32], c: usize| flat[chunk_bounds[c].0..chunk_bounds[c].1].to_vec();

    // Reduce-scatter.
    for s in 0..m - 1 {
        let send_c = (me + m - s) % m;
        let recv_c = (me + m - s - 1) % m;
        ep.send(right, MessageKind::AllReduce { round: s as u32, data: slice(&flat, send_c) });
        let msg = ep.recv_from(left);
        let MessageKind::AllReduce { data, .. } = msg.kind else {
            panic!("unexpected message during all-reduce");
        };
        let (lo, hi) = chunk_bounds[recv_c];
        for (dst, src) in flat[lo..hi].iter_mut().zip(data.iter()) {
            *dst += src;
        }
    }
    // All-gather.
    for s in 0..m - 1 {
        let send_c = (me + 1 + m - s) % m;
        let recv_c = (me + m - s) % m;
        ep.send(
            right,
            MessageKind::AllReduce { round: (m - 1 + s) as u32, data: slice(&flat, send_c) },
        );
        let msg = ep.recv_from(left);
        let MessageKind::AllReduce { data, .. } = msg.kind else {
            panic!("unexpected message during all-gather");
        };
        let (lo, hi) = chunk_bounds[recv_c];
        flat[lo..hi].copy_from_slice(&data);
    }
    // Unflatten.
    let mut off = 0;
    for g in grads.iter_mut() {
        let len = g.len();
        g.data_mut().copy_from_slice(&flat[off..off + len]);
        off += len;
    }
}

/// Parameter-server gradient combination: every worker pushes its full
/// gradient vector to worker 0, which reduces in ascending worker order
/// (deterministic) and broadcasts the sum. All workers end with
/// identical gradients, exactly as [`ring_allreduce`] produces.
fn ps_reduce(ep: &Endpoint, grads: &mut [Tensor]) {
    let m = ep.world();
    if m == 1 {
        return;
    }
    let me = ep.id();
    let mut flat: Vec<f32> = Vec::new();
    for g in grads.iter() {
        flat.extend_from_slice(g.data());
    }
    if me == 0 {
        for src in 1..m {
            let msg = ep.recv_from(src);
            let MessageKind::AllReduce { data, .. } = msg.kind else {
                panic!("unexpected message during ps push");
            };
            for (a, b) in flat.iter_mut().zip(data.iter()) {
                *a += b;
            }
        }
        for dst in 1..m {
            ep.send(dst, MessageKind::AllReduce { round: 1, data: flat.clone() });
        }
    } else {
        ep.send(0, MessageKind::AllReduce { round: 0, data: flat.clone() });
        let msg = ep.recv_from(0);
        let MessageKind::AllReduce { data, .. } = msg.kind else {
            panic!("unexpected message during ps pull");
        };
        flat = data;
    }
    let mut off = 0;
    for g in grads.iter_mut() {
        let len = g.len();
        g.data_mut().copy_from_slice(&flat[off..off + len]);
        off += len;
    }
}

/// One worker's training loop over all epochs.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    plan: &WorkerPlan,
    model: &GnnModel,
    dataset: &Dataset,
    ep: Endpoint,
    epochs: usize,
    cfg: &ExecConfig,
    tx: mpsc::Sender<(usize, usize, WorkerReport)>, // (epoch, worker, report)
) -> ns_tensor::ParamStore {
    let m = ep.world();
    let me = ep.id();
    let dims = model.dims();
    let num_layers = model.num_layers();
    let mut store = model.fresh_store();
    let mut opt_sgd;
    let mut opt_adam;
    let opt: &mut dyn Optimizer = match cfg.optimizer {
        OptimizerKind::Sgd => {
            opt_sgd = Sgd::new(cfg.lr);
            &mut opt_sgd
        }
        OptimizerKind::Adam => {
            opt_adam = Adam::new(cfg.lr);
            &mut opt_adam
        }
    };

    // Local feature matrix (owned rows + prefetched cached features —
    // DepCache's one-time dependency retrieval, Algorithm 2 line 5).
    let features = dataset.features.gather_rows(&plan.feature_rows);

    // Labels and loss weights over owned rows.
    let total_train = dataset.num_train().max(1);
    let owned_labels: Vec<u32> =
        plan.owned.iter().map(|&v| dataset.labels[v as usize]).collect();
    let loss_weights: Vec<f32> = plan
        .owned
        .iter()
        .map(|&v| if dataset.train_mask[v as usize] { 1.0 / total_train as f32 } else { 0.0 })
        .collect();
    let masks: [Vec<bool>; 3] = [
        plan.owned.iter().map(|&v| dataset.train_mask[v as usize]).collect(),
        plan.owned.iter().map(|&v| dataset.val_mask[v as usize]).collect(),
        plan.owned.iter().map(|&v| dataset.test_mask[v as usize]).collect(),
    ];

    for epoch in 0..epochs {
        let t0 = Instant::now();
        // ---- forward ----
        let mut runs = Vec::with_capacity(num_layers);
        let mut prev = features.clone();
        for lz in 0..num_layers {
            let lp = &plan.layers[lz];
            // GetFromDepNbr, send side: masters push their rows.
            for j in peer_order(me, m, cfg.ring_order) {
                if lp.send_ids[j].is_empty() {
                    continue;
                }
                let rows = prev.gather_rows(&lp.send_rows[j]);
                ep.send(
                    j,
                    MessageKind::Rows {
                        layer: lz as u32,
                        ids: lp.send_ids[j].clone(),
                        cols: rows.cols() as u32,
                        data: rows.into_vec(),
                    },
                );
            }
            // Assemble the layer-input matrix.
            let d_in = dims[lz];
            let mut input = Tensor::zeros(lp.input_ids.len(), d_in);
            for &(pr, ir) in &lp.local_src {
                input
                    .row_mut(ir as usize)
                    .copy_from_slice(prev.row(pr as usize));
            }
            for j in 0..m {
                if lp.recv_ids[j].is_empty() {
                    continue;
                }
                let msg = ep.recv_from(j);
                let MessageKind::Rows { layer, ids, cols, data } = msg.kind else {
                    panic!("worker {me}: expected Rows from {j}");
                };
                assert_eq!(layer as usize, lz, "layer mismatch");
                assert_eq!(cols as usize, d_in, "width mismatch");
                assert_eq!(ids, lp.recv_ids[j], "id schedule mismatch");
                for (k, &r) in lp.recv_rows[j].iter().enumerate() {
                    input
                        .row_mut(r as usize)
                        .copy_from_slice(&data[k * d_in..(k + 1) * d_in]);
                }
            }
            let run = model.layer(lz).forward(&store, &lp.topo, input);
            prev = run.output().clone();
            runs.push(run);
        }

        // ---- prediction head ----
        let logits = prev;
        let head = softmax_cross_entropy(&logits, &owned_labels, &loss_weights);
        let counts = [
            accuracy(&logits, &owned_labels, &masks[0]),
            accuracy(&logits, &owned_labels, &masks[1]),
            accuracy(&logits, &owned_labels, &masks[2]),
        ];

        // ---- backward ----
        let mut grads = store.zero_grads();
        let mut g = head.logit_grad;
        for lz in (0..num_layers).rev() {
            let run = runs.pop().expect("one run per layer");
            let (input_grad, _) = run.backward(g, &mut grads);
            let lp = &plan.layers[lz];
            if lz == 0 {
                // Feature gradients are not propagated anywhere.
                break;
            }
            let d = dims[lz];
            // PostToDepNbr: mirror gradients return to their masters.
            for j in peer_order(me, m, cfg.ring_order) {
                if lp.recv_ids[j].is_empty() {
                    continue;
                }
                let rows = input_grad.gather_rows(&lp.recv_rows[j]);
                ep.send(
                    j,
                    MessageKind::Grads {
                        layer: lz as u32,
                        ids: lp.recv_ids[j].clone(),
                        cols: d as u32,
                        data: rows.into_vec(),
                    },
                );
            }
            // Route local rows into the previous layer's output gradient.
            let prev_rows = plan.layers[lz - 1].compute.len();
            let mut g_prev = Tensor::zeros(prev_rows, d);
            for &(pr, ir) in &lp.local_src {
                let src = input_grad.row(ir as usize);
                let dst = g_prev.row_mut(pr as usize);
                for (a, &b) in dst.iter_mut().zip(src) {
                    *a += b;
                }
            }
            // Aggregate mirror gradients in fixed peer order (determinism).
            for j in 0..m {
                if lp.send_ids[j].is_empty() {
                    continue;
                }
                let msg = ep.recv_from(j);
                let MessageKind::Grads { layer, ids, cols, data } = msg.kind else {
                    panic!("worker {me}: expected Grads from {j}");
                };
                assert_eq!(layer as usize, lz);
                assert_eq!(cols as usize, d);
                assert_eq!(ids, lp.send_ids[j]);
                for (k, &pr) in lp.send_rows[j].iter().enumerate() {
                    let dst = g_prev.row_mut(pr as usize);
                    for (a, &b) in dst.iter_mut().zip(&data[k * d..(k + 1) * d]) {
                        *a += b;
                    }
                }
            }
            g = g_prev;
        }

        // ---- parameter update ----
        match cfg.sync {
            SyncMode::AllReduce => ring_allreduce(&ep, &mut grads),
            SyncMode::ParameterServer => ps_reduce(&ep, &mut grads),
        }
        opt.step(&mut store, &grads);

        let report = WorkerReport {
            loss: head.loss,
            counts,
            wall_s: t0.elapsed().as_secs_f64(),
        };
        tx.send((epoch, me, report)).expect("metrics channel closed");
    }
    store
}

/// Trains `epochs` epochs of `model` on `dataset` under `plans`,
/// returning per-epoch aggregated metrics and the trained parameters
/// (worker 0's replica; all replicas are identical after the final
/// synchronized step).
pub fn train_epochs(
    dataset: &Dataset,
    model: &GnnModel,
    plans: &[WorkerPlan],
    epochs: usize,
    cfg: &ExecConfig,
) -> Result<(Vec<EpochMetrics>, ns_tensor::ParamStore)> {
    let m = plans.len();
    if m == 0 {
        return Err(RuntimeError::InvalidConfig("no worker plans".into()));
    }
    if model.dims()[0] != dataset.feature_dim() {
        return Err(RuntimeError::InvalidConfig(format!(
            "model input dim {} != dataset feature dim {}",
            model.dims()[0],
            dataset.feature_dim()
        )));
    }
    let endpoints = Fabric::new(m).into_endpoints();
    let (tx, rx) = mpsc::channel();

    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (plan, ep) in plans.iter().zip(endpoints) {
            let tx = tx.clone();
            handles.push(s.spawn(move |_| worker_loop(plan, model, dataset, ep, epochs, cfg, tx)));
        }
        drop(tx);
        // Aggregate metrics on the coordinating thread.
        let mut per_epoch: Vec<Vec<WorkerReport>> = (0..epochs).map(|_| Vec::new()).collect();
        while let Ok((epoch, _worker, report)) = rx.recv() {
            per_epoch[epoch].push(report);
        }
        let metrics = per_epoch
            .into_iter()
            .map(|reports| {
                assert_eq!(reports.len(), m, "missing worker reports");
                let loss = reports.iter().map(|r| r.loss).sum();
                let acc = |k: usize| {
                    let c: usize = reports.iter().map(|r| r.counts[k].0).sum();
                    let t: usize = reports.iter().map(|r| r.counts[k].1).sum();
                    if t == 0 {
                        0.0
                    } else {
                        c as f64 / t as f64
                    }
                };
                EpochMetrics {
                    loss,
                    train_acc: acc(0),
                    val_acc: acc(1),
                    test_acc: acc(2),
                    wall_s: reports.iter().map(|r| r.wall_s).fold(0.0, f64::max),
                }
            })
            .collect();
        let store = handles
            .into_iter()
            .next()
            .expect("at least one worker")
            .join()
            .expect("worker 0 panicked");
        Ok((metrics, store))
    })
    .expect("worker thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plans, DepDecision};
    use ns_gnn::{GnnModel, ModelKind};
    use ns_graph::datasets::by_name;
    use ns_graph::Partitioner;

    fn small_dataset() -> Dataset {
        by_name("cora").unwrap().materialize(0.2, 7)
    }

    fn train_with(
        dataset: &Dataset,
        decision: &DepDecision,
        parts: usize,
        kind: ModelKind,
        epochs: usize,
    ) -> Vec<EpochMetrics> {
        let part = Partitioner::Chunk.partition(&dataset.graph, parts);
        let plans = build_plans(&dataset.graph, &part, 2, decision).unwrap();
        let model = GnnModel::two_layer(kind, dataset.feature_dim(), 16, dataset.num_classes, 3);
        train_epochs(dataset, &model, &plans, epochs, &ExecConfig::default()).unwrap().0
    }

    #[test]
    fn single_worker_training_reduces_loss() {
        let ds = small_dataset();
        let metrics = train_with(&ds, &DepDecision::CommAll, 1, ModelKind::Gcn, 12);
        assert!(metrics.last().unwrap().loss < metrics[0].loss * 0.8);
    }

    #[test]
    fn distributed_depcomm_matches_single_worker() {
        let ds = small_dataset();
        let single = train_with(&ds, &DepDecision::CommAll, 1, ModelKind::Gcn, 4);
        let multi = train_with(&ds, &DepDecision::CommAll, 3, ModelKind::Gcn, 4);
        for (a, b) in single.iter().zip(multi.iter()) {
            assert!(
                (a.loss - b.loss).abs() < 1e-3 * a.loss.abs().max(1.0),
                "loss diverged: {} vs {}",
                a.loss,
                b.loss
            );
        }
    }

    #[test]
    fn depcache_matches_depcomm_numerically() {
        let ds = small_dataset();
        let comm = train_with(&ds, &DepDecision::CommAll, 3, ModelKind::Gcn, 4);
        let cache = train_with(&ds, &DepDecision::CacheAll, 3, ModelKind::Gcn, 4);
        for (a, b) in comm.iter().zip(cache.iter()) {
            assert!(
                (a.loss - b.loss).abs() < 2e-3 * a.loss.abs().max(1.0),
                "loss diverged: {} vs {}",
                a.loss,
                b.loss
            );
        }
    }

    #[test]
    fn gcn_learns_sbm_communities() {
        let ds = small_dataset();
        let metrics = train_with(&ds, &DepDecision::CommAll, 2, ModelKind::Gcn, 40);
        let final_acc = metrics.last().unwrap().test_acc;
        assert!(final_acc > 0.6, "test acc {final_acc}");
    }

    #[test]
    fn all_models_train_distributed() {
        let ds = small_dataset();
        for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat] {
            let metrics = train_with(&ds, &DepDecision::CommAll, 2, kind, 6);
            assert!(
                metrics.last().unwrap().loss < metrics[0].loss,
                "{} did not learn",
                kind.name()
            );
        }
    }

    #[test]
    fn parameter_server_matches_allreduce() {
        let ds = small_dataset();
        let part = Partitioner::Chunk.partition(&ds.graph, 3);
        let plans = build_plans(&ds.graph, &part, 2, &DepDecision::CommAll).unwrap();
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let (ar, ar_store) = train_epochs(&ds, &model, &plans, 3, &ExecConfig::default()).unwrap();
        let (ps, ps_store) = train_epochs(
            &ds,
            &model,
            &plans,
            3,
            &ExecConfig { sync: SyncMode::ParameterServer, ..Default::default() },
        )
        .unwrap();
        for ((_, _, a), (_, _, b)) in ar_store.iter().zip(ps_store.iter()) {
            assert!(a.max_abs_diff(b) < 1e-4, "trained params must agree");
        }
        for (a, b) in ar.iter().zip(ps.iter()) {
            // Summation orders differ (ring chunks vs server order), so
            // agreement is to f32 rounding, not bitwise.
            assert!(
                (a.loss - b.loss).abs() < 1e-4 * a.loss.abs().max(1.0),
                "sync modes must agree: {} vs {}",
                a.loss,
                b.loss
            );
        }
    }

    #[test]
    fn mismatched_feature_dim_rejected() {
        let ds = small_dataset();
        let part = Partitioner::Chunk.partition(&ds.graph, 2);
        let plans = build_plans(&ds.graph, &part, 2, &DepDecision::CommAll).unwrap();
        let model = GnnModel::two_layer(ModelKind::Gcn, 99, 16, ds.num_classes, 3);
        let err = train_epochs(&ds, &model, &plans, 1, &ExecConfig::default());
        assert!(matches!(err, Err(RuntimeError::InvalidConfig(_))));
    }
}

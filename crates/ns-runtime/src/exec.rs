//! Engine-agnostic distributed execution of a dependency plan.
//!
//! One OS thread per worker; real tensors move over the `ns-net` fabric.
//! Per layer, the executor realizes the paper's forward
//! *synchronize-compute* mode (masters push dependency rows, mirrors
//! assemble their input matrix, then the layer's tape segment runs) and
//! the backward *compute-synchronize* mode (the tape segment's input
//! gradient is split into locally-routed rows and mirror gradients pushed
//! back to masters, where they are aggregated in fixed peer order for
//! determinism). Parameter gradients are combined with a ring all-reduce
//! and every worker applies an identical optimizer step, keeping the
//! replicated parameter stores bitwise in sync.
//!
//! Failure semantics: workers never panic on fabric trouble. Every
//! receive runs under a timeout with bounded exponential-backoff retries
//! ([`RecvConfig`]); a dead, wedged, or protocol-desynced peer turns the
//! worker's result into a typed failure, the coordinator drains and joins
//! *all* threads (a failed worker drops its endpoint, which cascades
//! disconnects through the mesh and unblocks every survivor), and the
//! root-cause failure surfaces as
//! [`RuntimeError::WorkerFailed`] / [`RuntimeError::SyncTimeout`].
//! Deterministic fault injection and checkpoint-resume state ride in
//! [`RunState`].

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ns_gnn::loss::{accuracy, softmax_cross_entropy};
use ns_gnn::GnnModel;
use ns_graph::Dataset;
use ns_metrics::{span, LayerSplit, MetricsFrame, MetricsRecorder, Phase, RunMetrics};
use ns_net::fault::FaultPlan;
use ns_net::policy::{Backoff, BreakerState, Budget, CircuitBreaker};
use ns_net::{
    Endpoint, Fabric, Message, MessageKind, NetError, NetStats, ParallelEnqueue, KIND_NAMES,
};
use ns_tensor::{Adam, AdamState, Optimizer, ParamStore, Sgd, Tensor};

use crate::error::{FailureCause, Result, RuntimeError};
use crate::plan::WorkerPlan;

/// Which optimizer each worker replica runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// Adam.
    Adam,
}

/// How parameter gradients are combined across workers each epoch.
///
/// The paper uses all-reduce and notes it "is orthogonal to and can be
/// replaced by the Parameter-Server model"; both are provided. They are
/// numerically equivalent (same deterministic sums), but the PS pattern
/// funnels all gradient traffic through one node, which the simulator
/// penalizes with ingress contention at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Ring all-reduce: `2(m-1)` rounds of `bytes/m` chunks.
    AllReduce,
    /// Parameter server at worker 0: workers push full gradients, the
    /// server reduces in fixed order and broadcasts the sum back.
    ParameterServer,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Emit sends in ring order (`i+1, i+2, …`) as NeutronStar schedules
    /// them; otherwise naive ascending order. (Numerics are unaffected;
    /// receive-side accumulation is always in fixed peer order.)
    pub ring_order: bool,
    /// Gradient synchronization strategy.
    pub sync: SyncMode,
    /// Assemble outgoing row/gradient messages through the lock-free
    /// parallel enqueuer (§4.3): all peers' send buffers are filled in one
    /// chunk-stealing job, then flushed in ring order. `false` gathers and
    /// sends peer-by-peer on the worker thread (the "L" ablation of
    /// Fig. 9). Payload bytes are identical either way.
    pub lock_free: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            ring_order: true,
            sync: SyncMode::AllReduce,
            lock_free: true,
        }
    }
}

/// Receive timeout and retry policy. The first attempt waits
/// `timeout_ms`; each of the `retries` further attempts doubles the wait
/// (bounded exponential backoff), absorbing injected drop/retransmit
/// delays and real straggler jitter before a peer is declared wedged.
///
/// The schedule runs through [`ns_net::policy`]: middle retry windows
/// carry deterministic seeded jitter (two workers stalled by the same
/// event retry on *different* schedules instead of in lockstep), the
/// whole operation is clamped by a [`Budget`] equal to the unjittered
/// window sum, and every peer sits behind a [`CircuitBreaker`] — after
/// `breaker_threshold` consecutive failed receive operations the peer
/// is failed instantly (no window spent) until `breaker_cooldown_ms`
/// passes and a half-open probe succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvConfig {
    /// First receive window, milliseconds.
    pub timeout_ms: u64,
    /// Number of doubled-window retries after the first timeout.
    pub retries: u32,
    /// Consecutive failed receive *operations* from one peer before its
    /// circuit breaker opens.
    pub breaker_threshold: u32,
    /// Milliseconds an open breaker waits before admitting the
    /// half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for RecvConfig {
    fn default() -> Self {
        Self {
            timeout_ms: 1_000,
            retries: 3,
            breaker_threshold: 2,
            breaker_cooldown_ms: 250,
        }
    }
}

/// Liveness watchdog policy: a per-run supervisor thread that detects a
/// worker which stopped making epoch progress while holding no fabric
/// operation — the blind spot of receive timeouts and circuit breakers
/// (nothing is waiting *on* the stuck thread's socket, so no deadline
/// fires). The deadline is armed from the observed worst epoch span
/// times `multiplier`, never below `floor_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Deadline multiplier over the observed worst (p99-equivalent at
    /// per-run sample counts) epoch span.
    pub multiplier: f64,
    /// Minimum armed deadline, milliseconds — covers the first epoch,
    /// before any span has been observed.
    pub floor_ms: u64,
    /// Supervisor sampling period, milliseconds.
    pub poll_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { multiplier: 8.0, floor_ms: 250, poll_ms: 5 }
    }
}

/// Shared watchdog state: per-worker heartbeats (stamped at each epoch
/// top), per-worker cancel flags, and the trip counter. Lives on the
/// coordinator's stack; workers and the supervisor thread borrow it
/// through the crossbeam scope.
pub(crate) struct Watchdog {
    cfg: WatchdogConfig,
    /// Per-worker last-heartbeat time, ms since `t0`, offset by +1 so 0
    /// can mean "not started". `u64::MAX` = worker exited.
    beats: Vec<AtomicU64>,
    cancel: Vec<AtomicBool>,
    trips: AtomicU64,
    done: AtomicBool,
    t0: Instant,
}

impl Watchdog {
    fn new(world: usize, cfg: WatchdogConfig) -> Self {
        Self {
            cfg,
            beats: (0..world).map(|_| AtomicU64::new(0)).collect(),
            cancel: (0..world).map(|_| AtomicBool::new(false)).collect(),
            trips: AtomicU64::new(0),
            done: AtomicBool::new(false),
            t0: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    fn beat(&self, worker: usize) {
        self.beats[worker].store(self.now_ms() + 1, Ordering::Release);
    }

    fn finish(&self, worker: usize) {
        self.beats[worker].store(u64::MAX, Ordering::Release);
    }

    fn cancelled(&self, worker: usize) -> bool {
        self.cancel[worker].load(Ordering::Acquire)
    }

    fn shutdown(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// The supervisor loop. A cancel flag is only *actionable* for a
    /// worker stuck outside the fabric (the injected-hang loop polls
    /// it); a worker merely blocked in a long receive ignores it — the
    /// receive budget already bounds that case, so a spurious trip
    /// cannot kill a healthy-but-waiting worker.
    fn run(&self) {
        let n = self.beats.len();
        let mut last = vec![0u64; n];
        let mut tripped = vec![false; n];
        // Worst completed epoch span observed across all workers, ms.
        let mut worst_span = 0u64;
        while !self.done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(self.cfg.poll_ms.max(1)));
            let now = self.now_ms();
            let deadline = (worst_span as f64 * self.cfg.multiplier) as u64;
            let deadline = deadline.max(self.cfg.floor_ms);
            for w in 0..n {
                let b = self.beats[w].load(Ordering::Acquire);
                if b == 0 || b == u64::MAX {
                    last[w] = b;
                    continue;
                }
                if last[w] != 0 && last[w] != u64::MAX && b > last[w] {
                    worst_span = worst_span.max(b - last[w]);
                }
                last[w] = b;
                let stalled = now.saturating_sub(b - 1);
                if stalled > deadline && !tripped[w] {
                    tripped[w] = true;
                    self.cancel[w].store(true, Ordering::Release);
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Cross-chunk execution state for fault-tolerant runs: where the run
/// starts (after a checkpoint restore), the parameters and optimizer
/// state to resume from, the fault plan to inject, and the receive
/// policy. [`Default`] is a clean from-scratch, fault-free run.
#[derive(Debug, Clone, Default)]
pub struct RunState {
    /// Absolute epoch the first executed epoch corresponds to (fault
    /// plans and metrics are stamped with `epoch_offset + epoch`).
    pub epoch_offset: usize,
    /// Parameters to start from (`None` = the model's fresh store).
    pub init_params: Option<ParamStore>,
    /// Adam state to resume (`None` = fresh moments; ignored for SGD).
    pub opt_state: Option<AdamState>,
    /// Injected faults.
    pub fault: FaultPlan,
    /// Receive timeout/retry policy.
    pub recv: RecvConfig,
    /// Shared trace-clock origin for the metrics recorders (`None` =
    /// "start of this call"). The recovery loop threads one origin
    /// through every chunk so the spans of a run that rolled back and
    /// resumed all land on a single timeline.
    pub origin: Option<Instant>,
    /// Liveness watchdog policy (`None` = no supervisor thread).
    pub watchdog: Option<WatchdogConfig>,
}

/// Numeric results of one epoch, aggregated over workers.
#[derive(Debug, Clone)]
pub struct EpochMetrics {
    /// Mean training loss (cluster-wide).
    pub loss: f64,
    /// Training accuracy.
    pub train_acc: f64,
    /// Validation accuracy.
    pub val_acc: f64,
    /// Test accuracy.
    pub test_acc: f64,
    /// Wall-clock seconds of the slowest worker.
    pub wall_s: f64,
}

struct WorkerReport {
    loss: f64,
    counts: [(usize, usize); 3], // (correct, total) for train/val/test
    wall_s: f64,
}

/// A worker's typed mid-run failure (internal; the coordinator maps the
/// root cause onto [`RuntimeError`]).
#[derive(Debug, Clone)]
struct WorkerFailure {
    worker: usize,
    epoch: usize,
    cause: FailureCause,
    in_sync: bool,
}

/// The per-worker optimizer, concrete so Adam state can be exported for
/// checkpointing.
enum Opt {
    Sgd(Sgd),
    Adam(Adam),
}

impl Opt {
    fn new(cfg: &ExecConfig, resume: Option<AdamState>) -> Self {
        match cfg.optimizer {
            OptimizerKind::Sgd => Opt::Sgd(Sgd::new(cfg.lr)),
            OptimizerKind::Adam => {
                let mut adam = Adam::new(cfg.lr);
                if let Some(state) = resume {
                    adam.import_state(state);
                }
                Opt::Adam(adam)
            }
        }
    }

    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        match self {
            Opt::Sgd(o) => o.step(store, grads),
            Opt::Adam(o) => o.step(store, grads),
        }
    }

    fn export(&self) -> Option<AdamState> {
        match self {
            Opt::Sgd(_) => None,
            Opt::Adam(o) => Some(o.export_state()),
        }
    }
}

fn peer_order(me: usize, m: usize, ring: bool) -> Vec<usize> {
    if ring {
        (1..m).map(|k| (me + k) % m).collect()
    } else {
        (0..m).filter(|&j| j != me).collect()
    }
}

/// Builds one send task's per-peer payload buffers through the lock-free
/// parallel enqueuer (§4.3): every peer's rows are gathered from `src`
/// by one chunk-stealing job over the flattened slot space, ready to be
/// drained with `take(j)` in ring order. Returns `None` when the config
/// disables lock-free enqueuing (the caller then gathers inline per
/// peer) or when there is nothing to send.
fn enqueue_payloads(
    cfg: &ExecConfig,
    rec: &MetricsRecorder,
    src: &Tensor,
    rows_per_peer: &[Vec<u32>],
) -> Option<ParallelEnqueue> {
    if !cfg.lock_free {
        return None;
    }
    let slots: Vec<usize> = rows_per_peer.iter().map(Vec::len).collect();
    let total: usize = slots.iter().sum();
    if total == 0 {
        return None;
    }
    let views: Vec<&[u32]> = rows_per_peer.iter().map(|r| &r[..]).collect();
    // Staging buffers come from the tensor pool: shape-stationary send
    // schedules mean next epoch's take_scratch is served by the buffers
    // the receivers recycled this epoch.
    let enq = ParallelEnqueue::new_with(src.cols(), &slots, ns_tensor::pool::take_scratch);
    enq.fill(src.data(), &views);
    rec.incr("net.enqueue.rows", total as u64);
    Some(enq)
}

/// Drains the worker thread's [`ns_par`] counters into its recorder: how
/// many parallel jobs its kernels issued, how many chunks they split
/// into, and how many of those chunks pool workers stole off the shared
/// cursor (`par.steal_count` — 0 under `--threads 1` or an all-inline
/// epoch).
fn export_par_stats(rec: &MetricsRecorder) {
    let ps = ns_par::take_thread_stats();
    rec.incr("compute.par_jobs", ps.jobs);
    rec.incr("compute.par_chunks", ps.chunks);
    rec.incr("compute.par_inline_jobs", ps.inline_jobs);
    rec.incr("par.steal_count", ps.stolen);
}

/// Per-worker receive context: the configured retry policy plus the
/// state that must outlive a single receive operation — the per-peer
/// circuit breakers and the jitter stream.
///
/// The jitter seed folds the fault-plan seed with the worker id, so a
/// rerun of the same seeded scenario replays the exact retry schedule
/// while different workers (and different seeds) draw different
/// schedules — the property that breaks lockstep retry storms.
struct RecvCtx<'a> {
    rc: &'a RecvConfig,
    rec: &'a MetricsRecorder,
    jitter_seed: u64,
    // Monotone per-receive-op nonce, so two operations against the same
    // peer draw fresh jittered windows.
    op_seq: Cell<u64>,
    breakers: RefCell<Vec<CircuitBreaker>>,
}

impl<'a> RecvCtx<'a> {
    fn new(ep: &Endpoint, run: &RunState, rec: &'a MetricsRecorder, rc: &'a RecvConfig) -> Self {
        let breakers = (0..ep.world())
            .map(|_| {
                CircuitBreaker::new(
                    rc.breaker_threshold,
                    Duration::from_millis(rc.breaker_cooldown_ms),
                )
            })
            .collect();
        RecvCtx {
            rc,
            rec,
            jitter_seed: run.fault.seed ^ ((ep.id() as u64) << 48) ^ 0x5eed_ba5e,
            op_seq: Cell::new(0),
            breakers: RefCell::new(breakers),
        }
    }

    /// Folds the breakers' lifetime counters into the metrics frame and
    /// flags breakers left Open whose link is *not* severed right now
    /// (`net.breaker.stuck_open` — the liveness-invariant signal: an
    /// Open breaker over a healed link means the probe machinery failed).
    fn export(&self, ep: &Endpoint, fault: &FaultPlan) {
        let epoch = ep.epoch();
        let now_ms = ep.link_now_ms();
        let me = ep.id();
        let mut opens = 0u64;
        let mut closes = 0u64;
        let mut half_opens = 0u64;
        let mut fast_fails = 0u64;
        let mut stuck_open = 0u64;
        for (peer, br) in self.breakers.borrow().iter().enumerate() {
            let st = br.stats();
            opens += st.opens;
            closes += st.closes;
            half_opens += st.half_opens;
            fast_fails += st.fast_fails;
            if br.state() == BreakerState::Open && !fault.link_severed(epoch, me, peer, now_ms)
            {
                stuck_open += 1;
            }
        }
        if opens > 0 {
            self.rec.incr("net.breaker.opens", opens);
        }
        if closes > 0 {
            self.rec.incr("net.breaker.closes", closes);
        }
        if half_opens > 0 {
            self.rec.incr("net.breaker.half_opens", half_opens);
        }
        if fast_fails > 0 {
            self.rec.incr("net.breaker.fast_fails", fast_fails);
        }
        if stuck_open > 0 {
            self.rec.incr("net.breaker.stuck_open", stuck_open);
        }
    }
}

/// Receives from `src` under the timeout/retry policy: a jittered
/// doubling [`Backoff`] walks the windows, a [`Budget`] equal to the
/// unjittered window sum caps the whole operation (a retry never waits
/// past it; hitting the cap is metered `net.deadline.exhausted`), and
/// the peer's [`CircuitBreaker`] short-circuits the operation entirely
/// while the peer keeps failing. Blocked time goes to the
/// `net.recv.wait_ns` histogram and spent retries to the
/// `net.recv.retries` counter, on every exit path. The wait is
/// additionally attributed to the sending peer as a per-peer histogram
/// (`net.recv.wait_ns.peer<k>`) — the signal the measured-cost replanner
/// and the straggler-eviction policy read (they take per-message wait
/// quantiles and minimize across receivers, which separates a peer that
/// delays *every* message from one merely stalled behind it).
fn recv_retry(
    ep: &Endpoint,
    src: usize,
    ctx: &RecvCtx<'_>,
) -> std::result::Result<Message, NetError> {
    if !ctx.breakers.borrow_mut()[src].allow() {
        // Fail fast: the peer's breaker is Open. No window is spent, so
        // a run degrading around a dead link stops paying the full
        // timeout schedule on every operation.
        return Err(NetError::RecvTimeout { peer: src, waited_ms: 0 });
    }
    let op = ctx.op_seq.get();
    ctx.op_seq.set(op + 1);
    let key = ((src as u64) << 32) ^ op;
    let mut bo = Backoff::new(ctx.rc.timeout_ms, ctx.rc.retries, ctx.jitter_seed, key);
    let budget = Budget::from_ms(bo.nominal_total_ms());
    let t0 = Instant::now();
    let mut waited_ms = 0u64;
    let res = loop {
        let Some(want) = bo.next_wait() else {
            break Err(NetError::RecvTimeout { peer: src, waited_ms });
        };
        let wait = budget.clamp(want);
        if wait.is_zero() {
            // Nested retries (e.g. corrupt-frame re-receives) consumed
            // the operation's whole deadline.
            ctx.rec.incr("net.deadline.exhausted", 1);
            break Err(NetError::RecvTimeout { peer: src, waited_ms });
        }
        match ep.recv_from_timeout(src, wait) {
            Err(NetError::RecvTimeout { .. }) => {
                waited_ms += wait.as_millis() as u64;
            }
            Err(NetError::CorruptFrame { .. }) => {
                // Retriable: the sender's clean copy of the same sequence
                // number is already in flight; spend the next window on it.
            }
            other => break other,
        }
    };
    let attempts = bo.attempt();
    if attempts > 1 {
        ctx.rec.incr("net.recv.retries", (attempts - 1) as u64);
    }
    let waited_ns = t0.elapsed().as_nanos() as u64;
    ctx.rec.observe("net.recv.wait_ns", waited_ns);
    ctx.rec.observe(&format!("net.recv.wait_ns.peer{src}"), waited_ns);
    match &res {
        Ok(_) => ctx.breakers.borrow_mut()[src].record_success(),
        Err(_) => ctx.breakers.borrow_mut()[src].record_failure(),
    }
    res
}

/// Copies the virtual-flat range `[lo, hi)` of the concatenated gradient
/// tensors into a pooled buffer, without materializing the full flat
/// vector — the memory-pressure substitute for slicing a staged copy.
fn gather_range(grads: &[Tensor], lo: usize, hi: usize) -> Vec<f32> {
    let mut out = ns_tensor::pool::take_scratch(hi - lo);
    let mut filled = 0;
    let mut base = 0;
    for g in grads {
        let s = lo.max(base);
        let e = hi.min(base + g.len());
        if s < e {
            out[filled..filled + (e - s)].copy_from_slice(&g.data()[s - base..e - base]);
            filled += e - s;
        }
        base += g.len();
    }
    out
}

/// Writes (`add == false`) or accumulates (`add == true`) `data` into
/// the virtual-flat range starting at `lo`, element-for-element the same
/// operation the staged-copy path performs on its flat buffer.
fn apply_range(grads: &mut [Tensor], lo: usize, data: &[f32], add: bool) {
    let hi = lo + data.len();
    let mut base = 0;
    for g in grads.iter_mut() {
        let glen = g.len();
        let s = lo.max(base);
        let e = hi.min(base + glen);
        if s < e {
            let dst = &mut g.data_mut()[s - base..e - base];
            let src = &data[s - lo..e - lo];
            if add {
                for (d, v) in dst.iter_mut().zip(src) {
                    *d += v;
                }
            } else {
                dst.copy_from_slice(src);
            }
        }
        base += glen;
    }
}

/// Ring all-reduce over the flattened parameter gradients. All workers
/// return identical sums (deterministic chunk-wise accumulation order).
///
/// Under memory pressure ([`ns_tensor::pool::under_pressure`]) the flat
/// staging copy is skipped and every chunk is gathered from / applied to
/// the gradient tensors in place. Wire messages and the element-wise
/// accumulation order are bit-identical to the staged path, so each
/// worker chooses independently without breaking the protocol or
/// determinism.
fn ring_allreduce(
    ep: &Endpoint,
    ctx: &RecvCtx<'_>,
    grads: &mut [Tensor],
) -> std::result::Result<bool, NetError> {
    let m = ep.world();
    if m == 1 {
        return Ok(false);
    }
    let me = ep.id();
    let right = (me + 1) % m;
    let left = (me + m - 1) % m;
    let n: usize = grads.iter().map(Tensor::len).sum();
    let low_mem = ns_tensor::pool::under_pressure();
    // Flatten into a pooled buffer (same length every epoch, so after the
    // first epoch this take is always served from the free list).
    let mut flat = if low_mem {
        Vec::new()
    } else {
        let mut f = ns_tensor::pool::take_scratch(n);
        let mut off = 0;
        for g in grads.iter() {
            f[off..off + g.len()].copy_from_slice(g.data());
            off += g.len();
        }
        f
    };
    let chunk_bounds: Vec<(usize, usize)> = (0..m)
        .map(|c| {
            let lo = c * n / m;
            let hi = (c + 1) * n / m;
            (lo, hi)
        })
        .collect();
    // Outgoing chunk copies are pooled too; the peer that receives one
    // recycles it after accumulating (below), closing the loop.
    let chunk_of = |grads: &[Tensor], flat: &[f32], c: usize| {
        let (lo, hi) = chunk_bounds[c];
        if low_mem {
            gather_range(grads, lo, hi)
        } else {
            let mut s = ns_tensor::pool::take_scratch(hi - lo);
            s.copy_from_slice(&flat[lo..hi]);
            s
        }
    };

    // Reduce-scatter.
    for s in 0..m - 1 {
        let send_c = (me + m - s) % m;
        let recv_c = (me + m - s - 1) % m;
        ep.send(
            right,
            MessageKind::AllReduce { round: s as u32, data: chunk_of(grads, &flat, send_c) },
        )?;
        let msg = recv_retry(ep, left, ctx)?;
        let got = msg.kind.name();
        let MessageKind::AllReduce { data, .. } = msg.kind else {
            return Err(NetError::UnexpectedKind { peer: left, expected: "AllReduce", got });
        };
        let (lo, hi) = chunk_bounds[recv_c];
        if low_mem {
            apply_range(grads, lo, &data, true);
        } else {
            for (dst, src) in flat[lo..hi].iter_mut().zip(data.iter()) {
                *dst += src;
            }
        }
        ns_tensor::pool::recycle(data);
    }
    // All-gather.
    for s in 0..m - 1 {
        let send_c = (me + 1 + m - s) % m;
        let recv_c = (me + m - s) % m;
        ep.send(
            right,
            MessageKind::AllReduce {
                round: (m - 1 + s) as u32,
                data: chunk_of(grads, &flat, send_c),
            },
        )?;
        let msg = recv_retry(ep, left, ctx)?;
        let got = msg.kind.name();
        let MessageKind::AllReduce { data, .. } = msg.kind else {
            return Err(NetError::UnexpectedKind { peer: left, expected: "AllReduce", got });
        };
        let (lo, _hi) = chunk_bounds[recv_c];
        if low_mem {
            apply_range(grads, lo, &data, false);
        } else {
            flat[lo.._hi].copy_from_slice(&data);
        }
        ns_tensor::pool::recycle(data);
    }
    if !low_mem {
        // Unflatten.
        let mut off = 0;
        for g in grads.iter_mut() {
            let len = g.len();
            g.data_mut().copy_from_slice(&flat[off..off + len]);
            off += len;
        }
        ns_tensor::pool::recycle(flat);
    }
    Ok(low_mem)
}

/// Parameter-server gradient combination: every worker pushes its full
/// gradient vector to worker 0, which reduces in ascending worker order
/// (deterministic) and broadcasts the sum. All workers end with
/// identical gradients, exactly as [`ring_allreduce`] produces.
fn ps_reduce(
    ep: &Endpoint,
    ctx: &RecvCtx<'_>,
    grads: &mut [Tensor],
) -> std::result::Result<(), NetError> {
    let m = ep.world();
    if m == 1 {
        return Ok(());
    }
    let me = ep.id();
    let n: usize = grads.iter().map(Tensor::len).sum();
    let mut flat = ns_tensor::pool::take_scratch(n);
    let mut off = 0;
    for g in grads.iter() {
        flat[off..off + g.len()].copy_from_slice(g.data());
        off += g.len();
    }
    // Full-vector copies shipped to peers come from the pool and are
    // recycled by the receiver, like the ring chunks above.
    let copy_of = |flat: &[f32]| {
        let mut c = ns_tensor::pool::take_scratch(flat.len());
        c.copy_from_slice(flat);
        c
    };
    if me == 0 {
        for src in 1..m {
            let msg = recv_retry(ep, src, ctx)?;
            let got = msg.kind.name();
            let MessageKind::AllReduce { data, .. } = msg.kind else {
                return Err(NetError::UnexpectedKind { peer: src, expected: "AllReduce", got });
            };
            for (a, b) in flat.iter_mut().zip(data.iter()) {
                *a += b;
            }
            ns_tensor::pool::recycle(data);
        }
        for dst in 1..m {
            ep.send(dst, MessageKind::AllReduce { round: 1, data: copy_of(&flat) })?;
        }
    } else {
        ep.send(0, MessageKind::AllReduce { round: 0, data: copy_of(&flat) })?;
        let msg = recv_retry(ep, 0, ctx)?;
        let got = msg.kind.name();
        let MessageKind::AllReduce { data, .. } = msg.kind else {
            return Err(NetError::UnexpectedKind { peer: 0, expected: "AllReduce", got });
        };
        ns_tensor::pool::recycle(std::mem::replace(&mut flat, data));
    }
    let mut off = 0;
    for g in grads.iter_mut() {
        let len = g.len();
        g.data_mut().copy_from_slice(&flat[off..off + len]);
        off += len;
    }
    ns_tensor::pool::recycle(flat);
    Ok(())
}

/// Copies an endpoint's [`NetStats`] snapshot into recorder counters:
/// `net.sent.{msgs,bytes}` totals plus per-kind (`.rows`, `.grads`, …)
/// and per-peer (`.peer<k>`) breakdowns, fault-injection counts, and
/// receiver-side duplicate suppressions.
fn export_net_stats(rec: &MetricsRecorder, stats: &NetStats) {
    rec.incr("net.sent.msgs", stats.sent_msgs);
    rec.incr("net.sent.bytes", stats.sent_bytes);
    rec.incr("net.encode.frames", stats.encode_frames);
    rec.incr("net.encode.bytes", stats.encode_bytes);
    for (k, name) in KIND_NAMES.iter().enumerate() {
        if stats.sent_msgs_by_kind[k] > 0 {
            rec.incr(&format!("net.sent.msgs.{name}"), stats.sent_msgs_by_kind[k]);
            rec.incr(&format!("net.sent.bytes.{name}"), stats.sent_bytes_by_kind[k]);
        }
    }
    for (peer, &msgs) in stats.sent_msgs_by_peer.iter().enumerate() {
        if msgs > 0 {
            rec.incr(&format!("net.sent.msgs.peer{peer}"), msgs);
            rec.incr(&format!("net.sent.bytes.peer{peer}"), stats.sent_bytes_by_peer[peer]);
        }
    }
    if stats.delays_injected > 0 {
        rec.incr("net.fault.delays", stats.delays_injected);
    }
    if stats.dups_injected > 0 {
        rec.incr("net.fault.dups", stats.dups_injected);
    }
    if stats.dups_suppressed > 0 {
        rec.incr("net.recv.dups_suppressed", stats.dups_suppressed);
    }
    if stats.corrupts_injected > 0 {
        rec.incr("net.fault.corrupts", stats.corrupts_injected);
    }
    if stats.severed_msgs > 0 {
        rec.incr("net.fault.severed", stats.severed_msgs);
    }
    if stats.crc_failures > 0 {
        rec.incr("integrity.crc_fail", stats.crc_failures);
    }
    if stats.rereads > 0 {
        rec.incr("integrity.reread", stats.rereads);
    }
}

/// One worker's training loop over all epochs. Returns the trained
/// replica and exported optimizer state, or the worker's typed failure —
/// and, either way, the worker's [`MetricsFrame`] (fabric traffic meters
/// are folded in on every exit path). The endpoint is dropped on exit,
/// so peers blocked on this worker wake with `PeerDisconnected` instead
/// of hanging.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    plan: &WorkerPlan,
    model: &GnnModel,
    dataset: &Dataset,
    ep: Endpoint,
    epochs: usize,
    cfg: &ExecConfig,
    run: &RunState,
    origin: Instant,
    wd: Option<&Watchdog>,
    tx: mpsc::Sender<(usize, usize, WorkerReport)>,
) -> (
    std::result::Result<(ParamStore, Option<AdamState>), WorkerFailure>,
    MetricsFrame,
) {
    let rec = MetricsRecorder::new(ep.id(), origin);
    let ctx = RecvCtx::new(&ep, run, &rec, &run.recv);
    let res = worker_body(plan, model, dataset, &ep, epochs, cfg, run, &ctx, &rec, wd, tx);
    if let Some(wd) = wd {
        wd.finish(ep.id());
    }
    ctx.export(&ep, &run.fault);
    export_net_stats(&rec, &ep.stats());
    drop(ep);
    (res, rec.finish())
}

/// The instrumented body of [`worker_loop`], split out so the fabric
/// meters can be snapshotted after it returns, clean or failed.
#[allow(clippy::too_many_arguments)]
fn worker_body(
    plan: &WorkerPlan,
    model: &GnnModel,
    dataset: &Dataset,
    ep: &Endpoint,
    epochs: usize,
    cfg: &ExecConfig,
    run: &RunState,
    ctx: &RecvCtx<'_>,
    rec: &MetricsRecorder,
    wd: Option<&Watchdog>,
    tx: mpsc::Sender<(usize, usize, WorkerReport)>, // (epoch, worker, report)
) -> std::result::Result<(ParamStore, Option<AdamState>), WorkerFailure> {
    let m = ep.world();
    let me = ep.id();
    let dims = model.dims();
    let num_layers = model.num_layers();
    let mut store = run.init_params.clone().unwrap_or_else(|| model.fresh_store());
    let mut opt = Opt::new(cfg, run.opt_state.clone());
    let fail = |epoch: usize, in_sync: bool, e: NetError| WorkerFailure {
        worker: me,
        epoch,
        cause: FailureCause::Net(e),
        in_sync,
    };

    // Local feature matrix (owned rows + prefetched cached features —
    // DepCache's one-time dependency retrieval, Algorithm 2 line 5).
    let features = dataset.features.gather_rows(&plan.feature_rows);
    rec.incr("dep.rows.cached", plan.prefetched_features() as u64);
    // The pool size every parallel kernel on this worker will use.
    rec.incr("compute.threads", ns_par::threads() as u64);

    // Labels and loss weights over owned rows.
    let total_train = dataset.num_train().max(1);
    let owned_labels: Vec<u32> =
        plan.owned.iter().map(|&v| dataset.labels[v as usize]).collect();
    let loss_weights: Vec<f32> = plan
        .owned
        .iter()
        .map(|&v| if dataset.train_mask[v as usize] { 1.0 / total_train as f32 } else { 0.0 })
        .collect();
    let masks: [Vec<bool>; 3] = [
        plan.owned.iter().map(|&v| dataset.train_mask[v as usize]).collect(),
        plan.owned.iter().map(|&v| dataset.val_mask[v as usize]).collect(),
        plan.owned.iter().map(|&v| dataset.test_mask[v as usize]).collect(),
    ];

    // Buffer-pool meters: the pool counters are process-wide, so worker 0
    // exports the per-epoch deltas for the whole process (every worker's
    // tensors share one pool). `alloc.steady_state` is the final epoch's
    // fresh-buffer count — ~0 once shapes have stabilized (DESIGN.md §14).
    let mut pool_base = ns_tensor::pool::stats();
    let mut last_fresh_delta = 0u64;

    for epoch in 0..epochs {
        let abs_epoch = run.epoch_offset + epoch;
        ep.set_epoch(abs_epoch);
        rec.set_epoch(abs_epoch as u32);
        if let Some(wd) = wd {
            wd.beat(me);
        }
        if run.fault.kill_epoch(me) == Some(abs_epoch) {
            // Injected crash: return without sending anything this epoch.
            // Dropping the endpoint disconnects every peer channel.
            return Err(WorkerFailure {
                worker: me,
                epoch: abs_epoch,
                cause: FailureCause::Killed,
                in_sync: false,
            });
        }
        if run.fault.hang_epoch(me) == Some(abs_epoch) {
            // Injected hang: wedge outside the fabric (no send, no recv)
            // so only the watchdog can see it. The cancel flag stands in
            // for the supervisor's SIGKILL; the hard cap keeps
            // watchdog-disabled runs from wedging forever (their peers'
            // receive budgets fail first).
            const HANG_HARD_CAP: Duration = Duration::from_secs(10);
            let stuck_at = Instant::now();
            loop {
                if wd.map_or(false, |wd| wd.cancelled(me))
                    || stuck_at.elapsed() >= HANG_HARD_CAP
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            return Err(WorkerFailure {
                worker: me,
                epoch: abs_epoch,
                cause: FailureCause::Hung,
                in_sync: false,
            });
        }
        let t0 = Instant::now();
        // ---- forward ----
        let mut runs = Vec::with_capacity(num_layers);
        let mut prev = features.clone();
        for lz in 0..num_layers {
            let lp = &plan.layers[lz];
            rec.incr("dep.rows.local", lp.local_src.len() as u64);
            rec.incr("dep.rows.fetched", lp.recv_row_count() as u64);
            // Dependency exchange and input assembly run under one
            // FwdComm span (the local-row copies are memcpy noise next
            // to the fabric traffic they interleave with).
            let input = {
                let _comm = span!(rec, Phase::FwdComm, lz);
                // GetFromDepNbr, send side: masters push their rows. With
                // lock-free enqueuing, every peer's buffer fills in one
                // chunk-stealing parallel job before the ring-order flush.
                let mut enq = enqueue_payloads(cfg, rec, &prev, &lp.send_rows);
                for j in peer_order(me, m, cfg.ring_order) {
                    if lp.send_ids[j].is_empty() {
                        continue;
                    }
                    let data = match enq.as_mut() {
                        Some(q) => q.take(j),
                        None => prev.gather_rows(&lp.send_rows[j]).into_vec(),
                    };
                    ep.send(
                        j,
                        MessageKind::Rows {
                            layer: lz as u32,
                            ids: lp.send_ids[j].clone(),
                            cols: prev.cols() as u32,
                            data,
                        },
                    )
                    .map_err(|e| fail(abs_epoch, false, e))?;
                }
                // Assemble the layer-input matrix.
                let d_in = dims[lz];
                let mut input = Tensor::zeros(lp.input_ids.len(), d_in);
                for &(pr, ir) in &lp.local_src {
                    input
                        .row_mut(ir as usize)
                        .copy_from_slice(prev.row(pr as usize));
                }
                for j in 0..m {
                    if lp.recv_ids[j].is_empty() {
                        continue;
                    }
                    let msg = recv_retry(ep, j, ctx)
                        .map_err(|e| fail(abs_epoch, false, e))?;
                    let got = msg.kind.name();
                    let MessageKind::Rows { layer, ids, cols, data } = msg.kind else {
                        return Err(fail(
                            abs_epoch,
                            false,
                            NetError::UnexpectedKind { peer: j, expected: "Rows", got },
                        ));
                    };
                    assert_eq!(layer as usize, lz, "layer mismatch");
                    assert_eq!(cols as usize, d_in, "width mismatch");
                    assert_eq!(ids, lp.recv_ids[j], "id schedule mismatch");
                    for (k, &r) in lp.recv_rows[j].iter().enumerate() {
                        input
                            .row_mut(r as usize)
                            .copy_from_slice(&data[k * d_in..(k + 1) * d_in]);
                    }
                    // The payload buffer was pooled by the sender's
                    // enqueue path; hand it back for next epoch's sends.
                    ns_tensor::pool::recycle(data);
                }
                input
            };
            let run_seg = {
                let _fwd = span!(rec, Phase::FwdCompute, lz);
                model.layer(lz).forward(&store, &lp.topo, input)
            };
            prev = run_seg.output().clone();
            runs.push(run_seg);
        }

        // ---- prediction head ----
        let logits = prev;
        let (head, counts) = {
            let _head = span!(rec, Phase::Head);
            let head = softmax_cross_entropy(&logits, &owned_labels, &loss_weights);
            let counts = [
                accuracy(&logits, &owned_labels, &masks[0]),
                accuracy(&logits, &owned_labels, &masks[1]),
                accuracy(&logits, &owned_labels, &masks[2]),
            ];
            (head, counts)
        };

        // ---- backward ----
        let mut grads = store.zero_grads();
        let mut g = head.logit_grad;
        for lz in (0..num_layers).rev() {
            let run_seg = runs.pop().expect("one run per layer");
            let fwd_graph_ns = run_seg.fwd_graph_ns();
            let fwd_nn_ns = run_seg.fwd_nn_ns();
            let (input_grad, bwd_graph_ns, bwd_nn_ns) = {
                let _bwd = span!(rec, Phase::BwdCompute, lz);
                let (input_grad, _, bg, bn) = run_seg.backward_split(g, &mut grads);
                (input_grad, bg, bn)
            };
            rec.add_layer_split(
                lz,
                LayerSplit { fwd_graph_ns, fwd_nn_ns, bwd_graph_ns, bwd_nn_ns },
            );
            let lp = &plan.layers[lz];
            if lz == 0 {
                // Feature gradients are not propagated anywhere.
                break;
            }
            let _comm = span!(rec, Phase::BwdComm, lz);
            let d = dims[lz];
            // PostToDepNbr: mirror gradients return to their masters,
            // assembled the same way as the forward rows.
            let mut enq = enqueue_payloads(cfg, rec, &input_grad, &lp.recv_rows);
            for j in peer_order(me, m, cfg.ring_order) {
                if lp.recv_ids[j].is_empty() {
                    continue;
                }
                let data = match enq.as_mut() {
                    Some(q) => q.take(j),
                    None => input_grad.gather_rows(&lp.recv_rows[j]).into_vec(),
                };
                ep.send(
                    j,
                    MessageKind::Grads {
                        layer: lz as u32,
                        ids: lp.recv_ids[j].clone(),
                        cols: d as u32,
                        data,
                    },
                )
                .map_err(|e| fail(abs_epoch, false, e))?;
            }
            // Route local rows into the previous layer's output gradient.
            let prev_rows = plan.layers[lz - 1].compute.len();
            let mut g_prev = Tensor::zeros(prev_rows, d);
            for &(pr, ir) in &lp.local_src {
                let src = input_grad.row(ir as usize);
                let dst = g_prev.row_mut(pr as usize);
                for (a, &b) in dst.iter_mut().zip(src) {
                    *a += b;
                }
            }
            // Aggregate mirror gradients in fixed peer order (determinism).
            for j in 0..m {
                if lp.send_ids[j].is_empty() {
                    continue;
                }
                let msg = recv_retry(ep, j, ctx)
                    .map_err(|e| fail(abs_epoch, false, e))?;
                let got = msg.kind.name();
                let MessageKind::Grads { layer, ids, cols, data } = msg.kind else {
                    return Err(fail(
                        abs_epoch,
                        false,
                        NetError::UnexpectedKind { peer: j, expected: "Grads", got },
                    ));
                };
                assert_eq!(layer as usize, lz);
                assert_eq!(cols as usize, d);
                assert_eq!(ids, lp.send_ids[j]);
                for (k, &pr) in lp.send_rows[j].iter().enumerate() {
                    let dst = g_prev.row_mut(pr as usize);
                    for (a, &b) in dst.iter_mut().zip(&data[k * d..(k + 1) * d]) {
                        *a += b;
                    }
                }
                ns_tensor::pool::recycle(data);
            }
            g = g_prev;
        }

        // ---- parameter update ----
        {
            let _sync = span!(rec, Phase::SyncWait);
            let low_mem = match cfg.sync {
                SyncMode::AllReduce => ring_allreduce(ep, ctx, &mut grads),
                SyncMode::ParameterServer => ps_reduce(ep, ctx, &mut grads).map(|()| false),
            }
            .map_err(|e| fail(abs_epoch, true, e))?;
            if low_mem {
                rec.incr("alloc.sync_low_mem", 1);
            }
        }
        // Divergence guard: a non-finite loss or gradient must never reach
        // the optimizer step, where it would poison the parameters of every
        // replica. The all-reduce already spread any NaN to all workers, so
        // every replica trips the guard in the same epoch and the run fails
        // as one fault (rolled back by the recovering trainer).
        if !head.loss.is_finite()
            || grads.iter().any(|g| g.data().iter().any(|v| !v.is_finite()))
        {
            rec.incr("guard.nan_events", 1);
            return Err(WorkerFailure {
                worker: me,
                epoch: abs_epoch,
                cause: FailureCause::Diverged,
                in_sync: false,
            });
        }
        {
            let _opt = span!(rec, Phase::OptStep);
            opt.step(&mut store, &grads);
        }

        // Attribute this epoch's intra-worker parallelism to this worker.
        export_par_stats(rec);

        if me == 0 {
            let now = ns_tensor::pool::stats();
            last_fresh_delta = now.fresh - pool_base.fresh;
            rec.incr("alloc.fresh", now.fresh - pool_base.fresh);
            rec.incr("alloc.fresh_bytes", now.fresh_bytes - pool_base.fresh_bytes);
            rec.incr("alloc.reused", now.reused - pool_base.reused);
            rec.incr("alloc.recycled", now.recycled - pool_base.recycled);
            rec.incr("alloc.shed", now.shed - pool_base.shed);
            rec.incr("alloc.shed_bytes", now.shed_bytes - pool_base.shed_bytes);
            pool_base = now;
        }

        let report = WorkerReport {
            loss: head.loss,
            counts,
            wall_s: t0.elapsed().as_secs_f64(),
        };
        // The coordinator holds the receiver for the whole scope; a send
        // can only fail after a coordinator bug, and metric loss is not
        // worth crashing a worker over.
        let _ = tx.send((epoch, me, report));
    }
    if me == 0 && epochs > 0 {
        rec.incr("alloc.steady_state", last_fresh_delta);
    }
    Ok((store, opt.export()))
}

/// Picks the root-cause failure: earliest epoch first, injected kills
/// before the cascade errors they caused, lowest worker id as the final
/// tie-break.
fn root_failure(failures: &[WorkerFailure]) -> Option<&WorkerFailure> {
    failures.iter().min_by_key(|f| {
        (f.epoch, matches!(f.cause, FailureCause::Net(_)) as u8, f.worker)
    })
}

/// Trains `epochs` epochs of `model` on `dataset` under `plans`,
/// returning per-epoch aggregated metrics and the trained parameters
/// (worker 0's replica; all replicas are identical after the final
/// synchronized step).
pub fn train_epochs(
    dataset: &Dataset,
    model: &GnnModel,
    plans: &[WorkerPlan],
    epochs: usize,
    cfg: &ExecConfig,
) -> Result<(Vec<EpochMetrics>, ParamStore)> {
    let (metrics, store, _, _) =
        train_epochs_run(dataset, model, plans, epochs, cfg, &RunState::default())?;
    Ok((metrics, store))
}

/// [`train_epochs`] with explicit cross-chunk [`RunState`]: resume
/// parameters / optimizer state, an epoch offset, injected faults, and
/// the receive policy. Also returns the exported optimizer state so the
/// recovery loop can checkpoint it, plus the run's [`RunMetrics`] (one
/// merged frame per worker: phase spans, layer graph/NN splits, and
/// fabric traffic meters).
///
/// On failure, every worker thread has been joined before the error is
/// returned; partially-completed epoch metrics and the chunk's recorder
/// frames are discarded (the caller rolls back to its last checkpoint).
pub fn train_epochs_run(
    dataset: &Dataset,
    model: &GnnModel,
    plans: &[WorkerPlan],
    epochs: usize,
    cfg: &ExecConfig,
    run: &RunState,
) -> Result<(Vec<EpochMetrics>, ParamStore, Option<AdamState>, RunMetrics)> {
    let m = plans.len();
    if m == 0 {
        return Err(RuntimeError::InvalidConfig("no worker plans".into()));
    }
    if model.dims()[0] != dataset.feature_dim() {
        return Err(RuntimeError::InvalidConfig(format!(
            "model input dim {} != dataset feature dim {}",
            model.dims()[0],
            dataset.feature_dim()
        )));
    }
    let endpoints = Fabric::with_faults(m, run.fault.clone()).into_endpoints();
    let (tx, rx) = mpsc::channel();
    let origin = run.origin.unwrap_or_else(Instant::now);
    let t_run = Instant::now();
    let watchdog = run.watchdog.map(|wcfg| Watchdog::new(m, wcfg));

    crossbeam::thread::scope(|s| {
        let wd = watchdog.as_ref();
        let supervisor = wd.map(|wd| s.spawn(move |_| wd.run()));
        let mut handles = Vec::new();
        for (plan, ep) in plans.iter().zip(endpoints) {
            let tx = tx.clone();
            handles.push(s.spawn(move |_| {
                worker_loop(plan, model, dataset, ep, epochs, cfg, run, origin, wd, tx)
            }));
        }
        drop(tx);
        // Aggregate metrics on the coordinating thread. The loop ends when
        // every worker has exited (each drops its sender on return, clean
        // or failed), so this cannot hang on a dead worker.
        let mut per_epoch: Vec<Vec<WorkerReport>> = (0..epochs).map(|_| Vec::new()).collect();
        while let Ok((epoch, _worker, report)) = rx.recv() {
            per_epoch[epoch].push(report);
        }
        // Every worker has returned (the channel only closes when the last
        // sender drops), so the supervisor has nothing left to watch.
        if let Some(wd) = wd {
            wd.shutdown();
        }
        if let Some(h) = supervisor {
            h.join().expect("watchdog thread panicked");
        }
        // Join everyone and split results from failures.
        let mut results = Vec::new();
        let mut failures: Vec<WorkerFailure> = Vec::new();
        let mut run_metrics = RunMetrics::new();
        for h in handles {
            let (res, frame) = h.join().expect("worker thread panicked");
            run_metrics.absorb(frame);
            match res {
                Ok(out) => results.push(out),
                Err(f) => failures.push(f),
            }
        }
        if let Some(root) = root_failure(&failures) {
            return Err(match &root.cause {
                FailureCause::Net(NetError::RecvTimeout { peer, waited_ms })
                    if root.in_sync =>
                {
                    RuntimeError::SyncTimeout {
                        worker: root.worker,
                        epoch: root.epoch,
                        peer: *peer,
                        waited_ms: *waited_ms,
                    }
                }
                FailureCause::Diverged => {
                    RuntimeError::Diverged { worker: root.worker, epoch: root.epoch }
                }
                cause => RuntimeError::WorkerFailed {
                    worker: root.worker,
                    epoch: root.epoch,
                    cause: cause.clone(),
                },
            });
        }
        let metrics = per_epoch
            .into_iter()
            .map(|reports| {
                assert_eq!(reports.len(), m, "missing worker reports");
                let loss = reports.iter().map(|r| r.loss).sum();
                let acc = |k: usize| {
                    let c: usize = reports.iter().map(|r| r.counts[k].0).sum();
                    let t: usize = reports.iter().map(|r| r.counts[k].1).sum();
                    if t == 0 {
                        0.0
                    } else {
                        c as f64 / t as f64
                    }
                };
                EpochMetrics {
                    loss,
                    train_acc: acc(0),
                    val_acc: acc(1),
                    test_acc: acc(2),
                    wall_s: reports.iter().map(|r| r.wall_s).fold(0.0, f64::max),
                }
            })
            .collect();
        let (store, opt_state) = results.into_iter().next().expect("at least one worker");
        run_metrics.wall_s = t_run.elapsed().as_secs_f64();
        Ok((metrics, store, opt_state, run_metrics))
    })
    .expect("worker scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plans, DepDecision};
    use ns_gnn::{GnnModel, ModelKind};
    use ns_graph::datasets::by_name;
    use ns_graph::Partitioner;
    use ns_net::fault::{Fault, MsgSel};

    fn small_dataset() -> Dataset {
        by_name("cora").unwrap().materialize(0.2, 7)
    }

    fn train_with(
        dataset: &Dataset,
        decision: &DepDecision,
        parts: usize,
        kind: ModelKind,
        epochs: usize,
    ) -> Vec<EpochMetrics> {
        let part = Partitioner::Chunk.partition(&dataset.graph, parts);
        let plans = build_plans(&dataset.graph, &part, 2, decision).unwrap();
        let model = GnnModel::two_layer(kind, dataset.feature_dim(), 16, dataset.num_classes, 3);
        train_epochs(dataset, &model, &plans, epochs, &ExecConfig::default()).unwrap().0
    }

    #[test]
    fn single_worker_training_reduces_loss() {
        let ds = small_dataset();
        let metrics = train_with(&ds, &DepDecision::CommAll, 1, ModelKind::Gcn, 12);
        assert!(metrics.last().unwrap().loss < metrics[0].loss * 0.8);
    }

    #[test]
    fn distributed_depcomm_matches_single_worker() {
        let ds = small_dataset();
        let single = train_with(&ds, &DepDecision::CommAll, 1, ModelKind::Gcn, 4);
        let multi = train_with(&ds, &DepDecision::CommAll, 3, ModelKind::Gcn, 4);
        for (a, b) in single.iter().zip(multi.iter()) {
            assert!(
                (a.loss - b.loss).abs() < 1e-3 * a.loss.abs().max(1.0),
                "loss diverged: {} vs {}",
                a.loss,
                b.loss
            );
        }
    }

    #[test]
    fn depcache_matches_depcomm_numerically() {
        let ds = small_dataset();
        let comm = train_with(&ds, &DepDecision::CommAll, 3, ModelKind::Gcn, 4);
        let cache = train_with(&ds, &DepDecision::CacheAll, 3, ModelKind::Gcn, 4);
        for (a, b) in comm.iter().zip(cache.iter()) {
            assert!(
                (a.loss - b.loss).abs() < 2e-3 * a.loss.abs().max(1.0),
                "loss diverged: {} vs {}",
                a.loss,
                b.loss
            );
        }
    }

    #[test]
    fn gcn_learns_sbm_communities() {
        let ds = small_dataset();
        let metrics = train_with(&ds, &DepDecision::CommAll, 2, ModelKind::Gcn, 40);
        let final_acc = metrics.last().unwrap().test_acc;
        assert!(final_acc > 0.6, "test acc {final_acc}");
    }

    #[test]
    fn all_models_train_distributed() {
        let ds = small_dataset();
        for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat] {
            let metrics = train_with(&ds, &DepDecision::CommAll, 2, kind, 6);
            assert!(
                metrics.last().unwrap().loss < metrics[0].loss,
                "{} did not learn",
                kind.name()
            );
        }
    }

    #[test]
    fn parameter_server_matches_allreduce() {
        let ds = small_dataset();
        let part = Partitioner::Chunk.partition(&ds.graph, 3);
        let plans = build_plans(&ds.graph, &part, 2, &DepDecision::CommAll).unwrap();
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let (ar, ar_store) = train_epochs(&ds, &model, &plans, 3, &ExecConfig::default()).unwrap();
        let (ps, ps_store) = train_epochs(
            &ds,
            &model,
            &plans,
            3,
            &ExecConfig { sync: SyncMode::ParameterServer, ..Default::default() },
        )
        .unwrap();
        for ((_, _, a), (_, _, b)) in ar_store.iter().zip(ps_store.iter()) {
            assert!(a.max_abs_diff(b) < 1e-4, "trained params must agree");
        }
        for (a, b) in ar.iter().zip(ps.iter()) {
            // Summation orders differ (ring chunks vs server order), so
            // agreement is to f32 rounding, not bitwise.
            assert!(
                (a.loss - b.loss).abs() < 1e-4 * a.loss.abs().max(1.0),
                "sync modes must agree: {} vs {}",
                a.loss,
                b.loss
            );
        }
    }

    #[test]
    fn mismatched_feature_dim_rejected() {
        let ds = small_dataset();
        let part = Partitioner::Chunk.partition(&ds.graph, 2);
        let plans = build_plans(&ds.graph, &part, 2, &DepDecision::CommAll).unwrap();
        let model = GnnModel::two_layer(ModelKind::Gcn, 99, 16, ds.num_classes, 3);
        let err = train_epochs(&ds, &model, &plans, 1, &ExecConfig::default());
        assert!(matches!(err, Err(RuntimeError::InvalidConfig(_))));
    }

    fn plans_for(ds: &Dataset, parts: usize) -> Vec<WorkerPlan> {
        let part = Partitioner::Chunk.partition(&ds.graph, parts);
        build_plans(&ds.graph, &part, 2, &DepDecision::CommAll).unwrap()
    }

    #[test]
    fn injected_kill_fails_fast_with_all_threads_joined() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let run = RunState { fault: FaultPlan::kill(1, 1), ..Default::default() };
        let t0 = Instant::now();
        let err = train_epochs_run(&ds, &model, &plans, 4, &ExecConfig::default(), &run)
            .unwrap_err();
        // train_epochs_run returning at all proves every thread joined
        // (the crossbeam scope cannot exit otherwise).
        assert!(
            matches!(
                err,
                RuntimeError::WorkerFailed { worker: 1, epoch: 1, cause: FailureCause::Killed }
            ),
            "unexpected error: {err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(30), "kill must not hang");
    }

    #[test]
    fn transient_drops_do_not_change_numerics() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let clean =
            train_epochs(&ds, &model, &plans, 2, &ExecConfig::default()).unwrap().0;
        let faulty_plan = FaultPlan::default()
            .with_seed(11)
            .with_fault(Fault::Drop { sel: MsgSel::any(), p: 0.15 });
        let run = RunState { fault: faulty_plan, ..Default::default() };
        let (faulty, _, _, _) =
            train_epochs_run(&ds, &model, &plans, 2, &ExecConfig::default(), &run).unwrap();
        for (a, b) in clean.iter().zip(faulty.iter()) {
            // Drops only delay delivery; content and order are untouched,
            // so the trajectory is identical.
            assert!((a.loss - b.loss).abs() < 1e-12, "{} vs {}", a.loss, b.loss);
        }
    }

    #[test]
    fn corrupt_frames_do_not_change_numerics() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 3);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let clean =
            train_epochs(&ds, &model, &plans, 2, &ExecConfig::default()).unwrap().0;
        let run = RunState {
            fault: FaultPlan::default()
                .with_seed(13)
                .with_fault(Fault::Corrupt { sel: MsgSel::any(), p: 0.25 }),
            ..Default::default()
        };
        let (faulty, _, _, rm) =
            train_epochs_run(&ds, &model, &plans, 2, &ExecConfig::default(), &run).unwrap();
        for (a, b) in clean.iter().zip(faulty.iter()) {
            // Every corrupt frame is caught by its CRC and replaced by the
            // clean retransmission, so the trajectory is identical.
            assert!((a.loss - b.loss).abs() < 1e-12, "{} vs {}", a.loss, b.loss);
        }
        let injected: u64 =
            rm.frames.values().map(|f| f.counter("net.fault.corrupts")).sum();
        let caught: u64 =
            rm.frames.values().map(|f| f.counter("integrity.crc_fail")).sum();
        let reread: u64 =
            rm.frames.values().map(|f| f.counter("integrity.reread")).sum();
        assert!(injected > 0, "seed 13 at p=0.25 must corrupt something");
        assert_eq!(caught, injected, "every injected flip must be detected");
        assert_eq!(reread, injected, "every detection must be followed by a reread");
    }

    #[test]
    fn non_finite_loss_surfaces_as_diverged() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 2);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let mut poisoned = model.fresh_store();
        // Poison the output layer's bias: earlier layers pass through a
        // ReLU, whose `max(0.0)` would silently squash a NaN.
        let id = poisoned.iter().last().map(|(id, _, _)| id).unwrap();
        poisoned.value_mut(id).data_mut()[0] = f32::NAN;
        let run = RunState { init_params: Some(poisoned), ..Default::default() };
        let err = train_epochs_run(&ds, &model, &plans, 2, &ExecConfig::default(), &run)
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::Diverged { epoch: 0, .. }),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn duplicates_are_suppressed_transparently() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 2);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let clean =
            train_epochs(&ds, &model, &plans, 2, &ExecConfig::default()).unwrap().0;
        let run = RunState {
            fault: FaultPlan::default()
                .with_fault(Fault::Duplicate { sel: MsgSel::any(), p: 1.0 }),
            ..Default::default()
        };
        let (faulty, _, _, _) =
            train_epochs_run(&ds, &model, &plans, 2, &ExecConfig::default(), &run).unwrap();
        for (a, b) in clean.iter().zip(faulty.iter()) {
            assert!((a.loss - b.loss).abs() < 1e-12, "{} vs {}", a.loss, b.loss);
        }
    }

    #[test]
    fn run_metrics_cover_all_workers_and_meter_traffic() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 2);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let (_, _, _, rm) =
            train_epochs_run(&ds, &model, &plans, 2, &ExecConfig::default(), &RunState::default())
                .unwrap();
        assert_eq!(rm.worker_ids(), vec![0, 1]);
        assert!(rm.wall_s > 0.0);
        for frame in rm.frames.values() {
            // Every phase the executor touches must have accumulated time.
            for phase in [
                Phase::FwdComm,
                Phase::FwdCompute,
                Phase::Head,
                Phase::BwdCompute,
                Phase::BwdComm,
                Phase::SyncWait,
                Phase::OptStep,
            ] {
                assert!(frame.phase_total_ns(phase) > 0, "{} empty", phase.name());
            }
            // Per-kind traffic meters must add up to the totals.
            let by_kind: u64 = ["rows", "grads", "allreduce", "control"]
                .iter()
                .map(|k| frame.counter(&format!("net.sent.bytes.{k}")))
                .sum();
            assert!(frame.counter("net.sent.bytes") > 0);
            assert_eq!(frame.counter("net.sent.bytes"), by_kind);
            // Two layers of a 2-layer model record a split each.
            assert_eq!(frame.layer_split.len(), 2);
            assert!(frame.layer_split.iter().any(|s| s.fwd_nn_ns > 0));
            assert!(!frame.spans.is_empty());
        }
    }

    #[test]
    fn resumed_run_state_matches_uninterrupted_run() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 2);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let cfg = ExecConfig::default(); // Adam: state must carry over.
        let (full, full_store, _, _) =
            train_epochs_run(&ds, &model, &plans, 4, &cfg, &RunState::default()).unwrap();
        let (head, mid_store, mid_opt, _) =
            train_epochs_run(&ds, &model, &plans, 2, &cfg, &RunState::default()).unwrap();
        let resume = RunState {
            epoch_offset: 2,
            init_params: Some(mid_store),
            opt_state: mid_opt,
            ..Default::default()
        };
        let (tail, tail_store, _, _) =
            train_epochs_run(&ds, &model, &plans, 2, &cfg, &resume).unwrap();
        let joined: Vec<&EpochMetrics> = head.iter().chain(tail.iter()).collect();
        assert_eq!(joined.len(), full.len());
        for (a, b) in full.iter().zip(joined) {
            assert!((a.loss - b.loss).abs() < 1e-12, "{} vs {}", a.loss, b.loss);
        }
        for ((_, _, a), (_, _, b)) in full_store.iter().zip(tail_store.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0, "chunked run must be bit-identical");
        }
    }

    #[test]
    fn watchdog_cancels_a_hung_worker() {
        let ds = small_dataset();
        let plans = plans_for(&ds, 2);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let run = RunState {
            fault: FaultPlan::default().with_fault(Fault::Hang { worker: 1, epoch: 1 }),
            watchdog: Some(WatchdogConfig { multiplier: 4.0, floor_ms: 100, poll_ms: 2 }),
            ..Default::default()
        };
        let t0 = Instant::now();
        let err = train_epochs_run(&ds, &model, &plans, 3, &ExecConfig::default(), &run)
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::WorkerFailed {
                    worker: 1,
                    epoch: 1,
                    cause: FailureCause::Hung,
                }
            ),
            "unexpected error: {err:?}"
        );
        // The watchdog cancel, not the 10 s hang hard-cap, must be what
        // released the wedged worker.
        assert!(
            t0.elapsed() < Duration::from_secs(8),
            "hang was released by the hard cap, not the watchdog"
        );
    }

    #[test]
    fn low_memory_allreduce_matches_the_staged_path() {
        let _pool = crate::pool_test_guard();
        let ds = small_dataset();
        let plans = plans_for(&ds, 2);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 3);
        let cfg = ExecConfig::default();
        let clean = train_epochs(&ds, &model, &plans, 2, &cfg).unwrap();
        // Shrink the pool budget until it reads as under pressure; every
        // worker flips to the in-place all-reduce path.
        let old = ns_tensor::pool::stats().cap_bytes as usize;
        ns_tensor::pool::set_cap_bytes(1);
        assert!(ns_tensor::pool::under_pressure());
        let squeezed = train_epochs(&ds, &model, &plans, 2, &cfg);
        ns_tensor::pool::set_cap_bytes(if old == 0 {
            ns_tensor::pool::default_cap_bytes()
        } else {
            old
        });
        let squeezed = squeezed.unwrap();
        for (a, b) in clean.0.iter().zip(squeezed.0.iter()) {
            assert!((a.loss - b.loss).abs() < 1e-12, "{} vs {}", a.loss, b.loss);
        }
        for ((_, _, a), (_, _, b)) in clean.1.iter().zip(squeezed.1.iter()) {
            assert_eq!(
                a.max_abs_diff(b),
                0.0,
                "in-place all-reduce must be bit-identical to the staged path"
            );
        }
    }
}

//! Bridges from the discrete-event cluster simulator's output to the
//! observability layer: busy intervals become [`SimSpan`]s on the
//! modeled-clock track of the Chrome trace, and the derived summaries
//! (communication/computation share, utilization time-series) that the
//! figure benches print are computed here instead of being re-derived
//! ad hoc at every call site.

use ns_metrics::SimSpan;
use ns_net::sim::{ResourceKind, SimReport};

/// Resource label for each slot of `SimReport::busy[worker]`, matching
/// the track names the trace sink renders.
const RESOURCE_NAMES: [&str; 3] = ["device", "nic_out", "nic_in"];

/// Converts a simulator report's busy intervals into trace spans on the
/// modeled clock (microseconds). One span per busy interval, labeled
/// `"device"`, `"nic_out"`, or `"nic_in"`, suitable for
/// [`ns_metrics::RunMetrics::sim_spans`].
pub fn sim_spans(report: &SimReport) -> Vec<SimSpan> {
    let mut out = Vec::new();
    for (worker, resources) in report.busy.iter().enumerate() {
        for (ridx, intervals) in resources.iter().enumerate() {
            for &(start, end) in intervals {
                out.push(SimSpan {
                    worker,
                    resource: RESOURCE_NAMES[ridx],
                    start_us: start * 1e6,
                    end_us: end * 1e6,
                });
            }
        }
    }
    out
}

/// The communication/computation split of one simulated epoch, as plotted
/// in the paper's Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBreakdown {
    /// Modeled seconds per epoch (the makespan).
    pub epoch_s: f64,
    /// Mean per-worker ingress busy seconds — the epoch's communication
    /// share.
    pub comm_s: f64,
    /// The remainder attributed to computation (clamped at zero).
    pub compute_s: f64,
}

/// Splits a simulated epoch into communication and computation shares:
/// ingress-NIC busy time averaged over workers, with the rest of the
/// makespan counted as compute.
pub fn sim_breakdown(report: &SimReport) -> SimBreakdown {
    let workers = report.busy.len().max(1);
    let comm_s = report.total_busy(ResourceKind::NicIn) / workers as f64;
    SimBreakdown {
        epoch_s: report.makespan,
        comm_s,
        compute_s: (report.makespan - comm_s).max(0.0),
    }
}

/// One worker's utilization time-series over the whole simulated epoch,
/// split into `buckets` equal windows — the trace format of the paper's
/// Fig. 13. Returns an empty series when the report has no extent.
pub fn utilization_trace(
    report: &SimReport,
    worker: usize,
    kind: ResourceKind,
    buckets: usize,
) -> Vec<f64> {
    if report.makespan <= 0.0 || buckets == 0 {
        return Vec::new();
    }
    let bucket = report.makespan / buckets as f64;
    let mut series = report.utilization(worker, kind, bucket, report.makespan);
    // `makespan / bucket` can round up to an extra sliver bucket.
    series.truncate(buckets);
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 2.0,
            finish: vec![2.0],
            busy: vec![
                [vec![(0.0, 1.0)], vec![(0.5, 1.0)], vec![(1.0, 1.5)]],
                [vec![(0.0, 2.0)], vec![], vec![(0.5, 1.0)]],
            ],
            bytes_in: vec![vec![], vec![]],
        }
    }

    #[test]
    fn spans_cover_every_busy_interval_in_microseconds() {
        let spans = sim_spans(&report());
        assert_eq!(spans.len(), 5);
        let dev0: Vec<_> = spans
            .iter()
            .filter(|s| s.worker == 0 && s.resource == "device")
            .collect();
        assert_eq!(dev0.len(), 1);
        assert_eq!(dev0[0].start_us, 0.0);
        assert_eq!(dev0[0].end_us, 1e6);
        assert!(spans.iter().any(|s| s.resource == "nic_in" && s.worker == 1));
    }

    #[test]
    fn breakdown_splits_makespan_into_comm_and_compute() {
        let b = sim_breakdown(&report());
        assert_eq!(b.epoch_s, 2.0);
        // Ingress busy: 0.5s (w0) + 0.5s (w1), over 2 workers.
        assert!((b.comm_s - 0.5).abs() < 1e-12);
        assert!((b.compute_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_trace_buckets_span_the_epoch() {
        let r = report();
        let series = utilization_trace(&r, 1, ResourceKind::Device, 4);
        assert_eq!(series.len(), 4);
        // Worker 1's device is busy the whole epoch.
        for u in series {
            assert!((u - 1.0).abs() < 1e-9);
        }
        assert!(utilization_trace(&r, 0, ResourceKind::Device, 0).is_empty());
    }
}

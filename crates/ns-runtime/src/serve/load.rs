//! Seeded open-loop load generation and exact percentile math.
//!
//! Open loop means arrivals follow a fixed schedule (a Poisson process
//! at the target rate) that does *not* slow down when the system lags —
//! unlike closed-loop drivers, which wait for each answer and silently
//! stretch the arrival schedule, hiding queueing delay (coordinated
//! omission). Latency is measured from the *scheduled* arrival instant,
//! so time spent queued behind a saturated deployment shows up in the
//! percentiles.
//!
//! Everything is seeded: the same `(queries, rate, seed, zipf_s)`
//! quadruple produces the same arrival offsets and the same seed-vertex
//! sequence on every run, which is what lets CI assert on the report.

use std::time::Duration;

/// An open-loop load specification.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoop {
    /// Total queries to offer.
    pub queries: usize,
    /// Target offered rate, queries per second.
    pub rate_qps: f64,
    /// RNG seed for both arrivals and seed-vertex sampling.
    pub seed: u64,
    /// Zipf skew of seed-vertex popularity (0 = uniform). Real inference
    /// traffic concentrates on popular entities; skew is what makes the
    /// feature cache earn its keep.
    pub zipf_s: f64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl OpenLoop {
    /// Cumulative arrival offsets from the run start: exponential
    /// inter-arrival gaps (a Poisson process) at `rate_qps`.
    pub fn arrivals(&self) -> Vec<Duration> {
        let rate = self.rate_qps.max(1e-6);
        let mut state = self.seed ^ 0xa076_1d64_78bd_642f;
        let mut t = 0.0f64;
        (0..self.queries)
            .map(|_| {
                let u = unit(&mut state);
                t += -(1.0 - u).ln() / rate;
                Duration::from_secs_f64(t)
            })
            .collect()
    }

    /// Seed vertices for each query, Zipf-distributed over
    /// `0..n_vertices` with skew `zipf_s` (0 = uniform). Sampling is by
    /// inverse CDF over the precomputed cumulative weights.
    pub fn seeds(&self, n_vertices: u32) -> Vec<u32> {
        assert!(n_vertices > 0, "cannot sample seeds from an empty graph");
        let n = n_vertices as usize;
        let s = self.zipf_s.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        let mut state = self.seed ^ 0x53a6_b0c9_11d3_22ef;
        (0..self.queries)
            .map(|_| {
                let target = unit(&mut state) * total;
                // First index whose cumulative weight exceeds target.
                let idx = cdf.partition_point(|&c| c <= target);
                idx.min(n - 1) as u32
            })
            .collect()
    }
}

/// Nearest-rank percentile of an ascending-sorted latency vector, µs.
/// `p` in percent (e.g. `99.9`). Returns 0 for an empty input.
///
/// Exact by construction — the serve path keeps every latency sample
/// rather than a bucketed histogram, because the `ns-metrics` power-of-
/// two buckets are too coarse for a meaningful p999.
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_seed_deterministic_and_rate_scaled() {
        let a = OpenLoop { queries: 1000, rate_qps: 5000.0, seed: 42, zipf_s: 1.0 };
        let b = OpenLoop { queries: 1000, rate_qps: 5000.0, seed: 42, zipf_s: 1.0 };
        assert_eq!(a.arrivals(), b.arrivals());
        let c = OpenLoop { seed: 43, ..a };
        assert_ne!(a.arrivals(), c.arrivals());
        // Mean of 1000 exponential gaps at 5000 qps: last offset close
        // to 1000/5000 = 0.2 s (within wide tolerance).
        let last = a.arrivals().last().unwrap().as_secs_f64();
        assert!((0.1..0.4).contains(&last), "last arrival {last}");
    }

    #[test]
    fn seeds_stay_in_range_and_skew_toward_low_ids() {
        let l = OpenLoop { queries: 4000, rate_qps: 1.0, seed: 9, zipf_s: 1.2 };
        let seeds = l.seeds(1000);
        assert_eq!(seeds.len(), 4000);
        assert!(seeds.iter().all(|&s| s < 1000));
        // Zipf 1.2 concentrates mass at the head: the lowest decile of
        // ids must draw far more than a uniform share.
        let head = seeds.iter().filter(|&&s| s < 100).count();
        assert!(head > 1200, "head draws {head} of 4000");
        // Uniform (s = 0) does not.
        let u = OpenLoop { zipf_s: 0.0, ..l }.seeds(1000);
        let uhead = u.iter().filter(|&&s| s < 100).count();
        assert!((200..600).contains(&uhead), "uniform head draws {uhead}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 50);
        assert_eq!(percentile_us(&v, 99.0), 99);
        assert_eq!(percentile_us(&v, 99.9), 100);
        assert_eq!(percentile_us(&v, 100.0), 100);
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[7], 99.9), 7);
    }
}

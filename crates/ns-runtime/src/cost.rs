//! Cost-factor probing (Algorithm 4, line 1).
//!
//! The hybrid partitioner needs per-layer estimates of
//!
//! * `T_v` — seconds to compute one vertex's representation,
//! * `T_e` — seconds to process one in-edge, and
//! * `T_c` — seconds to communicate one dependency's representation
//!   (forward fetch + backward gradient return),
//!
//! for the concrete model and cluster at hand. The paper probes these "by
//! executing a test training on a small graph"; we do the same: each
//! layer runs forward + backward on two small synthetic topologies that
//! differ only in edge count, and the measured FLOP totals are solved for
//! the per-edge and per-vertex components, which the device model then
//! converts to seconds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ns_gnn::{GnnModel, LayerTopology};
use ns_net::ClusterSpec;
use ns_tensor::Tensor;

/// Per-layer FLOP decomposition, forward and backward separated (the
/// simulator schedules the two phases differently).
#[derive(Debug, Clone, Copy)]
pub struct LayerFlops {
    /// Forward FLOPs per edge.
    pub edge_fwd: f64,
    /// Forward FLOPs per computed vertex.
    pub vertex_fwd: f64,
    /// Backward FLOPs per edge.
    pub edge_bwd: f64,
    /// Backward FLOPs per computed vertex.
    pub vertex_bwd: f64,
}

impl LayerFlops {
    /// Combined forward+backward FLOPs per edge.
    pub fn edge_total(&self) -> f64 {
        self.edge_fwd + self.edge_bwd
    }

    /// Combined forward+backward FLOPs per vertex.
    pub fn vertex_total(&self) -> f64 {
        self.vertex_fwd + self.vertex_bwd
    }
}

/// Probed cost factors for one (model, cluster) pair.
#[derive(Debug, Clone)]
pub struct CostFactors {
    /// Per-layer FLOP decomposition (index = layer `lz`).
    pub flops: Vec<LayerFlops>,
    /// `T_v[lz]`: seconds of redundant compute to produce one replica
    /// vertex's `h^{(lz+1)}` (forward + backward).
    pub t_v: Vec<f64>,
    /// `T_e[lz]`: seconds of redundant compute to replay one in-edge at
    /// layer `lz` (forward + backward).
    pub t_e: Vec<f64>,
    /// `T_c[lz]`: seconds to communicate one layer-`lz` dependency row
    /// (representation out + gradient back).
    pub t_c: Vec<f64>,
}

impl CostFactors {
    /// A copy with every per-layer communication cost `T_c` multiplied by
    /// `factor`. The measured-cost replanner uses this to fold the
    /// observed global comm slowdown (mean receive wait drift relative to
    /// the run's first chunk) back into the Algorithm-4 inputs; compute
    /// factors are left untouched because they are probed, not drifting.
    pub fn with_comm_scale(&self, factor: f64) -> CostFactors {
        CostFactors {
            t_c: self.t_c.iter().map(|t| t * factor).collect(),
            ..self.clone()
        }
    }

    /// A copy with every per-layer compute cost (`T_v` and `T_e`)
    /// multiplied by `factor`; communication costs are untouched. The
    /// thread-aware calibration uses `1 / parallel_speedup(threads)` so
    /// Algorithm 4 weighs redundant computation at the throughput the
    /// intra-worker pool actually delivers.
    pub fn with_compute_scale(&self, factor: f64) -> CostFactors {
        CostFactors {
            t_v: self.t_v.iter().map(|t| t * factor).collect(),
            t_e: self.t_e.iter().map(|t| t * factor).collect(),
            ..self.clone()
        }
    }
}

/// Fraction of per-vertex/per-edge compute the intra-worker pool can run
/// in parallel. Fixed (not measured) so that dependency plans remain a
/// pure function of `(model, cluster, threads)` — a wall-clock-calibrated
/// value would make Hybrid plans nondeterministic across runs.
const PARALLEL_FRACTION: f64 = 0.9;

/// Deterministic Amdahl's-law speedup of the compute kernels at `threads`
/// intra-worker threads: `1 / ((1 - p) + p / threads)` with `p = 0.9`.
/// `threads <= 1` yields exactly `1.0`.
pub fn parallel_speedup(threads: usize) -> f64 {
    let t = threads.max(1) as f64;
    1.0 / ((1.0 - PARALLEL_FRACTION) + PARALLEL_FRACTION / t)
}

/// [`probe`], then folds the `threads`-thread compute speedup into `T_v`
/// and `T_e` (Algorithm 4's compute term). `T_c` is unaffected: the
/// fabric does not get faster because the worker has more cores.
pub fn probe_threaded(model: &GnnModel, cluster: &ClusterSpec, threads: usize) -> CostFactors {
    probe(model, cluster).with_compute_scale(1.0 / parallel_speedup(threads))
}

fn probe_topology(n_src: usize, n_dst: usize, edges: usize, seed: u64) -> LayerTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n_dst];
    // Guarantee each destination at least one edge, then spread the rest.
    for (d, list) in adj.iter_mut().enumerate() {
        list.push((rng.random_range(0..n_src) as u32, 1.0));
        let _ = d;
    }
    for _ in n_dst..edges {
        let d = rng.random_range(0..n_dst);
        adj[d].push((rng.random_range(0..n_src) as u32, 1.0));
    }
    let dst_in_rows = (0..n_dst as u32).collect();
    LayerTopology::from_adjacency(n_src, &adj, dst_in_rows)
}

/// Measures a layer's total forward/backward FLOPs on a given topology.
fn measure_layer(model: &GnnModel, lz: usize, topo: &LayerTopology, seed: u64) -> (u64, u64) {
    let layer = model.layer(lz);
    let store = model.fresh_store();
    let mut rng = StdRng::seed_from_u64(seed);
    let h = Tensor::from_vec(
        topo.n_src,
        layer.in_dim(),
        (0..topo.n_src * layer.in_dim()).map(|_| rng.random::<f32>() - 0.5).collect(),
    );
    let run = layer.forward(&store, topo, h);
    let fwd = run.forward_flops();
    let seed_grad = Tensor::full(topo.n_dst, layer.out_dim(), 1.0);
    let mut grads = store.zero_grads();
    let (_, bwd) = run.backward(seed_grad, &mut grads);
    (fwd, bwd)
}

/// Probes all layers of `model` against `cluster`.
pub fn probe(model: &GnnModel, cluster: &ClusterSpec) -> CostFactors {
    let n_src = 96;
    let n_dst = 48;
    let e1 = 96;
    let e2 = 480;
    let topo1 = probe_topology(n_src, n_dst, e1, 11);
    let topo2 = probe_topology(n_src, n_dst, e2, 12);
    // The probe topologies keep n_src/n_dst fixed, so the FLOP difference
    // isolates the per-edge component. n_src rows also contribute
    // row-proportional work in some layers (GAT's Wh); attribute it to
    // the vertex component scaled by n_dst for a conservative estimate.
    let mut flops = Vec::with_capacity(model.num_layers());
    let mut t_v = Vec::with_capacity(model.num_layers());
    let mut t_e = Vec::with_capacity(model.num_layers());
    let mut t_c = Vec::with_capacity(model.num_layers());
    let dense = cluster.device.dense_gflops * 1e9;
    let sparse = cluster.device.sparse_gflops * 1e9;
    for lz in 0..model.num_layers() {
        let (f1, b1) = measure_layer(model, lz, &topo1, 21);
        let (f2, b2) = measure_layer(model, lz, &topo2, 22);
        let de = (e2 - e1) as f64;
        let edge_fwd = ((f2 as f64 - f1 as f64) / de).max(0.0);
        let edge_bwd = ((b2 as f64 - b1 as f64) / de).max(0.0);
        let vertex_fwd = ((f1 as f64 - edge_fwd * e1 as f64) / n_dst as f64).max(1.0);
        let vertex_bwd = ((b1 as f64 - edge_bwd * e1 as f64) / n_dst as f64).max(1.0);
        let lf = LayerFlops { edge_fwd, vertex_fwd, edge_bwd, vertex_bwd };
        // Vertex functions are dense matmuls; edge work (gather /
        // aggregate / per-edge functions) is sparse and bandwidth-bound.
        t_v.push(lf.vertex_total() / dense);
        t_e.push(lf.edge_total() / sparse);
        // One dependency row: forward representation (d_in floats + id)
        // plus the backward gradient of the same width.
        let row_bytes = (4 * model.layer(lz).in_dim() + 4) as f64;
        t_c.push(2.0 * row_bytes / cluster.bandwidth_bps());
        flops.push(lf);
    }
    CostFactors { flops, t_v, t_e, t_c }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::ModelKind;

    fn factors(kind: ModelKind) -> CostFactors {
        let model = GnnModel::two_layer(kind, 32, 16, 4, 5);
        probe(&model, &ClusterSpec::aliyun_ecs(4))
    }

    #[test]
    fn probe_produces_positive_factors() {
        for kind in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat] {
            let f = factors(kind);
            assert_eq!(f.t_v.len(), 2);
            for lz in 0..2 {
                assert!(f.t_v[lz] > 0.0, "{:?} t_v", kind.name());
                assert!(f.t_e[lz] > 0.0, "{:?} t_e", kind.name());
                assert!(f.t_c[lz] > 0.0, "{:?} t_c", kind.name());
            }
        }
    }

    #[test]
    fn gcn_vertex_cost_dominates_edge_cost() {
        // GCN's vertex function is a dense matmul; its edge function is a
        // weighted copy. Per-unit vertex cost must dwarf edge cost.
        let f = factors(ModelKind::Gcn);
        assert!(f.flops[0].vertex_fwd > 10.0 * f.flops[0].edge_fwd);
    }

    #[test]
    fn wider_layer_costs_more() {
        let narrow = GnnModel::two_layer(ModelKind::Gcn, 32, 8, 4, 5);
        let wide = GnnModel::two_layer(ModelKind::Gcn, 32, 64, 4, 5);
        let c = ClusterSpec::aliyun_ecs(4);
        let fn_ = probe(&narrow, &c);
        let fw = probe(&wide, &c);
        assert!(fw.t_v[0] > fn_.t_v[0]);
        // Layer-1 input dim (hidden) is wider, so its comm cost is higher.
        assert!(fw.t_c[1] > fn_.t_c[1]);
    }

    #[test]
    fn faster_network_lowers_t_c_only() {
        let model = GnnModel::two_layer(ModelKind::Gcn, 32, 16, 4, 5);
        let ecs = probe(&model, &ClusterSpec::aliyun_ecs(4));
        let ibv = probe(&model, &ClusterSpec::ibv(4));
        assert!(ibv.t_c[1] < ecs.t_c[1] / 10.0);
        // Compute factors scale with device speed instead.
        assert!(ibv.t_v[0] < ecs.t_v[0]);
    }

    #[test]
    fn comm_scale_touches_only_t_c() {
        let f = factors(ModelKind::Gcn);
        let scaled = f.with_comm_scale(3.0);
        for lz in 0..2 {
            assert!((scaled.t_c[lz] - 3.0 * f.t_c[lz]).abs() < 1e-18);
            assert_eq!(scaled.t_v[lz], f.t_v[lz]);
            assert_eq!(scaled.t_e[lz], f.t_e[lz]);
        }
    }

    #[test]
    fn parallel_speedup_is_monotone_and_bounded() {
        assert_eq!(parallel_speedup(0), 1.0);
        assert_eq!(parallel_speedup(1), 1.0);
        let mut prev = 1.0;
        for t in 2..=16 {
            let s = parallel_speedup(t);
            assert!(s > prev, "speedup must grow with threads");
            assert!(s < t as f64, "super-linear speedup is impossible");
            prev = s;
        }
        // Amdahl ceiling: 1 / (1 - p) = 10x for p = 0.9.
        assert!(parallel_speedup(1_000_000) < 10.0);
    }

    #[test]
    fn compute_scale_touches_only_t_v_and_t_e() {
        let f = factors(ModelKind::Gcn);
        let scaled = f.with_compute_scale(0.25);
        for lz in 0..2 {
            assert!((scaled.t_v[lz] - 0.25 * f.t_v[lz]).abs() < 1e-18);
            assert!((scaled.t_e[lz] - 0.25 * f.t_e[lz]).abs() < 1e-18);
            assert_eq!(scaled.t_c[lz], f.t_c[lz]);
        }
    }

    #[test]
    fn threaded_probe_cheapens_compute_deterministically() {
        let model = GnnModel::two_layer(ModelKind::Gcn, 32, 16, 4, 5);
        let c = ClusterSpec::aliyun_ecs(4);
        let t1 = probe_threaded(&model, &c, 1);
        let t4 = probe_threaded(&model, &c, 4);
        let t4b = probe_threaded(&model, &c, 4);
        for lz in 0..2 {
            assert!(t4.t_v[lz] < t1.t_v[lz]);
            assert!(t4.t_e[lz] < t1.t_e[lz]);
            assert_eq!(t4.t_c[lz], t1.t_c[lz], "comm term must not change");
            // Same inputs -> bit-equal factors (plans stay deterministic).
            assert_eq!(t4.t_v[lz], t4b.t_v[lz]);
        }
    }

    #[test]
    fn gat_edge_cost_exceeds_gcn_edge_cost_at_equal_widths() {
        // GAT's parameterized edge function (attention logits + softmax +
        // weighting) must cost more per edge than GCN's weighted copy when
        // both operate at the same width.
        let c = ClusterSpec::aliyun_ecs(4);
        let gat = probe(&GnnModel::two_layer(ModelKind::Gat, 32, 32, 4, 5), &c);
        let gcn = probe(&GnnModel::two_layer(ModelKind::Gcn, 32, 32, 4, 5), &c);
        assert!(
            gat.flops[0].edge_total() > gcn.flops[0].edge_total(),
            "gat {} vs gcn {}",
            gat.flops[0].edge_total(),
            gcn.flops[0].edge_total()
        );
    }
}

//! Runtime error type.

/// Errors surfaced by planning or training.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The projected per-worker device working set exceeds device memory
    /// at the dataset's full (paper) scale. This is the condition under
    /// which the paper reports "OOM" cells for DepCache / ROC / PyG.
    DeviceOom {
        /// Engine or system that overflowed.
        what: String,
        /// Projected bytes needed on the worst worker.
        needed_bytes: u64,
        /// Device capacity.
        limit_bytes: u64,
    },
    /// Inconsistent configuration (e.g. zero workers, dims mismatch).
    InvalidConfig(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DeviceOom { what, needed_bytes, limit_bytes } => write!(
                f,
                "{what}: out of device memory ({:.2} GiB needed, {:.2} GiB available)",
                *needed_bytes as f64 / (1u64 << 30) as f64,
                *limit_bytes as f64 / (1u64 << 30) as f64,
            ),
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_gib() {
        let e = RuntimeError::DeviceOom {
            what: "DepCache".into(),
            needed_bytes: 32 * (1 << 30),
            limit_bytes: 16 * (1 << 30),
        };
        let s = e.to_string();
        assert!(s.contains("32.00 GiB"), "{s}");
        assert!(s.contains("16.00 GiB"), "{s}");
    }
}

//! Runtime error type.

use ns_net::NetError;

/// Why a worker failed mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The worker crashed (a [`FaultPlan`](ns_net::FaultPlan) kill, or any
    /// early thread exit that dropped its endpoint).
    Killed,
    /// A fabric operation failed: the peer disconnected, timed out past
    /// the retry budget, or broke protocol.
    Net(NetError),
    /// The divergence guard tripped: the worker observed a non-finite
    /// loss or gradient before the optimizer step.
    Diverged,
    /// The liveness watchdog cancelled the worker: it stopped making
    /// phase progress past the armed deadline while holding no fabric
    /// operation a recv timeout or breaker could see.
    Hung,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Killed => write!(f, "worker crashed"),
            FailureCause::Net(e) => write!(f, "{e}"),
            FailureCause::Diverged => write!(f, "non-finite loss or gradient"),
            FailureCause::Hung => write!(f, "worker hung past the watchdog deadline"),
        }
    }
}

/// Errors surfaced by planning or training.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The projected per-worker device working set exceeds device memory
    /// at the dataset's full (paper) scale. This is the condition under
    /// which the paper reports "OOM" cells for DepCache / ROC / PyG.
    DeviceOom {
        /// Engine or system that overflowed.
        what: String,
        /// Projected bytes needed on the worst worker.
        needed_bytes: u64,
        /// Device capacity.
        limit_bytes: u64,
    },
    /// Inconsistent configuration (e.g. zero workers, dims mismatch).
    InvalidConfig(String),
    /// A worker died or wedged mid-training. All surviving worker threads
    /// have been drained and joined before this is returned; with recovery
    /// enabled the trainer catches it, rolls back to the last checkpoint,
    /// and resumes on the survivors.
    WorkerFailed {
        /// The failed (or first-failed) worker.
        worker: usize,
        /// Epoch the failure occurred in, counted from the start of the
        /// run.
        epoch: usize,
        /// Root cause.
        cause: FailureCause,
    },
    /// Gradient synchronization (all-reduce / parameter-server) timed out
    /// past the retry budget — the signature of a wedged (not dead) peer.
    SyncTimeout {
        /// The worker whose sync stalled.
        worker: usize,
        /// Epoch of the stall.
        epoch: usize,
        /// The peer that never answered.
        peer: usize,
        /// Total milliseconds waited across retries.
        waited_ms: u64,
    },
    /// A checkpoint could not be restored during recovery.
    CheckpointCorrupt(String),
    /// The durable checkpoint store failed to persist a generation (disk
    /// full, permission, rename failure). Training state is unaffected —
    /// the in-memory checkpoint is still valid — but durability is not.
    StoreIo(String),
    /// Training diverged: a non-finite loss or gradient norm was detected
    /// by the divergence guard. With recovery enabled the trainer treats
    /// this like a fault and rolls back to the last good checkpoint.
    Diverged {
        /// The worker that observed the non-finite value.
        worker: usize,
        /// Epoch (from the start of the run) where divergence appeared.
        epoch: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DeviceOom { what, needed_bytes, limit_bytes } => write!(
                f,
                "{what}: out of device memory ({:.2} GiB needed, {:.2} GiB available)",
                *needed_bytes as f64 / (1u64 << 30) as f64,
                *limit_bytes as f64 / (1u64 << 30) as f64,
            ),
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RuntimeError::WorkerFailed { worker, epoch, cause } => {
                write!(f, "worker {worker} failed at epoch {epoch}: {cause}")
            }
            RuntimeError::SyncTimeout { worker, epoch, peer, waited_ms } => write!(
                f,
                "worker {worker}: gradient sync with peer {peer} timed out at epoch \
                 {epoch} after {waited_ms} ms"
            ),
            RuntimeError::CheckpointCorrupt(msg) => {
                write!(f, "checkpoint restore failed: {msg}")
            }
            RuntimeError::StoreIo(msg) => {
                write!(f, "checkpoint store write failed: {msg}")
            }
            RuntimeError::Diverged { worker, epoch } => write!(
                f,
                "worker {worker}: non-finite loss or gradient at epoch {epoch} \
                 (training diverged)"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_gib() {
        let e = RuntimeError::DeviceOom {
            what: "DepCache".into(),
            needed_bytes: 32 * (1 << 30),
            limit_bytes: 16 * (1 << 30),
        };
        let s = e.to_string();
        assert!(s.contains("32.00 GiB"), "{s}");
        assert!(s.contains("16.00 GiB"), "{s}");
    }

    #[test]
    fn failure_displays_name_the_culprit() {
        let e = RuntimeError::WorkerFailed {
            worker: 2,
            epoch: 3,
            cause: FailureCause::Net(NetError::PeerDisconnected { peer: 1 }),
        };
        let s = e.to_string();
        assert!(s.contains("worker 2"), "{s}");
        assert!(s.contains("epoch 3"), "{s}");
        assert!(s.contains("peer 1 disconnected"), "{s}");

        let t = RuntimeError::SyncTimeout { worker: 0, epoch: 1, peer: 2, waited_ms: 1500 }
            .to_string();
        assert!(t.contains("peer 2"), "{t}");
        assert!(t.contains("1500 ms"), "{t}");
    }
}

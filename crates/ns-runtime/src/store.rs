//! Durable, versioned checkpoint store.
//!
//! The in-memory [`Checkpoint`](crate::recovery::Checkpoint) survives a
//! *worker* failure but not a *process* failure. This module persists each
//! checkpoint as a numbered **generation** file under a user-chosen
//! directory (`--ckpt-dir`), so a restarted process — or a rollback whose
//! in-memory copy was damaged — can recover from disk.
//!
//! Generation file layout (all integers little-endian):
//!
//! ```text
//! magic        [u8; 8]  = b"NTSSTORE"
//! schema       u32      = 1
//! epoch        u32      next epoch to run when resuming from here
//! world        u32      cluster size at capture time
//! flags        u32      bit 0: payload carries Adam optimizer state
//! payload_len  u64      bytes following the header
//! payload_crc  u32      CRC32 (IEEE) of the payload
//! header_crc   u32      CRC32 of the 36 header bytes above
//! payload      [u8]     NTSCKPT1 parameter snapshot, then optional opt state
//! ```
//!
//! `header_crc` covers every header field *including* `payload_crc`, so a
//! single bit flip anywhere in the file — header metadata, either CRC, or
//! payload — is always detected at load time; the torn-write tests assert
//! this exhaustively.
//!
//! Writes are atomic: the generation is written to a temp file, `fsync`ed,
//! renamed into place, the `MANIFEST` (one generation filename per line,
//! oldest first) is rewritten the same way, and the directory is synced.
//! A crash at any point leaves either the old state or the new state,
//! never a half-written generation that the manifest points at.
//!
//! Loads walk generations newest → oldest and *skip* any generation that
//! is truncated or fails a CRC, counting each skip as a fallback — a torn
//! newest generation degrades to the previous good one instead of killing
//! recovery.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use ns_tensor::checkpoint::{self, crc32, CheckpointError};
use ns_tensor::{AdamState, Tensor};

use crate::recovery::Checkpoint;

/// Magic prefix of a generation file.
pub const STORE_MAGIC: &[u8; 8] = b"NTSSTORE";
/// On-disk schema version written by this build.
pub const SCHEMA_VERSION: u32 = 1;
/// Fixed size of the generation header, bytes.
pub const HEADER_BYTES: usize = 40;

const MANIFEST: &str = "MANIFEST";
const FLAG_HAS_OPT: u32 = 1;
/// POSIX "no space left on device".
const ENOSPC: i32 = 28;

/// ENOSPC-class check covering both the injected fault (constructed with
/// raw OS error 28) and a genuinely full filesystem.
fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC)
}

/// Where (and how much) the trainer persists checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Directory for generation files. `None` (the default) keeps
    /// checkpoints in memory only — the pre-durability behavior.
    pub dir: Option<PathBuf>,
    /// How many generations to retain on disk (last K).
    pub keep: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { dir: None, keep: 3 }
    }
}

impl StoreConfig {
    /// Durable store rooted at `dir` with the default retention.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: Some(dir.into()), keep: 3 }
    }

    /// Sets the retention depth (builder style). Values below 1 are
    /// clamped to 1 — retaining zero generations would make every save
    /// delete itself.
    pub fn keep(mut self, k: usize) -> Self {
        self.keep = k.max(1);
        self
    }

    /// Whether durable checkpointing is active.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// What a successful [`CheckpointStore::save`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReceipt {
    /// Final path of the generation file.
    pub path: PathBuf,
    /// Size of the generation file, bytes.
    pub bytes: u64,
    /// Wall time spent in `fsync` calls (file, manifest, directory).
    pub fsync_ns: u64,
    /// Extra wall time charged by an injected slow-disk fault.
    pub slow_penalty_ns: u64,
}

/// What [`CheckpointStore::save_degrading`] did — a save that survives
/// ENOSPC by squeezing retention instead of aborting training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveOutcome {
    /// The receipt, when a generation actually landed on disk. `None`
    /// means the generation was deferred to the next cadence.
    pub receipt: Option<SaveReceipt>,
    /// ENOSPC-class failures absorbed during this save.
    pub enospc_hits: u64,
    /// Whether this save squeezed retention down to keep-last-1.
    pub squeezed: bool,
    /// Whether the generation was deferred (disk still full after the
    /// whole fallback chain). The in-memory checkpoint remains valid.
    pub deferred: bool,
}

/// The newest→oldest fallback chain found nothing loadable: the store
/// directory is empty, or every generation present is damaged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreExhausted {
    /// The store directory that was walked.
    pub dir: PathBuf,
    /// Generations present (and skipped as damaged) when the chain ended.
    pub generations: usize,
    /// Damaged generations skipped before giving up.
    pub fallbacks: u64,
}

impl std::fmt::Display for StoreExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.generations == 0 {
            write!(f, "checkpoint store {} holds no generations", self.dir.display())
        } else {
            write!(
                f,
                "checkpoint store {} exhausted: all {} generations damaged \
                 ({} fallbacks)",
                self.dir.display(),
                self.generations,
                self.fallbacks
            )
        }
    }
}

impl std::error::Error for StoreExhausted {}

/// Result of [`CheckpointStore::load_latest`].
#[derive(Debug)]
pub struct LoadReport {
    /// The newest generation that passed verification, or `None` if the
    /// store is empty or every generation is damaged.
    pub checkpoint: Option<Checkpoint>,
    /// Cluster size recorded in the loaded generation's header.
    pub world: Option<usize>,
    /// Number of damaged generations skipped before a good one was found
    /// (or before the chain was exhausted).
    pub fallbacks: u64,
}

/// A directory of checkpoint generations with last-K retention.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_gen: u64,
    /// Injected disk-full window is active (chaos harness). The squeeze
    /// frees enough space for writes to land again.
    injected_full: bool,
    /// Injected *hard* disk-full: even the post-squeeze retry fails, so
    /// saves defer to the next cadence.
    injected_hard: bool,
    /// Injected fsync slowdown factor; 1.0 = healthy disk.
    slow_factor: f64,
    /// Retention has been squeezed to keep-last-1 by an ENOSPC.
    squeezed: bool,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`, retaining the last
    /// `keep` generations. Resumes generation numbering past any files
    /// already present.
    pub fn open(dir: &Path, keep: usize) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut next_gen = 0;
        for entry in fs::read_dir(dir)? {
            if let Some(seq) = parse_gen_seq(&entry?.file_name().to_string_lossy()) {
                next_gen = next_gen.max(seq + 1);
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
            next_gen,
            injected_full: false,
            injected_hard: false,
            slow_factor: 1.0,
            squeezed: false,
        })
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current retention depth (1 after an ENOSPC squeeze).
    pub fn keep_depth(&self) -> usize {
        self.keep
    }

    /// Whether an ENOSPC has squeezed retention to keep-last-1.
    pub fn is_squeezed(&self) -> bool {
        self.squeezed
    }

    /// Arms (or disarms) the injected disk fate for subsequent saves.
    /// `full` models an ENOSPC window; `slow_factor` ≥ 1 multiplies the
    /// fsync cost. Injection behaves exactly like the real thing: a full
    /// disk fails the write with OS error 28 until retention is squeezed
    /// (the prune frees space), after which writes land again.
    pub fn set_disk_fate(&mut self, full: bool, slow_factor: f64) {
        self.injected_full = full;
        self.slow_factor = slow_factor.max(1.0);
    }

    /// Arms an injected disk-full so severe that even the post-squeeze
    /// retry fails — the path where a save defers to the next cadence.
    pub fn set_disk_fate_hard(&mut self, full: bool) {
        self.injected_hard = full;
    }

    /// Persists `ckpt` as the next generation and prunes past the
    /// retention depth. The write is atomic (temp file → fsync → rename →
    /// manifest rewrite → directory sync).
    pub fn save(&mut self, ckpt: &Checkpoint, world: usize) -> io::Result<SaveReceipt> {
        // Injected disk-full window: refuse the write with the same error
        // a real full filesystem produces, until the retention squeeze
        // frees space. Checked before any bytes are staged so a failed
        // save leaves the store exactly as it was.
        if self.injected_hard || (self.injected_full && !self.squeezed) {
            return Err(io::Error::from_raw_os_error(ENOSPC));
        }
        let mut payload = ckpt.raw_bytes().to_vec();
        let mut flags = 0u32;
        if let Some(opt) = ckpt.opt_state() {
            flags |= FLAG_HAS_OPT;
            encode_opt(opt, &mut payload);
        }
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(STORE_MAGIC);
        header.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        header.extend_from_slice(&(ckpt.next_epoch as u32).to_le_bytes());
        header.extend_from_slice(&(world as u32).to_le_bytes());
        header.extend_from_slice(&flags.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(&payload).to_le_bytes());
        let header_crc = crc32(&header);
        header.extend_from_slice(&header_crc.to_le_bytes());

        let name = gen_name(self.next_gen, ckpt.next_epoch);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!(".tmp-{name}"));
        // Snapshot the generation list before the rename so the
        // directory-scan fallback cannot double-count the new file.
        let mut gens = self.generations()?;
        let mut fsync_ns = 0u64;
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&header)?;
            // Header and payload are written separately — never
            // concatenated into a second full copy — and the payload in
            // pool-advised slices, so a memory-pressure window also
            // bounds each write burst.
            let slice = ns_tensor::pool::advise_chunk(payload.len()).max(1);
            for chunk in payload.chunks(slice) {
                f.write_all(chunk)?;
            }
            fsync_ns += timed_sync(&f)?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.next_gen += 1;

        // Retention + manifest: keep the newest `keep` generations.
        gens.push(name);
        while gens.len() > self.keep {
            let evicted = gens.remove(0);
            // Best-effort: a missing file must not fail the save.
            let _ = fs::remove_file(self.dir.join(evicted));
        }
        fsync_ns += self.write_manifest(&gens)?;
        fsync_ns += timed_sync(&File::open(&self.dir)?)?;

        // Injected slow disk: charge the extra fsync latency for real (so
        // spans and the watchdog see it), bounded so soaks stay quick.
        let mut slow_penalty_ns = 0;
        if self.slow_factor > 1.0 {
            slow_penalty_ns = (fsync_ns as f64 * (self.slow_factor - 1.0)) as u64;
            let nap = slow_penalty_ns.min(20_000_000); // ≤ 20 ms per save
            std::thread::sleep(std::time::Duration::from_nanos(nap));
        }

        Ok(SaveReceipt {
            path: final_path,
            bytes: (header.len() + payload.len()) as u64,
            fsync_ns,
            slow_penalty_ns,
        })
    }

    /// Saves with the degrade-don't-die policy: an ENOSPC-class failure
    /// squeezes retention to keep-last-1 (pruning frees space), retries
    /// once, and — if the disk is *still* full — defers the generation to
    /// the next cadence instead of erroring. Only non-ENOSPC I/O failures
    /// (permissions, rename, …) surface as errors; training state is
    /// never at risk because the in-memory checkpoint stays valid.
    pub fn save_degrading(
        &mut self,
        ckpt: &Checkpoint,
        world: usize,
    ) -> io::Result<SaveOutcome> {
        match self.save(ckpt, world) {
            Ok(receipt) => Ok(SaveOutcome {
                receipt: Some(receipt),
                enospc_hits: 0,
                squeezed: false,
                deferred: false,
            }),
            Err(e) if is_enospc(&e) => {
                let mut enospc_hits = 1;
                let squeezed = !self.squeezed;
                self.squeeze_retention()?;
                match self.save(ckpt, world) {
                    Ok(receipt) => Ok(SaveOutcome {
                        receipt: Some(receipt),
                        enospc_hits,
                        squeezed,
                        deferred: false,
                    }),
                    Err(e2) if is_enospc(&e2) => {
                        enospc_hits += 1;
                        Ok(SaveOutcome {
                            receipt: None,
                            enospc_hits,
                            squeezed,
                            deferred: true,
                        })
                    }
                    Err(e2) => Err(e2),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Squeezes retention to keep-last-1 and prunes everything but the
    /// newest generation right now, freeing disk for the retry. Sticky:
    /// once a run has hit ENOSPC the store stays at keep-last-1.
    fn squeeze_retention(&mut self) -> io::Result<()> {
        self.keep = 1;
        self.squeezed = true;
        let mut gens = self.generations()?;
        if gens.len() > 1 {
            let keep_newest = gens.split_off(gens.len() - 1);
            for evicted in gens {
                let _ = fs::remove_file(self.dir.join(evicted));
            }
            self.write_manifest(&keep_newest)?;
        }
        Ok(())
    }

    /// Generation filenames in manifest order (oldest first). Falls back
    /// to a directory scan when the manifest is missing or unreadable.
    pub fn generations(&self) -> io::Result<Vec<String>> {
        match fs::read_to_string(self.dir.join(MANIFEST)) {
            Ok(text) => {
                // A corrupt manifest (garbage lines, no valid generation
                // names) must not hide generations that are on disk:
                // ignore unparseable lines and rescue via directory scan
                // when nothing valid remains.
                let names: Vec<String> = text
                    .lines()
                    .map(str::to_owned)
                    .filter(|l| parse_gen_seq(l).is_some())
                    .collect();
                if names.is_empty() {
                    self.scan_generations()
                } else {
                    Ok(names)
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.scan_generations(),
            Err(e) => Err(e),
        }
    }

    /// Directory-scan fallback for a missing or corrupt manifest.
    fn scan_generations(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| parse_gen_seq(n).is_some())
            .collect();
        names.sort();
        Ok(names)
    }

    /// Loads the newest generation that verifies, skipping (and counting)
    /// damaged ones.
    pub fn load_latest(&self) -> LoadReport {
        let gens = match self.generations() {
            Ok(g) => g,
            Err(_) => return LoadReport { checkpoint: None, world: None, fallbacks: 0 },
        };
        let mut fallbacks = 0;
        for name in gens.iter().rev() {
            match read_generation(&self.dir.join(name)) {
                Ok((ckpt, world)) => {
                    return LoadReport {
                        checkpoint: Some(ckpt),
                        world: Some(world),
                        fallbacks,
                    }
                }
                Err(_) => fallbacks += 1,
            }
        }
        LoadReport { checkpoint: None, world: None, fallbacks }
    }

    /// Like [`load_latest`](Self::load_latest), but an empty store — or
    /// one whose every generation is damaged — is a typed
    /// [`StoreExhausted`] error instead of a silent `None`. This is the
    /// end of the newest→oldest fallback chain, the only point where the
    /// resource-robustness layer is allowed to give up.
    pub fn load_latest_strict(&self) -> Result<(Checkpoint, usize, u64), StoreExhausted> {
        let generations = self.generations().map(|g| g.len()).unwrap_or(0);
        let report = self.load_latest();
        match report.checkpoint {
            Some(ckpt) => Ok((ckpt, report.world.unwrap_or(0), report.fallbacks)),
            None => Err(StoreExhausted {
                dir: self.dir.clone(),
                generations,
                fallbacks: report.fallbacks,
            }),
        }
    }

    /// Flips one bit of the newest generation file (bit `seed` modulo the
    /// file's bit length) — the chaos harness's model of silent on-disk
    /// corruption. Returns `false` when the store holds no generation.
    pub fn damage_latest(&self, seed: u64) -> io::Result<bool> {
        let gens = self.generations()?;
        let Some(name) = gens.last() else { return Ok(false) };
        let path = self.dir.join(name);
        let mut bytes = fs::read(&path)?;
        if bytes.is_empty() {
            return Ok(false);
        }
        let bit = (seed % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        fs::write(&path, &bytes)?;
        Ok(true)
    }

    fn write_manifest(&self, gens: &[String]) -> io::Result<u64> {
        let tmp = self.dir.join(".tmp-manifest");
        let mut fsync_ns = 0;
        {
            let mut f = File::create(&tmp)?;
            for name in gens {
                writeln!(f, "{name}")?;
            }
            fsync_ns += timed_sync(&f)?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST))?;
        Ok(fsync_ns)
    }
}

fn gen_name(seq: u64, epoch: usize) -> String {
    format!("gen-{seq:08}-e{epoch}.ckpt")
}

fn parse_gen_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("gen-")?;
    if !name.ends_with(".ckpt") {
        return None;
    }
    rest.get(..8)?.parse().ok()
}

fn timed_sync(f: &File) -> io::Result<u64> {
    let t = Instant::now();
    let r = f.sync_all();
    // Directory fsync is not supported everywhere; treat that as a no-op
    // rather than failing the save.
    match r {
        Ok(()) => Ok(t.elapsed().as_nanos() as u64),
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => Ok(0),
        Err(e) => Err(e),
    }
}

fn encode_opt(opt: &AdamState, out: &mut Vec<u8>) {
    out.extend_from_slice(&opt.t.to_le_bytes());
    out.extend_from_slice(&(opt.m.len() as u32).to_le_bytes());
    for t in opt.m.iter().chain(opt.v.iter()) {
        out.extend_from_slice(&(t.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(t.cols() as u32).to_le_bytes());
        for v in t.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Byte-slice reader that tracks how far it has advanced, so the param
/// snapshot's length can be recovered after `load_typed` consumes it.
struct SliceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Read for SliceReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (&self.bytes[self.pos..]).read(buf)?;
        self.pos += n;
        Ok(n)
    }
}

impl SliceReader<'_> {
    fn u32(&mut self, base: u64) -> Result<u32, CheckpointError> {
        let mut b = [0u8; 4];
        self.exact(&mut b, base)?;
        Ok(u32::from_le_bytes(b))
    }

    fn exact(&mut self, buf: &mut [u8], base: u64) -> Result<(), CheckpointError> {
        let at = base + self.pos as u64;
        std::io::Read::read_exact(self, buf)
            .map_err(|e| CheckpointError::Io { offset: at, kind: e.kind() })
    }
}

fn decode_opt(r: &mut SliceReader<'_>, base: u64) -> Result<AdamState, CheckpointError> {
    let mut t_bytes = [0u8; 8];
    r.exact(&mut t_bytes, base)?;
    let t = u64::from_le_bytes(t_bytes);
    let count = r.u32(base)? as usize;
    let mut tensors = Vec::with_capacity(count * 2);
    for _ in 0..count * 2 {
        let at = base + r.pos as u64;
        let rows = r.u32(base)? as usize;
        let cols = r.u32(base)? as usize;
        let elems = rows.checked_mul(cols).ok_or_else(|| CheckpointError::Corrupt {
            offset: at,
            what: "optimizer tensor shape overflow".into(),
        })?;
        let mut data = vec![0u8; elems * 4];
        r.exact(&mut data, base)?;
        let floats: Vec<f32> = data
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        tensors.push(Tensor::from_vec(rows, cols, floats));
    }
    let v = tensors.split_off(count);
    Ok(AdamState { t, m: tensors, v })
}

/// Reads and fully verifies one generation file. Any truncation, CRC
/// failure, or structural damage surfaces as a typed [`CheckpointError`];
/// callers in the fallback chain skip to the previous generation.
pub fn read_generation(path: &Path) -> Result<(Checkpoint, usize), CheckpointError> {
    let bytes =
        fs::read(path).map_err(|e| CheckpointError::Io { offset: 0, kind: e.kind() })?;
    if bytes.len() < HEADER_BYTES {
        return Err(CheckpointError::Io {
            offset: bytes.len() as u64,
            kind: io::ErrorKind::UnexpectedEof,
        });
    }
    if &bytes[..8] != STORE_MAGIC {
        return Err(CheckpointError::Corrupt {
            offset: 0,
            what: "not a NeutronStar checkpoint store generation (bad magic)".into(),
        });
    }
    let stored_header_crc = u32::from_le_bytes(bytes[36..40].try_into().unwrap());
    let computed_header_crc = crc32(&bytes[..36]);
    if stored_header_crc != computed_header_crc {
        return Err(CheckpointError::CrcMismatch {
            offset: 0,
            expected: stored_header_crc,
            computed: computed_header_crc,
        });
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if schema != SCHEMA_VERSION {
        return Err(CheckpointError::Corrupt {
            offset: 8,
            what: format!("unsupported store schema {schema}"),
        });
    }
    let epoch = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let world = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let flags = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() < payload_len {
        return Err(CheckpointError::Io {
            offset: bytes.len() as u64,
            kind: io::ErrorKind::UnexpectedEof,
        });
    }
    if payload.len() > payload_len {
        return Err(CheckpointError::Corrupt {
            offset: 24,
            what: "trailing bytes after declared payload".into(),
        });
    }
    let stored_payload_crc = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
    let computed_payload_crc = crc32(payload);
    if stored_payload_crc != computed_payload_crc {
        return Err(CheckpointError::CrcMismatch {
            offset: HEADER_BYTES as u64,
            expected: stored_payload_crc,
            computed: computed_payload_crc,
        });
    }
    let mut r = SliceReader { bytes: payload, pos: 0 };
    // Re-validate structure even though the CRC passed — a writer bug must
    // not become a loader panic.
    checkpoint::load_typed(&mut r)?;
    let param_len = r.pos;
    let opt = if flags & FLAG_HAS_OPT != 0 {
        Some(decode_opt(&mut r, HEADER_BYTES as u64)?)
    } else {
        None
    };
    if r.pos != payload.len() {
        return Err(CheckpointError::Corrupt {
            offset: HEADER_BYTES as u64 + r.pos as u64,
            what: "trailing bytes after optimizer state".into(),
        });
    }
    Ok((Checkpoint::from_raw(epoch, payload[..param_len].to_vec(), opt), world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_tensor::ParamStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch directory under the OS temp dir (removed on drop).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "nts-store-{}-{tag}-{n}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("w", Tensor::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.125, -0.5, 4.0]));
        s.register("b", Tensor::from_vec(1, 3, vec![0.5, -0.5, 0.0]));
        s
    }

    fn sample_opt() -> AdamState {
        AdamState {
            t: 11,
            m: vec![Tensor::from_vec(2, 3, vec![0.1; 6]), Tensor::zeros(1, 3)],
            v: vec![Tensor::from_vec(2, 3, vec![0.2; 6]), Tensor::from_vec(1, 3, vec![0.3; 3])],
        }
    }

    fn assert_same_params(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.next_epoch, b.next_epoch);
        assert_eq!(a.raw_bytes(), b.raw_bytes());
    }

    #[test]
    fn save_load_roundtrips_params_and_opt() {
        let scratch = Scratch::new("roundtrip");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        let ckpt2 = Checkpoint::capture(2, &sample_store(), None);
        let ckpt4 = Checkpoint::capture(4, &sample_store(), Some(sample_opt()));
        let receipt = store.save(&ckpt2, 3).unwrap();
        assert!(receipt.bytes > HEADER_BYTES as u64);
        store.save(&ckpt4, 3).unwrap();

        let report = store.load_latest();
        assert_eq!(report.fallbacks, 0);
        assert_eq!(report.world, Some(3));
        let loaded = report.checkpoint.unwrap();
        assert_same_params(&loaded, &ckpt4);
        let (params, opt) = loaded.restore().unwrap();
        assert!(params.is_some());
        assert_eq!(opt, Some(sample_opt()));
    }

    #[test]
    fn retention_keeps_last_k_generations() {
        let scratch = Scratch::new("retention");
        let mut store = CheckpointStore::open(&scratch.0, 2).unwrap();
        for epoch in 1..=4 {
            let ckpt = Checkpoint::capture(epoch, &sample_store(), None);
            store.save(&ckpt, 2).unwrap();
        }
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 2, "{gens:?}");
        // Only the retained files remain on disk.
        let on_disk = fs::read_dir(&scratch.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| parse_gen_seq(&e.file_name().to_string_lossy()).is_some())
            .count();
        assert_eq!(on_disk, 2);
        assert_eq!(store.load_latest().checkpoint.unwrap().next_epoch, 4);
    }

    #[test]
    fn torn_newest_generation_falls_back_to_previous() {
        let scratch = Scratch::new("torn");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 3).unwrap();
        store.save(&Checkpoint::capture(4, &sample_store(), None), 3).unwrap();
        // Tear the newest generation mid-payload.
        let newest = store.generations().unwrap().pop().unwrap();
        let path = scratch.0.join(newest);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let report = store.load_latest();
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.checkpoint.unwrap().next_epoch, 2);
    }

    #[test]
    fn every_generation_damaged_reports_all_fallbacks() {
        let scratch = Scratch::new("allbad");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 3).unwrap();
        store.save(&Checkpoint::capture(4, &sample_store(), None), 3).unwrap();
        for name in store.generations().unwrap() {
            let path = scratch.0.join(name);
            let mut bytes = fs::read(&path).unwrap();
            bytes[HEADER_BYTES + 3] ^= 0x40;
            fs::write(&path, &bytes).unwrap();
        }
        let report = store.load_latest();
        assert!(report.checkpoint.is_none());
        assert_eq!(report.fallbacks, 2);
    }

    #[test]
    fn any_single_bit_flip_in_a_generation_is_detected() {
        let scratch = Scratch::new("bitflip");
        let mut store = CheckpointStore::open(&scratch.0, 1).unwrap();
        store.save(&Checkpoint::capture(3, &sample_store(), Some(sample_opt())), 2).unwrap();
        let name = store.generations().unwrap().pop().unwrap();
        let path = scratch.0.join(name);
        let clean = fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut damaged = clean.clone();
                damaged[byte] ^= 1 << bit;
                fs::write(&path, &damaged).unwrap();
                assert!(
                    read_generation(&path).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
        // And any truncation.
        for len in 0..clean.len() {
            fs::write(&path, &clean[..len]).unwrap();
            assert!(read_generation(&path).is_err(), "truncation to {len} went undetected");
        }
        fs::write(&path, &clean).unwrap();
        assert!(read_generation(&path).is_ok());
    }

    #[test]
    fn damage_latest_flips_exactly_one_detectable_bit() {
        let scratch = Scratch::new("damage");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        assert!(!store.damage_latest(7).unwrap(), "empty store has nothing to damage");
        store.save(&Checkpoint::capture(2, &sample_store(), None), 3).unwrap();
        assert!(store.damage_latest(0xDEAD_BEEF).unwrap());
        let report = store.load_latest();
        assert!(report.checkpoint.is_none());
        assert_eq!(report.fallbacks, 1);
    }

    #[test]
    fn reopening_resumes_generation_numbering() {
        let scratch = Scratch::new("reopen");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 3).unwrap();
        drop(store);
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(4, &sample_store(), None), 3).unwrap();
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 2);
        assert!(gens[0] < gens[1], "{gens:?}");
        assert_eq!(store.load_latest().checkpoint.unwrap().next_epoch, 4);
    }

    #[test]
    fn crc32_agrees_across_crates() {
        // ns-net and ns-tensor each carry their own CRC table (the crates
        // do not depend on each other); pin them together here.
        for sample in [
            b"123456789".as_slice(),
            b"".as_slice(),
            b"NeutronStar hybrid dependency management".as_slice(),
            &[0u8; 64],
        ] {
            assert_eq!(ns_net::crc32(sample), crc32(sample));
        }
    }

    #[test]
    fn keep_last_one_retains_only_the_newest_generation() {
        let scratch = Scratch::new("keep1");
        let mut store = CheckpointStore::open(&scratch.0, 1).unwrap();
        for epoch in 1..=3 {
            store.save(&Checkpoint::capture(epoch, &sample_store(), None), 2).unwrap();
        }
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 1, "{gens:?}");
        let on_disk = fs::read_dir(&scratch.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| parse_gen_seq(&e.file_name().to_string_lossy()).is_some())
            .count();
        assert_eq!(on_disk, 1, "older generations must be pruned from disk");
        assert_eq!(store.load_latest().checkpoint.unwrap().next_epoch, 3);
    }

    #[test]
    fn missing_manifest_with_generations_present_loads_via_scan() {
        let scratch = Scratch::new("nomanifest");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 2).unwrap();
        store.save(&Checkpoint::capture(4, &sample_store(), None), 2).unwrap();
        fs::remove_file(scratch.0.join(MANIFEST)).unwrap();
        let report = store.load_latest();
        assert_eq!(report.fallbacks, 0);
        assert_eq!(report.checkpoint.unwrap().next_epoch, 4);
    }

    #[test]
    fn corrupt_manifest_with_generations_present_loads_via_scan() {
        let scratch = Scratch::new("badmanifest");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 2).unwrap();
        store.save(&Checkpoint::capture(4, &sample_store(), None), 2).unwrap();
        fs::write(scratch.0.join(MANIFEST), "garbage\n\u{fffd}\u{fffd}\nnot-a-gen\n")
            .unwrap();
        let report = store.load_latest();
        assert_eq!(report.fallbacks, 0, "scan rescue must not burn fallbacks");
        assert_eq!(report.checkpoint.unwrap().next_epoch, 4);
    }

    #[test]
    fn empty_store_exhausts_the_chain_with_a_typed_error() {
        let scratch = Scratch::new("emptystrict");
        let store = CheckpointStore::open(&scratch.0, 3).unwrap();
        let err = store.load_latest_strict().unwrap_err();
        assert_eq!(err.generations, 0);
        assert_eq!(err.fallbacks, 0);
        assert!(err.to_string().contains("no generations"), "{err}");
    }

    #[test]
    fn all_damaged_store_exhausts_the_chain_with_a_typed_error() {
        let scratch = Scratch::new("alldamagedstrict");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 2).unwrap();
        store.save(&Checkpoint::capture(4, &sample_store(), None), 2).unwrap();
        for name in store.generations().unwrap() {
            let path = scratch.0.join(name);
            let mut bytes = fs::read(&path).unwrap();
            bytes[HEADER_BYTES + 1] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
        }
        let err = store.load_latest_strict().unwrap_err();
        assert_eq!(err.generations, 2);
        assert_eq!(err.fallbacks, 2);
        assert!(err.to_string().contains("exhausted"), "{err}");
    }

    #[test]
    fn enospc_squeezes_retention_and_lands_the_retry() {
        let scratch = Scratch::new("enospc");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(1, &sample_store(), None), 2).unwrap();
        store.save(&Checkpoint::capture(2, &sample_store(), None), 2).unwrap();
        store.set_disk_fate(true, 1.0);
        let out = store.save_degrading(&Checkpoint::capture(3, &sample_store(), None), 2)
            .unwrap();
        assert!(out.receipt.is_some(), "retry after squeeze must land");
        assert_eq!(out.enospc_hits, 1);
        assert!(out.squeezed);
        assert!(!out.deferred);
        assert!(store.is_squeezed());
        assert_eq!(store.keep_depth(), 1);
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 1, "squeeze prunes to keep-last-1: {gens:?}");
        assert_eq!(store.load_latest().checkpoint.unwrap().next_epoch, 3);

        // Healed window: subsequent saves stay at keep-last-1 but succeed
        // first try.
        store.set_disk_fate(false, 1.0);
        let out = store.save_degrading(&Checkpoint::capture(4, &sample_store(), None), 2)
            .unwrap();
        assert_eq!(out.enospc_hits, 0);
        assert!(!out.squeezed, "squeeze is reported only when it happens");
        assert_eq!(store.generations().unwrap().len(), 1);
    }

    #[test]
    fn hard_disk_full_defers_the_generation_without_erroring() {
        let scratch = Scratch::new("harddisk");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.save(&Checkpoint::capture(1, &sample_store(), None), 2).unwrap();
        store.set_disk_fate_hard(true);
        let out = store.save_degrading(&Checkpoint::capture(2, &sample_store(), None), 2)
            .unwrap();
        assert!(out.receipt.is_none());
        assert!(out.deferred);
        assert_eq!(out.enospc_hits, 2, "first try + post-squeeze retry both hit");
        // The generation from before the window is still loadable.
        assert_eq!(store.load_latest().checkpoint.unwrap().next_epoch, 1);
        // Heal, retry at the next cadence: the deferred save lands.
        store.set_disk_fate_hard(false);
        let out = store.save_degrading(&Checkpoint::capture(2, &sample_store(), None), 2)
            .unwrap();
        assert!(out.receipt.is_some());
        assert_eq!(store.load_latest().checkpoint.unwrap().next_epoch, 2);
    }

    #[test]
    fn slow_disk_charges_a_bounded_penalty() {
        let scratch = Scratch::new("slowdisk");
        let mut store = CheckpointStore::open(&scratch.0, 3).unwrap();
        store.set_disk_fate(false, 3.0);
        let receipt =
            store.save(&Checkpoint::capture(1, &sample_store(), None), 2).unwrap();
        assert!(
            receipt.slow_penalty_ns >= receipt.fsync_ns,
            "3x slowdown must charge at least 2x the fsync time \
             (penalty {} vs fsync {})",
            receipt.slow_penalty_ns,
            receipt.fsync_ns
        );
    }

    #[test]
    fn config_defaults_keep_durability_off() {
        let cfg = StoreConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.keep, 3);
        let cfg = StoreConfig::at("/tmp/x").keep(0);
        assert!(cfg.enabled());
        assert_eq!(cfg.keep, 1, "keep clamps to at least one generation");
    }
}

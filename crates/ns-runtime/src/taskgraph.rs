//! Compiles a dependency plan into the per-epoch task DAG the cluster
//! simulator schedules.
//!
//! The DAG encodes the execution schedule of §4.3:
//!
//! * **source-chunked communication** — each layer's sends carry exactly
//!   the rows the receiver's dependency plan demands, one message per
//!   (sender, receiver) pair (or, in ROC-like mode, the sender's whole
//!   partition block);
//! * **ring scheduling** — worker `i` emits its chunk sends in the order
//!   `i+1, i+2, …` so no two senders target one receiver in the same slot
//!   (disabled: everyone sends toward worker 0 first, causing ingress
//!   incast);
//! * **communication/computation overlap** — the compute work of each
//!   received chunk depends only on *that* chunk's transfer, so DepCache
//!   chunks ('R' slots in Fig. 8) and already-arrived chunks execute while
//!   later chunks are in flight (disabled: a barrier separates each
//!   layer's communication from all of its computation);
//! * **ring all-reduce** of parameter gradients, `2(m-1)` rounds of
//!   `bytes/m` messages.

use ns_net::sim::TaskId;
use ns_net::{ExecOptions, TaskGraph};

use crate::cost::LayerFlops;
use crate::exec::SyncMode;
use crate::plan::WorkerPlan;

/// Task-graph construction options.
#[derive(Debug, Clone)]
pub struct TgConfig {
    /// Ring / lock-free / overlap toggles (lock-free only affects the
    /// simulator's cost table, but is carried here for completeness).
    pub opts: ExecOptions,
    /// ROC-like communication: each worker ships its *entire* partition's
    /// representations to every peer instead of the per-receiver chunks
    /// ("the ROC worker does not differentiate the output messages with
    /// various destinations and sends the whole messages block to all
    /// workers", §5.3).
    pub broadcast_full_partition: bool,
    /// Gradient synchronization pattern.
    pub sync: SyncMode,
}

impl Default for TgConfig {
    fn default() -> Self {
        Self {
            opts: ExecOptions::all(),
            broadcast_full_partition: false,
            sync: SyncMode::AllReduce,
        }
    }
}

fn row_bytes(dim: usize) -> u64 {
    (4 * dim + 4) as u64
}

/// Per-(worker, layer) classification of edges by the origin of their
/// source row: `counts[0]` = locally available rows, `counts[j + 1]` =
/// rows received from peer `j`.
fn edge_origin_counts(plan: &WorkerPlan, lz: usize, m: usize) -> Vec<u64> {
    let lp = &plan.layers[lz];
    let mut origin = vec![0u16; lp.input_ids.len()];
    for (j, rows) in lp.recv_rows.iter().enumerate() {
        for &r in rows {
            origin[r as usize] = (j + 1) as u16;
        }
    }
    let mut counts = vec![0u64; m + 1];
    for &s in lp.topo.edge_src.iter() {
        counts[origin[s as usize] as usize] += 1;
    }
    counts
}

/// Builds the full task DAG for one training epoch.
///
/// `dims` are the model's layer widths; `flops[lz]` the probed per-unit
/// FLOP factors; `param_bytes` the size of one parameter-gradient
/// all-reduce payload.
pub fn build_epoch_task_graph(
    plans: &[WorkerPlan],
    dims: &[usize],
    flops: &[LayerFlops],
    param_bytes: u64,
    cfg: &TgConfig,
) -> TaskGraph {
    let m = plans.len();
    let num_layers = plans[0].layers.len();
    let mut g = TaskGraph::new();

    // fwd_done[i] = task producing worker i's current layer output.
    let mut layer_done: Vec<Option<TaskId>> = vec![None; m];
    // Keep per-layer send tasks so receivers can depend on them.
    let mut fwd_outputs: Vec<Option<TaskId>> = vec![None; m];

    for lz in 0..num_layers {
        let d_in = dims[lz];
        // 1. Sends (master -> mirror row sync), in ring or naive order.
        let mut send_task = vec![vec![None::<TaskId>; m]; m];
        for i in 0..m {
            let deps = layer_done[i].map(|t| vec![t]).unwrap_or_default();
            let order: Vec<usize> = if cfg.opts.ring {
                (1..m).map(|k| (i + k) % m).collect()
            } else {
                (0..m).filter(|&j| j != i).collect()
            };
            for j in order {
                let bytes = if cfg.broadcast_full_partition {
                    // Whole-block transfer whenever anything at all moves
                    // this layer.
                    if plans[i].layers[lz].send_ids.iter().all(Vec::is_empty) {
                        continue;
                    }
                    plans[i].owned.len() as u64 * row_bytes(d_in)
                } else {
                    let rows = plans[i].layers[lz].send_ids[j].len();
                    if rows == 0 {
                        continue;
                    }
                    rows as u64 * row_bytes(d_in)
                };
                send_task[i][j] = Some(g.send(i, j, bytes, deps.clone()));
            }
        }

        // 2. Per-chunk compute, then the vertex function.
        for i in 0..m {
            let lp = &plans[i].layers[lz];
            let counts = edge_origin_counts(&plans[i], lz, m);
            let base_dep = layer_done[i].map(|t| vec![t]).unwrap_or_default();

            // Without overlap: one barrier after all of this worker's
            // incoming transfers; every chunk waits for it.
            let comm_barrier = if cfg.opts.overlap {
                None
            } else {
                let incoming: Vec<TaskId> = (0..m)
                    .filter_map(|j| send_task[j][i])
                    .chain(base_dep.iter().copied())
                    .collect();
                Some(g.barrier(incoming))
            };

            let mut chunks = Vec::new();
            // Local chunk (DepCache rows and own-partition rows).
            if counts[0] > 0 {
                let deps = match comm_barrier {
                    Some(b) => vec![b],
                    None => base_dep.clone(),
                };
                let f = (counts[0] as f64 * flops[lz].edge_fwd) as u64;
                chunks.push(g.compute_sparse(i, f.max(1), deps));
            }
            // One chunk per sending peer.
            for j in 0..m {
                if counts[j + 1] == 0 {
                    continue;
                }
                let deps = match comm_barrier {
                    Some(b) => vec![b],
                    None => send_task[j][i].map(|t| vec![t]).unwrap_or_default(),
                };
                let f = (counts[j + 1] as f64 * flops[lz].edge_fwd) as u64;
                chunks.push(g.compute_sparse(i, f.max(1), deps));
            }
            let vf = (lp.compute.len() as f64 * flops[lz].vertex_fwd) as u64;
            let vertex = g.compute(i, vf.max(1), chunks);
            fwd_outputs[i] = Some(vertex);
        }
        layer_done.copy_from_slice(&fwd_outputs);
    }

    // Prediction head (loss forward + gradient seed).
    let mut bwd_seed: Vec<TaskId> = (0..m)
        .map(|i| {
            let owned = plans[i].owned.len() as u64;
            let f = owned * (dims[num_layers] as u64) * 8;
            g.compute(i, f.max(1), vec![layer_done[i].unwrap()])
        })
        .collect();

    // Backward sweep (compute-synchronize).
    for lz in (0..num_layers).rev() {
        let d_in = dims[lz];
        let mut grad_send = vec![vec![None::<TaskId>; m]; m];
        let mut local_chunk: Vec<Option<TaskId>> = vec![None; m];
        for i in 0..m {
            let lp = &plans[i].layers[lz];
            let counts = edge_origin_counts(&plans[i], lz, m);
            let vb = (lp.compute.len() as f64 * flops[lz].vertex_bwd) as u64;
            let vertex = g.compute(i, vb.max(1), vec![bwd_seed[i]]);
            if counts[0] > 0 {
                let f = (counts[0] as f64 * flops[lz].edge_bwd) as u64;
                local_chunk[i] = Some(g.compute_sparse(i, f.max(1), vec![vertex]));
            } else {
                local_chunk[i] = Some(vertex);
            }
            if lz > 0 {
                // Gradients of received rows return to their masters
                // (PostToDepNbr); feature gradients (lz == 0) are unused.
                let order: Vec<usize> = if cfg.opts.ring {
                    (1..m).map(|k| (i + k) % m).collect()
                } else {
                    (0..m).filter(|&j| j != i).collect()
                };
                for j in order {
                    let rows = if cfg.broadcast_full_partition {
                        if lp.recv_ids.iter().all(Vec::is_empty) {
                            continue;
                        }
                        lp.input_ids.len()
                    } else {
                        lp.recv_ids[j].len()
                    };
                    if rows == 0 {
                        continue;
                    }
                    let f = (counts[j + 1].max(1) as f64 * flops[lz].edge_bwd) as u64;
                    let chunk = g.compute_sparse(i, f.max(1), vec![vertex]);
                    let bytes = rows as u64 * row_bytes(d_in);
                    grad_send[i][j] = Some(g.send(i, j, bytes, vec![chunk]));
                }
            }
        }
        // Next (lower) layer's seed: local edge-backward plus every
        // incoming mirror gradient.
        for i in 0..m {
            let mut deps: Vec<TaskId> = vec![local_chunk[i].unwrap()];
            for j in 0..m {
                if let Some(t) = grad_send[j][i] {
                    deps.push(t);
                }
            }
            bwd_seed[i] = g.barrier(deps);
        }
    }

    // Gradient synchronization + optimizer step.
    let entry = g.barrier(bwd_seed.clone());
    let mut prev = entry;
    if m > 1 {
        match cfg.sync {
            SyncMode::AllReduce => {
                // Ring: 2(m-1) rounds of bytes/m chunks, no hotspot.
                let chunk_bytes = (param_bytes / m as u64).max(1);
                for _round in 0..2 * (m - 1) {
                    let sends: Vec<TaskId> = (0..m)
                        .map(|i| g.send(i, (i + 1) % m, chunk_bytes, vec![prev]))
                        .collect();
                    prev = g.barrier(sends);
                }
            }
            SyncMode::ParameterServer => {
                // Push phase: everyone funnels full gradients into the
                // server (worker 0) — incast by construction.
                let pushes: Vec<TaskId> = (1..m)
                    .map(|i| g.send(i, 0, param_bytes.max(1), vec![prev]))
                    .collect();
                let reduced = g.barrier(pushes);
                let apply = g.compute(0, param_bytes.max(1), vec![reduced]);
                // Pull phase: the server broadcasts the reduced gradients.
                let pulls: Vec<TaskId> = (1..m)
                    .map(|j| g.send(0, j, param_bytes.max(1), vec![apply]))
                    .collect();
                prev = g.barrier(pulls);
            }
        }
    }
    for i in 0..m {
        g.compute(i, param_bytes.max(1), vec![prev]);
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::probe;
    use crate::plan::{build_plans, DepDecision};
    use ns_gnn::{GnnModel, ModelKind};
    use ns_graph::generate::rmat;
    use ns_graph::{CsrGraph, Partitioner};
    use ns_net::sim::simulate;
    use ns_net::ClusterSpec;

    struct Fixture {
        plans_cache: Vec<WorkerPlan>,
        plans_comm: Vec<WorkerPlan>,
        dims: Vec<usize>,
        flops: Vec<LayerFlops>,
        param_bytes: u64,
        cluster: ClusterSpec,
    }

    fn fixture() -> Fixture {
        let edges = rmat(1000, 8000, (0.55, 0.2, 0.2), 31);
        let g = CsrGraph::from_edges(1000, &edges, true);
        let p = Partitioner::Chunk.partition(&g, 4);
        let cluster = ClusterSpec::aliyun_ecs(4);
        let model = GnnModel::two_layer(ModelKind::Gcn, 64, 32, 8, 1);
        let costs = probe(&model, &cluster);
        Fixture {
            plans_cache: build_plans(&g, &p, 2, &DepDecision::CacheAll).unwrap(),
            plans_comm: build_plans(&g, &p, 2, &DepDecision::CommAll).unwrap(),
            dims: model.dims().to_vec(),
            flops: costs.flops.clone(),
            param_bytes: model.gradient_bytes(),
            cluster,
        }
    }

    #[test]
    fn depcache_graph_moves_only_allreduce_bytes() {
        let f = fixture();
        let tg = build_epoch_task_graph(
            &f.plans_cache,
            &f.dims,
            &f.flops,
            f.param_bytes,
            &TgConfig::default(),
        );
        let allreduce = 2 * 3 * 4 * (f.param_bytes / 4).max(1);
        assert_eq!(tg.total_bytes(), allreduce);
    }

    #[test]
    fn depcomm_graph_moves_dependency_bytes() {
        let f = fixture();
        let tg = build_epoch_task_graph(
            &f.plans_comm,
            &f.dims,
            &f.flops,
            f.param_bytes,
            &TgConfig::default(),
        );
        let tg_cache = build_epoch_task_graph(
            &f.plans_cache,
            &f.dims,
            &f.flops,
            f.param_bytes,
            &TgConfig::default(),
        );
        assert!(tg.total_bytes() > tg_cache.total_bytes());
        // But DepCache burns more FLOPs (replicas).
        assert!(tg_cache.total_flops() > tg.total_flops());
    }

    #[test]
    fn simulated_epochs_complete_for_both_engines() {
        let f = fixture();
        for plans in [&f.plans_cache, &f.plans_comm] {
            let tg = build_epoch_task_graph(
                plans,
                &f.dims,
                &f.flops,
                f.param_bytes,
                &TgConfig::default(),
            );
            let rep = simulate(&tg, &f.cluster, &ExecOptions::all());
            assert!(rep.makespan > 0.0);
        }
    }

    #[test]
    fn overlap_speeds_up_depcomm() {
        let f = fixture();
        let mk = |overlap: bool| {
            let cfg = TgConfig {
                opts: ExecOptions { overlap, ..ExecOptions::all() },
                ..TgConfig::default()
            };
            let tg = build_epoch_task_graph(
                &f.plans_comm,
                &f.dims,
                &f.flops,
                f.param_bytes,
                &cfg,
            );
            simulate(&tg, &f.cluster, &ExecOptions::all()).makespan
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            with < without,
            "overlap {with} should beat barrier {without}"
        );
    }

    #[test]
    fn ring_order_beats_naive_order_under_incast() {
        let f = fixture();
        let mk = |ring: bool| {
            let opts = ExecOptions { ring, ..ExecOptions::all() };
            let tg = build_epoch_task_graph(
                &f.plans_comm,
                &f.dims,
                &f.flops,
                f.param_bytes,
                &TgConfig { opts, ..TgConfig::default() },
            );
            simulate(&tg, &f.cluster, &opts).makespan
        };
        let ring = mk(true);
        let naive = mk(false);
        assert!(ring <= naive, "ring {ring} vs naive {naive}");
    }

    #[test]
    fn broadcast_mode_moves_more_bytes() {
        let f = fixture();
        let chunked = build_epoch_task_graph(
            &f.plans_comm,
            &f.dims,
            &f.flops,
            f.param_bytes,
            &TgConfig::default(),
        );
        let broadcast = build_epoch_task_graph(
            &f.plans_comm,
            &f.dims,
            &f.flops,
            f.param_bytes,
            &TgConfig { broadcast_full_partition: true, ..TgConfig::default() },
        );
        assert!(broadcast.total_bytes() > chunked.total_bytes());
    }

    #[test]
    fn parameter_server_sync_is_slower_than_ring_at_scale() {
        let f = fixture();
        // Bandwidth regime (large model): ring's per-round chunks spread
        // across all NICs; PS funnels everything through the server. (For
        // tiny latency-bound payloads PS can win — fewer rounds.)
        let big_model_bytes = f.param_bytes * 1000;
        let ring = build_epoch_task_graph(
            &f.plans_cache,
            &f.dims,
            &f.flops,
            big_model_bytes,
            &TgConfig::default(),
        );
        let ps = build_epoch_task_graph(
            &f.plans_cache,
            &f.dims,
            &f.flops,
            big_model_bytes,
            &TgConfig { sync: crate::exec::SyncMode::ParameterServer, ..TgConfig::default() },
        );
        // Total bytes match (2(m-1)·B both ways), but PS serializes all
        // of it through the server's NIC.
        assert_eq!(ps.total_bytes(), ring.total_bytes());
        let tr = simulate(&ring, &f.cluster, &ExecOptions::all()).makespan;
        let tp = simulate(&ps, &f.cluster, &ExecOptions::all()).makespan;
        assert!(tp > tr, "ps {tp} should exceed ring {tr}");
    }

    #[test]
    fn lockfree_option_reduces_simulated_time_for_comm_heavy_graph() {
        let f = fixture();
        let tg = build_epoch_task_graph(
            &f.plans_comm,
            &f.dims,
            &f.flops,
            f.param_bytes,
            &TgConfig::default(),
        );
        let fast = simulate(&tg, &f.cluster, &ExecOptions::all()).makespan;
        let slow = simulate(
            &tg,
            &f.cluster,
            &ExecOptions { lock_free: false, ..ExecOptions::all() },
        )
        .makespan;
        assert!(slow >= fast);
    }
}

//! Hybrid dependency partitioning — Algorithm 4.
//!
//! For every worker and layer, the remote dependency set `D_i^l` is split
//! into a cached subset `R_i^l` and a communicated subset `C_i^l` by a
//! greedy pass: dependencies are examined in ascending order of their
//! redundant-computation cost `t_r^l(u)` (Eq. 1, measured over the
//! dependency subtree rooted at `u`, excluding vertices the worker owns
//! or has already replicated — the running `V_rep` set realizes the
//! paper's μ overlap trim), and cached whenever `t_r^l(u) < t_c^l(u)`
//! (Eq. 2), subject to the device-memory budget `S` (Eq. 3). Layers are
//! processed bottom-up (l = 1..L) exactly as in the paper, so feature-
//! level dependencies — whose redundant-compute cost is zero — are cached
//! first and discount the subtrees of higher layers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use rustc_hash::FxHashSet;

use ns_graph::{CsrGraph, Partitioning};

use crate::cost::CostFactors;
use crate::error::{Result, RuntimeError};
use crate::plan::DepDecision;

/// Hybrid-engine configuration.
#[derive(Debug, Clone, Default)]
pub struct HybridConfig {
    /// Memory budget `S` per worker; defaults to the modeled device
    /// memory.
    pub memory_budget_bytes: Option<u64>,
    /// Fig. 11's manual knob: force this fraction of each layer's
    /// dependencies (the most cache-efficient ones first) to be cached,
    /// bypassing the cost comparison. `Some(0.0)` ≈ DepComm,
    /// `Some(1.0)` ≈ DepCache. Exceeding memory is an error in this mode
    /// (the paper's "caching all dependencies can even result in an
    /// out-of-memory error").
    pub ratio_override: Option<f64>,
    /// Measured per-owner communication multipliers, indexed by the
    /// worker that *owns* a dependency: fetching `u` costs
    /// `T_c * peer_comm_mult[owner(u)]`. The measured-cost replanner
    /// derives these from per-peer receive-wait counters, so a straggling
    /// peer's dependencies become expensive to communicate and shift
    /// toward caching. `None` (the default) means all ones.
    pub peer_comm_mult: Option<Vec<f64>>,
}

/// Outcome statistics of the dependency partitioning.
#[derive(Debug, Clone)]
pub struct HybridInfo {
    /// Cached dependencies per layer, summed over workers.
    pub cached_per_layer: Vec<usize>,
    /// Communicated dependencies per layer, summed over workers.
    pub comm_per_layer: Vec<usize>,
    /// Subtree vertices/edges visited while measuring costs — the
    /// preprocessing work (Table 3), convertible to seconds at a nominal
    /// CPU rate.
    pub preprocessing_ops: u64,
    /// Wall-clock seconds the partitioning took on this machine.
    pub wall_s: f64,
    /// Whether any worker hit the memory budget and stopped caching early.
    pub budget_exhausted: bool,
}

impl HybridInfo {
    /// Total cached dependencies.
    pub fn total_cached(&self) -> usize {
        self.cached_per_layer.iter().sum()
    }

    /// Total communicated dependencies.
    pub fn total_comm(&self) -> usize {
        self.comm_per_layer.iter().sum()
    }

    /// Fraction of dependencies cached.
    pub fn cached_fraction(&self) -> f64 {
        let total = self.total_cached() + self.total_comm();
        if total == 0 {
            0.0
        } else {
            self.total_cached() as f64 / total as f64
        }
    }

    /// Preprocessing time modeled at `ops_per_second` (a nominal CPU
    /// traversal rate; the partitioning is simple pointer chasing).
    pub fn preprocessing_seconds(&self, ops_per_second: f64) -> f64 {
        self.preprocessing_ops as f64 / ops_per_second
    }
}

/// f64 with a total order, for the priority queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Of64(f64);
impl Eq for Of64 {}
impl PartialOrd for Of64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Of64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct WorkerState<'a> {
    graph: &'a CsrGraph,
    owned: FxHashSet<u32>,
    /// `rep[k]`: vertices whose level-`k` representation (`k = 0` =>
    /// features) is locally materialized — the paper's `V_rep`, layered.
    rep: Vec<FxHashSet<u32>>,
    dims: &'a [usize],
    costs: &'a CostFactors,
    ops: u64,
}

impl WorkerState<'_> {
    /// Measures `t_r^{lz+1}(u)`: the redundant-compute seconds of caching
    /// dependency `u` of layer `lz`'s inputs (u's `h^{(lz)}` computed
    /// locally), excluding already-available vertices.
    fn measure(&mut self, u: u32, lz: usize) -> f64 {
        if lz == 0 {
            return 0.0; // features need no compute (Eq. 1 sum is empty).
        }
        let mut cost = 0.0f64;
        let mut frontier = vec![u];
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut level = lz; // h^{level} being produced
        if self.owned.contains(&u) || self.rep[lz].contains(&u) {
            return 0.0;
        }
        while level >= 1 && !frontier.is_empty() {
            let mut next = Vec::new();
            for &w in &frontier {
                // Vertex compute of h^{level}_w runs layer index level-1.
                cost += self.costs.t_v[level - 1];
                self.ops += 1;
                for &x in self.graph.in_neighbors(w) {
                    cost += self.costs.t_e[level - 1];
                    self.ops += 1;
                    if level > 1
                        && !self.owned.contains(&x)
                        && !self.rep[level - 1].contains(&x)
                        && seen.insert(x)
                    {
                        next.push(x);
                    }
                }
            }
            frontier = next;
            level -= 1;
        }
        cost
    }

    /// Commits the caching of `u` at layer `lz`: adds its subtree to the
    /// replica sets and returns `(added_bytes, added: Vec<(level, v)>)`
    /// for potential rollback.
    fn cache(&mut self, u: u32, lz: usize) -> (u64, Vec<(usize, u32)>) {
        let mut bytes = 0u64;
        let mut added = Vec::new();
        let mut add = |rep: &mut Vec<FxHashSet<u32>>, level: usize, v: u32, dims: &[usize]| -> u64 {
            if rep[level].insert(v) {
                added.push((level, v));
                dims[level] as u64 * 4 + 8
            } else {
                0
            }
        };
        if !self.owned.contains(&u) {
            bytes += add(&mut self.rep, lz, u, self.dims);
        }
        if lz >= 1 {
            let mut frontier = vec![u];
            let mut level = lz;
            while level >= 1 && !frontier.is_empty() {
                let mut next = Vec::new();
                for &w in &frontier {
                    for &x in self.graph.in_neighbors(w) {
                        bytes += 8; // replayed edge structure
                        if self.owned.contains(&x) {
                            continue;
                        }
                        let lower = level - 1;
                        let b = add(&mut self.rep, lower, x, self.dims);
                        if b > 0 {
                            bytes += b;
                            if lower >= 1 {
                                next.push(x);
                            }
                        }
                    }
                }
                frontier = next;
                level -= 1;
            }
        }
        (bytes, added)
    }

    fn rollback(&mut self, added: &[(usize, u32)]) {
        for &(level, v) in added {
            self.rep[level].remove(&v);
        }
    }
}

/// Runs Algorithm 4 for every worker and returns the dependency decision
/// plus statistics.
///
/// `scale` is the dataset's materialization scale: the memory budget is
/// enforced on the working set *projected to full scale* (see
/// [`crate::memory`]).
#[allow(clippy::too_many_arguments)]
pub fn partition_dependencies(
    graph: &CsrGraph,
    part: &Partitioning,
    dims: &[usize],
    costs: &CostFactors,
    scale: f64,
    device_mem_bytes: u64,
    cfg: &HybridConfig,
) -> Result<(DepDecision, HybridInfo)> {
    let start = Instant::now();
    let m = part.num_parts();
    let num_layers = dims.len() - 1;
    let budget = cfg.memory_budget_bytes.unwrap_or(device_mem_bytes);

    // Per-owner communication multiplier (measured feedback): fetching a
    // dependency from a slow peer costs proportionally more.
    let peer_mult = |u: u32| -> f64 {
        cfg.peer_comm_mult
            .as_ref()
            .map_or(1.0, |mults| mults.get(part.owner(u)).copied().unwrap_or(1.0))
    };

    let mut sets: Vec<Vec<FxHashSet<u32>>> = vec![vec![FxHashSet::default(); num_layers]; m];
    let mut cached_per_layer = vec![0usize; num_layers];
    let mut comm_per_layer = vec![0usize; num_layers];
    let mut total_ops = 0u64;
    let mut budget_exhausted = false;

    let sum_dims: u64 = dims.iter().map(|&d| d as u64).sum();

    for i in 0..m {
        let owned_vec = part.part_vertices(i);
        let owned: FxHashSet<u32> = owned_vec.iter().copied().collect();
        // Baseline working set (owned activations and edges), projected.
        let owned_edges: usize = owned_vec.iter().map(|&v| graph.in_degree(v)).sum();
        let base_bytes = owned_vec.len() as u64 * sum_dims * 8 + owned_edges as u64 * 16;
        let mut cache_bytes = 0u64;

        // Dependency sets from the full closure (paper's D_i^l):
        // inputs of layer lz under full caching are V_i^{lz}.
        let closure = ns_graph::khop::khop_in_closure(graph, &owned_vec, num_layers);
        let mut state = WorkerState {
            graph,
            owned,
            rep: vec![FxHashSet::default(); num_layers],
            dims,
            costs,
            ops: 0,
        };

        'layers: for lz in 0..num_layers {
            // V_i^{lz} = closure.layers[L - lz].
            let deps: Vec<u32> = closure.layers[num_layers - lz]
                .iter()
                .copied()
                .filter(|u| !state.owned.contains(u))
                .collect();
            let t_c = costs.t_c[lz];

            if let Some(ratio) = cfg.ratio_override {
                // Fig. 11 mode: cache the cheapest `ratio` fraction.
                let mut measured: Vec<(f64, u32)> =
                    deps.iter().map(|&u| (state.measure(u, lz), u)).collect();
                measured.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let take = (ratio * deps.len() as f64).round() as usize;
                for &(_, u) in measured.iter().take(take) {
                    let (bytes, _) = state.cache(u, lz);
                    cache_bytes += bytes;
                    sets[i][lz].insert(u);
                    cached_per_layer[lz] += 1;
                    let projected = ((base_bytes + cache_bytes) as f64 / scale) as u64;
                    if projected > budget {
                        return Err(RuntimeError::DeviceOom {
                            what: format!("Hybrid(ratio={ratio})"),
                            needed_bytes: projected,
                            limit_bytes: budget,
                        });
                    }
                }
                comm_per_layer[lz] += deps.len() - take.min(deps.len());
                continue;
            }

            // Algorithm 4 proper: greedy by ascending t_r with lazy
            // re-measurement.
            let mut queue: BinaryHeap<Reverse<(Of64, u32)>> = deps
                .iter()
                .map(|&u| Reverse((Of64(state.measure(u, lz)), u)))
                .collect();
            while let Some(Reverse((_, u))) = queue.pop() {
                let t_r = state.measure(u, lz); // re-measure excluding V_rep
                if t_r < t_c * peer_mult(u) {
                    let (bytes, added) = state.cache(u, lz);
                    let projected =
                        ((base_bytes + cache_bytes + bytes) as f64 / scale) as u64;
                    if projected > budget {
                        // Exclude u and stop caching (Alg. 4 lines 14-15).
                        state.rollback(&added);
                        comm_per_layer[lz] += 1 + queue.len();
                        budget_exhausted = true;
                        // Everything this worker has not decided yet is
                        // communicated (Alg. 4 returns immediately).
                        for rest in lz + 1..num_layers {
                            let d = closure.layers[num_layers - rest]
                                .iter()
                                .filter(|u| !state.owned.contains(u))
                                .count();
                            comm_per_layer[rest] += d;
                        }
                        break 'layers;
                    }
                    cache_bytes += bytes;
                    sets[i][lz].insert(u);
                    cached_per_layer[lz] += 1;
                } else {
                    comm_per_layer[lz] += 1;
                }
            }
        }
        total_ops += state.ops;
    }

    let info = HybridInfo {
        cached_per_layer,
        comm_per_layer,
        preprocessing_ops: total_ops,
        wall_s: start.elapsed().as_secs_f64(),
        budget_exhausted,
    };
    Ok((DepDecision::Sets(sets), info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::probe;
    use ns_gnn::{GnnModel, ModelKind};
    use ns_graph::generate::rmat;
    use ns_graph::Partitioner;
    use ns_net::ClusterSpec;

    fn setup() -> (CsrGraph, Partitioning, GnnModel, CostFactors, ClusterSpec) {
        let edges = rmat(800, 6000, (0.55, 0.2, 0.2), 23);
        let g = CsrGraph::from_edges(800, &edges, true);
        let p = Partitioner::Chunk.partition(&g, 4);
        let cluster = ClusterSpec::aliyun_ecs(4);
        let model = GnnModel::two_layer(ModelKind::Gcn, 64, 32, 8, 1);
        let costs = probe(&model, &cluster);
        (g, p, model, costs, cluster)
    }

    #[test]
    fn auto_mode_produces_disjoint_cover() {
        let (g, p, model, costs, cluster) = setup();
        let (decision, info) = partition_dependencies(
            &g,
            &p,
            model.dims(),
            &costs,
            1.0,
            cluster.device.mem_bytes,
            &HybridConfig::default(),
        )
        .unwrap();
        // Every dependency is either cached or communicated, never both.
        let DepDecision::Sets(sets) = &decision else { panic!() };
        for i in 0..4 {
            for lz in 0..2 {
                let owned: FxHashSet<u32> = p.part_vertices(i).into_iter().collect();
                for u in &sets[i][lz] {
                    assert!(!owned.contains(u), "cached an owned vertex");
                }
            }
        }
        let total = info.total_cached() + info.total_comm();
        assert!(total > 0);
        assert!(info.preprocessing_ops > 0);
    }

    #[test]
    fn layer0_feature_deps_are_always_cached() {
        // t_r = 0 at layer 0, so with ample memory everything is cached.
        let (g, p, model, costs, cluster) = setup();
        let (_, info) = partition_dependencies(
            &g,
            &p,
            model.dims(),
            &costs,
            1.0,
            cluster.device.mem_bytes,
            &HybridConfig::default(),
        )
        .unwrap();
        assert_eq!(info.comm_per_layer[0], 0, "layer-0 deps must all cache");
    }

    #[test]
    fn slow_network_caches_more_than_fast_network() {
        let (g, p, model, _, _) = setup();
        let ecs = ClusterSpec::aliyun_ecs(4);
        let ibv = ClusterSpec::ibv(4);
        let costs_slow = probe(&model, &ecs);
        let costs_fast = probe(&model, &ibv);
        let (_, slow) = partition_dependencies(
            &g, &p, model.dims(), &costs_slow, 1.0, ecs.device.mem_bytes,
            &HybridConfig::default(),
        )
        .unwrap();
        let (_, fast) = partition_dependencies(
            &g, &p, model.dims(), &costs_fast, 1.0, ibv.device.mem_bytes,
            &HybridConfig::default(),
        )
        .unwrap();
        assert!(
            slow.cached_fraction() >= fast.cached_fraction(),
            "slow {} vs fast {}",
            slow.cached_fraction(),
            fast.cached_fraction()
        );
    }

    #[test]
    fn ratio_override_hits_requested_fraction() {
        let (g, p, model, costs, cluster) = setup();
        for ratio in [0.0, 0.5, 1.0] {
            let (_, info) = partition_dependencies(
                &g,
                &p,
                model.dims(),
                &costs,
                1.0,
                cluster.device.mem_bytes,
                &HybridConfig { ratio_override: Some(ratio), ..Default::default() },
            )
            .unwrap();
            let f = info.cached_fraction();
            assert!(
                (f - ratio).abs() < 0.05,
                "requested {ratio}, got {f}"
            );
        }
    }

    #[test]
    fn tight_budget_stops_caching() {
        let (g, p, model, costs, _) = setup();
        let (_, info) = partition_dependencies(
            &g,
            &p,
            model.dims(),
            &costs,
            1.0,
            u64::MAX,
            &HybridConfig { memory_budget_bytes: Some(1), ..Default::default() },
        )
        .unwrap();
        assert!(info.budget_exhausted);
        assert_eq!(info.total_cached(), 0, "no cache fits a 1-byte budget");
    }

    #[test]
    fn ratio_mode_ooms_on_tiny_budget() {
        let (g, p, model, costs, _) = setup();
        let err = partition_dependencies(
            &g,
            &p,
            model.dims(),
            &costs,
            1.0,
            u64::MAX,
            &HybridConfig {
                memory_budget_bytes: Some(1),
                ratio_override: Some(1.0),
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(RuntimeError::DeviceOom { .. })));
    }

    #[test]
    fn slow_owner_multiplier_shifts_its_deps_toward_caching() {
        let (g, p, model, costs, cluster) = setup();
        let count_cached_from = |decision: &DepDecision, owner: usize| -> usize {
            let DepDecision::Sets(sets) = decision else { panic!() };
            sets.iter()
                .flatten()
                .flat_map(|s| s.iter())
                .filter(|&&u| p.owner(u) == owner)
                .count()
        };
        let (base, _) = partition_dependencies(
            &g, &p, model.dims(), &costs, 1.0, cluster.device.mem_bytes,
            &HybridConfig::default(),
        )
        .unwrap();
        let mut mults = vec![1.0; 4];
        mults[2] = 50.0;
        let (slow, _) = partition_dependencies(
            &g, &p, model.dims(), &costs, 1.0, cluster.device.mem_bytes,
            &HybridConfig { peer_comm_mult: Some(mults), ..Default::default() },
        )
        .unwrap();
        assert!(
            count_cached_from(&slow, 2) >= count_cached_from(&base, 2),
            "a slow owner's deps must not become less cached"
        );
        // Sanity: the all-ones multiplier is a no-op.
        let (ones, _) = partition_dependencies(
            &g, &p, model.dims(), &costs, 1.0, cluster.device.mem_bytes,
            &HybridConfig { peer_comm_mult: Some(vec![1.0; 4]), ..Default::default() },
        )
        .unwrap();
        for owner in 0..4 {
            assert_eq!(count_cached_from(&ones, owner), count_cached_from(&base, owner));
        }
    }

    #[test]
    fn measure_is_zero_for_already_replicated() {
        let (g, p, _, costs, _) = setup();
        let owned_vec = p.part_vertices(0);
        let mut state = WorkerState {
            graph: &g,
            owned: owned_vec.iter().copied().collect(),
            rep: vec![FxHashSet::default(); 2],
            dims: &[64, 32, 8],
            costs: &costs,
            ops: 0,
        };
        // Pick some remote vertex.
        let u = (0..800u32).find(|v| !state.owned.contains(v)).unwrap();
        let before = state.measure(u, 1);
        assert!(before > 0.0);
        state.cache(u, 1);
        assert_eq!(state.measure(u, 1), 0.0);
    }
}

//! High-level training entry point combining planning, simulation, and
//! real execution.

use std::time::{Duration, Instant};

use rustc_hash::FxHashSet;

use ns_gnn::GnnModel;
use ns_metrics::{span, MetricsRecorder, Phase, RunMetrics, COORDINATOR};
use ns_graph::{Dataset, Partitioner};
use ns_net::fault::FaultPlan;
use ns_net::membership::{self, MembershipEvent, MembershipView};
use ns_net::sim::{simulate, ResourceKind, SimReport};
use ns_net::{ClusterSpec, ExecOptions, Fabric};
use ns_tensor::ParamStore;

use crate::cost::{probe_threaded, CostFactors};
use crate::error::{FailureCause, Result, RuntimeError};
use crate::feedback::{self, DecisionDelta};
use crate::exec::{
    train_epochs_run, EpochMetrics, ExecConfig, OptimizerKind, RecvConfig, RunState, SyncMode,
    WatchdogConfig,
};
use crate::hybrid::{partition_dependencies, HybridConfig, HybridInfo};
use crate::memory::check_device_fit;
use crate::plan::{build_plans, DepDecision, WorkerPlan};
use crate::recovery::{Checkpoint, RecoveryConfig};
use crate::store::{CheckpointStore, StoreConfig};
use crate::taskgraph::{build_epoch_task_graph, TgConfig};

/// Which dependency-management engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Algorithm 2: cache all dependencies.
    DepCache,
    /// Algorithm 3: communicate all dependencies.
    DepComm,
    /// Algorithm 4: cost-based mix.
    Hybrid,
}

impl EngineKind {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::DepCache => "DepCache",
            EngineKind::DepComm => "DepComm",
            EngineKind::Hybrid => "Hybrid",
        }
    }
}

/// Full trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Dependency engine.
    pub engine: EngineKind,
    /// Graph partitioner.
    pub partitioner: Partitioner,
    /// Modeled cluster.
    pub cluster: ClusterSpec,
    /// System-optimization toggles (ring / lock-free / overlap).
    pub opts: ExecOptions,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Hybrid-engine knobs.
    pub hybrid: HybridConfig,
    /// ROC-like whole-partition broadcast (used by the baselines crate).
    pub broadcast_full_partition: bool,
    /// Gradient synchronization strategy.
    pub sync: SyncMode,
    /// Enforce the projected device-memory check (on by default; the
    /// engine-equivalence tests disable it to run any engine anywhere).
    pub enforce_memory: bool,
    /// Deterministic fault injection (empty by default).
    pub fault: FaultPlan,
    /// Checkpoint/rollback policy (disabled by default).
    pub recovery: RecoveryConfig,
    /// Durable checkpoint store (in-memory only by default). When a
    /// directory is configured, every checkpoint boundary also persists a
    /// verified on-disk generation, and rollbacks read the store — the
    /// honest process-restart path, including its CRC fallback chain.
    pub store: StoreConfig,
    /// Receive timeout/retry policy for the execution fabric.
    pub recv: RecvConfig,
    /// Intra-worker compute threads for the `ns-par` pool (0 = auto:
    /// keep the pool's current/default size). Applied in
    /// [`Trainer::prepare`], so the cost probe sees the same thread
    /// count the tensor kernels will run with.
    pub threads: usize,
    /// Liveness watchdog policy (`None` = no supervisor thread). Catches
    /// a worker that stops making epoch progress while holding no fabric
    /// operation — the failure mode receive timeouts can't see — and
    /// routes it through the same eviction/rejoin machinery as a crash.
    pub watchdog: Option<WatchdogConfig>,
}

impl TrainerConfig {
    /// A sensible default configuration for `engine` on `cluster`.
    pub fn new(engine: EngineKind, cluster: ClusterSpec) -> Self {
        Self {
            engine,
            partitioner: Partitioner::Chunk,
            cluster,
            opts: ExecOptions::all(),
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            hybrid: HybridConfig::default(),
            broadcast_full_partition: false,
            sync: SyncMode::AllReduce,
            enforce_memory: true,
            fault: FaultPlan::default(),
            recovery: RecoveryConfig::default(),
            store: StoreConfig::default(),
            recv: RecvConfig::default(),
            threads: 0,
            watchdog: None,
        }
    }
}

/// Per-epoch numeric results.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Cluster-wide mean training loss.
    pub loss: f64,
    /// Training accuracy.
    pub train_acc: f64,
    /// Validation accuracy.
    pub val_acc: f64,
    /// Test accuracy.
    pub test_acc: f64,
    /// Wall-clock seconds of the slowest worker (this machine).
    pub wall_s: f64,
}

/// Simulated timing of one epoch on the modeled cluster. Identical for
/// every epoch (GNN training repeats the same dependency pattern), so it
/// is computed once.
#[derive(Debug, Clone)]
pub struct SimSummary {
    /// Seconds per epoch on the modeled cluster.
    pub epoch_seconds: f64,
    /// Bytes moved per epoch (dependencies + gradients + all-reduce).
    pub bytes_per_epoch: u64,
    /// Compute FLOPs per epoch.
    pub flops_per_epoch: u64,
    /// Mean device (GPU) utilization over the epoch.
    pub device_utilization: f64,
    /// Mean egress-NIC utilization over the epoch.
    pub nic_utilization: f64,
    /// The full event-level report (busy intervals, ingress events) for
    /// utilization plots.
    pub report: SimReport,
}

/// Plan-level statistics.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Replica compute slots across workers (redundant computation).
    pub replica_slots: usize,
    /// Features prefetched beyond owned partitions.
    pub prefetched_features: usize,
    /// Dependency rows communicated per epoch (forward direction).
    pub comm_rows_per_epoch: usize,
    /// Hybrid partitioning statistics when the Hybrid engine ran.
    pub hybrid: Option<HybridInfo>,
}

/// One measured-cost adaptive replan performed at a checkpoint boundary.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// Checkpoint-boundary epoch the replan took effect at.
    pub epoch: usize,
    /// What triggered it (currently always `"drift"`: the measured
    /// receive-wait statistics crossed the replan thresholds).
    pub reason: &'static str,
    /// Global `T_c` multiplier applied (mean-wait drift vs the run's
    /// first chunk).
    pub comm_factor: f64,
    /// Per-peer communication multipliers fed into Algorithm 4.
    pub peer_mult: Vec<f64>,
    /// Per-owner dependencies that migrated from communicated (`C_i^l`)
    /// to cached (`R_i^l`) relative to the previous plan.
    pub moved_to_cached: Vec<usize>,
    /// Per-owner dependencies that migrated the other way.
    pub moved_to_comm: Vec<usize>,
    /// Engine the replan compiled (Hybrid unless it degraded).
    pub engine: String,
}

/// Everything a training run produces.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Engine that ran.
    pub engine: String,
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Number of workers.
    pub workers: usize,
    /// Per-epoch numeric results.
    pub epochs: Vec<EpochStats>,
    /// Simulated per-epoch timing.
    pub sim: SimSummary,
    /// Plan statistics.
    pub plan: PlanSummary,
    /// Trained parameters (identical on every worker after the final
    /// synchronized step). Checkpoint with `ns_tensor::checkpoint::save`.
    pub final_params: ns_tensor::ParamStore,
    /// Recovery events: `(failed_worker, rollback_epoch, engine_after)`
    /// for every rollback-and-resume the run performed. Empty for clean
    /// runs and for runs without recovery enabled.
    pub recoveries: Vec<(usize, usize, String)>,
    /// Membership transitions (failures, straggler evictions, rejoins),
    /// in order, attributed to original worker slots. Empty unless
    /// recovery is enabled.
    pub membership: Vec<MembershipEvent>,
    /// Measured-cost adaptive replans performed at checkpoint
    /// boundaries.
    pub replans: Vec<ReplanEvent>,
    /// Observability data for the whole run: one merged frame per worker
    /// (phase spans, layer graph/NN splits, fabric traffic meters), a
    /// coordinator frame with checkpoint/rollback activity, and the
    /// simulated-epoch busy timeline. Render with
    /// [`ns_metrics::summary_table`], [`ns_metrics::to_json`], or
    /// [`ns_metrics::to_chrome_trace`].
    pub metrics: RunMetrics,
}

impl TrainingReport {
    /// Simulated seconds to run `n` epochs.
    pub fn simulated_seconds(&self, n: usize) -> f64 {
        self.sim.epoch_seconds * n as f64
    }

    /// Final test accuracy.
    pub fn final_test_acc(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.test_acc)
    }

    /// Final loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |e| e.loss)
    }
}

/// Compiles per-worker plans for `engine` over `workers` partitions,
/// including the Hybrid budget-shrink loop and the device-memory check.
/// Factored out of [`Trainer::prepare`] so the recovery path can replan
/// on the surviving topology (and, if needed, on a degraded engine).
/// `peer_mult` is the measured per-owner communication multiplier fed
/// back by the adaptive replanner (`None` outside drift replans).
fn plan_engine(
    dataset: &Dataset,
    model: &GnnModel,
    cfg: &TrainerConfig,
    engine: EngineKind,
    workers: usize,
    costs: &CostFactors,
    peer_mult: Option<&[f64]>,
) -> Result<(Vec<WorkerPlan>, Option<HybridInfo>, DepDecision)> {
    if workers == 0 {
        return Err(RuntimeError::InvalidConfig("zero workers".into()));
    }
    let part = cfg.partitioner.partition(&dataset.graph, workers);
    let (mut decision, hybrid_info) = match engine {
        EngineKind::DepCache => (DepDecision::CacheAll, None),
        EngineKind::DepComm => (DepDecision::CommAll, None),
        EngineKind::Hybrid => {
            let budget = if cfg.enforce_memory {
                cfg.hybrid.memory_budget_bytes.unwrap_or(cfg.cluster.device.mem_bytes)
            } else {
                u64::MAX
            };
            let (d, info) = partition_dependencies(
                &dataset.graph,
                &part,
                model.dims(),
                costs,
                dataset.scale,
                cfg.cluster.device.mem_bytes,
                &HybridConfig {
                    memory_budget_bytes: Some(budget),
                    ratio_override: cfg.hybrid.ratio_override,
                    peer_comm_mult: peer_mult.map(<[f64]>::to_vec),
                },
            )?;
            (d, Some(info))
        }
    };
    let check = |plans: &[WorkerPlan]| -> Result<()> {
        if !cfg.enforce_memory {
            return Ok(());
        }
        // DepCache materializes whole layers (no chunk streaming);
        // the chunk-based engines stream edge tensors.
        let chunked = engine != EngineKind::DepCache;
        let edge_widths: Vec<usize> = (0..model.num_layers())
            .map(|lz| model.layer(lz).edge_tensor_width())
            .collect();
        check_device_fit(
            engine.name(),
            plans,
            model.dims(),
            &edge_widths,
            chunked,
            dataset.scale,
            cfg.cluster.device.mem_bytes,
        )
    };
    let mut plans = build_plans(&dataset.graph, &part, model.num_layers(), &decision)?;
    let mut hybrid_info = hybrid_info;
    match check(&plans) {
        Ok(()) => {}
        Err(first_err) => {
            // Algorithm 4's internal memory estimate is deliberately
            // coarse (it accrues subtree bytes, not the full working
            // set). When the compiled plan still exceeds the device in
            // *automatic* hybrid mode, shrink the caching budget and
            // re-partition — the paper's constraint S is exactly this
            // knob. Ratio-override mode (Fig. 11) and the pure engines
            // surface the OOM instead, as the paper's tables do.
            if engine != EngineKind::Hybrid || cfg.hybrid.ratio_override.is_some() {
                return Err(first_err);
            }
            let mut budget = cfg.cluster.device.mem_bytes / 2;
            let mut done = false;
            for _ in 0..6 {
                let (d, info) = partition_dependencies(
                    &dataset.graph,
                    &part,
                    model.dims(),
                    costs,
                    dataset.scale,
                    cfg.cluster.device.mem_bytes,
                    &HybridConfig {
                        memory_budget_bytes: Some(budget),
                        ratio_override: None,
                        peer_comm_mult: peer_mult.map(<[f64]>::to_vec),
                    },
                )?;
                plans = build_plans(&dataset.graph, &part, model.num_layers(), &d)?;
                hybrid_info = Some(info);
                decision = d;
                if check(&plans).is_ok() {
                    done = true;
                    break;
                }
                budget /= 2;
            }
            if !done {
                return Err(first_err);
            }
        }
    }
    Ok((plans, hybrid_info, decision))
}

/// The distributed trainer: plans once, simulates once, then trains for
/// real.
pub struct Trainer<'a> {
    dataset: &'a Dataset,
    model: &'a GnnModel,
    cfg: TrainerConfig,
    plans: Vec<WorkerPlan>,
    costs: CostFactors,
    hybrid_info: Option<HybridInfo>,
    decision: DepDecision,
}

/// Upper bound on measured-cost drift replans per run, so an unlucky
/// oscillating cluster cannot spend more time partitioning than training.
const MAX_DRIFT_REPLANS: usize = 4;

/// What the recovering epoch loop hands back to [`Trainer::train`].
struct ElasticOutcome {
    metrics: Vec<EpochMetrics>,
    params: ParamStore,
    recoveries: Vec<(usize, usize, String)>,
    run_metrics: RunMetrics,
    membership: Vec<MembershipEvent>,
    replans: Vec<ReplanEvent>,
}

impl<'a> Trainer<'a> {
    /// Plans the run: partitions the graph, resolves the dependency
    /// decision for the chosen engine, validates memory, and probes cost
    /// factors. Returns `DeviceOom` when the engine cannot fit the
    /// dataset at paper scale (e.g. DepCache on dense graphs).
    pub fn prepare(
        dataset: &'a Dataset,
        model: &'a GnnModel,
        cfg: TrainerConfig,
    ) -> Result<Self> {
        ns_par::set_threads(cfg.threads);
        let costs = probe_threaded(model, &cfg.cluster, ns_par::threads());
        let (plans, hybrid_info, decision) =
            plan_engine(dataset, model, &cfg, cfg.engine, cfg.cluster.workers, &costs, None)?;
        Ok(Self { dataset, model, cfg, plans, costs, hybrid_info, decision })
    }

    /// The compiled per-worker plans.
    pub fn plans(&self) -> &[WorkerPlan] {
        &self.plans
    }

    /// The probed cost factors.
    pub fn costs(&self) -> &CostFactors {
        &self.costs
    }

    /// Simulates one epoch on the modeled cluster.
    pub fn simulate_epoch(&self) -> SimSummary {
        let tg = build_epoch_task_graph(
            &self.plans,
            self.model.dims(),
            &self.costs.flops,
            self.model.gradient_bytes(),
            &TgConfig {
                opts: self.cfg.opts,
                broadcast_full_partition: self.cfg.broadcast_full_partition,
                sync: self.cfg.sync,
            },
        );
        let bytes = tg.total_bytes();
        let flops = tg.total_flops();
        let report = simulate(&tg, &self.cfg.cluster, &self.cfg.opts);
        SimSummary {
            epoch_seconds: report.makespan,
            bytes_per_epoch: bytes,
            flops_per_epoch: flops,
            device_utilization: report.mean_utilization(ResourceKind::Device),
            nic_utilization: report.mean_utilization(ResourceKind::NicOut),
            report,
        }
    }

    /// Replans on `workers` active members, degrading Hybrid to DepComm
    /// when the shrunk cluster can no longer fit the cached working set —
    /// trading extra communication for staying alive rather than
    /// surfacing `DeviceOom` mid-recovery. `costs` and `peer_mult` let the
    /// measured-cost replanner feed calibrated factors in; plain recovery
    /// passes the probed costs unchanged.
    fn replan(
        &self,
        engine: EngineKind,
        workers: usize,
        costs: &CostFactors,
        peer_mult: Option<&[f64]>,
    ) -> Result<(Vec<WorkerPlan>, EngineKind, DepDecision)> {
        match plan_engine(self.dataset, self.model, &self.cfg, engine, workers, costs, peer_mult)
        {
            Ok((plans, _, decision)) => Ok((plans, engine, decision)),
            Err(RuntimeError::DeviceOom { .. }) if engine == EngineKind::Hybrid => {
                let (plans, _, decision) = plan_engine(
                    self.dataset,
                    self.model,
                    &self.cfg,
                    EngineKind::DepComm,
                    workers,
                    costs,
                    None,
                )?;
                Ok((plans, EngineKind::DepComm, decision))
            }
            Err(e) => Err(e),
        }
    }

    /// Attributes the migration between two dependency decisions over the
    /// same `workers`-way partitioning to the owners of the moved
    /// dependencies (see [`feedback::diff_decisions`]).
    fn decision_delta(
        &self,
        old: &DepDecision,
        new: &DepDecision,
        workers: usize,
    ) -> DecisionDelta {
        let part = self.cfg.partitioner.partition(&self.dataset.graph, workers);
        let num_layers = self.model.num_layers();
        let deps: Vec<Vec<Vec<u32>>> = (0..workers)
            .map(|i| {
                let owned_vec = part.part_vertices(i);
                let owned: FxHashSet<u32> = owned_vec.iter().copied().collect();
                let closure =
                    ns_graph::khop::khop_in_closure(&self.dataset.graph, &owned_vec, num_layers);
                (0..num_layers)
                    .map(|lz| {
                        closure.layers[num_layers - lz]
                            .iter()
                            .copied()
                            .filter(|u| !owned.contains(u))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        feedback::diff_decisions(old, new, workers, num_layers, &deps, |u| part.owner(u))
    }

    /// Runs the rejoin handshake for original `slot` against the current
    /// checkpoint: a fresh two-node fabric (coordinator = 0, joiner = 1),
    /// two threads, three control round trips, then the checkpointed
    /// state is what the joiner resumes from. Returns the bytes the
    /// rejoin put on the wire (handshake control traffic plus the state
    /// snapshot).
    fn run_rejoin_handshake(&self, slot: usize, ckpt: &Checkpoint) -> Result<u64> {
        let timeout = Duration::from_millis(self.cfg.recv.timeout_ms.max(100));
        let mut eps = Fabric::new(2).into_endpoints();
        let joiner_ep = eps.pop().expect("fabric endpoint 1");
        let coord_ep = eps.pop().expect("fabric endpoint 0");
        let resume = ckpt.next_epoch;
        let state_bytes = ckpt.param_bytes() as u64;
        let net_err = |e| RuntimeError::WorkerFailed {
            worker: slot,
            epoch: resume,
            cause: FailureCause::Net(e),
        };
        crossbeam::thread::scope(|s| {
            let joiner = s.spawn(move |_| {
                membership::request_rejoin(&joiner_ep, 0, slot, timeout)
            });
            let announced =
                membership::admit_rejoin(&coord_ep, 1, resume, state_bytes, timeout)
                    .map_err(net_err)?;
            let offer = joiner.join().expect("joiner thread").map_err(net_err)?;
            debug_assert_eq!(announced, slot);
            debug_assert_eq!(offer.resume_epoch, resume);
            Ok(offer.state_bytes + membership::REJOIN_HANDSHAKE_BYTES)
        })
        .expect("rejoin scope")
    }

    /// The checkpointed epoch loop: run chunks of `checkpoint_every`
    /// epochs, snapshot after each, and on a worker failure roll back to
    /// the last checkpoint and resume on the survivors.
    ///
    /// With the elastic knobs on, each successful checkpoint boundary
    /// additionally runs the self-healing pass:
    ///
    /// 1. **Straggler eviction** (`evict_stragglers`): the peer whose
    ///    attributed per-message receive wait exceeds `straggler_factor`
    ///    times the cluster median is voluntarily removed and the plan
    ///    rebuilt over the remainder.
    /// 2. **Rejoin** (`rejoin`): every missing member (failed or evicted)
    ///    re-admits through the [`membership`] handshake, its state is
    ///    restored from the checkpoint, and the plan is rebuilt over the
    ///    restored world — retrying the *configured* engine first, so a
    ///    run degraded to DepComm upgrades back once members return.
    /// 3. **Measured-cost drift replan** (Hybrid only, membership
    ///    unchanged): the chunk's receive-wait statistics are calibrated
    ///    into [`CostFactors`] corrections and, past the thresholds in
    ///    [`feedback`], Algorithm 4 re-runs with them — a slow peer's
    ///    dependencies shift from communicated to cached.
    ///
    /// Observability: one trace-clock origin is threaded through every
    /// chunk so all spans land on a single timeline, and a coordinator
    /// recorder times checkpoint capture/restore and counts rollbacks,
    /// membership transitions (`membership.*`), and replans (`replan.*`).
    /// Frames from a *failed* chunk are discarded with its metrics (the
    /// chunk is atomic); the rollback itself is what gets recorded.
    #[allow(clippy::type_complexity)]
    fn train_recovering(&self, epochs: usize, exec_cfg: &ExecConfig) -> Result<ElasticOutcome> {
        let cadence = self.cfg.recovery.checkpoint_every;
        let mut plans = self.plans.clone();
        let mut engine = self.cfg.engine;
        let mut decision = self.decision.clone();
        let mut fault = self.cfg.fault.clone();
        let mut view = MembershipView::new(self.cfg.cluster.workers);
        let mut ckpt = Checkpoint::initial();
        let mut metrics: Vec<EpochMetrics> = Vec::new();
        let mut recoveries = Vec::new();
        let mut replans: Vec<ReplanEvent> = Vec::new();
        let mut restarts = 0usize;
        let mut drift_replans = 0usize;
        let mut baseline_mean: Option<f64> = None;
        let origin = Instant::now();
        let coord = MetricsRecorder::new(COORDINATOR, origin);
        let mut run_metrics = RunMetrics::new();
        let mut store = match &self.cfg.store.dir {
            Some(dir) => Some(
                CheckpointStore::open(dir, self.cfg.store.keep)
                    .map_err(|e| RuntimeError::StoreIo(e.to_string()))?,
            ),
            None => None,
        };
        // Rolls the recovery point back. With a durable store this reads
        // the *disk* (the honest process-restart path): the newest good
        // generation wins, damaged ones are skipped as metered fallbacks,
        // and a deeper-than-memory rollback truncates the already-collected
        // epoch metrics to the resumed epoch.
        let rollback = |ckpt: &mut Checkpoint,
                        metrics: &mut Vec<EpochMetrics>,
                        store: &Option<CheckpointStore>,
                        coord: &MetricsRecorder| {
            let Some(store) = store else { return };
            let report = store.load_latest();
            if report.fallbacks > 0 {
                coord.incr("ckpt.fallbacks", report.fallbacks);
            }
            let resumed = match report.checkpoint {
                Some(loaded) => loaded,
                None => Checkpoint::initial(),
            };
            if resumed.next_epoch < ckpt.next_epoch {
                metrics.truncate(resumed.next_epoch);
            }
            *ckpt = resumed;
        };
        while ckpt.next_epoch < epochs {
            let chunk = cadence.min(epochs - ckpt.next_epoch);
            coord.set_epoch(ckpt.next_epoch as u32);
            let (init_params, opt_state) = {
                let _load = span!(&coord, Phase::CkptLoad);
                ckpt.restore()
                    .map_err(|e| RuntimeError::CheckpointCorrupt(e.to_string()))?
            };
            let run = RunState {
                epoch_offset: ckpt.next_epoch,
                init_params,
                opt_state,
                fault: fault.clone(),
                recv: self.cfg.recv,
                origin: Some(origin),
                watchdog: self.cfg.watchdog,
            };
            // Injected memory pressure arms at chunk granularity: the cap
            // lands before the chunk's workers spawn and lifts after they
            // have all joined, when nothing holds pooled buffers — the
            // shrink itself can then never invalidate a live tensor. A
            // window that touches *any* epoch of the chunk arms the whole
            // chunk (tightest cap wins), so sub-cadence windows are never
            // silently skipped. The high-water mark since arming is
            // exported at every disarm.
            let mem_cap = (ckpt.next_epoch..ckpt.next_epoch + chunk)
                .filter_map(|e| fault.mem_cap_at(e))
                .min();
            if let Some(cap) = mem_cap {
                ns_tensor::pool::set_cap_bytes(cap);
            }
            let chunk_result =
                train_epochs_run(self.dataset, self.model, &plans, chunk, exec_cfg, &run);
            if mem_cap.is_some() {
                coord.observe("alloc.peak_bytes", ns_tensor::pool::stats().peak_bytes);
                ns_tensor::pool::set_cap_bytes(ns_tensor::pool::default_cap_bytes());
            }
            match chunk_result {
                Ok((chunk_metrics, store_params, opt, chunk_run)) => {
                    metrics.extend(chunk_metrics);
                    let boundary = ckpt.next_epoch + chunk;
                    {
                        let _save = span!(&coord, Phase::CkptSave);
                        coord.incr("recovery.checkpoints", 1);
                        ckpt = Checkpoint::capture(boundary, &store_params, opt);
                        if let Some(st) = store.as_mut() {
                            st.set_disk_fate(
                                fault.disk_full_at(boundary),
                                fault.slow_disk_factor(),
                            );
                            // Degrade, don't die: ENOSPC squeezes retention
                            // toward keep-last-1 and retries; only a failure
                            // of the squeezed retry defers the generation
                            // (durability thins, training continues).
                            let outcome = st
                                .save_degrading(&ckpt, plans.len())
                                .map_err(|e| RuntimeError::StoreIo(e.to_string()))?;
                            if outcome.enospc_hits > 0 {
                                coord.incr("ckpt.enospc", outcome.enospc_hits);
                            }
                            if outcome.squeezed {
                                coord.incr("ckpt.retention_squeezed", 1);
                            }
                            if outcome.deferred {
                                coord.incr("ckpt.deferred", 1);
                            }
                            if let Some(receipt) = outcome.receipt {
                                coord.observe("ckpt.fsync_ns", receipt.fsync_ns);
                                if receipt.slow_penalty_ns > 0 {
                                    coord.incr(
                                        "ckpt.slow_disk_penalty_ns",
                                        receipt.slow_penalty_ns,
                                    );
                                }
                                // Injected on-disk bit rot (chaos `corrupt:ckpt`
                                // faults) lands on the persisted copy only; the
                                // in-memory checkpoint stays clean, exactly like
                                // real silent disk corruption.
                                if let Some(bits) = fault.ckpt_fate(boundary) {
                                    st.damage_latest(bits)
                                        .map_err(|e| RuntimeError::StoreIo(e.to_string()))?;
                                }
                            }
                        }
                    }
                    // Self-healing boundary pass, driven by this chunk's
                    // measured per-peer receive waits.
                    let stats = feedback::peer_waits(&chunk_run, plans.len());
                    run_metrics.merge(chunk_run);
                    let mut membership_changed = false;
                    let mut just_evicted = None;
                    if self.cfg.recovery.evict_stragglers
                        && view.active_count() > 1
                        && boundary < epochs
                    {
                        if let Some(rank) =
                            feedback::pick_straggler(&stats, self.cfg.recovery.straggler_factor)
                        {
                            // The eviction cures the straggle at the
                            // source: a modeled replacement host takes the
                            // slot, so the injected straggle fault retires
                            // with the member.
                            fault.retire_straggle(rank);
                            // Link faults pinned to the evicted slot retire
                            // with it too: the survivors renumber, so a
                            // stale partition/flap would sever the wrong
                            // (healthy) replacement forever.
                            fault.retire_links(rank);
                            let slot = view.mark_evicted(rank, boundary);
                            coord.incr("membership.evictions", 1);
                            membership_changed = true;
                            just_evicted = Some(slot);
                        }
                    }
                    if self.cfg.recovery.rejoin && !view.is_full() {
                        for slot in view.missing() {
                            if Some(slot) == just_evicted {
                                continue; // re-admits at the *next* boundary
                            }
                            let wire_bytes = self.run_rejoin_handshake(slot, &ckpt)?;
                            view.admit(slot, boundary);
                            coord.incr("membership.rejoins", 1);
                            coord.incr("membership.rejoin.bytes", wire_bytes);
                            membership_changed = true;
                        }
                        if view.is_full() {
                            // Full world again: retry the configured
                            // engine (replan() still degrades if needed).
                            engine = self.cfg.engine;
                        }
                    }
                    if membership_changed {
                        let (p, e, d) =
                            self.replan(engine, view.active_count(), &self.costs, None)?;
                        plans = p;
                        engine = e;
                        decision = d;
                        // Old wait statistics describe the old world.
                        baseline_mean = None;
                    } else if engine == EngineKind::Hybrid
                        && boundary < epochs
                        && drift_replans < MAX_DRIFT_REPLANS
                    {
                        let calib = feedback::calibrate(&stats, baseline_mean);
                        if baseline_mean.is_none() {
                            baseline_mean = Some(calib.mean_wait_ns);
                        }
                        if calib.triggers_replan() {
                            let scaled = self.costs.with_comm_scale(calib.comm_factor);
                            let (p, e, d) = self.replan(
                                engine,
                                plans.len(),
                                &scaled,
                                Some(&calib.peer_mult),
                            )?;
                            let delta = self.decision_delta(&decision, &d, plans.len());
                            coord.incr("replan.events", 1);
                            coord.incr(
                                "replan.moved_to_cached",
                                delta.total_to_cached() as u64,
                            );
                            coord.incr("replan.moved_to_comm", delta.total_to_comm() as u64);
                            replans.push(ReplanEvent {
                                epoch: boundary,
                                reason: "drift",
                                comm_factor: calib.comm_factor,
                                peer_mult: calib.peer_mult,
                                moved_to_cached: delta.moved_to_cached,
                                moved_to_comm: delta.moved_to_comm,
                                engine: e.name().to_string(),
                            });
                            plans = p;
                            engine = e;
                            decision = d;
                            drift_replans += 1;
                        }
                    }
                }
                Err(RuntimeError::WorkerFailed { worker, epoch, cause })
                    if restarts < self.cfg.recovery.max_restarts && plans.len() > 1 =>
                {
                    // Chunks are atomic: the failed chunk contributed no
                    // metrics, so `metrics` already matches
                    // `ckpt.next_epoch` and rollback is just a replan +
                    // re-run from the checkpoint. The dead worker leaves
                    // the cluster (until it rejoins at a boundary); its
                    // kill fault is retired so the resumed run (with
                    // re-numbered workers) does not re-fire it. Any
                    // remaining faults address the *new* numbering.
                    restarts += 1;
                    coord.incr("recovery.rollbacks", 1);
                    coord.incr("membership.failures", 1);
                    if cause == FailureCause::Hung {
                        // The worker frames of a failed chunk are discarded,
                        // so the surviving coordinator recorder carries the
                        // actionable-trip count: one per hung worker the
                        // watchdog routed into recovery.
                        coord.incr("watchdog.trips", 1);
                    }
                    let slot = view.mark_failed(worker, epoch);
                    fault.retire_kill(worker, epoch);
                    fault.retire_hang(worker, epoch);
                    // A partitioned (not killed) worker surfaces here too —
                    // its receives time out just like a death. Retiring the
                    // slot's link faults lets the re-admitted member run on
                    // the survivors' renumbered links without re-severing.
                    fault.retire_links(worker);
                    let (new_plans, new_engine, new_decision) =
                        self.replan(engine, view.active_count(), &self.costs, None)?;
                    plans = new_plans;
                    engine = new_engine;
                    decision = new_decision;
                    baseline_mean = None;
                    rollback(&mut ckpt, &mut metrics, &store, &coord);
                    recoveries.push((slot, ckpt.next_epoch, engine.name().to_string()));
                }
                Err(RuntimeError::Diverged { worker, .. })
                    if restarts < self.cfg.recovery.max_restarts =>
                {
                    // Divergence is a fault of the *state*, not a member:
                    // nobody leaves the cluster and no replan is needed —
                    // the run just rolls back to the last good checkpoint.
                    // A deterministic divergence re-trips the guard each
                    // attempt and surfaces once the restart budget is spent.
                    restarts += 1;
                    coord.incr("guard.nan_events", 1);
                    coord.incr("recovery.rollbacks", 1);
                    rollback(&mut ckpt, &mut metrics, &store, &coord);
                    recoveries.push((worker, ckpt.next_epoch, engine.name().to_string()));
                }
                Err(e) => return Err(e),
            }
        }
        let (final_params, _) = {
            let _load = span!(&coord, Phase::CkptLoad);
            ckpt.restore()
                .map_err(|e| RuntimeError::CheckpointCorrupt(e.to_string()))?
        };
        run_metrics.absorb(coord.finish());
        Ok(ElasticOutcome {
            metrics,
            params: final_params.unwrap_or_else(|| self.model.fresh_store()),
            recoveries,
            run_metrics,
            membership: view.events().to_vec(),
            replans,
        })
    }

    /// Runs `epochs` epochs of real distributed training and returns the
    /// full report. With [`RecoveryConfig`] enabled, worker failures roll
    /// back to the last checkpoint and training resumes on the surviving
    /// workers; otherwise they surface as
    /// [`RuntimeError::WorkerFailed`] / [`RuntimeError::SyncTimeout`].
    pub fn train(&self, epochs: usize) -> Result<TrainingReport> {
        let sim = self.simulate_epoch();
        let exec_cfg = ExecConfig {
            lr: self.cfg.lr,
            optimizer: self.cfg.optimizer,
            ring_order: self.cfg.opts.ring,
            lock_free: self.cfg.opts.lock_free,
            sync: self.cfg.sync,
        };
        let outcome = if self.cfg.recovery.enabled() {
            self.train_recovering(epochs, &exec_cfg)?
        } else {
            let run = RunState {
                fault: self.cfg.fault.clone(),
                recv: self.cfg.recv,
                watchdog: self.cfg.watchdog,
                ..Default::default()
            };
            let (m, p, _, rm) = train_epochs_run(
                self.dataset,
                self.model,
                &self.plans,
                epochs,
                &exec_cfg,
                &run,
            )?;
            ElasticOutcome {
                metrics: m,
                params: p,
                recoveries: Vec::new(),
                run_metrics: rm,
                membership: Vec::new(),
                replans: Vec::new(),
            }
        };
        let ElasticOutcome {
            metrics,
            params: final_params,
            recoveries,
            mut run_metrics,
            membership,
            replans,
        } = outcome;
        // Lay the modeled-clock timeline alongside the real-clock spans.
        run_metrics.sim_spans = crate::obs::sim_spans(&sim.report);
        let epochs_out = metrics
            .into_iter()
            .enumerate()
            .map(|(i, m)| EpochStats {
                epoch: i,
                loss: m.loss,
                train_acc: m.train_acc,
                val_acc: m.val_acc,
                test_acc: m.test_acc,
                wall_s: m.wall_s,
            })
            .collect();
        Ok(TrainingReport {
            engine: self.cfg.engine.name().to_string(),
            dataset: self.dataset.name.clone(),
            model: self.model.kind().name().to_string(),
            workers: self.cfg.cluster.workers,
            epochs: epochs_out,
            sim,
            plan: PlanSummary {
                replica_slots: self.plans.iter().map(WorkerPlan::replica_slots).sum(),
                prefetched_features: self
                    .plans
                    .iter()
                    .map(WorkerPlan::prefetched_features)
                    .sum(),
                comm_rows_per_epoch: self
                    .plans
                    .iter()
                    .map(WorkerPlan::forward_comm_rows)
                    .sum(),
                hybrid: self.hybrid_info.clone(),
            },
            final_params,
            recoveries,
            membership,
            replans,
            metrics: run_metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::ModelKind;
    use ns_graph::datasets::by_name;

    fn dataset() -> Dataset {
        by_name("google").unwrap().materialize(0.002, 11)
    }

    fn model(ds: &Dataset) -> GnnModel {
        GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 32, ds.num_classes, 5)
    }

    fn cfg(engine: EngineKind, workers: usize) -> TrainerConfig {
        TrainerConfig::new(engine, ClusterSpec::aliyun_ecs(workers))
    }

    #[test]
    fn all_engines_prepare_and_train() {
        let ds = dataset();
        let m = model(&ds);
        for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
            let trainer = Trainer::prepare(&ds, &m, cfg(engine, 4)).unwrap();
            let report = trainer.train(3).unwrap();
            assert_eq!(report.epochs.len(), 3);
            assert!(report.sim.epoch_seconds > 0.0, "{}", engine.name());
            assert!(
                report.epochs[2].loss < report.epochs[0].loss * 1.05,
                "{} loss should not explode",
                engine.name()
            );
            assert!(report.recoveries.is_empty());
            assert_eq!(report.metrics.worker_ids().len(), 4, "{}", engine.name());
            assert!(!report.metrics.sim_spans.is_empty(), "{}", engine.name());
            assert!(report.metrics.total_counter("net.sent.bytes") > 0);
        }
    }

    #[test]
    fn engines_agree_numerically() {
        let ds = dataset();
        let m = model(&ds);
        let mut losses = Vec::new();
        for engine in [EngineKind::DepCache, EngineKind::DepComm, EngineKind::Hybrid] {
            let trainer = Trainer::prepare(&ds, &m, cfg(engine, 4)).unwrap();
            let report = trainer.train(2).unwrap();
            losses.push(report.final_loss());
        }
        for w in losses.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 2e-3 * w[0].abs().max(1.0),
                "engines diverged: {losses:?}"
            );
        }
    }

    #[test]
    fn depcache_burns_flops_depcomm_burns_bytes() {
        let ds = dataset();
        let m = model(&ds);
        let cache = Trainer::prepare(&ds, &m, cfg(EngineKind::DepCache, 4))
            .unwrap()
            .simulate_epoch();
        let comm = Trainer::prepare(&ds, &m, cfg(EngineKind::DepComm, 4))
            .unwrap()
            .simulate_epoch();
        assert!(cache.flops_per_epoch > comm.flops_per_epoch);
        assert!(comm.bytes_per_epoch > cache.bytes_per_epoch);
        // DepCache keeps the device busier.
        assert!(cache.device_utilization > comm.device_utilization);
    }

    #[test]
    fn hybrid_is_no_slower_than_both_pure_engines() {
        let ds = dataset();
        let m = model(&ds);
        let time = |engine| {
            Trainer::prepare(&ds, &m, cfg(engine, 4))
                .unwrap()
                .simulate_epoch()
                .epoch_seconds
        };
        let cache = time(EngineKind::DepCache);
        let comm = time(EngineKind::DepComm);
        let hybrid = time(EngineKind::Hybrid);
        assert!(
            hybrid <= cache.max(comm) * 1.05,
            "hybrid {hybrid} vs cache {cache} / comm {comm}"
        );
    }

    #[test]
    fn zero_workers_rejected() {
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 1);
        c.cluster.workers = 0;
        assert!(Trainer::prepare(&ds, &m, c).is_err());
    }

    #[test]
    fn kill_without_recovery_surfaces_worker_failed() {
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        c.fault = FaultPlan::kill(1, 1);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let err = trainer.train(4).unwrap_err();
        assert!(
            matches!(err, RuntimeError::WorkerFailed { worker: 1, epoch: 1, .. }),
            "unexpected: {err:?}"
        );
    }

    #[test]
    fn recovery_finishes_all_epochs_after_kill() {
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        c.fault = FaultPlan::kill(1, 2);
        c.recovery = RecoveryConfig::every(1);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(5).unwrap();
        assert_eq!(report.epochs.len(), 5, "recovered run must finish");
        assert_eq!(report.recoveries.len(), 1);
        let (failed_worker, rollback_epoch, engine_after) = &report.recoveries[0];
        assert_eq!(*failed_worker, 1);
        assert_eq!(*rollback_epoch, 2);
        assert_eq!(engine_after, "DepComm");
        assert!(
            report.final_loss() < report.epochs[0].loss,
            "recovered run must still learn"
        );
        let coord = report
            .metrics
            .frames
            .get(&COORDINATOR)
            .expect("coordinator frame");
        assert_eq!(coord.counter("recovery.rollbacks"), 1);
        assert_eq!(coord.counter("recovery.checkpoints"), 5);
        assert!(coord.phase_total_ns(Phase::CkptSave) > 0);
        assert!(coord.phase_total_ns(Phase::CkptLoad) > 0);
    }

    #[test]
    fn rejoin_restores_full_world_after_kill() {
        use ns_net::MembershipEventKind;
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        c.fault = FaultPlan::kill(1, 2);
        c.recovery = RecoveryConfig::every(1).with_rejoin();
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(5).unwrap();
        assert_eq!(report.epochs.len(), 5);
        assert_eq!(report.recoveries.len(), 1);
        let kinds: Vec<_> = report.membership.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![MembershipEventKind::Failed, MembershipEventKind::Rejoined]
        );
        assert_eq!(report.membership[0].worker, 1);
        assert_eq!(report.membership[1].worker, 1);
        // Replaying the log ends at a full world: every affected slot's
        // final transition is a rejoin.
        let mut last = std::collections::BTreeMap::new();
        for e in &report.membership {
            last.insert(e.worker, e.kind);
        }
        assert!(
            last.values().all(|k| *k == MembershipEventKind::Rejoined),
            "every rejoin must restore the world: {:?}",
            report.membership
        );
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert_eq!(coord.counter("membership.failures"), 1);
        assert_eq!(coord.counter("membership.rejoins"), 1);
        assert!(
            coord.counter("membership.rejoin.bytes")
                > ns_net::membership::REJOIN_HANDSHAKE_BYTES,
            "rejoin must meter the state snapshot"
        );
        assert!(report.final_loss() < report.epochs[0].loss);
    }

    #[test]
    fn watchdog_detects_hang_and_recovery_resumes() {
        use ns_net::fault::Fault;
        use ns_net::MembershipEventKind;
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        c.fault = FaultPlan::default().with_fault(Fault::Hang { worker: 1, epoch: 2 });
        c.recovery = RecoveryConfig::every(1).with_rejoin();
        c.watchdog = Some(WatchdogConfig { multiplier: 4.0, floor_ms: 100, poll_ms: 2 });
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(5).unwrap();
        assert_eq!(report.epochs.len(), 5, "hung run must finish");
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].0, 1, "worker 1 was the hung one");
        // The hang routes through the same membership machinery as a
        // crash: failure, then rejoin at the next boundary.
        let kinds: Vec<_> = report.membership.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![MembershipEventKind::Failed, MembershipEventKind::Rejoined]
        );
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert!(
            coord.counter("watchdog.trips") >= 1,
            "the trip that evicted the hung worker must be metered"
        );
        assert!(report.final_loss() < report.epochs[0].loss);
    }

    #[test]
    fn disk_full_window_degrades_retention_and_finishes() {
        use ns_net::fault::Fault;
        let ds = dataset();
        let m = model(&ds);
        let dir = std::env::temp_dir()
            .join(format!("nts-trainer-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = cfg(EngineKind::DepComm, 2);
        c.fault = FaultPlan::default()
            .with_fault(Fault::DiskFull { from_epoch: 2, heal_epoch: 4 });
        c.recovery = RecoveryConfig::every(1);
        c.store = StoreConfig::at(&dir).keep(3);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(6).unwrap();
        assert_eq!(report.epochs.len(), 6, "disk-full run must finish, not abort");
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert!(coord.counter("ckpt.enospc") >= 1, "the ENOSPC window was hit");
        assert!(
            coord.counter("ckpt.retention_squeezed") >= 1,
            "retention must squeeze rather than fail the run"
        );
        // The store survives the window with at least one loadable
        // generation.
        let st = CheckpointStore::open(&dir, 3).unwrap();
        let loaded = st.load_latest();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(loaded.checkpoint.is_some(), "a generation must remain loadable");
    }

    #[test]
    fn slow_disk_meters_a_bounded_penalty() {
        use ns_net::fault::Fault;
        let ds = dataset();
        let m = model(&ds);
        let dir = std::env::temp_dir()
            .join(format!("nts-trainer-slowdisk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = cfg(EngineKind::DepComm, 2);
        c.fault = FaultPlan::default().with_fault(Fault::SlowDisk { factor: 3.0 });
        c.recovery = RecoveryConfig::every(1);
        c.store = StoreConfig::at(&dir).keep(2);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(3).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert!(
            coord.counter("ckpt.slow_disk_penalty_ns") > 0,
            "a 3x slow disk must charge fsync penalty time"
        );
    }

    #[test]
    fn mem_pressure_window_records_the_high_water_mark() {
        use ns_net::fault::Fault;
        let _pool = crate::pool_test_guard();
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 2);
        // A generous cap: the invariant under test is the arming/metering
        // path, not the shed behavior (pool unit tests cover that).
        c.fault = FaultPlan::default().with_fault(Fault::MemPressure {
            cap_bytes: 1 << 30,
            from_epoch: 1,
            heal_epoch: 3,
        });
        c.recovery = RecoveryConfig::every(1);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(4).unwrap();
        assert_eq!(report.epochs.len(), 4);
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        let peak = coord
            .histograms
            .get("alloc.peak_bytes")
            .expect("pressured chunks must export the high-water mark");
        assert!(peak.count >= 1);
        assert!(peak.max <= 1 << 30, "peak must respect the injected cap");
    }

    #[test]
    fn straggler_is_evicted_and_readmitted() {
        use ns_net::fault::Fault;
        use ns_net::MembershipEventKind;
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        c.fault = FaultPlan::default()
            .with_fault(Fault::Straggle { worker: 1, delay_ms: 30 });
        c.recovery = RecoveryConfig::every(2)
            .with_rejoin()
            .with_straggler_eviction(4.0);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(6).unwrap();
        assert_eq!(report.epochs.len(), 6);
        assert!(report.recoveries.is_empty(), "eviction burns no restart budget");
        let kinds: Vec<_> = report.membership.iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains(&MembershipEventKind::Evicted),
            "30ms straggler must be evicted: {kinds:?}"
        );
        assert_eq!(
            report.membership[0].worker, 1,
            "the straggling slot is the one evicted"
        );
        assert_eq!(
            kinds.last(),
            Some(&MembershipEventKind::Rejoined),
            "evicted member re-admits at a later boundary: {kinds:?}"
        );
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert!(coord.counter("membership.evictions") >= 1);
        assert!(coord.counter("membership.rejoins") >= 1);
    }

    #[test]
    fn torn_durable_generation_falls_back_and_still_finishes() {
        use ns_net::fault::Fault;
        let dir = std::env::temp_dir()
            .join(format!("nts-trainer-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        // Boundary 4's generation is silently bit-flipped on disk; the kill
        // at epoch 5 then forces a rollback that must detect the damage and
        // fall back to the generation from boundary 2.
        c.fault = FaultPlan::kill(1, 5)
            .with_fault(Fault::CorruptCkpt { epoch: Some(4), p: 1.0 });
        c.recovery = RecoveryConfig::every(2);
        c.store = StoreConfig::at(&dir);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(6).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(report.epochs.len(), 6, "run must finish all epochs");
        assert_eq!(report.recoveries.len(), 1);
        let (failed_worker, rollback_epoch, _) = &report.recoveries[0];
        assert_eq!(*failed_worker, 1);
        assert_eq!(
            *rollback_epoch, 2,
            "rollback must skip the torn boundary-4 generation"
        );
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert_eq!(coord.counter("ckpt.fallbacks"), 1);
        assert_eq!(coord.counter("recovery.rollbacks"), 1);
        assert_eq!(coord.counter("guard.nan_events"), 0);
        assert!(
            report.final_loss() < report.epochs[0].loss,
            "recovered run must still learn"
        );
    }

    #[test]
    fn durable_rollback_reads_the_store_not_memory() {
        let dir = std::env::temp_dir()
            .join(format!("nts-trainer-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 3);
        c.fault = FaultPlan::kill(1, 2);
        c.recovery = RecoveryConfig::every(2);
        c.store = StoreConfig::at(&dir).keep(2);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let report = trainer.train(4).unwrap();
        // The surviving generations on disk verify end-to-end.
        let store = CheckpointStore::open(&dir, 2).unwrap();
        let gens = store.generations().unwrap();
        assert!(!gens.is_empty() && gens.len() <= 2, "{gens:?}");
        let loaded = store.load_latest();
        assert_eq!(loaded.fallbacks, 0);
        assert_eq!(loaded.checkpoint.unwrap().next_epoch, 4);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.recoveries.len(), 1);
        let coord = report.metrics.frames.get(&COORDINATOR).unwrap();
        assert_eq!(coord.counter("ckpt.fallbacks"), 0);
        let fsync = coord.histograms.get("ckpt.fsync_ns").expect("fsync histogram");
        assert!(fsync.count > 0);
    }

    #[test]
    fn deterministic_divergence_exhausts_restart_budget() {
        let ds = dataset();
        let m = model(&ds);
        let mut c = cfg(EngineKind::DepComm, 2);
        c.lr = 1e30; // guarantees a non-finite loss within a few steps
        c.optimizer = OptimizerKind::Sgd;
        c.recovery = RecoveryConfig::every(1);
        let trainer = Trainer::prepare(&ds, &m, c).unwrap();
        let err = trainer.train(4).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Diverged { .. }),
            "deterministic divergence must surface after the budget: {err:?}"
        );
    }

    #[test]
    fn checkpoint_chunking_preserves_trajectory() {
        let ds = dataset();
        let m = model(&ds);
        let plain = Trainer::prepare(&ds, &m, cfg(EngineKind::DepComm, 3))
            .unwrap()
            .train(4)
            .unwrap();
        let mut c = cfg(EngineKind::DepComm, 3);
        c.recovery = RecoveryConfig::every(2);
        let chunked = Trainer::prepare(&ds, &m, c).unwrap().train(4).unwrap();
        assert_eq!(plain.epochs.len(), chunked.epochs.len());
        for (a, b) in plain.epochs.iter().zip(chunked.epochs.iter()) {
            // Chunking round-trips params + Adam state exactly, so the
            // trajectory is identical.
            assert!(
                (a.loss - b.loss).abs() < 1e-12,
                "epoch {}: {} vs {}",
                a.epoch,
                a.loss,
                b.loss
            );
        }
        for ((_, _, a), (_, _, b)) in
            plain.final_params.iter().zip(chunked.final_params.iter())
        {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }
}

//! The NeutronStar distributed training runtime.
//!
//! This crate implements the paper's three dependency-management engines
//! over real multi-threaded execution:
//!
//! * **DepCache** (Algorithm 2) — every worker caches its partition's full
//!   L-hop in-neighborhood and trains with zero per-epoch dependency
//!   communication, at the price of redundant computation on replicas.
//! * **DepComm** (Algorithm 3) — master–mirror vertex-cut execution:
//!   representations of remote dependencies are fetched each layer
//!   (synchronize-compute) and their gradients pushed back each layer
//!   (compute-synchronize), with zero redundancy.
//! * **Hybrid** (§3, Algorithm 4) — a per-dependency cost model picks, for
//!   every remote dependent neighbor at every layer, whichever of the two
//!   treatments is cheaper, subject to a device-memory budget.
//!
//! All three are expressed as *dependency decisions* compiled by
//! [`plan`] into per-worker [`WorkerPlan`](crate::plan::WorkerPlan)s, and executed
//! by one engine-agnostic executor ([`exec`]). The executor runs one OS
//! thread per worker, moves real tensors over the `ns-net` fabric, and the
//! numerics are therefore identical (up to float summation order) across
//! engines — a property the integration tests assert. Timing on the target
//! cluster comes from [`taskgraph`], which compiles a plan into an
//! `ns-net` task DAG (ring send order, per-chunk overlap dependencies,
//! all-reduce rounds) for the event simulator.
//!
//! Every run is metered by the `ns-metrics` recorder: workers time each
//! phase (dependency exchange, layer compute, gradient sync, optimizer
//! step) and the fabric's traffic counters are folded into the
//! [`TrainingReport`](crate::trainer::TrainingReport); [`obs`] bridges
//! the simulator's busy timeline onto the same trace. See
//! `docs/OBSERVABILITY.md` for the full catalog.

pub mod cost;
pub mod error;
pub mod exec;
pub mod feedback;
pub mod hybrid;
pub mod memory;
pub mod obs;
pub mod plan;
pub mod recovery;
pub mod serve;
pub mod store;
pub mod taskgraph;
pub mod trainer;

pub use cost::{parallel_speedup, probe_threaded, CostFactors};
pub use error::{FailureCause, RuntimeError};
pub use exec::{RecvConfig, RunState, WatchdogConfig};
pub use feedback::{CostCalibration, DecisionDelta, PeerWaitStats};
pub use obs::{sim_breakdown, sim_spans, utilization_trace, SimBreakdown};
pub use hybrid::HybridConfig;
pub use recovery::{Checkpoint, RecoveryConfig};
pub use serve::{ServeConfig, ServeDeployment, ServeError, ServeReport};
pub use store::{CheckpointStore, StoreConfig};
pub use trainer::{
    EngineKind, EpochStats, ReplanEvent, Trainer, TrainerConfig, TrainingReport,
};

/// Serializes tests that reconfigure the process-global tensor pool (the
/// cap is shared by every test thread in the binary, so concurrent
/// re-arming races otherwise).
#[cfg(test)]
pub(crate) fn pool_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
